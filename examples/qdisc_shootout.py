#!/usr/bin/env python3
"""Qdisc shootout: which kernel queueing discipline paces QUIC best?

The Section 4.2 / 4.4 question, end to end: run the same quiche transfer
under no qdisc, FQ, ETF, and ETF with LaunchTime offloading, then compare
pacing precision (stddev of expected-vs-actual send time), burstiness and
loss. This is the experiment behind the paper's recommendation of FQ.

Run:  python examples/qdisc_shootout.py
"""

from repro import Experiment, ExperimentConfig, pacing_precision_ns
from repro.metrics import fraction_of_packets_in_trains_leq
from repro.metrics.report import render_table
from repro.units import mib

QDISCS = ["none", "fq", "etf", "etf-offload"]


def main() -> None:
    rows = []
    for qdisc in QDISCS:
        config = ExperimentConfig(
            stack="quiche",
            qdisc=qdisc,
            spurious_rollback=False,  # the paper's SF patch
            file_size=mib(4),
            repetitions=1,
        )
        print(f"running {config.label} ...")
        result = Experiment(config, seed=3).run()
        precision_ms = pacing_precision_ns(
            result.expected_send_log, result.server_records
        ) / 1e6
        rows.append(
            [
                qdisc,
                f"{precision_ms:.3f} ms",
                f"{fraction_of_packets_in_trains_leq(result.server_records, 5) * 100:.1f}%",
                str(result.dropped),
                f"{result.goodput_mbps:.2f}",
            ]
        )

    print()
    print(
        render_table(
            ["qdisc", "pacing precision", "trains <= 5", "dropped", "goodput [Mbit/s]"],
            rows,
            title="quiche pacing by qdisc (paper Sections 4.2/4.4)",
        )
    )
    print(
        "\nExpected shape: FQ most precise; ETF worse; LaunchTime no better"
        " than plain ETF; no qdisc worst (timestamps unenforced)."
    )


if __name__ == "__main__":
    main()
