#!/usr/bin/env python3
"""The GSO trade-off: syscall savings vs wire burstiness.

Section 4.3's first mitigation is "send smaller GSO bursts": the buffer size
directly trades CPU efficiency (fewer kernel crossings) against burstiness.
This example sweeps the GSO buffer size for a quiche+FQ sender and reports
both sides of the trade, then shows how the paced-GSO kernel patch escapes it
entirely (full batching *and* smooth pacing).

Run:  python examples/gso_tradeoff.py
"""

from repro import Experiment, ExperimentConfig
from repro.metrics import fraction_of_packets_in_trains_leq
from repro.metrics.report import render_table
from repro.units import mib


def run(gso: str, segments: int = 10):
    config = ExperimentConfig(
        stack="quiche",
        qdisc="fq",
        gso=gso,
        gso_segments=segments,
        spurious_rollback=False,
        file_size=mib(4),
        repetitions=1,
    )
    return Experiment(config, seed=5).run()


def main() -> None:
    rows = []

    def add_row(label, result):
        sendcalls = result.server_stats["gso_buffers"] or result.server_stats["packets_sent"]
        rows.append(
            [
                label,
                str(result.server_stats["packets_sent"]),
                str(sendcalls),
                f"{fraction_of_packets_in_trains_leq(result.server_records, 5) * 100:.1f}%",
                str(result.dropped),
                f"{result.goodput_mbps:.2f}",
            ]
        )

    print("sweeping GSO buffer sizes (quiche + FQ + SF patch) ...")
    add_row("GSO off", run("off"))
    for segments in (2, 4, 10):
        add_row(f"GSO x{segments}", run("on", segments))
    add_row("paced GSO x10 (kernel patch)", run("paced", 10))

    print()
    print(
        render_table(
            ["configuration", "packets", "kernel crossings", "trains <= 5", "dropped", "goodput"],
            rows,
            title="GSO buffer size: batching vs burstiness (paper Section 4.3)",
        )
    )
    print(
        "\nBigger buffers cut kernel crossings roughly linearly but push more"
        "\npackets into long trains; the paced-GSO patch keeps the crossings"
        "\nof x10 batching with the wire behaviour of GSO off."
    )


if __name__ == "__main__":
    main()
