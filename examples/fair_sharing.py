#!/usr/bin/env python3
"""Competing flows: does pacing make QUIC a fair neighbor?

The paper leaves "competing connections" to future work (Section 3.4) while
motivating pacing with exactly this concern — bursty senders inflict loss on
everyone sharing a queue. This extension runs head-to-head contests over one
40 Mbit/s bottleneck and reports per-flow goodput, loss, and Jain fairness.

Contest 1: two identical quiche flows, paced (FQ) vs unpaced.
Contest 2: a QUIC flow against the TCP/TLS comparator.
Contest 3: a three-way mix (quiche+FQ, picoquic BBR, TCP).

Run:  python examples/fair_sharing.py
"""

from repro.framework.multiflow import FlowSpec, MultiFlowExperiment
from repro.metrics.report import render_table
from repro.units import fmt_time, mib

SIZE = mib(4)

CONTESTS = [
    (
        "two quiche flows, both kernel-paced (FQ)",
        [
            FlowSpec(stack="quiche", qdisc="fq", spurious_rollback=False, file_size=SIZE),
            FlowSpec(stack="quiche", qdisc="fq", spurious_rollback=False, file_size=SIZE),
        ],
    ),
    (
        "two quiche flows, neither paced",
        [
            FlowSpec(stack="quiche", qdisc="none", spurious_rollback=False, file_size=SIZE),
            FlowSpec(stack="quiche", qdisc="none", spurious_rollback=False, file_size=SIZE),
        ],
    ),
    (
        "quiche+FQ vs TCP/TLS",
        [
            FlowSpec(stack="quiche", qdisc="fq", spurious_rollback=False, file_size=SIZE),
            FlowSpec(stack="tcp", file_size=SIZE),
        ],
    ),
    (
        "quiche+FQ vs picoquic BBR vs TCP/TLS",
        [
            FlowSpec(stack="quiche", qdisc="fq", spurious_rollback=False, file_size=SIZE),
            FlowSpec(stack="picoquic", cca="bbr", file_size=SIZE),
            FlowSpec(stack="tcp", file_size=SIZE),
        ],
    ),
]


def main() -> None:
    for title, flows in CONTESTS:
        print(f"\n=== {title} ===")
        result = MultiFlowExperiment(flows, seed=2).run()
        rows = [
            [
                f"{i}: {f.spec.label}",
                fmt_time(f.duration_ns),
                f"{f.goodput_mbps:.2f}",
                str(f.dropped),
            ]
            for i, f in enumerate(result.flows)
        ]
        print(render_table(["flow", "duration", "goodput [Mbit/s]", "dropped"], rows))
        print(
            f"Jain fairness: {result.fairness:.3f}   "
            f"aggregate goodput: {result.aggregate_goodput_mbps:.2f} Mbit/s   "
            f"total drops: {result.total_dropped}"
        )


if __name__ == "__main__":
    main()
