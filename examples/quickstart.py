#!/usr/bin/env python3
"""Quickstart: run one paper-style measurement and inspect the wire.

Reproduces a single cell of the paper's evaluation: a quiche-profile server
transfers a file over the emulated 40 Mbit/s / 40 ms testbed while a passive
tap captures every packet before the bottleneck. We then compute the paper's
three headline metrics: goodput, inter-packet gaps, and packet trains.

Run:  python examples/quickstart.py [stack] [cca]
"""

import sys

from repro import (
    Experiment,
    ExperimentConfig,
    fraction_leq,
    fraction_of_packets_in_trains_leq,
    inter_packet_gaps,
    packets_by_train_length,
)
from repro.metrics.report import render_histogram
from repro.units import fmt_time, mib, us


def main() -> None:
    stack = sys.argv[1] if len(sys.argv) > 1 else "quiche"
    cca = sys.argv[2] if len(sys.argv) > 2 else "cubic"

    config = ExperimentConfig(stack=stack, cca=cca, file_size=mib(4), repetitions=1)
    print(f"Running {config.label}: 4 MiB download over 40 Mbit/s / 40 ms ...")
    result = Experiment(config, seed=1).run()

    print(f"\ncompleted:        {result.completed}")
    print(f"transfer time:    {fmt_time(result.duration_ns)}")
    print(f"goodput:          {result.goodput_mbps:.2f} Mbit/s")
    print(f"dropped packets:  {result.dropped} (at the bottleneck buffer)")
    print(f"packets captured: {result.packets_on_wire} (by the fiber-tap sniffer)")

    gaps = inter_packet_gaps(result.server_records)
    print(f"\nback-to-back share (gap <= 15 us): {fraction_leq(gaps, us(15)) * 100:.1f}%")
    print(
        "packets in trains of <= 5:         "
        f"{fraction_of_packets_in_trains_leq(result.server_records, 5) * 100:.1f}%"
    )

    print()
    print(render_histogram(packets_by_train_length(result.server_records),
                           title="packets by train length (0.1 ms threshold)"))


if __name__ == "__main__":
    main()
