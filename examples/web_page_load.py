#!/usr/bin/env python3
"""Web page load: pacing and multiplexed HTTP/3 streams.

The paper motivates pacing with web access among its application scenarios.
A page load is many objects multiplexed over one connection; what the user
feels is when objects finish. This example fetches a 12-object page (4 MiB
total) over each stack and reports first-object, median-object, and full
page-load time.

Run:  python examples/web_page_load.py
"""

from repro import Experiment, ExperimentConfig
from repro.metrics.report import render_table
from repro.units import fmt_time, mib

OBJECTS = 12
PAGE_BYTES = mib(4)

SCENARIOS = [
    ("quiche + FQ", dict(stack="quiche", qdisc="fq", spurious_rollback=False)),
    ("quiche, no qdisc", dict(stack="quiche", spurious_rollback=False)),
    ("picoquic / BBR", dict(stack="picoquic", cca="bbr")),
    ("picoquic / CUBIC", dict(stack="picoquic", cca="cubic")),
    ("ngtcp2", dict(stack="ngtcp2")),
]


def main() -> None:
    rows = []
    for label, kwargs in SCENARIOS:
        config = ExperimentConfig(
            objects=OBJECTS, file_size=PAGE_BYTES, repetitions=1, **kwargs
        )
        print(f"loading a {OBJECTS}-object page via {label} ...")
        result = Experiment(config, seed=8).run()
        times = sorted(result.object_completion_ns.values())
        rows.append(
            [
                label,
                fmt_time(times[0]),
                fmt_time(times[len(times) // 2]),
                fmt_time(result.duration_ns),
                str(result.dropped),
            ]
        )

    print()
    print(
        render_table(
            ["stack", "first object", "median object", "page load", "lost packets"],
            rows,
            title=f"{OBJECTS}-object page load ({PAGE_BYTES // (1024 * 1024)} MiB total, 40 Mbit/s / 40 ms)",
        )
    )
    print(
        "\nStreams share the connection round-robin, so objects finish in a"
        "\nwave near the end; differences across stacks come from goodput"
        "\n(ngtcp2's flow-control cap) and loss-recovery stalls, with pacing"
        "\nkeeping the loss column small."
    )


if __name__ == "__main__":
    main()
