#!/usr/bin/env python3
"""Video streaming: why pacing matters for segment delivery.

The paper motivates pacing with applications like video streaming: a DASH
player fetches a segment every few seconds, and what it cares about is
*segment delivery time* and the queueing delay its own traffic creates (which
inflates interaction latency for everything sharing the bottleneck).

This example models one HD video segment (6 MiB) fetched by:

* picoquic with BBR  — the paper's best user-space pacer,
* picoquic with CUBIC — leaky-bucket bursts (16-17 packets),
* quiche + FQ        — kernel-assisted pacing,
* quiche, no qdisc   — timestamps ignored, bursts on the wire,

and reports delivery time, bottleneck loss, and the bottleneck queue's mean
and peak occupancy (converted to ms of queueing delay at 40 Mbit/s).

Run:  python examples/video_streaming.py
"""

from repro import Experiment, ExperimentConfig
from repro.metrics.report import render_table
from repro.units import SEC, fmt_time, mib

SEGMENT_BYTES = 6 * 1024 * 1024  # a ~6 s segment of 8 Mbit/s (HD) video

SCENARIOS = [
    ("picoquic / BBR", dict(stack="picoquic", cca="bbr")),
    ("picoquic / CUBIC", dict(stack="picoquic", cca="cubic")),
    ("quiche + FQ", dict(stack="quiche", qdisc="fq", spurious_rollback=False)),
    ("quiche, no qdisc", dict(stack="quiche", qdisc="none", spurious_rollback=False)),
]


def queue_delay_stats(result):
    """Mean/peak bottleneck queue, expressed as added delay at 40 Mbit/s."""
    trace = result.queue_trace
    if len(trace) < 2:
        return 0.0, 0.0
    # Time-weighted mean of the sampled queue depth.
    total_area = 0
    peak = 0
    for (t0, q0), (t1, _q1) in zip(trace, trace[1:]):
        total_area += q0 * (t1 - t0)
        peak = max(peak, q0)
    duration = trace[-1][0] - trace[0][0] or 1
    mean_bytes = total_area / duration
    to_ms = lambda b: b * 8 / 40_000_000 * 1000  # bytes -> ms at 40 Mbit/s
    return to_ms(mean_bytes), to_ms(peak)


def main() -> None:
    rows = []
    for label, kwargs in SCENARIOS:
        config = ExperimentConfig(
            file_size=SEGMENT_BYTES, repetitions=1, trace_queue=True, **kwargs
        )
        print(f"fetching one video segment via {label} ...")
        result = Experiment(config, seed=9).run()
        mean_ms, peak_ms = queue_delay_stats(result)
        rows.append(
            [
                label,
                fmt_time(result.duration_ns),
                str(result.dropped),
                f"{mean_ms:.1f} ms",
                f"{peak_ms:.1f} ms",
            ]
        )

    print()
    print(
        render_table(
            ["sender", "segment delivery", "lost packets", "mean queue", "peak queue"],
            rows,
            title=f"Delivery of one {SEGMENT_BYTES // 1024} KiB video segment (40 Mbit/s, 40 ms RTT)",
        )
    )
    print(
        "\nAll senders deliver the segment in about the same time, but the"
        "\nrate-based, precisely paced sender (picoquic BBR) does it with a"
        "\nfraction of the queueing delay and zero loss, while loss-based"
        "\nsenders fill the bottleneck buffer; among those, bursty pacing"
        "\n(picoquic CUBIC's 16-packet trains) additionally multiplies loss."
    )


if __name__ == "__main__":
    main()
