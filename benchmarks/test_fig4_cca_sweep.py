"""Figure 4: per-library comparison of CUBIC / NewReno / BBR.

Paper observations:
* picoquic: loss-based CCAs burst (16-17-packet trains); BBR is close to
  perfectly spaced;
* quiche / ngtcp2: smaller bursts with loss-based CCAs; their BBRs do not
  reach picoquic's pacing quality (ngtcp2's BBR raises loss by an order of
  magnitude).
"""

from benchmarks.conftest import publish, scaled
from repro.metrics.gaps import cdf, inter_packet_gaps
from repro.metrics.report import render_cdf, render_table
from repro.metrics.trains import packets_by_train_length

STACKS = ("picoquic", "quiche", "ngtcp2")
CCAS = ("cubic", "newreno", "bbr")


def _steady_state(records):
    """Keep the last quarter of the transfer (Fig. 4 characterizes sustained
    behaviour; at reduced scale BBR's startup occupies much of the run)."""
    if not records:
        return records
    cutoff = records[0].time_ns + 3 * (records[-1].time_ns - records[0].time_ns) // 4
    return [r for r in records if r.time_ns >= cutoff]


def _collect(runs):
    out = {}
    for stack in STACKS:
        for cca in CCAS:
            summary = runs.get(scaled(stack=stack, cca=cca))
            gaps, dist = [], {}
            for records in summary.pooled_records:
                tail = _steady_state(records)
                gaps.extend(inter_packet_gaps(tail))
                for k, v in packets_by_train_length(tail).items():
                    dist[k] = dist.get(k, 0) + v
            out[(stack, cca)] = (gaps, dist, summary)
    return out


def frac_leq(dist, n):
    total = sum(dist.values())
    return sum(v for k, v in dist.items() if k <= n) / total if total else 0.0


def test_fig4_cca_comparison(runs, benchmark):
    data = benchmark.pedantic(_collect, args=(runs,), rounds=1, iterations=1)

    blocks = []
    for stack in STACKS:
        series = {cca: cdf(data[(stack, cca)][0]) for cca in CCAS}
        blocks.append(
            render_cdf(series, title=f"[{stack}] inter-packet gap CDF by CCA")
        )
        rows = [
            [
                cca,
                f"{frac_leq(data[(stack, cca)][1], 5) * 100:.1f}%",
                str(data[(stack, cca)][2].dropped),
            ]
            for cca in CCAS
        ]
        blocks.append(
            render_table(["CCA", "packets in trains <= 5", "dropped"], rows,
                         title=f"[{stack}] train lengths / drops")
        )
    publish("fig4_cca_sweep", "\n\n".join(blocks))

    # picoquic: BBR paces nearly perfectly; loss-based CCAs burst.
    pico_bbr = frac_leq(data[("picoquic", "bbr")][1], 5)
    pico_cubic = frac_leq(data[("picoquic", "cubic")][1], 5)
    pico_reno = frac_leq(data[("picoquic", "newreno")][1], 5)
    assert pico_bbr > 0.95
    assert pico_cubic < 0.90 and pico_reno < 0.90

    # picoquic BBR avoids loss entirely (model-based control).
    assert data[("picoquic", "bbr")][2].dropped.mean <= data[("picoquic", "cubic")][2].dropped.mean

    # quiche/ngtcp2 BBR do not match picoquic's pacing advantage: their
    # loss-based configurations are already comparably (or better) paced.
    for stack in ("quiche", "ngtcp2"):
        bbr = frac_leq(data[(stack, "bbr")][1], 5)
        cubic = frac_leq(data[(stack, "cubic")][1], 5)
        assert bbr <= cubic + 0.05, stack

    # ngtcp2's BBR: loss up by an order of magnitude vs its baseline.
    ngtcp2_bbr_drops = data[("ngtcp2", "bbr")][2].dropped.mean
    ngtcp2_cubic_drops = data[("ngtcp2", "cubic")][2].dropped.mean
    assert ngtcp2_bbr_drops > max(10 * ngtcp2_cubic_drops, 30)
