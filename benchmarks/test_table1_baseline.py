"""Table 1: goodput and dropped packets for the baseline measurements.

Paper values (100 MiB, 20 reps, 40 Mbit/s bottleneck):

    quiche     687.15 ± 338.12 dropped   34.67 ± 0.64 Mbit/s
    picoquic   861.45 ±  99.53 dropped   37.09 ± 0.03 Mbit/s
    ngtcp2     503.45 ±   7.39 dropped   15.93 ± 0.00 Mbit/s
    TCP/TLS     16.50 ±   0.67 dropped   37.37 ± 0.02 Mbit/s

Shape assertions: TCP/TLS reaches the highest goodput with by far the fewest
drops; quiche and picoquic get close to the bottleneck rate with hundreds of
drops; ngtcp2 sits around 16 Mbit/s. (Known deviation: our ngtcp2 model is
flow-control-limited and drops ~0 packets instead of ~500; see
EXPERIMENTS.md.)
"""

from benchmarks.conftest import publish, scaled
from repro.metrics.report import render_table

STACK_LABELS = {"quiche": "quiche", "picoquic": "picoquic", "ngtcp2": "ngtcp2", "tcp": "TCP/TLS"}


def _collect(runs):
    return {stack: runs.get(scaled(stack=stack)) for stack in STACK_LABELS}


def test_table1_baseline(runs, benchmark):
    summaries = benchmark.pedantic(_collect, args=(runs,), rounds=1, iterations=1)

    rows = []
    for stack, label in STACK_LABELS.items():
        s = summaries[stack]
        rows.append([label, str(s.dropped), str(s.goodput)])
    publish(
        "table1_baseline",
        render_table(
            ["Implementation", "Dropped packets", "Goodput [Mbit/s]"],
            rows,
            title="Table 1: baseline goodput and drops (all CUBIC)",
        ),
    )

    for s in summaries.values():
        assert s.all_completed

    tcp = summaries["tcp"]
    quiche = summaries["quiche"]
    picoquic = summaries["picoquic"]
    ngtcp2 = summaries["ngtcp2"]

    # TCP/TLS: best goodput, fewest drops.
    assert tcp.goodput.mean >= max(quiche.goodput.mean, picoquic.goodput.mean) - 1.0
    assert tcp.dropped.mean <= min(quiche.dropped.mean, picoquic.dropped.mean)
    # quiche/picoquic close to the bottleneck rate.
    assert quiche.goodput.mean > 28
    assert picoquic.goodput.mean > 28
    # ngtcp2 far below everyone (paper: 15.93).
    assert ngtcp2.goodput.mean < 20
    assert ngtcp2.goodput.mean < quiche.goodput.mean - 8
    # QUIC loss-based stacks lose hundreds of packets at full scale; at
    # reduced scale they still lose far more than TCP.
    assert quiche.dropped.mean > 10 * max(tcp.dropped.mean, 1)
    assert picoquic.dropped.mean > 10 * max(tcp.dropped.mean, 1)
