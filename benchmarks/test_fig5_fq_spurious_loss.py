"""Figure 5 + Section 4.2: the FQ qdisc and quiche's spurious-loss rollback.

Paper observations (quiche, CUBIC):
* with FQ and stock quiche, goodput drops (34.67 -> 33.64 Mbit/s) and losses
  rise (687 -> 1022) because small per-cycle losses keep passing the
  spurious-loss check, causing perpetual congestion-window rollbacks;
* with the "SF" patch (rollback disabled) and FQ, packet trains longer than
  five packets become rare (baseline: >10 % of packets).
"""

from benchmarks.conftest import REPS, SCALE_MIB, SEED, publish, scaled
from repro.metrics.report import render_table
from repro.metrics.trains import packets_by_train_length
from repro.units import mib

#: The rollback oscillation lives in congestion avoidance, which needs a
#: longer transfer than the other benchmarks to be exercised repeatedly.
FILE_SIZE = mib(max(SCALE_MIB * 4, 16))


def _configs():
    return {
        "baseline (no qdisc, stock)": scaled(
            stack="quiche", spurious_rollback=True, file_size=FILE_SIZE
        ),
        "FQ, stock (rollback on)": scaled(
            stack="quiche", qdisc="fq", spurious_rollback=True, file_size=FILE_SIZE
        ),
        "FQ + SF patch": scaled(
            stack="quiche", qdisc="fq", spurious_rollback=False, file_size=FILE_SIZE
        ),
    }


def _collect(runs):
    return {name: runs.get(cfg) for name, cfg in _configs().items()}


def frac_gt5(summary):
    total = 0
    above = 0
    for records in summary.pooled_records:
        for k, v in packets_by_train_length(records).items():
            total += v
            if k > 5:
                above += v
    return above / total if total else 0.0


def test_fig5_fq_and_spurious_loss(runs, benchmark):
    summaries = benchmark.pedantic(_collect, args=(runs,), rounds=1, iterations=1)

    rows = []
    for name, s in summaries.items():
        rollbacks = sum(r.server_stats.get("rollbacks", 0) for r in s.results)
        rows.append(
            [name, str(s.goodput), str(s.dropped), f"{frac_gt5(s) * 100:.1f}%", str(rollbacks)]
        )
    publish(
        "fig5_fq_spurious_loss",
        render_table(
            ["configuration", "goodput [Mbit/s]", "dropped", "packets in trains >5", "rollbacks"],
            rows,
            title="Figure 5 / Section 4.2: FQ and quiche's spurious-loss rollback",
        ),
    )

    stock_fq = summaries["FQ, stock (rollback on)"]
    patched_fq = summaries["FQ + SF patch"]
    baseline = summaries["baseline (no qdisc, stock)"]

    # Rollbacks actually happen with stock quiche, and never with the patch.
    assert sum(r.server_stats["rollbacks"] for r in stock_fq.results) > 0
    assert sum(r.server_stats["rollbacks"] for r in patched_fq.results) == 0

    # Rollback oscillation costs packets (paper: 1022 vs ~687 baseline).
    assert stock_fq.dropped.mean > 1.5 * patched_fq.dropped.mean

    # With FQ + SF, trains >5 are rare; the no-qdisc baseline has plenty.
    assert frac_gt5(patched_fq) < 0.05
    assert frac_gt5(baseline) > frac_gt5(patched_fq)
