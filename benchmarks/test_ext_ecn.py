"""Extension: ECN — congestion signals without packet loss.

Not part of the paper's evaluation, but a natural next step for its
pacing-vs-loss story: with CE marking at the bottleneck (threshold at a
quarter of the buffer) and ACK_ECN echoes, a paced CUBIC sender backs off
*before* the tail-drop point, eliminating bottleneck loss while holding
goodput. Drops in Tables 1/2 are retransmission and recovery overhead; ECN
shows how much of that is avoidable with one bit of cooperation.
"""

from benchmarks.conftest import publish, scaled
from repro.framework.experiment import Experiment
from repro.metrics.report import render_table


def _run(ecn: bool, stack="quiche"):
    cfg = scaled(
        stack=stack, qdisc="fq", spurious_rollback=False, ecn=ecn, repetitions=1
    )
    return Experiment(cfg, seed=cfg.seed)


def _collect():
    out = {}
    for ecn in (False, True):
        e = _run(ecn)
        out[ecn] = (e.run(), e.bottleneck)
    return out


def test_ext_ecn(benchmark):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    for ecn, (r, bneck) in results.items():
        rows.append(
            [
                "ECN" if ecn else "no ECN",
                f"{r.goodput_mbps:.2f}",
                str(r.dropped),
                str(getattr(bneck, "ce_marked", 0)),
                str(r.server_stats["stream_bytes_retx"]),
            ]
        )
    publish(
        "ext_ecn",
        render_table(
            ["configuration", "goodput [Mbit/s]", "dropped", "CE marked", "retx bytes"],
            rows,
            title="Extension: ECN vs tail drop (quiche + FQ + SF)",
        ),
    )

    plain, _ = results[False]
    ecn, ecn_bneck = results[True]
    assert plain.completed and ecn.completed
    # CE marking replaces drops almost entirely...
    assert ecn_bneck.ce_marked > 0
    assert ecn.dropped < plain.dropped * 0.25
    # ...without sacrificing goodput or adding retransmission overhead.
    assert ecn.goodput_mbps > 0.9 * plain.goodput_mbps
    assert ecn.server_stats["stream_bytes_retx"] <= plain.server_stats["stream_bytes_retx"]
