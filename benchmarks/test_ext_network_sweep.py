"""Extension: pacing across network conditions (Section 3.4 future work).

"The exact findings are specific to these fixed parameters... We leave the
evaluation of pacing in further network scenarios to future work." This
sweep re-runs the quiche FQ-vs-none comparison over a grid of bottleneck
rates and RTTs and checks that the pacing benefit (short trains) is not an
artifact of the 40 Mbit/s / 40 ms point.
"""

import dataclasses

from benchmarks.conftest import publish, scaled
from repro.framework.config import NetworkConfig
from repro.framework.experiment import Experiment
from repro.metrics.report import render_table
from repro.metrics.trains import fraction_of_packets_in_trains_leq
from repro.units import SEC, mbit, ms

GRID = [
    (mbit(10), ms(10)),
    (mbit(10), ms(80)),
    (mbit(40), ms(40)),  # the paper's point
    (mbit(100), ms(20)),
]


def train_threshold_ns(rate_bps: int) -> int:
    """The paper's 0.1 ms threshold is calibrated to 40 Mbit/s (2/5 of the
    ~0.25 ms pacing interval); scale it with the bottleneck rate so "train"
    keeps meaning "closer than pacing would ever place packets"."""
    packet_interval = 1252 * 8 * SEC // rate_bps
    return max(packet_interval * 2 // 5, 20_000)


def _run(rate_bps: int, owd_ns: int, qdisc: str):
    net = NetworkConfig(bottleneck_rate_bps=rate_bps, one_way_delay_ns=owd_ns // 2)
    cfg = scaled(
        stack="quiche",
        qdisc=qdisc,
        spurious_rollback=False,
        network=net,
        repetitions=1,
    )
    return Experiment(cfg, seed=cfg.seed).run()


def _collect():
    return {
        (rate, rtt, qdisc): _run(rate, rtt, qdisc)
        for rate, rtt in GRID
        for qdisc in ("none", "fq")
    }


def test_ext_network_condition_sweep(benchmark):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    for rate, rtt in GRID:
        none_r = results[(rate, rtt, "none")]
        fq_r = results[(rate, rtt, "fq")]
        thr = train_threshold_ns(rate)
        s_none = fraction_of_packets_in_trains_leq(none_r.server_records, 5, thr)
        s_fq = fraction_of_packets_in_trains_leq(fq_r.server_records, 5, thr)
        rows.append(
            [
                f"{rate // 1_000_000} Mbit/s, {rtt // 1_000_000} ms",
                f"{s_none * 100:.1f}%",
                f"{s_fq * 100:.1f}%",
                f"{none_r.goodput_mbps:.1f} / {fq_r.goodput_mbps:.1f}",
            ]
        )
    publish(
        "ext_network_sweep",
        render_table(
            ["network", "trains <= 5 (none)", "trains <= 5 (FQ)", "goodput none/fq"],
            rows,
            title="Extension: FQ pacing across network conditions",
        ),
    )

    for rate, rtt in GRID:
        none_r = results[(rate, rtt, "none")]
        fq_r = results[(rate, rtt, "fq")]
        assert none_r.completed and fq_r.completed, (rate, rtt)
        thr = train_threshold_ns(rate)
        s_none = fraction_of_packets_in_trains_leq(none_r.server_records, 5, thr)
        s_fq = fraction_of_packets_in_trains_leq(fq_r.server_records, 5, thr)
        # FQ keeps trains short everywhere (at high rates slow start's
        # 2.5x-rate stamping approaches the threshold, hence the margin) and
        # never does worse than no qdisc.
        assert s_fq > 0.75, (rate, rtt)
        assert s_fq >= s_none - 0.03, (rate, rtt)
        # Goodput is comparable (pacing is not a throughput tax).
        assert fq_r.goodput_mbps > 0.6 * none_r.goodput_mbps, (rate, rtt)
