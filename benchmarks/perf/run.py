"""Run the full perf suite and record a ``BENCH_<n>.json``.

Usage::

    python -m benchmarks.perf.run [--out BENCH_7.json] [--repeats 3] [--runs 5]

The output JSON holds the microbenchmark ops/sec, the end-to-end wall-clock
and events/sec at the current ``REPRO_SCALE_MIB``, the many-flow population
wall-clock at the current ``REPRO_FLOWS``, the execution-backend overhead
comparison (forkserver vs spawn per-repetition cost), and — when the
committed baseline records a pre-overhaul time for that scale — the speedup
over the pre-PR engine.

The timed repetitions are real, deterministic experiment results, so they
are also streamed into a :class:`~repro.framework.store.ResultStore`
(``--store``, on by default) and can be inspected afterwards with
``repro query`` / ``repro report`` like any campaign's rows.
"""

from __future__ import annotations

import argparse
import json
import platform
from pathlib import Path

from benchmarks.perf.backend import bench_backends
from benchmarks.perf.e2e import bench_e2e, scale_mib
from benchmarks.perf.manyflow import bench_manyflow, flow_count
from benchmarks.perf.microbench import run_all
from repro.framework.store import ResultStore

BASELINE_PATH = Path(__file__).parent / "baseline.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_7.json", help="output JSON path")
    parser.add_argument(
        "--repeats", type=int, default=3, help="repetitions per microbenchmark"
    )
    parser.add_argument(
        "--runs", type=int, default=5, help="repetitions of the e2e transfer"
    )
    parser.add_argument(
        "--flow-runs", type=int, default=3,
        help="repetitions of the many-flow population run",
    )
    parser.add_argument(
        "--backend-runs", type=int, default=3,
        help="repetitions of the backend-overhead sweep (0 skips the section)",
    )
    parser.add_argument(
        "--store", default="perf-session.sqlite",
        help="stream the benchmark repetitions into this SQLite result store, "
        "queryable with `repro query`/`repro report` ('' disables)",
    )
    args = parser.parse_args(argv)
    store = ResultStore(args.store) if args.store else None

    print(f"perf: microbenchmarks (best of {args.repeats}) ...")
    micro = run_all(repeats=args.repeats)
    for name, rec in micro.items():
        print(f"  {name:24s} {rec['ops_per_sec']:>14,.0f} ops/s")

    scale = scale_mib()
    print(f"perf: end-to-end transfer at {scale:g} MiB (best of {args.runs}) ...")
    e2e = bench_e2e(runs=args.runs, store=store)
    print(
        f"  wall {e2e['wall_s']:.3f}s  "
        f"{e2e['events_per_sec']:,.0f} events/s  "
        f"{e2e['packets_on_wire']} packets"
    )

    flows = flow_count()
    print(f"perf: many-flow population at {flows} flows (best of {args.flow_runs}) ...")
    manyflow = bench_manyflow(runs=args.flow_runs, store=store)
    print(
        f"  wall {manyflow['wall_s']:.3f}s  "
        f"{manyflow['events_per_sec']:,.0f} events/s  "
        f"{manyflow['completed_flows']}/{flows} flows completed"
    )

    payload = {
        "schema": 1,
        "python": platform.python_version(),
        "micro": micro,
        "e2e": e2e,
        "manyflow": manyflow,
    }

    if store is not None:
        payload["store"] = {
            "path": args.store,
            "reps": store.rep_count(),
            "fingerprint": store.content_fingerprint(),
        }
        print(f"perf: recorded {store.rep_count()} rep(s) into {args.store}")
        store.close()

    if args.backend_runs > 0:
        print(f"perf: backend overhead sweep (best of {args.backend_runs}) ...")
        backend = bench_backends(runs=args.backend_runs)
        for name, rec in backend["backends"].items():
            print(
                f"  {name:12s} wall {rec['wall_s']:.3f}s  "
                f"per-rep overhead {rec['per_rep_overhead_ms']:+.2f} ms"
            )
        print(
            f"  forkserver vs spawn: "
            f"{backend['forkserver_vs_spawn']['overhead_reduction_ms_per_rep']:+.2f} "
            f"ms/rep saved ({backend['forkserver_vs_spawn']['speedup']:.2f}x)"
        )
        payload["backend"] = backend

    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        pre = baseline.get("pre_pr", {})
        if pre.get("scale_mib") == e2e["scale_mib"]:
            speedup = pre["wall_s"] / e2e["wall_s"]
            payload["e2e"]["pre_pr_wall_s"] = pre["wall_s"]
            payload["e2e"]["speedup_vs_pre_pr"] = round(speedup, 2)
            print(
                f"  speedup vs pre-PR engine ({pre['wall_s']:.3f}s): "
                f"{speedup:.2f}x"
            )

    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"perf: wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
