"""Run the full perf suite and record a ``BENCH_<n>.json``.

Usage::

    python -m benchmarks.perf.run [--out BENCH_9.json] [--repeats 3] [--runs 5]

The output JSON holds the microbenchmark ops/sec, the end-to-end wall-clock
and events/sec at the current ``REPRO_SCALE_MIB``, the many-flow population
wall-clock at the current ``REPRO_FLOWS``, the execution-backend overhead
comparison (forkserver vs spawn per-repetition cost), the result-transport
comparison (shared memory vs queue), and — when the committed baseline
records a pre-overhaul time for that scale — the speedup over the pre-PR
engine.

Every record carries a ``build_mode`` column (``compiled`` or ``pure``, from
``repro.build_info()``). When this process runs the compiled build, the
suite re-times the event-engine microbenchmark and the e2e transfer in a
``REPRO_PURE_PYTHON=1`` subprocess and records the cross-build speedups
under ``pure_comparison`` (``--no-compare-pure`` skips it).

The timed repetitions are real, deterministic experiment results, so they
are also streamed into a :class:`~repro.framework.store.ResultStore`
(``--store``, on by default) and can be inspected afterwards with
``repro query`` / ``repro report`` like any campaign's rows.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
from pathlib import Path

from benchmarks.perf.backend import bench_backends, bench_transport
from benchmarks.perf.e2e import bench_e2e, scale_mib
from benchmarks.perf.manyflow import bench_manyflow, census_totals, flow_count
from benchmarks.perf.microbench import run_all
from repro import build_info
from repro.framework.store import ResultStore

BASELINE_PATH = Path(__file__).parent / "baseline.json"

#: Re-timed in the pure-build subprocess for the cross-build comparison.
_PURE_PROBE = """\
import json
from benchmarks.perf.e2e import bench_e2e
from benchmarks.perf.microbench import bench_event_throughput
from repro import build_info

assert build_info()["mode"] == "pure", build_info()
print(json.dumps({
    "event_throughput": bench_event_throughput(repeats=%d),
    "e2e": bench_e2e(runs=%d),
}))
"""


def _pure_comparison(repeats: int, runs: int) -> dict | None:
    """Time the hot path under REPRO_PURE_PYTHON=1 in a subprocess."""
    env = dict(os.environ)
    env["REPRO_PURE_PYTHON"] = "1"
    proc = subprocess.run(
        [sys.executable, "-c", _PURE_PROBE % (repeats, runs)],
        capture_output=True, text=True, env=env,
    )
    if proc.returncode != 0:
        print(f"perf: pure-build probe failed:\n{proc.stderr}", file=sys.stderr)
        return None
    return json.loads(proc.stdout.splitlines()[-1])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_10.json", help="output JSON path")
    parser.add_argument(
        "--force", action="store_true",
        help="overwrite an existing --out recorded under a different "
        "schema/python/build",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="repetitions per microbenchmark"
    )
    parser.add_argument(
        "--runs", type=int, default=5, help="repetitions of the e2e transfer"
    )
    parser.add_argument(
        "--flow-runs", type=int, default=3,
        help="repetitions of the many-flow population run",
    )
    parser.add_argument(
        "--census-flows", type=int, default=200,
        help="flows for the (untimed) event-census run (0 skips the section)",
    )
    parser.add_argument(
        "--backend-runs", type=int, default=3,
        help="repetitions of the backend-overhead sweep (0 skips the section)",
    )
    parser.add_argument(
        "--transport-runs", type=int, default=3,
        help="repetitions of the result-transport sweep (0 skips the section)",
    )
    parser.add_argument(
        "--no-compare-pure", action="store_true",
        help="skip the REPRO_PURE_PYTHON=1 cross-build comparison",
    )
    parser.add_argument(
        "--store", default="perf-session.sqlite",
        help="stream the benchmark repetitions into this SQLite result store, "
        "queryable with `repro query`/`repro report` ('' disables)",
    )
    args = parser.parse_args(argv)

    build_mode = build_info()["mode"]
    out = Path(args.out)
    if out.exists() and not args.force:
        # A BENCH record is a measurement artifact: silently replacing one
        # taken under a different schema, interpreter, or build makes the
        # committed history lie. Same-environment re-runs stay cheap.
        try:
            prior = json.loads(out.read_text())
        except (OSError, ValueError):
            prior = None
        if isinstance(prior, dict):
            mismatches = [
                f"{key}: {prior.get(key)!r} -> {new!r}"
                for key, new in (
                    ("schema", 1),
                    ("python", platform.python_version()),
                    ("build_mode", build_mode),
                )
                if prior.get(key) != new
            ]
            if mismatches:
                print(
                    f"perf: refusing to overwrite {out} recorded under a "
                    "different environment (" + "; ".join(mismatches) + "); "
                    "pass --force to replace it",
                    file=sys.stderr,
                )
                return 1
    store = ResultStore(args.store) if args.store else None
    print(f"perf: build mode {build_mode}")

    print(f"perf: microbenchmarks (best of {args.repeats}) ...")
    micro = run_all(repeats=args.repeats)
    for name, rec in micro.items():
        print(f"  {name:24s} {rec['ops_per_sec']:>14,.0f} ops/s")
    rearm = micro.get("timer_rearm")
    if rearm:
        print(
            f"  timer wheel vs lazy-cancel heap: "
            f"{rearm['wheel_speedup']:.2f}x "
            f"({rearm['heap_ops_per_sec']:,.0f} ops/s with "
            "REPRO_TIMER_WHEEL=0)"
        )

    scale = scale_mib()
    print(f"perf: end-to-end transfer at {scale:g} MiB (best of {args.runs}) ...")
    e2e = bench_e2e(runs=args.runs, store=store)
    print(
        f"  wall {e2e['wall_s']:.3f}s  "
        f"{e2e['events_per_sec']:,.0f} events/s  "
        f"{e2e['packets_on_wire']} packets"
    )

    flows = flow_count()
    print(f"perf: many-flow population at {flows} flows (best of {args.flow_runs}) ...")
    manyflow = bench_manyflow(runs=args.flow_runs, store=store)
    print(
        f"  wall {manyflow['wall_s']:.3f}s  "
        f"{manyflow['events_per_sec']:,.0f} events/s  "
        f"{manyflow['completed_flows']}/{flows} flows completed"
    )

    print(f"perf: many-flow churn variant at {flows} flows (best of {args.flow_runs}) ...")
    manyflow_churn = bench_manyflow(
        runs=args.flow_runs, store=store, name="bench/manyflow-churn", churn=True
    )
    print(
        f"  wall {manyflow_churn['wall_s']:.3f}s  "
        f"{manyflow_churn['events_per_sec']:,.0f} events/s  "
        f"{manyflow_churn['drained']} drained stragglers"
    )

    if args.census_flows > 0:
        print(f"perf: event census at {args.census_flows} flows (pure engine) ...")
        census = census_totals(args.census_flows, churn=True)
        print(
            f"  {census['scheduled']} scheduled, {census['fired']} fired, "
            f"{census['stale']} stale, {census['post_departure']} post-departure"
        )

    payload = {
        "schema": 1,
        "python": platform.python_version(),
        "build_mode": build_mode,
        "micro": micro,
        "e2e": e2e,
        "manyflow": manyflow,
        "manyflow_churn": manyflow_churn,
    }
    if args.census_flows > 0:
        payload["census"] = {"flows": args.census_flows, "churn": True, **census}

    if store is not None:
        payload["store"] = {
            "path": args.store,
            "reps": store.rep_count(),
            "fingerprint": store.content_fingerprint(),
        }
        print(f"perf: recorded {store.rep_count()} rep(s) into {args.store}")
        store.close()

    if args.backend_runs > 0:
        print(f"perf: backend overhead sweep (best of {args.backend_runs}) ...")
        backend = bench_backends(runs=args.backend_runs)
        for name, rec in backend["backends"].items():
            print(
                f"  {name:12s} wall {rec['wall_s']:.3f}s  "
                f"per-rep overhead {rec['per_rep_overhead_ms']:+.2f} ms"
            )
        print(
            f"  forkserver vs spawn: "
            f"{backend['forkserver_vs_spawn']['overhead_reduction_ms_per_rep']:+.2f} "
            f"ms/rep saved ({backend['forkserver_vs_spawn']['speedup']:.2f}x)"
        )
        payload["backend"] = backend

    if args.transport_runs > 0:
        print(f"perf: result-transport sweep (best of {args.transport_runs}) ...")
        transport = bench_transport(runs=args.transport_runs)
        for name, rec in transport["transports"].items():
            print(f"  {name:12s} wall {rec['wall_s']:.3f}s  {rec['per_rep_ms']:.2f} ms/rep")
        print(
            f"  shm vs queue at {transport['payload_mib']} MiB payloads: "
            f"{transport['shm_vs_queue']['saved_ms_per_rep']:+.2f} ms/rep saved "
            f"({transport['shm_vs_queue']['speedup']:.2f}x)"
        )
        payload["transport"] = transport

    if build_mode == "compiled" and not args.no_compare_pure:
        print("perf: re-timing hot path under REPRO_PURE_PYTHON=1 ...")
        pure = _pure_comparison(repeats=args.repeats, runs=min(args.runs, 3))
        if pure is not None:
            micro_ratio = (
                micro["event_throughput"]["ops_per_sec"]
                / pure["event_throughput"]["ops_per_sec"]
            )
            e2e_ratio = pure["e2e"]["wall_s"] / e2e["wall_s"]
            payload["pure_comparison"] = {
                "event_throughput_ops_per_sec": pure["event_throughput"]["ops_per_sec"],
                "e2e_wall_s": pure["e2e"]["wall_s"],
                "event_throughput_speedup": round(micro_ratio, 2),
                "e2e_speedup": round(e2e_ratio, 2),
            }
            print(
                f"  event_throughput: {micro_ratio:.2f}x over pure; "
                f"e2e@{e2e['scale_mib']:g}MiB: {e2e_ratio:.2f}x"
            )

    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        pre = baseline.get("pre_pr", {})
        if pre.get("scale_mib") == e2e["scale_mib"]:
            speedup = pre["wall_s"] / e2e["wall_s"]
            payload["e2e"]["pre_pr_wall_s"] = pre["wall_s"]
            payload["e2e"]["speedup_vs_pre_pr"] = round(speedup, 2)
            print(
                f"  speedup vs pre-PR engine ({pre['wall_s']:.3f}s): "
                f"{speedup:.2f}x"
            )
        pre_many = baseline.get("pre_pr_manyflow", {}).get(str(flows))
        if pre_many:
            speedup = pre_many["wall_s"] / manyflow["wall_s"]
            payload["manyflow"]["pre_pr_wall_s"] = pre_many["wall_s"]
            payload["manyflow"]["speedup_vs_pre_pr"] = round(speedup, 2)
            print(
                f"  manyflow@{flows} speedup vs pre-PR engine "
                f"({pre_many['wall_s']:.3f}s): {speedup:.2f}x"
            )
        pre_rearm = baseline.get("pre_pr_timer_rearm", {}).get(build_mode)
        if pre_rearm and rearm:
            speedup = rearm["ops_per_sec"] / pre_rearm["ops_per_sec"]
            payload["micro"]["timer_rearm"]["pre_pr_ops_per_sec"] = (
                pre_rearm["ops_per_sec"]
            )
            payload["micro"]["timer_rearm"]["speedup_vs_pre_pr"] = round(
                speedup, 2
            )
            print(
                f"  timer_rearm speedup vs pre-PR cancel+reschedule "
                f"({pre_rearm['ops_per_sec']:,.0f} ops/s, {build_mode}): "
                f"{speedup:.2f}x"
            )

    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"perf: wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
