"""Execution-backend overhead: forkserver vs spawn per-repetition cost.

A campaign of short repetitions pays the worker start-up cost over and over:
every ``spawn`` worker boots a fresh interpreter and re-imports the whole
simulator (numpy included) before it can run its first repetition, and the
supervision layer re-pays that price on every pool restart. The
``forkserver`` backend amortizes it: workers fork from a server process that
pre-imported the simulator once.

Method. One tiny grid (``reps`` repetitions of a 64 KiB transfer) is swept
under three backends at the same worker count, best wall-clock of ``runs``:

* ``pool`` — the fork-based default, whose worker start-up is a bare
  ``fork()`` of the already-warm parent: the floor any pooled backend can
  reach on this host;
* ``spawn`` — the cold-start ceiling (fresh interpreter + full re-import
  per worker);
* ``forkserver`` — the backend under test.

Per-repetition overhead is ``(wall(backend) - wall(pool)) / reps``: what
each repetition pays for its backend's start-up model over the fork floor.
The acceptance claim (gated by ``check.py`` whenever this section is
present in a BENCH record) is ``wall(forkserver) < wall(spawn)``.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.framework.config import ExperimentConfig
from repro.framework.sweep import SweepRunner
from repro.units import kib


def bench_backends(
    reps: int = 8, workers: int = 4, runs: int = 3, size_kib: int = 64
) -> Dict:
    grid = {
        "bench": ExperimentConfig(
            stack="quiche", file_size=kib(size_kib), repetitions=reps
        )
    }

    def best_wall(backend: str, pool_workers: int) -> float:
        times = []
        for _ in range(runs):
            t0 = time.perf_counter()
            summaries = SweepRunner(workers=pool_workers, backend=backend).run(grid)
            times.append(time.perf_counter() - t0)
            assert summaries["bench"].all_completed
        return min(times)

    walls = {
        backend: best_wall(backend, workers)
        for backend in ("pool", "spawn", "forkserver")
    }
    floor = walls["pool"]
    out: Dict = {
        "reps": reps,
        "workers": workers,
        "runs": runs,
        "size_kib": size_kib,
        "backends": {
            backend: {
                "wall_s": round(wall, 4),
                "per_rep_overhead_ms": round((wall - floor) / reps * 1000, 2),
            }
            for backend, wall in walls.items()
        },
    }
    out["forkserver_vs_spawn"] = {
        "overhead_reduction_ms_per_rep": round(
            (walls["spawn"] - walls["forkserver"]) / reps * 1000, 2
        ),
        "speedup": round(walls["spawn"] / walls["forkserver"], 2),
    }
    return out
