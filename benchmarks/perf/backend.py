"""Execution-backend overhead: forkserver vs spawn per-repetition cost.

A campaign of short repetitions pays the worker start-up cost over and over:
every ``spawn`` worker boots a fresh interpreter and re-imports the whole
simulator (numpy included) before it can run its first repetition, and the
supervision layer re-pays that price on every pool restart. The
``forkserver`` backend amortizes it: workers fork from a server process that
pre-imported the simulator once.

Method. One tiny grid (``reps`` repetitions of a 64 KiB transfer) is swept
under three backends at the same worker count, best wall-clock of ``runs``:

* ``pool`` — the fork-based default, whose worker start-up is a bare
  ``fork()`` of the already-warm parent: the floor any pooled backend can
  reach on this host;
* ``spawn`` — the cold-start ceiling (fresh interpreter + full re-import
  per worker);
* ``forkserver`` — the backend under test.

Per-repetition overhead is ``(wall(backend) - wall(pool)) / reps``: what
each repetition pays for its backend's start-up model over the fork floor.
The acceptance claim (gated by ``check.py`` whenever this section is
present in a BENCH record) is ``wall(forkserver) < wall(spawn)``.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.framework.config import ExperimentConfig
from repro.framework.executors import PoolExecutor, SharedMemoryTransport
from repro.framework.supervision import RepTask, SupervisionPolicy, Supervisor
from repro.framework.sweep import SweepRunner
from repro.units import kib, mib


def bench_backends(
    reps: int = 8, workers: int = 4, runs: int = 3, size_kib: int = 64
) -> Dict:
    grid = {
        "bench": ExperimentConfig(
            stack="quiche", file_size=kib(size_kib), repetitions=reps
        )
    }

    def best_wall(backend: str, pool_workers: int) -> float:
        times = []
        for _ in range(runs):
            t0 = time.perf_counter()
            summaries = SweepRunner(workers=pool_workers, backend=backend).run(grid)
            times.append(time.perf_counter() - t0)
            assert summaries["bench"].all_completed
        return min(times)

    walls = {
        backend: best_wall(backend, workers)
        for backend in ("pool", "spawn", "forkserver")
    }
    floor = walls["pool"]
    out: Dict = {
        "reps": reps,
        "workers": workers,
        "runs": runs,
        "size_kib": size_kib,
        "backends": {
            backend: {
                "wall_s": round(wall, 4),
                "per_rep_overhead_ms": round((wall - floor) / reps * 1000, 2),
            }
            for backend, wall in walls.items()
        },
    }
    out["forkserver_vs_spawn"] = {
        "overhead_reduction_ms_per_rep": round(
            (walls["spawn"] - walls["forkserver"]) / reps * 1000, 2
        ),
        "speedup": round(walls["spawn"] / walls["forkserver"], 2),
    }
    return out


def _payload_run_one(config, seed: int):
    """A repetition whose result is dominated by a capture-sized payload.

    The payload is ``config.file_size`` bytes, deterministic in the seed, so
    the queue and shared-memory modes can be checked for identical results.
    """
    return {"seed": seed, "payload": bytes([seed % 256]) * config.file_size}


def bench_transport(
    reps: int = 8, workers: int = 4, runs: int = 3, payload_mib: int = 16
) -> Dict:
    """Result-transport overhead: queue pickling vs shared-memory segments.

    Same supervised pool, same payload-heavy repetitions, two transports:

    * ``queue`` — the transport disabled; results are pickled through the
      executor's result queue (feeder thread -> pipe -> collector thread);
    * ``shm`` — threshold 0, so every result rides a POSIX shared-memory
      segment and only a (name, size) ref crosses the queue.

    The delta is *recorded*, not gated: the win scales with payload size and
    host pipe throughput (small payloads are at parity, which is why the
    default ``DEFAULT_SHM_THRESHOLD`` keeps them on the queue), so check.py
    only requires the section's results to have settled cleanly.
    """
    config = ExperimentConfig(
        stack="quiche", file_size=payload_mib * mib(1), repetitions=reps
    )
    policy = SupervisionPolicy(retries=0, poll_interval_s=0.01)

    def best_wall(enabled: bool) -> float:
        times = []
        for _ in range(runs):
            executor = PoolExecutor(
                transport=SharedMemoryTransport(threshold=0, enabled=enabled)
            )
            tasks = [
                RepTask(name="bench", config=config, rep=rep, seed=rep)
                for rep in range(reps)
            ]
            results = []
            supervisor = Supervisor(
                policy, run_fn=_payload_run_one, executor=executor
            )
            t0 = time.perf_counter()
            supervisor.run(
                tasks,
                workers,
                on_success=lambda task, result: results.append(result),
                on_failure=lambda task, failure: (_ for _ in ()).throw(
                    RuntimeError(failure.describe())
                ),
            )
            times.append(time.perf_counter() - t0)
            assert len(results) == reps
            assert all(len(r["payload"]) == config.file_size for r in results)
        return min(times)

    walls = {"queue": best_wall(False), "shm": best_wall(True)}
    return {
        "reps": reps,
        "workers": workers,
        "runs": runs,
        "payload_mib": payload_mib,
        "transports": {
            name: {
                "wall_s": round(wall, 4),
                "per_rep_ms": round(wall / reps * 1000, 2),
            }
            for name, wall in walls.items()
        },
        "shm_vs_queue": {
            "saved_ms_per_rep": round(
                (walls["queue"] - walls["shm"]) / reps * 1000, 2
            ),
            "speedup": round(walls["queue"] / walls["shm"], 2),
        },
    }
