"""Regression gate: compare a BENCH record against the committed baseline.

Usage::

    python -m benchmarks.perf.check BENCH_5.json [--baseline baseline.json]
        [--tolerance 0.30]

Fails (exit 1) when any microbenchmark's ops/sec drops more than
``tolerance`` below the baseline, or the end-to-end wall-clock at a matching
scale — or the many-flow population wall-clock at a matching flow count —
exceeds the baseline by more than ``tolerance``. The default 30 %
margin absorbs host-to-host variation on CI runners; a real hot-path
regression (a reintroduced per-event allocation, an accidental O(n log n)
re-sort) moves these numbers far more than that.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "baseline.json"


def compare(result: dict, baseline: dict, tolerance: float) -> list[str]:
    failures: list[str] = []
    base_micro = baseline.get("micro", {})
    for name, rec in result.get("micro", {}).items():
        base = base_micro.get(name)
        if base is None:
            continue
        floor = base["ops_per_sec"] * (1.0 - tolerance)
        if rec["ops_per_sec"] < floor:
            failures.append(
                f"micro/{name}: {rec['ops_per_sec']:,.0f} ops/s is more than "
                f"{tolerance:.0%} below baseline {base['ops_per_sec']:,.0f}"
            )
    e2e = result.get("e2e")
    base_e2e = baseline.get("e2e", {})
    entry = base_e2e.get(str(e2e["scale_mib"])) if e2e else None
    if e2e and entry:
        ceiling = entry["wall_s"] * (1.0 + tolerance)
        if e2e["wall_s"] > ceiling:
            failures.append(
                f"e2e@{e2e['scale_mib']:g}MiB: {e2e['wall_s']:.3f}s is more "
                f"than {tolerance:.0%} above baseline {entry['wall_s']:.3f}s"
            )
    manyflow = result.get("manyflow")
    base_manyflow = baseline.get("manyflow", {})
    entry = base_manyflow.get(str(manyflow["flows"])) if manyflow else None
    if manyflow and entry:
        ceiling = entry["wall_s"] * (1.0 + tolerance)
        if manyflow["wall_s"] > ceiling:
            failures.append(
                f"manyflow@{manyflow['flows']}flows: {manyflow['wall_s']:.3f}s is "
                f"more than {tolerance:.0%} above baseline {entry['wall_s']:.3f}s"
            )
    backend = result.get("backend", {}).get("backends", {})
    spawn, forkserver = backend.get("spawn"), backend.get("forkserver")
    if spawn and forkserver and forkserver["wall_s"] >= spawn["wall_s"]:
        # The forkserver backend exists to kill per-repetition spawn/import
        # overhead; losing to spawn means the preload is broken.
        failures.append(
            f"backend: forkserver ({forkserver['wall_s']:.3f}s) is not faster "
            f"than spawn ({spawn['wall_s']:.3f}s) over the same grid"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("result", help="BENCH_<n>.json produced by run.py")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    parser.add_argument("--tolerance", type=float, default=0.30)
    args = parser.parse_args(argv)

    result = json.loads(Path(args.result).read_text())
    baseline = json.loads(Path(args.baseline).read_text())
    failures = compare(result, baseline, args.tolerance)
    if failures:
        for f in failures:
            print(f"PERF REGRESSION: {f}")
        return 1
    print(f"perf check: OK (within {args.tolerance:.0%} of baseline)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
