"""Regression gate: compare a BENCH record against the committed baseline.

Usage::

    python -m benchmarks.perf.check BENCH_5.json [--baseline baseline.json]
        [--tolerance 0.30]

Fails (exit 1) when any microbenchmark's ops/sec drops more than
``tolerance`` below the baseline, or the end-to-end wall-clock at a matching
scale — or the many-flow population wall-clock at a matching flow count —
exceeds the baseline by more than ``tolerance``. The default 30 %
margin absorbs host-to-host variation on CI runners; a real hot-path
regression (a reintroduced per-event allocation, an accidental O(n log n)
re-sort) moves these numbers far more than that.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "baseline.json"

#: The compiled engine must beat the pure engine by this much on the
#: event-throughput microbenchmark for the accelerator to be worth shipping.
MIN_COMPILED_MICRO_SPEEDUP = 2.0

#: End-to-end, the compiled build must merely never be slower than pure
#: beyond measurement noise (see the comment at the gate below).
MIN_COMPILED_E2E_RATIO = 0.95

#: The timer wheel must beat the plain lazy-cancel heap on the re-arm-churn
#: microbenchmark by this much to be worth its admission bookkeeping. The
#: measured margin is ~1.9x compiled / ~2.3x pure; 1.2x leaves room for
#: runner noise while still catching a wheel that has degenerated into pure
#: overhead (e.g. a pour bug dumping every admission straight into the heap).
MIN_WHEEL_SPEEDUP = 1.2


def compare(result: dict, baseline: dict, tolerance: float) -> list[str]:
    failures: list[str] = []
    base_micro = baseline.get("micro", {})
    for name, rec in result.get("micro", {}).items():
        base = base_micro.get(name)
        if base is None:
            continue
        floor = base["ops_per_sec"] * (1.0 - tolerance)
        if rec["ops_per_sec"] < floor:
            failures.append(
                f"micro/{name}: {rec['ops_per_sec']:,.0f} ops/s is more than "
                f"{tolerance:.0%} below baseline {base['ops_per_sec']:,.0f}"
            )
    e2e = result.get("e2e")
    base_e2e = baseline.get("e2e", {})
    entry = base_e2e.get(str(e2e["scale_mib"])) if e2e else None
    if e2e and entry:
        ceiling = entry["wall_s"] * (1.0 + tolerance)
        if e2e["wall_s"] > ceiling:
            failures.append(
                f"e2e@{e2e['scale_mib']:g}MiB: {e2e['wall_s']:.3f}s is more "
                f"than {tolerance:.0%} above baseline {entry['wall_s']:.3f}s"
            )
    manyflow = result.get("manyflow")
    base_manyflow = baseline.get("manyflow", {})
    entry = base_manyflow.get(str(manyflow["flows"])) if manyflow else None
    if manyflow and entry:
        ceiling = entry["wall_s"] * (1.0 + tolerance)
        if manyflow["wall_s"] > ceiling:
            failures.append(
                f"manyflow@{manyflow['flows']}flows: {manyflow['wall_s']:.3f}s is "
                f"more than {tolerance:.0%} above baseline {entry['wall_s']:.3f}s"
            )
    churn = result.get("manyflow_churn")
    base_churn = baseline.get("manyflow_churn", {})
    entry = base_churn.get(str(churn["flows"])) if churn else None
    if churn and entry:
        ceiling = entry["wall_s"] * (1.0 + tolerance)
        if churn["wall_s"] > ceiling:
            failures.append(
                f"manyflow_churn@{churn['flows']}flows: {churn['wall_s']:.3f}s "
                f"is more than {tolerance:.0%} above baseline {entry['wall_s']:.3f}s"
            )
        # Determinism, not performance: the churn workload is a pure function
        # of (config, seed), identical across builds and engine variants, so
        # the fingerprint must match the baseline byte-for-byte.
        if entry.get("fingerprint") and churn["fingerprint"] != entry["fingerprint"]:
            failures.append(
                f"manyflow_churn@{churn['flows']}flows: fingerprint "
                f"{churn['fingerprint'][:16]}… does not match baseline "
                f"{entry['fingerprint'][:16]}… (churn teardown broke determinism)"
            )
    rearm = result.get("micro", {}).get("timer_rearm")
    if rearm and rearm.get("wheel_speedup") is not None:
        if rearm["wheel_speedup"] < MIN_WHEEL_SPEEDUP:
            failures.append(
                f"timer_rearm: wheel is only {rearm['wheel_speedup']:.2f}x "
                f"the lazy-cancel heap (gate: >= {MIN_WHEEL_SPEEDUP:.1f}x)"
            )
    census = result.get("census")
    if census and census.get("post_departure", 0) > 0:
        # The churn invariant: a departed flow schedules nothing, ever.
        failures.append(
            f"census: {census['post_departure']} event(s) scheduled by "
            "departed flows (teardown left a live timer)"
        )
    backend = result.get("backend", {}).get("backends", {})
    spawn, forkserver = backend.get("spawn"), backend.get("forkserver")
    if spawn and forkserver and forkserver["wall_s"] >= spawn["wall_s"]:
        # The forkserver backend exists to kill per-repetition spawn/import
        # overhead; losing to spawn means the preload is broken.
        failures.append(
            f"backend: forkserver ({forkserver['wall_s']:.3f}s) is not faster "
            f"than spawn ({spawn['wall_s']:.3f}s) over the same grid"
        )
    pure = result.get("pure_comparison")
    if pure:
        # The compiled event engine must be worth shipping: >= 2x the pure
        # engine on the schedule/run microbenchmark. End-to-end wall time is
        # gated as a no-regression floor only — the post-compile e2e profile
        # is flat (QUIC stack callbacks dominate; the engine is ~10 %), so a
        # 2x e2e win would require compiling the whole QUIC layer (the
        # opt-in REPRO_MYPYC build), not just the C core.
        if pure["event_throughput_speedup"] < MIN_COMPILED_MICRO_SPEEDUP:
            failures.append(
                "compiled: event_throughput is only "
                f"{pure['event_throughput_speedup']:.2f}x the pure build "
                f"(gate: >= {MIN_COMPILED_MICRO_SPEEDUP:.1f}x)"
            )
        if pure["e2e_speedup"] < MIN_COMPILED_E2E_RATIO:
            failures.append(
                f"compiled: e2e is {pure['e2e_speedup']:.2f}x the pure build "
                f"— slower than pure beyond noise (floor: "
                f">= {MIN_COMPILED_E2E_RATIO:.2f}x)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("result", help="BENCH_<n>.json produced by run.py")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    parser.add_argument("--tolerance", type=float, default=0.30)
    args = parser.parse_args(argv)

    result = json.loads(Path(args.result).read_text())
    baseline = json.loads(Path(args.baseline).read_text())
    failures = compare(result, baseline, args.tolerance)
    if failures:
        for f in failures:
            print(f"PERF REGRESSION: {f}")
        return 1
    print(f"perf check: OK (within {args.tolerance:.0%} of baseline)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
