"""End-to-end transfer timing.

Runs one complete experiment — handshake, paced download through the TBF +
netem bottleneck, capture, metrics-ready result — several times and reports
the best wall-clock, the simulator event count, and events/sec. This is the
number the tentpole speedup claim is made against: ``pre_pr_wall_s`` in
``baseline.json`` holds the same measurement taken on the pre-overhaul
engine (commit 0460930), on the same machine, with the same method.

Scale follows the figure benchmarks' ``REPRO_SCALE_MIB`` knob (default 4).
"""

from __future__ import annotations

import os
import time
from typing import Dict

from repro.framework.config import ExperimentConfig
from repro.framework.experiment import run_experiment
from repro.units import mib


def scale_mib() -> float:
    return float(os.environ.get("REPRO_SCALE_MIB", "4"))


def bench_e2e(
    scale: float | None = None,
    seed: int = 1,
    runs: int = 5,
    store=None,
    name: str = "bench/e2e",
) -> Dict:
    """Time the transfer; optionally record the (deterministic) result into a
    :class:`~repro.framework.store.ResultStore` under ``name``.

    Every run uses the same config and seed, and the store keys rows by
    (config, seed), so repeated timing runs collapse to one queryable row.
    """
    if scale is None:
        scale = scale_mib()
    cfg = ExperimentConfig(file_size=mib(scale))
    times = []
    result = None
    for _ in range(runs):
        t0 = time.perf_counter()
        result = run_experiment(cfg, seed=seed)
        times.append(time.perf_counter() - t0)
    best = min(times)
    if store is not None:
        store.record_result(name, 0, result)
    return {
        "scale_mib": scale,
        "seed": seed,
        "runs": runs,
        "wall_s": round(best, 4),
        "wall_s_all": [round(t, 4) for t in times],
        "events": result.events_processed,
        "events_per_sec": round(result.events_processed / best, 1),
        "packets_on_wire": result.packets_on_wire,
        "fingerprint": result.fingerprint(),
    }
