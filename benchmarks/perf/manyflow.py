"""Many-flow population timing (ROADMAP item 2's tracked scale number).

Runs one complete flow-population simulation — N Poisson arrivals across the
four stack profiles, heterogeneous RTTs, one shared bottleneck, columnar
capture only — several times and reports the best wall-clock plus the
simulator event rate. This is the scale axis the single-connection e2e
benchmark cannot see: hundreds of concurrent sockets, per-flow timers, and
one shared queue all contending in the same event heap.

Population size follows the ``REPRO_FLOWS`` knob (default 200, the
acceptance scale; CI smoke uses a smaller population, keyed separately in
``baseline.json``).
"""

from __future__ import annotations

import os
import time
from typing import Dict

from repro.framework.population import PopulationConfig, run_population
from repro.units import kib, ms, seconds


def flow_count() -> int:
    return int(os.environ.get("REPRO_FLOWS", "200"))


def population_config(flows: int, churn: bool = False) -> PopulationConfig:
    """The benchmark workload: fixed parameters so the number tracks the
    engine, not the scenario."""
    return PopulationConfig(
        flows=flows,
        arrival="poisson",
        arrival_rate_per_s=100.0,
        file_size=kib(64),
        extra_rtt_max_ns=ms(40),
        profiles=("quiche:cubic:fq", "picoquic:bbr", "ngtcp2:cubic", "tcp"),
        max_sim_time_ns=seconds(300),
        churn=churn,
    )


def bench_manyflow(
    flows: int | None = None,
    seed: int = 1,
    runs: int = 3,
    store=None,
    name: str = "bench/manyflow",
    churn: bool = False,
) -> Dict:
    """Time the population run; optionally record the (deterministic) result
    into a :class:`~repro.framework.store.ResultStore` under ``name``.

    ``churn=True`` times the departure-teardown variant (flows torn down as
    they complete, O(active) steady-state) — a different deterministic
    workload with its own fingerprint, keyed separately in the baselines.
    """
    if flows is None:
        flows = flow_count()
    cfg = population_config(flows, churn=churn)
    times = []
    result = None
    for _ in range(runs):
        t0 = time.perf_counter()
        result = run_population(cfg, seed=seed)
        times.append(time.perf_counter() - t0)
    best = min(times)
    if store is not None:
        store.record_result(name, 0, result)
    out = {
        "flows": flows,
        "seed": seed,
        "runs": runs,
        "wall_s": round(best, 4),
        "wall_s_all": [round(t, 4) for t in times],
        "events": result.events_processed,
        "events_per_sec": round(result.events_processed / best, 1),
        "completed_flows": result.completed_count,
        "fingerprint": result.fingerprint(),
    }
    if churn:
        out["churn"] = True
        out["drained"] = result.multi.drained
    return out


def census_totals(flows: int, seed: int = 1, churn: bool = False) -> Dict:
    """One census-instrumented run (pure engine, uncounted in the timing):
    the per-component totals recorded alongside the benchmark numbers."""
    result = run_population(
        population_config(flows, churn=churn), seed=seed, profile_events=True
    )
    totals = dict(result.census["totals"])
    totals["fingerprint"] = result.fingerprint()
    return totals
