"""Performance benchmark suite.

Unlike the figure benchmarks in ``benchmarks/``, which reproduce the paper's
*results*, this package measures the *machinery*: how fast the event engine,
qdiscs, capture path, and metrics pipeline run, and how long one end-to-end
experiment takes. ``python -m benchmarks.perf.run`` executes everything and
writes a ``BENCH_<n>.json`` record; ``python -m benchmarks.perf.check``
compares such a record against the committed ``baseline.json`` and fails on
regression (the CI ``perf-smoke`` job wires the two together).

Timing method: every benchmark reports the *best* of several repetitions.
The minimum is the closest observable to the true cost of the code — every
other sample is the same work plus scheduler noise — and is the only robust
statistic on shared CI machines.
"""

from __future__ import annotations

import time
from typing import Callable, Dict


def best_of(fn: Callable[[], int], repeats: int = 3) -> Dict[str, float]:
    """Run ``fn`` (returning an op count) ``repeats`` times; keep the best.

    Returns ``{"ops": n, "seconds": best, "ops_per_sec": n / best}``.
    """
    best = None
    ops = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        ops = fn()
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best = dt
    return {
        "ops": ops,
        "seconds": round(best, 6),
        "ops_per_sec": round(ops / best, 1) if best > 0 else float("inf"),
    }
