"""Microbenchmarks for the four hot layers of the simulator.

Each function exercises one subsystem in isolation with synthetic load and
returns a ``best_of`` record. Sizes are chosen so each benchmark runs in
roughly 0.1-0.5 s per repetition on a laptop; they measure per-operation
cost, so absolute size barely matters beyond amortizing setup.
"""

from __future__ import annotations

import os
import random
from typing import Dict

from benchmarks.perf import best_of

from repro.kernel.qdisc.fq import FqQdisc
from repro.metrics.gaps import Distribution, inter_packet_gaps
from repro.net.packet import Datagram
from repro.net.tap import Sniffer
from repro.sim.engine import Simulator


def bench_event_throughput(n: int = 200_000, repeats: int = 3) -> Dict:
    """Schedule-and-run throughput of the tuple-heap event engine.

    90 % plain fire-and-forget events plus 10 % cancellable ones (half of
    which get cancelled), matching the production mix where only recovery
    timers and pacers ever cancel.
    """

    def run() -> int:
        sim = Simulator()

        def tick() -> None:
            pass

        for i in range(n):
            sim.schedule_at(i, tick)
        handles = [
            sim.schedule_at_cancellable(n + i, tick) for i in range(n // 10)
        ]
        for h in handles[::2]:
            h.cancel()
        sim.run()
        return n + len(handles)

    return best_of(run, repeats)


def bench_timer_rearm(
    n_timers: int = 20_000, rounds: int = 20, repeats: int = 3
) -> Dict:
    """Steady-population timer churn: the thousands-of-flows scheduling
    pattern, measured in isolation.

    Every recovery/delayed-ACK/pacing deadline in a flow population is
    superseded many times before one finally fires. Here ``n_timers``
    reusable timers are each re-armed ``rounds`` times (every re-arm leaves
    one stale soft-cancelled calendar entry behind) and the population then
    runs to quiescence. One "op" is one (re-)arm. The same workload is
    re-timed with the wheel disabled (``REPRO_TIMER_WHEEL=0`` — the plain
    lazy-cancel heap) and reported as ``wheel_speedup``; the committed
    baseline additionally records the pre-PR cancel-and-reschedule cost of
    this pattern (``pre_pr_timer_rearm``) for the cross-PR speedup.
    """

    def run() -> int:
        sim = Simulator()
        fired = [0]

        def tick() -> None:
            fired[0] += 1

        timers = [sim.timer(tick) for _ in range(n_timers)]
        deadline = 0
        for _ in range(rounds):
            deadline += 1_000
            for i, timer in enumerate(timers):
                timer.schedule_at(deadline + (i * 37 & 0xFF))
        sim.run()
        assert fired[0] == n_timers
        return n_timers * rounds

    record = best_of(run, repeats)
    saved = os.environ.get("REPRO_TIMER_WHEEL")
    os.environ["REPRO_TIMER_WHEEL"] = "0"
    try:
        heap = best_of(run, repeats)
    finally:
        if saved is None:
            del os.environ["REPRO_TIMER_WHEEL"]
        else:
            os.environ["REPRO_TIMER_WHEEL"] = saved
    record["heap_ops_per_sec"] = heap["ops_per_sec"]
    record["wheel_speedup"] = round(
        record["ops_per_sec"] / heap["ops_per_sec"], 2
    )
    return record


def bench_qdisc(n: int = 30_000, flows: int = 8, repeats: int = 3) -> Dict:
    """FQ qdisc enqueue + scheduled dequeue of ``n`` datagrams.

    Spreads packets over several flows so the round-robin and per-flow queue
    machinery is exercised, then drains the whole backlog through the event
    engine. One "op" is one packet through the qdisc (in and out).
    """

    class ListSink:
        def __init__(self) -> None:
            self.frames: list = []

        def receive(self, dgram: Datagram) -> None:
            self.frames.append(dgram)

    def run() -> int:
        sim = Simulator()
        sink = ListSink()
        # Limits sized to hold the whole burst: this measures per-packet
        # machinery, not drop behaviour.
        qdisc = FqQdisc(
            sim,
            sink=sink,
            limit_packets=n + 1,
            flow_limit_packets=n,
            rng=random.Random(7),
        )
        flow_tuples = [
            ("10.0.0.1", 40_000 + f, "10.0.0.2", 443) for f in range(flows)
        ]
        for i in range(n):
            qdisc.enqueue(
                Datagram(flow=flow_tuples[i % flows], payload_size=1252)
            )
        sim.run()
        assert len(sink.frames) == n
        return n

    return best_of(run, repeats)


def bench_capture_append(n: int = 100_000, repeats: int = 3) -> Dict:
    """Columnar capture append plus one full records materialization.

    Measures the per-packet cost of ``Sniffer.capture`` (seven array appends
    and an interned-flow lookup) and the one-time cost of serving the lazy
    ``records`` view and the per-host cached index afterwards.
    """

    def run() -> int:
        sniffer = Sniffer()
        fwd = ("10.0.0.2", 443, "10.0.0.1", 40_000)
        rev = ("10.0.0.1", 40_000, "10.0.0.2", 443)
        for i in range(n):
            sniffer.capture(
                i * 1000,
                Datagram(
                    flow=fwd if i % 4 else rev,
                    payload_size=1252,
                    packet_number=i,
                ),
            )
        assert len(sniffer.records) == n
        assert len(sniffer.from_host("10.0.0.2")) == n - n // 4
        return n

    return best_of(run, repeats)


def bench_gap_analysis(n: int = 200_000, repeats: int = 3) -> Dict:
    """Inter-packet gap extraction plus the sort-once Distribution metrics.

    Feeds a synthetic capture column of ``n`` timestamps through the same
    cdf / percentile / fraction_leq pipeline the figure benchmarks use.
    """
    rng = random.Random(3)
    times = []
    t = 0
    for _ in range(n):
        t += rng.randrange(1_000, 500_000)
        times.append(t)

    def run() -> int:
        sniffer = Sniffer()
        flow = ("10.0.0.2", 443, "10.0.0.1", 40_000)
        for ts in times:
            sniffer.capture(ts, Datagram(flow=flow, payload_size=1252))
        gaps = Distribution(inter_packet_gaps(sniffer.columns))
        gaps.cdf()
        for p in (5, 25, 50, 75, 95, 99):
            gaps.percentile(p)
        gaps.fraction_leq(15_000)
        return n

    return best_of(run, repeats)


def run_all(repeats: int = 3) -> Dict[str, Dict]:
    return {
        "event_throughput": bench_event_throughput(repeats=repeats),
        "timer_rearm": bench_timer_rearm(repeats=repeats),
        "qdisc_enqueue_dequeue": bench_qdisc(repeats=repeats),
        "capture_append": bench_capture_append(repeats=repeats),
        "gap_analysis": bench_gap_analysis(repeats=repeats),
    }
