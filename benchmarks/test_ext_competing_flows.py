"""Extension: competing flows over a shared bottleneck (Section 3.4 future
work: "competing connections... shared queues").

Two contests:
* homogeneous — two identical quiche flows must share fairly (sanity for the
  multi-flow substrate);
* heterogeneous — a well-paced flow (picoquic BBR) against a bursty one
  (picoquic CUBIC): the paced flow should suffer far less loss for its share
  of the bandwidth.
"""

from benchmarks.conftest import REPS, SCALE_MIB, SEED, publish
from repro.framework.multiflow import FlowSpec, MultiFlowExperiment
from repro.metrics.report import render_table
from repro.units import mib

SIZE = mib(max(SCALE_MIB, 2))


def _collect():
    homogeneous = MultiFlowExperiment(
        [
            FlowSpec(stack="quiche", qdisc="fq", spurious_rollback=False, file_size=SIZE),
            FlowSpec(stack="quiche", qdisc="fq", spurious_rollback=False, file_size=SIZE),
        ],
        seed=SEED,
    ).run()
    heterogeneous = MultiFlowExperiment(
        [
            FlowSpec(stack="picoquic", cca="bbr", file_size=SIZE),
            FlowSpec(stack="picoquic", cca="cubic", file_size=SIZE),
        ],
        seed=SEED,
    ).run()
    return homogeneous, heterogeneous


def test_ext_competing_flows(benchmark):
    homogeneous, heterogeneous = benchmark.pedantic(_collect, rounds=1, iterations=1)

    blocks = []
    for title, result in (
        ("two identical quiche+FQ flows", homogeneous),
        ("picoquic BBR vs picoquic CUBIC", heterogeneous),
    ):
        rows = [
            [f.spec.label, f"{f.goodput_mbps:.2f}", str(f.dropped)]
            for f in result.flows
        ]
        rows.append(["(Jain fairness)", f"{result.fairness:.3f}", str(result.total_dropped)])
        blocks.append(render_table(["flow", "goodput [Mbit/s]", "dropped"], rows, title=title))
    publish("ext_competing_flows", "\n\n".join(blocks))

    assert homogeneous.all_completed and heterogeneous.all_completed

    # Identical flows share the bottleneck fairly.
    assert homogeneous.fairness > 0.9
    # And the pair saturates the link reasonably (> 60 % utilization).
    assert homogeneous.aggregate_goodput_mbps > 24

    # The paced BBR flow loses far fewer packets than the bursty CUBIC flow.
    bbr_flow = heterogeneous.flows[0]
    cubic_flow = heterogeneous.flows[1]
    assert bbr_flow.dropped <= cubic_flow.dropped
    # Neither flow is starved.
    assert min(f.goodput_mbps for f in heterogeneous.flows) > 3
