"""Ablation: the ETF qdisc's delta parameter (Section 4.4 design choice).

The paper picks delta = 200 µs ("a bit more conservative" than Bosk et al.'s
175 µs) because too small a delta risks drops: ETF discards packets whose
timestamp cannot be met. This ablation sweeps delta and shows the trade-off:
tiny deltas drop traffic and wreck goodput; beyond a safe threshold, extra
delta buys nothing.
"""

from benchmarks.conftest import publish, scaled
from repro.framework.experiment import Experiment
from repro.metrics.precision import pacing_precision_ns
from repro.metrics.report import render_table
from repro.units import us

DELTAS_US = (25, 100, 200, 400, 800)


def _collect():
    out = {}
    for delta in DELTAS_US:
        cfg = scaled(
            stack="quiche",
            qdisc="etf",
            spurious_rollback=False,
            etf_delta_ns=us(delta),
            repetitions=1,
        )
        out[delta] = Experiment(cfg, seed=cfg.seed).run()
    return out


def test_ablation_etf_delta(benchmark):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    for delta, r in results.items():
        precision = pacing_precision_ns(r.expected_send_log, r.server_records) / 1e6
        rows.append(
            [
                f"{delta} us",
                str(r.qdisc_stats["dropped_late"]),
                f"{r.goodput_mbps:.2f}",
                f"{precision:.3f} ms",
            ]
        )
    publish(
        "ablation_etf_delta",
        render_table(
            ["delta", "late drops (ETF)", "goodput [Mbit/s]", "precision"],
            rows,
            title="Ablation: ETF delta (paper uses 200 us)",
        ),
    )

    # A conservative delta (>= 200 us, the paper's choice) drops nothing.
    for delta in (200, 400, 800):
        assert results[delta].qdisc_stats["dropped_late"] == 0, delta
        assert results[delta].completed

    # An aggressive delta drops packets at the qdisc.
    assert results[25].qdisc_stats["dropped_late"] > 0

    # Larger deltas buy no extra goodput beyond the safe point.
    assert abs(results[800].goodput_mbps - results[200].goodput_mbps) < 2.0
