"""Figure 3: distribution of packets across packet-train lengths (baseline).

Paper observations: TCP/TLS and ngtcp2 keep >99.9 % of packets in trains of
five or fewer; quiche reaches ~89 %; picoquic only ~60 %, with ~40 % of its
packets inside 16-17-packet bursts (sent after ~5 ms idle roughly every
10 ms).
"""

from collections import Counter

from benchmarks.conftest import publish, scaled
from repro.metrics.report import render_histogram, render_table
from repro.metrics.trains import (
    fraction_of_packets_in_trains_leq,
    packets_by_train_length,
)

STACKS = ("quiche", "picoquic", "ngtcp2", "tcp")


def _collect(runs):
    dists = {}
    for stack in STACKS:
        summary = runs.get(scaled(stack=stack))
        combined: Counter[int] = Counter()
        frac_leq5_total = 0.0
        for records in summary.pooled_records:
            combined.update(packets_by_train_length(records))
        dists[stack] = dict(combined)
    return dists


def frac_leq(dist, n):
    total = sum(dist.values())
    return sum(v for k, v in dist.items() if k <= n) / total if total else 0.0


def test_fig3_baseline_train_lengths(runs, benchmark):
    dists = benchmark.pedantic(_collect, args=(runs,), rounds=1, iterations=1)

    blocks = []
    for stack, dist in dists.items():
        blocks.append(render_histogram(dist, title=f"[{stack}] packets by train length"))
    rows = [[s, f"{frac_leq(d, 5) * 100:.1f}%"] for s, d in dists.items()]
    blocks.append(render_table(["stack", "packets in trains <= 5"], rows))
    publish("fig3_baseline_trains", "\n\n".join(blocks))

    # TCP and ngtcp2: essentially everything in short trains.
    assert frac_leq(dists["tcp"], 5) > 0.99
    assert frac_leq(dists["ngtcp2"], 5) > 0.99
    # quiche: most packets but not all (paper 89 %).
    assert 0.80 < frac_leq(dists["quiche"], 5) <= 1.0
    # picoquic: large bursts dominate the tail (paper 60 % <= 5).
    pico = frac_leq(dists["picoquic"], 5)
    assert pico < frac_leq(dists["quiche"], 5)
    assert pico < 0.90
    # The bucket-sized (15-18 packets) trains carry substantial mass.
    total = sum(dists["picoquic"].values())
    bucket_mass = sum(v for k, v in dists["picoquic"].items() if 15 <= k <= 18) / total
    assert bucket_mass > 0.10
