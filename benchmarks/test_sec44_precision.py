"""Section 4.4: pacing precision (expected vs actual send timestamps).

Paper values (stddev of actual-minus-expected, quiche, no GSO):

    no qdisc          0.94 ms
    FQ                0.12 ms
    ETF               0.27 ms
    ETF + LaunchTime  0.28 ms

Shape: FQ is the most precise; ETF is noticeably worse; hardware LaunchTime
offloading brings no meaningful improvement; no qdisc at all is worst.
"""

from benchmarks.conftest import publish, scaled
from repro.metrics.precision import pacing_precision_ns
from repro.metrics.report import render_table
from repro.metrics.stats import summarize

QDISCS = ("none", "fq", "etf", "etf-offload")
LABELS = {
    "none": "no qdisc",
    "fq": "FQ",
    "etf": "ETF",
    "etf-offload": "ETF + LaunchTime",
}


def _collect(runs):
    out = {}
    for qdisc in QDISCS:
        summary = runs.get(
            scaled(stack="quiche", qdisc=qdisc, gso="off", spurious_rollback=False)
        )
        values = [
            pacing_precision_ns(r.expected_send_log, r.server_records) / 1e6
            for r in summary.results
        ]
        out[qdisc] = (summarize(values), summary)
    return out


def test_sec44_pacing_precision(runs, benchmark):
    data = benchmark.pedantic(_collect, args=(runs,), rounds=1, iterations=1)

    rows = [[LABELS[q], f"{data[q][0].mean:.3f} ± {data[q][0].std:.3f} ms"] for q in QDISCS]
    publish(
        "sec44_precision",
        render_table(
            ["configuration", "pacing precision (stddev)"],
            rows,
            title="Section 4.4: pacing precision by qdisc",
        ),
    )

    precision = {q: data[q][0].mean for q in QDISCS}

    # FQ is the most precise of all configurations (paper's surprise).
    assert precision["fq"] < precision["etf"]
    assert precision["fq"] < precision["etf-offload"]
    assert precision["fq"] < precision["none"]

    # No qdisc is the least precise (nothing enforces the timestamps).
    assert precision["none"] > precision["etf"]
    assert precision["none"] > precision["etf-offload"]

    # LaunchTime does not meaningfully improve over software ETF.
    assert precision["etf-offload"] > 0.5 * precision["etf"]

    # ETF must not be dropping the traffic to achieve its precision.
    for q in ("etf", "etf-offload"):
        for r in data[q][1].results:
            assert r.completed
            assert r.qdisc_stats["dropped_late"] == 0
