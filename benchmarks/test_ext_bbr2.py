"""Extension: BBRv1 vs BBRv2 (the related-work thread of Song/Zeynali et al.).

Song et al. (cited in Section 5) report BBRv2's signature trade: *lower
throughput but fewer retransmissions* than BBRv1, most visible in shallow
buffers where v1's loss-blind 2xBDP inflight keeps the queue overflowing
while v2's loss-learned ``inflight_hi`` backs off. We reproduce that shape on
the picoquic profile at two buffer depths.
"""

from benchmarks.conftest import publish, scaled
from repro.framework.config import NetworkConfig
from repro.framework.experiment import Experiment
from repro.metrics.report import render_table

BUFFERS = (0.5, 2.0)


def _collect():
    out = {}
    for mult in BUFFERS:
        net = NetworkConfig(buffer_bdp_multiplier=mult)
        for cca in ("bbr", "bbr2"):
            cfg = scaled(stack="picoquic", cca=cca, network=net, repetitions=1)
            out[(mult, cca)] = Experiment(cfg, seed=cfg.seed).run()
    return out


def test_ext_bbr2_vs_bbr(benchmark):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = [
        [
            f"{mult} x BDP buffer, {cca}",
            f"{results[(mult, cca)].goodput_mbps:.2f}",
            str(results[(mult, cca)].dropped),
            str(results[(mult, cca)].server_stats["stream_bytes_retx"]),
        ]
        for mult in BUFFERS
        for cca in ("bbr", "bbr2")
    ]
    publish(
        "ext_bbr2",
        render_table(
            ["configuration", "goodput [Mbit/s]", "dropped", "retx bytes"],
            rows,
            title="Extension: BBRv1 vs BBRv2 (Song et al. shape)",
        ),
    )

    for r in results.values():
        assert r.completed

    shallow_v1 = results[(0.5, "bbr")]
    shallow_v2 = results[(0.5, "bbr2")]
    deep_v1 = results[(2.0, "bbr")]
    deep_v2 = results[(2.0, "bbr2")]

    # Shallow buffer: v2 loses far less than v1 (the loss-aware bound)...
    assert shallow_v2.dropped < shallow_v1.dropped / 2
    # ...at the cost of throughput (Song et al.'s finding).
    assert shallow_v2.goodput_mbps < shallow_v1.goodput_mbps
    assert shallow_v2.goodput_mbps > 8  # but it does not starve

    # Deep (paper) buffer: both are loss-free and comparable.
    assert deep_v1.dropped == 0 and deep_v2.dropped == 0
    assert deep_v2.goodput_mbps > 0.85 * deep_v1.goodput_mbps
