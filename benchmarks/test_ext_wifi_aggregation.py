"""Extension: pacing over a WiFi-style aggregating bottleneck.

Related work (Section 5): "Manzoor et al. explicitly prevent pacing to
improve QUIC performance in WiFi. While the increased burstiness improves
their results, they did not evaluate inter-packet gaps and the actual pacing
behavior in more detail." We rebuild the mechanism — per-TXOP channel-access
overhead amortized by frame aggregation — and show the paper pair of facts:
on this link, disabling pacing *does* raise goodput (bursts fill aggregates),
exactly the opposite of the wired-bottleneck result.
"""

from benchmarks.conftest import publish, scaled
from repro.framework.config import NetworkConfig
from repro.framework.experiment import Experiment
from repro.metrics.report import render_table
from repro.metrics.trains import fraction_of_packets_in_trains_leq

WIFI = NetworkConfig(bottleneck="wifi")
WIRED = NetworkConfig()


def _run(net, pacing_override):
    cfg = scaled(
        stack="picoquic",
        network=net,
        pacing_override=pacing_override,
        repetitions=1,
    )
    return Experiment(cfg, seed=cfg.seed)


def _collect():
    out = {}
    for net_name, net in (("wifi", WIFI), ("wired", WIRED)):
        for mode in ("stock", "none"):
            e = _run(net, None if mode == "stock" else "none")
            out[(net_name, mode)] = (e.run(), e.bottleneck)
    return out


def test_ext_wifi_aggregation(benchmark):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    for (net_name, mode), (r, bneck) in results.items():
        agg = getattr(bneck, "mean_aggregate", None)
        rows.append(
            [
                f"{net_name} / pacing {mode}",
                f"{r.goodput_mbps:.2f}",
                str(r.dropped),
                f"{agg:.1f}" if agg is not None else "-",
                f"{fraction_of_packets_in_trains_leq(r.server_records, 5) * 100:.0f}%",
            ]
        )
    publish(
        "ext_wifi_aggregation",
        render_table(
            ["configuration", "goodput [Mbit/s]", "dropped", "mean aggregate", "trains <= 5"],
            rows,
            title="Extension: pacing vs WiFi frame aggregation (Manzoor et al.)",
        ),
    )

    wifi_stock, wifi_bneck_stock = results[("wifi", "stock")]
    wifi_none, wifi_bneck_none = results[("wifi", "none")]
    wired_stock, _ = results[("wired", "stock")]
    wired_none, _ = results[("wired", "none")]

    for (r, _b) in results.values():
        assert r.completed

    # On WiFi, bursts amortize channel access: unpaced wins goodput...
    assert wifi_none.goodput_mbps > wifi_stock.goodput_mbps
    # ...because it fills much larger aggregates.
    assert wifi_bneck_none.mean_aggregate > 1.5 * wifi_bneck_stock.mean_aggregate

    # On the wired bottleneck the advantage (mostly) disappears and unpacing
    # costs extra loss — the WiFi result is a property of the link.
    wifi_gain = wifi_none.goodput_mbps / wifi_stock.goodput_mbps
    wired_gain = wired_none.goodput_mbps / wired_stock.goodput_mbps
    assert wifi_gain > 1.04
    assert wired_gain < wifi_gain
    assert wired_none.dropped > wired_stock.dropped
