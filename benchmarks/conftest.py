"""Shared infrastructure for the paper-reproduction benchmarks.

Each benchmark regenerates one of the paper's tables or figures and prints
the same rows/series. Scale knobs (the paper uses 100 MiB x 20 repetitions on
hardware; simulation defaults are smaller):

* ``REPRO_SCALE_MIB``  — file size per transfer (default 4)
* ``REPRO_REPS``       — repetitions per configuration (default 3)
* ``REPRO_SEED``       — base seed (default 1)
* ``REPRO_CACHE_DIR``  — on-disk result cache (default ~/.cache/repro)
* ``REPRO_NO_CACHE``   — set to 1 to force recomputation

Outputs are printed and archived under ``benchmarks/output/``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

import pytest

from repro.framework.cache import ResultCache
from repro.framework.config import ExperimentConfig
from repro.framework.runner import RunSummary, run_repetitions
from repro.units import mib

SCALE_MIB = float(os.environ.get("REPRO_SCALE_MIB", "4"))
REPS = int(os.environ.get("REPRO_REPS", "3"))
SEED = int(os.environ.get("REPRO_SEED", "1"))
NO_CACHE = os.environ.get("REPRO_NO_CACHE", "") not in ("", "0")

OUTPUT_DIR = Path(__file__).parent / "output"


def scaled(**kwargs) -> ExperimentConfig:
    kwargs.setdefault("file_size", mib(SCALE_MIB))
    kwargs.setdefault("repetitions", REPS)
    kwargs.setdefault("seed", SEED)
    return ExperimentConfig(**kwargs)


class RunCache:
    """Session-wide cache backed by the persistent disk store.

    Shared configurations run at most once per session, and not at all when
    a previous benchmark session already computed them — the disk cache
    (keyed by :meth:`ExperimentConfig.cache_key`, which covers *every*
    config field, unlike the old hand-built string key) serves completed
    repetitions back, so a repeated session is near-instant. Set
    ``REPRO_NO_CACHE=1`` to force fresh simulations.
    """

    def __init__(self, disk: Optional[ResultCache] = None) -> None:
        self._runs: dict[str, RunSummary] = {}
        self.disk = disk

    def get(self, config: ExperimentConfig) -> RunSummary:
        key = config.cache_key()
        if key not in self._runs:
            self._runs[key] = run_repetitions(config, cache=self.disk)
        return self._runs[key]


@pytest.fixture(scope="session")
def runs() -> RunCache:
    return RunCache(disk=None if NO_CACHE else ResultCache())


def publish(name: str, text: str) -> None:
    """Print a result block and archive it."""
    banner = f"\n{'=' * 72}\n{name} (scale: {SCALE_MIB} MiB x {REPS} reps; paper: 100 MiB x 20)\n{'=' * 72}\n"
    print(banner + text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
