"""Ablation: picoquic's leaky-bucket depth (DESIGN.md calibration knob).

The 16-17-packet trains of Figures 3/4 are, in our model, exactly the leaky
bucket emptying after an ACK-frequency idle period. If that explanation is
right, the burst mode must track the configured bucket size — this ablation
sweeps the depth and locates the mode of the packet-train distribution.
"""

from benchmarks.conftest import publish, scaled
from repro.framework.experiment import Experiment
from repro.metrics.report import render_table
from repro.metrics.trains import packets_by_train_length

BUCKETS = (8, 16, 24)


def _collect():
    out = {}
    for bucket in BUCKETS:
        cfg = scaled(stack="picoquic", cca="cubic", bucket_packets=bucket, repetitions=1)
        out[bucket] = Experiment(cfg, seed=cfg.seed).run()
    return out


def _burst_mode(records, lo, hi):
    """Mass of packets in trains within [lo, hi]."""
    dist = packets_by_train_length(records)
    total = sum(dist.values())
    return sum(v for k, v in dist.items() if lo <= k <= hi) / total if total else 0.0


def test_ablation_bucket_size(benchmark):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    for bucket, r in results.items():
        near = _burst_mode(r.server_records, bucket - 2, bucket + 4)
        rows.append([str(bucket), f"{near * 100:.1f}%", str(r.dropped), f"{r.goodput_mbps:.2f}"])
    publish(
        "ablation_bucket_size",
        render_table(
            ["bucket [packets]", "packets in bucket-sized trains", "dropped", "goodput"],
            rows,
            title="Ablation: leaky-bucket depth vs burst size (picoquic)",
        ),
    )

    # The burst mode follows the bucket: for each configuration, trains near
    # the configured depth carry substantial mass...
    for bucket, r in results.items():
        assert _burst_mode(r.server_records, bucket - 2, bucket + 4) > 0.08, bucket
        assert r.completed
    # ...and the mass near 16 is specific to the 16-bucket, not universal.
    at16_for8 = _burst_mode(results[8].server_records, 14, 18)
    at16_for16 = _burst_mode(results[16].server_records, 14, 18)
    assert at16_for16 > at16_for8
