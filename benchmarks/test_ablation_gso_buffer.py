"""Ablation: GSO buffer size (Section 4.3's "easier approach").

"The easier approach is to send smaller GSO bursts and to pace the gaps
between them... this approach does not fully utilize the advantages of GSO
and requires a trade-off between CPU load and burstiness." This ablation
quantifies that trade-off and contrasts it with the paced-GSO patch, which
gets both ends of it at once.
"""

from benchmarks.conftest import publish, scaled
from repro.framework.experiment import Experiment
from repro.metrics.report import render_table
from repro.metrics.trains import fraction_of_packets_in_trains_leq

SEGMENT_COUNTS = (2, 4, 6, 10)


def _run(gso: str, segments: int = 10):
    cfg = scaled(
        stack="quiche",
        qdisc="fq",
        gso=gso,
        gso_segments=segments,
        spurious_rollback=False,
        repetitions=1,
    )
    return Experiment(cfg, seed=cfg.seed).run()


def _collect():
    results = {"off": _run("off")}
    for n in SEGMENT_COUNTS:
        results[f"x{n}"] = _run("on", n)
    results["paced x10"] = _run("paced", 10)
    return results


def test_ablation_gso_buffer_size(benchmark):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    crossings = {}
    smoothness = {}
    for label, r in results.items():
        n_crossings = r.server_stats["gso_buffers"] or r.server_stats["packets_sent"]
        crossings[label] = n_crossings
        smoothness[label] = fraction_of_packets_in_trains_leq(r.server_records, 5)
        rows.append(
            [
                label,
                str(n_crossings),
                f"{smoothness[label] * 100:.1f}%",
                str(r.dropped),
                f"{r.goodput_mbps:.2f}",
            ]
        )
    publish(
        "ablation_gso_buffer",
        render_table(
            ["GSO buffer", "kernel crossings", "trains <= 5", "dropped", "goodput"],
            rows,
            title="Ablation: GSO buffer size trade-off (Section 4.3)",
        ),
    )

    # Bigger buffers -> monotonically fewer kernel crossings.
    assert crossings["x2"] > crossings["x4"] > crossings["x10"]
    assert crossings["off"] > crossings["x2"]

    # ...and (weakly) burstier wire behaviour.
    assert smoothness["x2"] > smoothness["x10"]

    # The kernel patch breaks the trade-off: x10 batching, off-like pacing.
    assert smoothness["paced x10"] > 0.9
    assert crossings["paced x10"] < crossings["off"] / 2
