"""Figure 6 + Table 2: GSO and the paced-GSO kernel patch (quiche + FQ + SF).

Paper values (Table 2):

    GSO enabled     6.35 dropped    31.06 Mbit/s
    GSO disabled  160.80 dropped    31.71 Mbit/s
    GSO paced     166.20 dropped    31.71 Mbit/s

Shape: stock GSO is very bursty on the wire but loses almost nothing (the
bursty queue spike makes HyStart++ exit slow start early); disabled and paced
GSO are smooth — over 80 % of packets outside any train for paced GSO — but
pay the late slow-start exit with an order of magnitude more loss.
"""

from benchmarks.conftest import publish, scaled
from repro.metrics.report import render_histogram, render_table
from repro.metrics.trains import packets_by_train_length

MODES = ("off", "on", "paced")
LABELS = {"off": "disabled", "on": "enabled", "paced": "paced"}


def _collect(runs):
    return {
        mode: runs.get(
            scaled(stack="quiche", qdisc="fq", gso=mode, spurious_rollback=False)
        )
        for mode in MODES
    }


def combined_dist(summary):
    dist = {}
    for records in summary.pooled_records:
        for k, v in packets_by_train_length(records).items():
            dist[k] = dist.get(k, 0) + v
    return dist


def test_fig6_table2_gso(runs, benchmark):
    summaries = benchmark.pedantic(_collect, args=(runs,), rounds=1, iterations=1)

    rows = []
    blocks = []
    singles = {}
    for mode in MODES:
        s = summaries[mode]
        dist = combined_dist(s)
        total = sum(dist.values())
        singles[mode] = dist.get(1, 0) / total
        rows.append([LABELS[mode], str(s.dropped), str(s.goodput)])
        blocks.append(render_histogram(dist, title=f"[GSO {LABELS[mode]}] packets by train length"))
    table = render_table(
        ["GSO", "Dropped packets", "Goodput [Mbit/s]"],
        rows,
        title="Table 2: GSO variants (quiche + FQ + SF patch)",
    )
    publish("fig6_table2_gso", table + "\n\n" + "\n\n".join(blocks))

    on, off, paced = summaries["on"], summaries["off"], summaries["paced"]

    # Figure 6: stock GSO is bursty; paced GSO restores GSO-off smoothness.
    assert singles["on"] < 0.2
    assert singles["paced"] > 0.8  # paper: >80 % of packets outside a train
    assert singles["paced"] >= singles["off"] - 0.1

    # Table 2: bursty GSO exits slow start early and loses least; smooth
    # traffic (off/paced) overshoots at slow-start end (paper: ~10x).
    assert on.dropped.mean < off.dropped.mean
    assert on.dropped.mean < paced.dropped.mean
    assert paced.dropped.mean > 3 * max(on.dropped.mean, 1)

    # Goodput stays in the same band for all three (paper: 31-32 Mbit/s).
    goodputs = [s.goodput.mean for s in summaries.values()]
    assert max(goodputs) - min(goodputs) < 8
    # GSO actually batches: buffers were split by the kernel model.
    assert all(r.server_stats["gso_buffers"] > 0 for r in on.results)
    assert all(r.server_stats["gso_buffers"] > 0 for r in paced.results)
