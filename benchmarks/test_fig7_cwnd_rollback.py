"""Figure 7 (appendix): congestion-window rollback oscillation timeline.

Stock quiche under FQ: after a loss the window is reduced, then restored by
the spurious-loss check, reduced again on the next dribble of loss, and so
on — the cwnd flips between two levels instead of converging.
"""

from benchmarks.conftest import REPS, SCALE_MIB, SEED, publish
from repro.framework.config import ExperimentConfig
from repro.framework.experiment import Experiment
from repro.metrics.report import render_table
from repro.units import mib

FILE_SIZE = mib(max(SCALE_MIB * 4, 16))


def _run():
    cfg = ExperimentConfig(
        stack="quiche",
        qdisc="fq",
        spurious_rollback=True,
        file_size=FILE_SIZE,
        repetitions=1,
        seed=SEED,
        trace_cwnd=True,
    )
    return Experiment(cfg, seed=SEED).run()


def test_fig7_cwnd_rollback_timeline(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)

    trace = result.cwnd_trace
    assert len(trace) > 10

    # Render the timeline at a 100 ms sample interval.
    samples = {}
    for t, cwnd in trace:
        samples[t // 100_000_000] = cwnd
    rows = [[f"{k / 10:.1f}s", f"{v / 1000:.0f} kB"] for k, v in sorted(samples.items())]
    rollbacks = result.server_stats["rollbacks"]
    publish(
        "fig7_cwnd_rollback",
        render_table(["time", "cwnd"], rows, title="Figure 7: cwnd under spurious-loss rollback")
        + f"\n\nrollbacks: {rollbacks}, congestion events: "
        + str(result.server_stats["congestion_events"]),
    )

    assert result.completed
    # Rollbacks happened repeatedly.
    assert rollbacks >= 2
    # The signature oscillation: after a sharp reduction, the window snaps
    # back up (a rollback restore) within roughly one RTT of trace samples.
    values = [v for _, v in trace]
    times = [t for t, _ in trace]
    drops_then_rises = 0
    i = 1
    while i < len(values):
        if values[i] < values[i - 1] * 0.85:  # congestion-event reduction
            horizon = times[i] + 200_000_000  # 200 ms ~ a few RTTs
            j = i + 1
            while j < len(values) and times[j] <= horizon:
                if values[j] > values[i] * 1.2:
                    drops_then_rises += 1
                    break
                j += 1
            i = j
        i += 1
    assert drops_then_rises >= 2
