"""Ablation: ACK frequency vs pacing (Section 2's motivation).

"While a smaller ACK frequency reduces the overhead for data receivers, it
reduces the effectiveness of ACK-clocking and could lead to bursts if pacing
is not implemented." We sweep the client's ACK delay for a quiche sender
with and without a pacing qdisc: without FQ, sparser ACKs directly convert
into longer wire bursts; with FQ the burstiness stays flat.
"""

from benchmarks.conftest import publish, scaled
from repro.framework.experiment import Experiment
from repro.metrics.report import render_table
from repro.metrics.trains import fraction_of_packets_in_trains_leq
from repro.units import ms

ACK_DELAYS_MS = (1, 5, 10, 25)


def _run(qdisc: str, ack_delay_ms: int):
    cfg = scaled(
        stack="quiche",
        qdisc=qdisc,
        spurious_rollback=False,
        client_ack_threshold=1_000_000,  # ACK purely on the delay timer
        client_max_ack_delay_ns=ms(ack_delay_ms),
        repetitions=1,
    )
    return Experiment(cfg, seed=cfg.seed).run()


def _collect():
    return {
        (qdisc, delay): _run(qdisc, delay)
        for qdisc in ("none", "fq")
        for delay in ACK_DELAYS_MS
    }


def test_ablation_ack_frequency(benchmark):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    smooth = {
        key: fraction_of_packets_in_trains_leq(r.server_records, 5)
        for key, r in results.items()
    }
    rows = [
        [
            f"{delay} ms",
            f"{smooth[('none', delay)] * 100:.1f}%",
            f"{smooth[('fq', delay)] * 100:.1f}%",
            f"{results[('none', delay)].goodput_mbps:.1f} / {results[('fq', delay)].goodput_mbps:.1f}",
        ]
        for delay in ACK_DELAYS_MS
    ]
    publish(
        "ablation_ack_frequency",
        render_table(
            ["client ACK delay", "trains <= 5 (no qdisc)", "trains <= 5 (FQ)", "goodput none/fq"],
            rows,
            title="Ablation: ACK frequency x pacing (Section 2 motivation)",
        ),
    )

    # Without pacing, sparser ACKs make the wire clearly burstier.
    assert smooth[("none", 25)] < smooth[("none", 1)] - 0.1

    # With FQ, pacing largely holds regardless of ACK frequency (the residual
    # burstiness comes from the pacing-rate surplus during catch-up, not from
    # the missing ACK clock).
    for delay in ACK_DELAYS_MS:
        assert smooth[("fq", delay)] > 0.8, delay
        assert smooth[("fq", delay)] > smooth[("none", delay)] + 0.15, delay
    # And FQ degrades far less than the unpaced sender as ACKs get sparse.
    fq_degradation = smooth[("fq", 1)] - smooth[("fq", 25)]
    none_degradation = smooth[("none", 1)] - smooth[("none", 25)]
    assert fq_degradation < none_degradation

    for r in results.values():
        assert r.completed
