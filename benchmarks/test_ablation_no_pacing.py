"""Ablation: disabling pacing entirely (related-work context).

Manzoor et al. (cited in Section 5) explicitly prevent pacing to improve
QUIC in WiFi but "did not evaluate inter-packet gaps and the actual pacing
behavior in more detail". Here we disable the pacer in picoquic and ngtcp2
and quantify what that does to the wire: bursts the size of whatever the
window releases, and (for loss-based CCAs) more loss at the bottleneck.
"""

from benchmarks.conftest import publish, scaled
from repro.framework.experiment import Experiment
from repro.metrics.report import render_table
from repro.metrics.trains import fraction_of_packets_in_trains_leq


def _run(stack: str, pacing_override):
    cfg = scaled(
        stack=stack,
        pacing_override=pacing_override,
        repetitions=1,
    )
    return Experiment(cfg, seed=cfg.seed).run()


def _collect():
    out = {}
    for stack in ("picoquic", "ngtcp2"):
        out[(stack, "stock")] = _run(stack, None)
        out[(stack, "no pacing")] = _run(stack, "none")
    return out


def test_ablation_no_pacing(benchmark):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    smooth = {}
    for (stack, mode), r in results.items():
        smooth[(stack, mode)] = fraction_of_packets_in_trains_leq(r.server_records, 5)
        rows.append(
            [
                f"{stack} ({mode})",
                f"{smooth[(stack, mode)] * 100:.1f}%",
                str(r.dropped),
                f"{r.goodput_mbps:.2f}",
            ]
        )
    publish(
        "ablation_no_pacing",
        render_table(
            ["configuration", "trains <= 5", "dropped", "goodput [Mbit/s]"],
            rows,
            title="Ablation: pacer disabled (cf. Manzoor et al.)",
        ),
    )

    # Removing the pacer makes both stacks' wire behaviour clearly burstier.
    for stack in ("picoquic", "ngtcp2"):
        assert smooth[(stack, "no pacing")] < smooth[(stack, "stock")], stack
        assert results[(stack, "no pacing")].completed
