"""Figure 2: CDF of inter-packet gaps, baseline (all stacks on CUBIC).

Paper observations: ~50 % of packets leave back-to-back for all stacks
(~40 % for picoquic), and the overwhelming majority of gaps are < 1.5 ms.
"""

from benchmarks.conftest import publish, scaled
from repro.metrics.gaps import cdf, fraction_leq, inter_packet_gaps
from repro.metrics.report import render_cdf, render_table
from repro.units import ms, us

STACKS = ("quiche", "picoquic", "ngtcp2", "tcp")

#: Gaps at or below the serialization floor count as back-to-back
#: (min theoretical gap in the paper's setup: ~0.012 ms).
BACK_TO_BACK_NS = us(15)


def _collect(runs):
    gaps = {}
    for stack in STACKS:
        summary = runs.get(scaled(stack=stack))
        stack_gaps = []
        for records in summary.pooled_records:
            stack_gaps.extend(inter_packet_gaps(records))
        gaps[stack] = stack_gaps
    return gaps


def test_fig2_baseline_gap_cdf(runs, benchmark):
    gaps = benchmark.pedantic(_collect, args=(runs,), rounds=1, iterations=1)

    series = {stack: cdf(values) for stack, values in gaps.items()}
    table = render_cdf(
        series,
        quantiles=(0.10, 0.25, 0.40, 0.50, 0.75, 0.90, 0.99),
        title="Figure 2: inter-packet gap CDF (baseline, CUBIC)",
    )
    b2b_rows = [
        [stack, f"{fraction_leq(values, BACK_TO_BACK_NS) * 100:.1f}%"]
        for stack, values in gaps.items()
    ]
    table += "\n\n" + render_table(["stack", "back-to-back share"], b2b_rows)
    publish("fig2_baseline_gaps", table)

    for stack, values in gaps.items():
        assert len(values) > 500, stack
        # The bulk of gaps is small (paper: most below 1.5 ms).
        assert fraction_leq(values, ms(2)) > 0.9, stack

    # Back-to-back shares: sizable for quiche/tcp/ngtcp2, smaller for
    # picoquic (paper: ~50 % vs ~40 %; our picoquic leans lower).
    b2b = {s: fraction_leq(v, BACK_TO_BACK_NS) for s, v in gaps.items()}
    assert 0.30 < b2b["quiche"] < 0.85
    assert 0.30 < b2b["tcp"] < 0.80
    assert b2b["picoquic"] < b2b["tcp"]
