"""Build wiring for the optional compiled simulation core.

The package is pure Python first: every build artifact here is optional and
the library falls back to the pure modules (see ``repro/_build.py``) when
nothing compiled is importable. Three outcomes, decided at build time:

* A C toolchain is available → ``repro._speed._core`` (the hand-written
  accelerator covering the event engine and QUIC varints) is compiled.
* ``REPRO_SKIP_EXT=1`` is set, or no toolchain exists → the extension is
  skipped (``optional=True`` keeps the install going) and the install is
  pure Python.
* A mypyc toolchain is importable *and* ``REPRO_MYPYC=1`` is set → the
  typed hot modules listed in ``repro._build.COMPILED_SCOPE`` are compiled
  in place by mypyc as well. This is opt-in because mypyc compiles modules
  under their own import names, which bypasses the ``REPRO_PURE_PYTHON``
  runtime escape hatch; the hand-written core is the default accelerator.

Developer quickstart::

    pip install -e .[compiled]          # builds _core when a compiler exists
    python setup.py build_ext --inplace # same, for PYTHONPATH=src workflows
    python -m repro --build-info        # verify what the process selected
"""

from __future__ import annotations

import os

from setuptools import Extension, setup


def _truthy(name: str) -> bool:
    return os.environ.get(name, "").strip() not in ("", "0")


def _extensions() -> list:
    if _truthy("REPRO_SKIP_EXT"):
        return []
    ext = Extension(
        "repro._speed._core",
        sources=["src/repro/_speed/_core.c"],
        optional=True,  # no toolchain -> pure-Python install, not a failure
    )
    extensions = [ext]
    if _truthy("REPRO_MYPYC"):
        try:
            from mypyc.build import mypycify
        except ImportError:
            print("setup.py: REPRO_MYPYC=1 but mypyc is not installed; "
                  "building only the C core")
        else:
            from repro._build import COMPILED_SCOPE  # type: ignore

            paths = [
                os.path.join("src", *mod.split(".")) + ".py"
                for mod in COMPILED_SCOPE
            ]
            extensions += mypycify(paths)
    return extensions


setup(ext_modules=_extensions())
