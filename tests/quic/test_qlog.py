"""qlog-style tracing."""

import json

from repro.framework.config import ExperimentConfig, NetworkConfig
from repro.framework.experiment import Experiment
from repro.net.impairments import burst_loss, iid_loss
from repro.quic.qlog import QlogTrace, attach_qlog
from repro.units import kib


def run_traced(**kwargs):
    kwargs.setdefault("file_size", kib(200))
    cfg = ExperimentConfig(stack="quiche", repetitions=1, qlog=True, **kwargs)
    experiment = Experiment(cfg, seed=17)
    result = experiment.run()
    return experiment, result


def test_trace_records_sends_and_receives():
    experiment, result = run_traced()
    trace = experiment.qlog_trace
    sent = trace.of_type("transport:packet_sent")
    assert len(sent) == experiment.server.conn.packets_sent
    assert len(trace.of_type("transport:packet_received")) > 0
    # Events are time-ordered.
    times = [e.time_ns for e in trace.events]
    assert times == sorted(times)


def test_metrics_updated_on_acks():
    experiment, _ = run_traced()
    metrics = experiment.qlog_trace.of_type("recovery:metrics_updated")
    assert metrics
    for e in metrics[:10]:
        assert e.data["cwnd"] > 0
        assert e.data["pacing_rate_bps"] > 0


def test_loss_events_traced():
    experiment, result = run_traced(file_size=kib(2048))
    lost = experiment.qlog_trace.of_type("recovery:packet_lost")
    events = experiment.qlog_trace.of_type("recovery:congestion_event")
    assert result.dropped > 0
    assert len(lost) >= result.dropped * 0.5  # most drops get detected
    assert events


def test_packet_sent_payload_fields():
    experiment, _ = run_traced()
    e = experiment.qlog_trace.of_type("transport:packet_sent")[0]
    assert {"packet_number", "size", "ack_eliciting", "frames"} <= set(e.data)


def test_serialization_roundtrip(tmp_path):
    experiment, _ = run_traced()
    path = experiment.qlog_trace.save(tmp_path / "trace.qlog")
    loaded = json.loads(path.read_text())
    assert loaded["qlog_version"]
    assert loaded["trace"]["events"]
    assert loaded["trace"]["events"][0]["time"] >= 0


def test_short_transfer_covers_expected_categories():
    experiment, result = run_traced(file_size=kib(64))
    assert result.completed
    categories = {e.name for e in experiment.qlog_trace.events}
    assert {
        "transport:packet_sent",
        "transport:packet_received",
        "recovery:metrics_updated",
    } <= categories
    # Every event name is category:event shaped.
    assert all(e.name.count(":") == 1 for e in experiment.qlog_trace.events)


def test_to_dict_is_json_serializable():
    experiment, _ = run_traced(file_size=kib(64))
    d = experiment.qlog_trace.to_dict()
    reloaded = json.loads(json.dumps(d))
    assert reloaded == d
    assert len(reloaded["trace"]["events"]) == len(experiment.qlog_trace)


def test_injected_drops_appear_in_trace():
    net = NetworkConfig(forward_impairments=(iid_loss(0.03),))
    experiment, result = run_traced(network=net)
    drops = experiment.qlog_trace.of_type("network:injected_drop")
    assert result.injected_drops > 0
    assert len(drops) == result.injected_drops
    e = drops[0]
    assert e.data["kind"] == "loss"
    assert e.data["stage"] == "fwd/0/loss"
    assert e.data["size"] > 0
    # Injected-drop events interleave time-ordered with the transport events.
    times = [e.time_ns for e in experiment.qlog_trace.events]
    assert times == sorted(times)


def test_recovery_events_under_injected_burst_loss():
    net = NetworkConfig(forward_impairments=(burst_loss(p_enter=0.01),))
    experiment, result = run_traced(file_size=kib(512), network=net)
    trace = experiment.qlog_trace
    assert result.injected_drops > 0
    lost = trace.of_type("recovery:packet_lost")
    assert lost
    assert trace.of_type("recovery:congestion_event")
    # The loss the controller reacts to is the fault layer's, not queue
    # overflow: the trace distinguishes the two.
    assert trace.of_type("network:injected_drop")
    assert result.dropped == 0 or len(lost) >= result.dropped


def test_manual_attach():
    from repro.quic.connection import Connection

    conn = Connection("client")
    trace = QlogTrace("manual", vantage_point="client")
    attach_qlog(conn, trace)
    conn.start_handshake()
    built = conn.build_packet(0)
    conn.on_packet_sent(built, 0)
    assert len(trace.of_type("transport:packet_sent")) == 1
    assert conn.qlog is trace
