"""RangeSet against a brute-force set model (hypothesis)."""

from hypothesis import given, strategies as st

from repro.quic.ranges import RangeSet


def test_add_disjoint():
    rs = RangeSet()
    assert rs.add(0, 10) == 10
    assert rs.add(20, 30) == 10
    assert list(rs) == [(0, 10), (20, 30)]
    assert rs.total == 20


def test_add_overlapping_merges():
    rs = RangeSet()
    rs.add(0, 10)
    assert rs.add(5, 15) == 5
    assert list(rs) == [(0, 15)]


def test_add_touching_merges():
    rs = RangeSet()
    rs.add(0, 10)
    rs.add(10, 20)
    assert list(rs) == [(0, 20)]


def test_add_bridging_gap():
    rs = RangeSet()
    rs.add(0, 5)
    rs.add(10, 15)
    assert rs.add(3, 12) == 5
    assert list(rs) == [(0, 15)]


def test_empty_add_is_noop():
    rs = RangeSet()
    assert rs.add(5, 5) == 0
    assert rs.total == 0


def test_contains_and_covers():
    rs = RangeSet()
    rs.add(10, 20)
    assert rs.contains(10)
    assert rs.contains(19)
    assert not rs.contains(20)
    assert not rs.contains(9)
    assert rs.covers(10, 20)
    assert rs.covers(12, 15)
    assert not rs.covers(5, 15)
    assert rs.covers(7, 7)  # empty range always covered


def test_first_gap_from():
    rs = RangeSet()
    rs.add(0, 10)
    rs.add(15, 20)
    assert rs.first_gap_from(0) == 10
    assert rs.first_gap_from(15) == 20
    assert rs.first_gap_from(12) == 12
    assert rs.first_gap_from(100) == 100


def test_missing_within():
    rs = RangeSet()
    rs.add(5, 10)
    rs.add(15, 20)
    assert rs.missing_within(0, 25) == [(0, 5), (10, 15), (20, 25)]
    assert rs.missing_within(5, 10) == []
    assert rs.missing_within(7, 17) == [(10, 15)]


@st.composite
def range_ops(draw):
    return draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=200),
                st.integers(min_value=0, max_value=40),
            ),
            min_size=1,
            max_size=30,
        )
    )


@given(range_ops())
def test_model_equivalence(ops):
    rs = RangeSet()
    model: set[int] = set()
    for start, length in ops:
        end = start + length
        added = rs.add(start, end)
        new = set(range(start, end)) - model
        assert added == len(new)
        model |= new
        assert rs.total == len(model)
    # Structural checks.
    ranges = list(rs)
    for i, (lo, hi) in enumerate(ranges):
        assert lo < hi
        if i:
            assert ranges[i - 1][1] < lo  # disjoint and non-touching
    # Point membership.
    for v in range(0, 245):
        assert rs.contains(v) == (v in model)
    # first_gap_from consistency.
    for v in (0, 50, 100):
        gap = rs.first_gap_from(v)
        assert gap not in model
        assert all(x in model for x in range(v, gap))


@given(range_ops(), st.integers(min_value=0, max_value=100), st.integers(min_value=0, max_value=150))
def test_missing_within_model(ops, start, length):
    rs = RangeSet()
    model: set[int] = set()
    for s, ln in ops:
        rs.add(s, s + ln)
        model |= set(range(s, s + ln))
    end = start + length
    missing = rs.missing_within(start, end)
    flat = set()
    for lo, hi in missing:
        assert lo < hi
        flat |= set(range(lo, hi))
    assert flat == set(range(start, end)) - model
