"""Receiver-side ACK manager policy."""

from hypothesis import given, strategies as st

from repro.quic.ack import AckManager
from repro.units import ms


def test_every_second_eliciting_packet_acks_immediately():
    mgr = AckManager()
    mgr.record(0, True, 0)
    assert not mgr.should_ack_now(0)
    mgr.record(1, True, 100)
    assert mgr.should_ack_now(100)


def test_delayed_ack_deadline():
    mgr = AckManager(max_ack_delay_ns=ms(25))
    mgr.record(0, True, 0)
    assert mgr.ack_deadline() == ms(25)
    assert not mgr.should_ack_now(ms(24))
    assert mgr.should_ack_now(ms(25))


def test_non_eliciting_packets_do_not_force_ack():
    mgr = AckManager()
    for pn in range(10):
        mgr.record(pn, False, 0)
    assert not mgr.ack_pending
    assert mgr.ack_deadline() is None


def test_new_gap_triggers_immediate_ack():
    mgr = AckManager(ack_eliciting_threshold=100)
    mgr.record(0, True, 0)
    mgr.record(2, True, 10)  # pn 1 missing
    assert mgr.should_ack_now(10)


def test_old_gap_does_not_retrigger():
    mgr = AckManager(ack_eliciting_threshold=100)
    mgr.record(0, True, 0)
    mgr.record(2, True, 10)
    mgr.build_ack(10)
    mgr.record(3, True, 20)  # gap at 1 persists but is not new
    assert not mgr.should_ack_now(20)


def test_build_ack_resets_state():
    mgr = AckManager()
    mgr.record(0, True, 0)
    mgr.record(1, True, 10)
    ack = mgr.build_ack(100)
    assert ack.largest == 1
    assert ack.ranges == ((0, 1),)
    assert not mgr.ack_pending
    assert mgr.ack_deadline() is None


def test_ack_delay_reflects_largest_arrival():
    mgr = AckManager()
    mgr.record(0, True, ms(5))
    ack = mgr.build_ack(ms(9))
    assert ack.ack_delay_us == 4000


def test_duplicates_counted_not_recorded():
    mgr = AckManager()
    mgr.record(0, True, 0)
    mgr.record(0, True, 10)
    assert mgr.duplicates == 1
    assert mgr.received_count() == 1


def test_ranges_merge_and_report_descending():
    mgr = AckManager()
    for pn in (0, 1, 5, 6, 3):
        mgr.record(pn, True, 0)
    ack = mgr.build_ack(0)
    assert ack.largest == 6
    assert ack.ranges == ((5, 6), (3, 3), (0, 1))


def test_range_cap():
    mgr = AckManager()
    # 15 disjoint singletons; only the top 10 ranges go in the frame.
    for pn in range(0, 30, 2):
        mgr.record(pn, True, 0)
    ack = mgr.build_ack(0)
    assert len(ack.ranges) == 10
    assert ack.ranges[0] == (28, 28)


def test_build_ack_empty_returns_none():
    assert AckManager().build_ack(0) is None


@given(st.lists(st.integers(min_value=0, max_value=300), min_size=1, max_size=80))
def test_ranges_model(pns):
    mgr = AckManager()
    for pn in pns:
        mgr.record(pn, True, 0)
    ack = mgr.build_ack(0)
    covered = set(ack.acked_packet_numbers())
    unique = set(pns)
    assert ack.largest == max(unique)
    # Frame ranges may truncate the lowest packet numbers (cap at 10 ranges),
    # but everything covered must have been received, descending order holds.
    assert covered <= unique
    highs = [hi for _, hi in ack.ranges]
    assert highs == sorted(highs, reverse=True)
    assert mgr.received_count() == len(unique)
