"""Robustness: parsers must fail cleanly (EncodingError), never crash.

A user-space QUIC endpoint is exposed to arbitrary datagrams; every byte
sequence must either parse or raise the library's encoding error — any other
exception is a bug. Hypothesis drives the parsers with random and with
mutated-valid inputs.
"""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EncodingError
from repro.quic.connection import Connection
from repro.quic.frames import StreamFrame, parse_frames
from repro.quic.packet import PacketType, QuicPacket
from repro.quic.varint import decode_varint


@given(st.binary(min_size=0, max_size=400))
def test_frame_parser_never_crashes(data):
    try:
        frames = parse_frames(data)
    except EncodingError:
        return
    assert isinstance(frames, list)


@given(st.binary(min_size=0, max_size=100))
def test_packet_decoder_never_crashes(data):
    try:
        packet = QuicPacket.decode(data)
    except EncodingError:
        return
    assert packet.packet_number >= 0


@given(st.binary(min_size=0, max_size=20), st.integers(min_value=0, max_value=30))
def test_varint_decoder_never_crashes(data, offset):
    try:
        value, end = decode_varint(data, offset)
    except EncodingError:
        return
    assert 0 <= value
    assert offset < end <= len(data)


@st.composite
def mutated_packet(draw):
    """A valid encoded packet with one byte flipped."""
    pn = draw(st.integers(min_value=0, max_value=1000))
    data = draw(st.binary(min_size=1, max_size=200))
    encoded = bytearray(
        QuicPacket(PacketType.ONE_RTT, pn, [StreamFrame(0, 0, data)]).encode()
    )
    index = draw(st.integers(min_value=0, max_value=len(encoded) - 1))
    flip = draw(st.integers(min_value=1, max_value=255))
    encoded[index] ^= flip
    return bytes(encoded)


@given(mutated_packet())
def test_connection_survives_mutated_packets(data):
    conn = Connection("server")
    conn.on_datagram(data, 0)  # must never raise
    # Either it parsed (possibly into nonsense frames) or was counted as bad.
    assert conn.packets_received + conn.decode_errors >= 0


@given(st.lists(st.binary(min_size=0, max_size=120), min_size=1, max_size=10))
def test_connection_survives_random_garbage(blobs):
    conn = Connection("server")
    for blob in blobs:
        conn.on_datagram(blob, 0)
    assert conn.decode_errors <= len(blobs)
