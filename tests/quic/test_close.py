"""Graceful connection close."""

from repro.quic.frames import ConnectionCloseFrame
from repro.quic.stream import DataSource
from repro.units import kib, ms
from tests.quic.test_connection import complete_handshake, make_pair, pump


def test_close_sends_one_close_frame_then_stops():
    server, client = make_pair()
    complete_handshake(server, client)
    client.close(0, b"bye")
    assert client.wants_to_send(ms(1))
    built = client.build_packet(ms(1))
    assert any(isinstance(f, ConnectionCloseFrame) for f in built.packet.frames)
    assert not built.ack_eliciting
    client.on_packet_sent(built, ms(1))
    assert client.close_sent
    assert not client.wants_to_send(ms(2))
    assert client.build_packet(ms(2)) is None


def test_close_is_idempotent():
    _, client = make_pair()
    client.close()
    client.close()
    built = client.build_packet(0)
    client.on_packet_sent(built, 0)
    assert client.build_packet(0) is None


def test_peer_stops_on_close():
    server, client = make_pair()
    complete_handshake(server, client)
    server.open_send_stream(0, DataSource(kib(100)))
    assert server.wants_to_send(ms(1))
    client.close(0, b"enough")
    built = client.build_packet(ms(1))
    client.on_packet_sent(built, ms(1))
    server.on_datagram(built.encoded, ms(2))
    assert server.closed
    assert not server.wants_to_send(ms(2))


def test_client_driver_closes_after_download():
    from repro.framework.config import ExperimentConfig
    from repro.framework.experiment import Experiment

    e = Experiment(
        ExperimentConfig(stack="quiche", file_size=kib(200), repetitions=1), seed=3
    )
    result = e.run()
    assert result.completed
    assert e.client.conn.close_sent
    # The server received the close and went quiet.
    assert e.server.conn.closed
