"""Send/receive stream state machines."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ProtocolError
from repro.quic.stream import DataSource, RecvStream, SendStream


def make_stream(size=10_000):
    return SendStream(0, DataSource(size))


class TestDataSource:
    def test_read_within_bounds(self):
        src = DataSource(100)
        assert src.read(0, 10) == bytes(10)
        assert src.read(95, 10) == bytes(5)
        assert src.read(100, 10) == b""

    def test_fill_byte(self):
        src = DataSource(4, fill=0xAB)
        assert src.read(0, 4) == b"\xab\xab\xab\xab"


class TestSendStream:
    def test_sequential_chunks(self):
        s = make_stream(2500)
        chunks = []
        while True:
            c = s.next_chunk(1000)
            if c is None:
                break
            chunks.append(c)
        assert chunks == [
            (0, 1000, False, False),
            (1000, 1000, False, False),
            (2000, 500, True, False),
        ]
        assert s.fin_sent

    def test_fin_on_exact_boundary(self):
        s = make_stream(1000)
        assert s.next_chunk(1000) == (0, 1000, True, False)

    def test_bare_fin_when_no_budget(self):
        s = make_stream(1000)
        s.next_chunk(1000)
        s.fin_sent = False  # pretend the FIN-carrying frame was lost
        assert s.next_chunk(0) == (1000, 0, True, False)

    def test_loss_queues_retransmission_first(self):
        s = make_stream(5000)
        s.next_chunk(1000)
        s.next_chunk(1000)
        s.on_loss(0, 1000, False)
        assert s.has_retx
        assert s.next_chunk(400) == (0, 400, False, True)
        assert s.next_chunk(600) == (400, 600, False, True)
        # After retransmissions, new data resumes.
        assert s.next_chunk(1000) == (2000, 1000, False, False)

    def test_loss_of_acked_bytes_not_requeued(self):
        s = make_stream(5000)
        s.next_chunk(1000)
        s.on_ack(0, 600, False)
        s.on_loss(0, 1000, False)
        assert s.retx_pending_bytes == 400
        assert s.next_chunk(1000) == (600, 400, False, True)

    def test_all_acked(self):
        s = make_stream(1000)
        s.next_chunk(1000)
        assert not s.all_acked
        s.on_ack(0, 1000, True)
        assert s.all_acked

    def test_fin_loss_resends_fin(self):
        s = make_stream(100)
        s.next_chunk(100)
        s.on_loss(0, 100, True)
        offset, length, fin, is_retx = s.next_chunk(200)
        assert (offset, length, fin, is_retx) == (0, 100, True, True)

    def test_adjacent_retx_ranges_merge(self):
        s = make_stream(5000)
        for _ in range(3):
            s.next_chunk(1000)
        s.on_loss(0, 1000, False)
        s.on_loss(1000, 1000, False)
        assert s.retx_pending_bytes == 2000
        assert len(s._retx) == 1

    def test_has_data_reflects_state(self):
        s = make_stream(100)
        assert s.has_data
        s.next_chunk(100)
        assert not s.has_data
        s.on_loss(0, 100, False)
        assert s.has_data


class TestRecvStream:
    def test_in_order_delivery(self):
        r = RecvStream(0)
        assert r.on_frame(0, 100, False) == 100
        assert r.delivered == 100
        assert r.on_frame(100, 100, True) == 100
        assert r.complete
        assert r.final_size == 200

    def test_out_of_order_reassembly(self):
        r = RecvStream(0)
        r.on_frame(100, 100, False)
        assert r.delivered == 0
        r.on_frame(0, 100, False)
        assert r.delivered == 200

    def test_duplicates_counted_once(self):
        r = RecvStream(0)
        r.on_frame(0, 100, False)
        assert r.on_frame(0, 100, False) == 0
        assert r.bytes_received_total == 200
        assert r.received.total == 100

    def test_conflicting_final_size_rejected(self):
        r = RecvStream(0)
        r.on_frame(0, 100, True)
        with pytest.raises(ProtocolError):
            r.on_frame(100, 50, True)

    def test_data_past_final_size_rejected(self):
        r = RecvStream(0)
        r.on_frame(0, 100, True)
        with pytest.raises(ProtocolError):
            r.on_frame(100, 1, False)

    def test_not_complete_with_gap(self):
        r = RecvStream(0)
        r.on_frame(50, 50, True)
        assert not r.complete
        r.on_frame(0, 50, False)
        assert r.complete


@given(st.permutations(list(range(10))))
def test_recv_stream_any_arrival_order(order):
    r = RecvStream(0)
    for idx in order:
        fin = idx == 9
        r.on_frame(idx * 100, 100, fin)
    assert r.complete
    assert r.delivered == 1000


@given(
    st.integers(min_value=1, max_value=5000),
    st.lists(st.integers(min_value=1, max_value=700), min_size=1, max_size=20),
)
def test_send_stream_emits_every_byte_exactly_once(size, budgets):
    s = SendStream(0, DataSource(size))
    emitted = []
    i = 0
    while True:
        c = s.next_chunk(budgets[i % len(budgets)])
        i += 1
        if c is None:
            break
        emitted.append(c)
    covered = set()
    for offset, length, _fin, _retx in emitted:
        chunk = set(range(offset, offset + length))
        assert not (chunk & covered)  # no duplicates without loss
        covered |= chunk
    assert covered == set(range(size))
    assert emitted[-1][2]  # last chunk carries FIN
