"""QUIC packet encode/decode: headers, sizes, AEAD expansion."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EncodingError
from repro.quic.frames import CryptoFrame, PingFrame, StreamFrame
from repro.quic.packet import (
    AEAD_TAG_LEN,
    PacketType,
    QuicPacket,
    short_header_overhead,
)


def test_short_header_roundtrip():
    p = QuicPacket(PacketType.ONE_RTT, 42, [StreamFrame(0, 100, b"data", True)])
    decoded = QuicPacket.decode(p.encode())
    assert decoded.packet_type is PacketType.ONE_RTT
    assert decoded.packet_number == 42
    assert decoded.frames == p.frames


def test_long_header_roundtrip():
    for ptype in (PacketType.INITIAL, PacketType.HANDSHAKE):
        p = QuicPacket(ptype, 0, [CryptoFrame(0, bytes(100))], dcid=b"\x01" * 8, scid=b"\x02" * 8)
        decoded = QuicPacket.decode(p.encode())
        assert decoded.packet_type is ptype
        assert decoded.dcid == b"\x01" * 8
        assert decoded.scid == b"\x02" * 8
        assert decoded.frames == p.frames


def test_encoded_len_matches_actual():
    p = QuicPacket(PacketType.ONE_RTT, 7, [StreamFrame(4, 0, bytes(500))])
    assert p.encoded_len == len(p.encode())
    p2 = QuicPacket(PacketType.INITIAL, 0, [CryptoFrame(0, bytes(300))])
    assert p2.encoded_len == len(p2.encode())


def test_aead_tag_counts_toward_size():
    p = QuicPacket(PacketType.ONE_RTT, 0, [PingFrame()])
    # flags + dcid(8) + pn(4) + ping(1) + tag(16)
    assert len(p.encode()) == 1 + 8 + 4 + 1 + AEAD_TAG_LEN
    assert short_header_overhead() == 1 + 8 + 4 + AEAD_TAG_LEN


def test_empty_packet_rejected():
    with pytest.raises(EncodingError):
        QuicPacket(PacketType.ONE_RTT, 0, []).encode()


def test_truncated_packet_rejected():
    with pytest.raises(EncodingError):
        QuicPacket.decode(b"\x40\x00")


def test_ack_eliciting_property():
    from repro.quic.frames import AckFrame

    only_ack = QuicPacket(PacketType.ONE_RTT, 0, [AckFrame(0, 0, ((0, 0),))])
    assert not only_ack.ack_eliciting
    with_data = QuicPacket(PacketType.ONE_RTT, 0, [AckFrame(0, 0, ((0, 0),)), PingFrame()])
    assert with_data.ack_eliciting


@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.binary(min_size=0, max_size=1200),
    st.booleans(),
)
def test_short_header_roundtrip_property(pn, data, fin):
    p = QuicPacket(PacketType.ONE_RTT, pn, [StreamFrame(0, 1, data, fin)])
    d = QuicPacket.decode(p.encode())
    assert d.packet_number == pn
    assert d.frames == p.frames
