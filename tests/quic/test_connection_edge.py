"""Connection edge cases: garbage input, probe behaviour, control-frame loss."""

from repro.quic.connection import Connection, ConnectionConfig
from repro.quic.frames import MaxDataFrame
from repro.quic.stream import DataSource
from repro.units import kib, ms
from tests.quic.test_connection import complete_handshake, make_pair, pump


def test_garbage_datagram_dropped_and_counted():
    server, _ = make_pair()
    server.on_datagram(b"\x00\x01garbage", 0)
    server.on_datagram(b"", 0)
    assert server.decode_errors == 2
    assert server.packets_received == 0


def test_pto_backoff_doubles():
    server, client = make_pair()
    complete_handshake(server, client)
    server.open_send_stream(0, DataSource(kib(5)))
    built = server.build_packet(ms(1))
    server.on_packet_sent(built, ms(1))
    first = server.recovery.next_timeout(); assert first
    server.on_timeout(first)
    second = server.recovery.next_timeout()
    # Exponential PTO backoff.
    assert second - first >= (first - ms(1)) * 0.9


def test_probe_carries_retransmittable_data():
    server, client = make_pair()
    complete_handshake(server, client)
    server.open_send_stream(0, DataSource(kib(5)))
    built = server.build_packet(ms(1))
    server.on_packet_sent(built, ms(1))
    deadline = server.recovery.next_timeout()
    server.on_timeout(deadline)
    probe = server.build_packet(deadline)
    assert probe is not None
    assert probe.ack_eliciting


def test_max_data_frame_loss_is_reissued():
    server, client = make_pair(recv_conn_window=kib(8), recv_stream_window=kib(8))
    complete_handshake(server, client)
    server.open_send_stream(0, DataSource(kib(64)))
    now = ms(1)
    # Move data until the client wants to send a window update.
    for _ in range(50):
        pump(server, client, now)
        now += ms(5)
        server.on_timeout(now)
        client.on_timeout(now)
        if client.transfer_complete(0):
            break
    assert client.transfer_complete(0)
    # The transfer needed multiple MAX_DATA updates to complete.
    assert server.conn_send_limit.limit > kib(8)


def test_max_data_reissue_uses_fresh_limit():
    client = Connection("client", config=ConnectionConfig(recv_conn_window=kib(8)))
    # Simulate a lost MAX_DATA: queue one, advance consumption, re-queue.
    client.conn_recv_limit.on_consumed(kib(4))
    client._queue_max_data(ms(1))
    first = [f for f in client._control_frames if isinstance(f, MaxDataFrame)][0]
    client.conn_recv_limit.on_consumed(kib(6))
    client._queue_max_data(ms(2))
    frames = [f for f in client._control_frames if isinstance(f, MaxDataFrame)]
    assert len(frames) == 1  # deduplicated
    assert frames[0].max_data > first.max_data


def test_handshake_crypto_retransmission():
    server, client = make_pair()
    client.start_handshake()
    # The INITIAL is lost; the PTO fires and the client retries.
    built = client.build_packet(0)
    client.on_packet_sent(built, 0)
    deadline = client.recovery.next_timeout()
    client.on_timeout(deadline)
    retry = client.build_packet(deadline)
    assert retry is not None
    client.on_packet_sent(retry, deadline)
    server.on_datagram(retry.encoded, deadline + ms(20))
    pump(server, client, deadline + ms(40))
    assert server.established and client.established


def test_client_ack_threshold_respected():
    server, client = make_pair(ack_threshold=10, max_ack_delay_ns=ms(25))
    complete_handshake(server, client)
    server.open_send_stream(0, DataSource(kib(20)))
    now = ms(1)
    sent = 0
    while server.wants_to_send(now) and sent < 5:
        built = server.build_packet(now)
        if built is None:
            break
        server.on_packet_sent(built, now)
        client.on_datagram(built.encoded, now)
        sent += 1
    # Only 5 ack-eliciting packets: below the threshold, no immediate ack;
    # only the (already-armed) delayed-ACK deadline remains.
    assert not client.ack_mgr.should_ack_now(now)
    assert client.ack_mgr.ack_deadline() <= now + ms(25)


def test_bytes_conservation_over_lossless_transfer():
    server, client = make_pair()
    complete_handshake(server, client)
    size = kib(40)
    server.open_send_stream(0, DataSource(size))
    now = ms(1)
    for _ in range(200):
        pump(server, client, now)
        now += ms(10)
        server.on_timeout(now)
        client.on_timeout(now)
        if client.transfer_complete(0):
            break
    stream = client.recv_streams[0]
    assert stream.final_size == size
    # No loss: zero retransmitted stream bytes, no duplicates received.
    assert server.stream_bytes_retx == 0
    assert stream.bytes_received_total == size
