"""Flow-control credit, violations, window updates, autotuning."""

import pytest

from repro.errors import FlowControlError
from repro.quic.flowcontrol import RecvLimit, SendLimit
from repro.units import ms


class TestSendLimit:
    def test_consume_tracks_credit(self):
        sl = SendLimit(1000)
        assert sl.available == 1000
        sl.consume(400)
        assert sl.available == 600

    def test_over_consume_raises(self):
        sl = SendLimit(100)
        with pytest.raises(FlowControlError):
            sl.consume(101)

    def test_update_limit_only_advances(self):
        sl = SendLimit(100)
        assert sl.update_limit(200)
        assert not sl.update_limit(150)  # stale MAX_DATA ignored
        assert sl.limit == 200

    def test_blocked_counter(self):
        sl = SendLimit(0)
        sl.note_blocked()
        sl.note_blocked()
        assert sl.blocked_events == 2


class TestRecvLimit:
    def test_check_rejects_beyond_advertised(self):
        rl = RecvLimit(window=1000)
        rl.check(1000)
        with pytest.raises(FlowControlError):
            rl.check(1001)

    def test_wants_update_at_half_window(self):
        rl = RecvLimit(window=1000)
        rl.on_consumed(499)
        assert not rl.wants_update()
        rl.on_consumed(501)
        assert rl.wants_update()

    def test_next_limit_extends_from_consumed(self):
        rl = RecvLimit(window=1000)
        rl.on_consumed(600)
        assert rl.next_limit(0, ms(40)) == 1600
        assert rl.advertised == 1600

    def test_consumed_is_monotonic(self):
        rl = RecvLimit(window=100)
        rl.on_consumed(50)
        rl.on_consumed(20)
        assert rl.consumed == 50

    def test_autotune_doubles_on_frequent_updates(self):
        rl = RecvLimit(window=1000, autotune=True)
        rl.on_consumed(600)
        rl.next_limit(0, ms(40))
        rl.on_consumed(1300)
        rl.next_limit(ms(40), ms(40))  # within 2 RTTs of previous update
        assert rl.window == 2000

    def test_autotune_respects_max(self):
        rl = RecvLimit(window=1000, autotune=True, max_window=1500)
        rl.next_limit(0, ms(40))
        rl.next_limit(ms(10), ms(40))
        assert rl.window == 1500

    def test_no_autotune_keeps_window_fixed(self):
        rl = RecvLimit(window=1000, autotune=False)
        rl.next_limit(0, ms(40))
        rl.next_limit(ms(1), ms(40))
        assert rl.window == 1000

    def test_slow_updates_do_not_grow(self):
        rl = RecvLimit(window=1000, autotune=True)
        rl.next_limit(0, ms(40))
        rl.next_limit(ms(400), ms(40))  # 10 RTTs later
        assert rl.window == 1000
