"""RTT estimation per RFC 9002 §5."""

from repro.quic.rtt import RttEstimator
from repro.units import ms


def test_initial_state():
    rtt = RttEstimator()
    assert not rtt.has_sample
    assert rtt.smoothed_rtt == RttEstimator.INITIAL_RTT
    assert rtt.rttvar == RttEstimator.INITIAL_RTT // 2


def test_first_sample_initializes(sim=None):
    rtt = RttEstimator()
    rtt.update(ms(40))
    assert rtt.has_sample
    assert rtt.smoothed_rtt == ms(40)
    assert rtt.min_rtt == ms(40)
    assert rtt.rttvar == ms(20)


def test_ewma_converges():
    rtt = RttEstimator()
    for _ in range(100):
        rtt.update(ms(40))
    assert abs(rtt.smoothed_rtt - ms(40)) < ms(1)
    assert rtt.rttvar < ms(2)


def test_min_rtt_tracks_minimum():
    rtt = RttEstimator()
    rtt.update(ms(50))
    rtt.update(ms(40))
    rtt.update(ms(60))
    assert rtt.min_rtt == ms(40)


def test_ack_delay_subtracted_when_safe():
    rtt = RttEstimator(max_ack_delay_ns=ms(25))
    rtt.update(ms(40))
    rtt.update(ms(50), ack_delay_ns=ms(10))
    # Adjusted sample is 40ms, so smoothed stays at 40.
    assert rtt.smoothed_rtt == ms(40)


def test_ack_delay_not_below_min_rtt():
    rtt = RttEstimator(max_ack_delay_ns=ms(25))
    rtt.update(ms(40))
    before = rtt.smoothed_rtt
    rtt.update(ms(42), ack_delay_ns=ms(20))  # would dip below min
    # Full 42ms sample used; smoothed moves up slightly.
    assert rtt.smoothed_rtt >= before


def test_ack_delay_capped_at_max():
    rtt = RttEstimator(max_ack_delay_ns=ms(5))
    rtt.update(ms(40))
    rtt.update(ms(60), ack_delay_ns=ms(50))
    # Only 5ms credited: adjusted = 55ms.
    assert rtt.latest_rtt == ms(60)
    assert rtt.smoothed_rtt == (7 * ms(40) + ms(55)) // 8


def test_nonpositive_samples_ignored():
    rtt = RttEstimator()
    rtt.update(0)
    rtt.update(-5)
    assert not rtt.has_sample


def test_pto_interval_components():
    rtt = RttEstimator(max_ack_delay_ns=ms(25))
    for _ in range(50):
        rtt.update(ms(40))
    pto = rtt.pto_interval()
    assert pto >= ms(40) + ms(1) + ms(25)
    assert pto < ms(80)
