"""Persistent congestion (RFC 9002 §7.6)."""

from repro.cc.cubic import Cubic, CubicParams
from repro.quic.frames import AckFrame
from repro.quic.recovery import LossRecovery, SentPacket
from repro.quic.rtt import RttEstimator
from repro.units import ms, seconds
from tests.cc.helpers import MTU, drive_acks


def mk(pn, t):
    return SentPacket(pn=pn, time_sent=t, size=1200, ack_eliciting=True, in_flight=True)


def primed_recovery():
    rec = LossRecovery(RttEstimator())
    rec.on_packet_sent(mk(0, 0), 0)
    rec.on_ack_frame(AckFrame(0, 0, ((0, 0),)), ms(40))  # RTT sample
    return rec


def test_long_loss_span_flags_persistent_congestion():
    rec = primed_recovery()
    # Packets spanning far more than 3 x PTO, all lost.
    for pn, t in ((1, ms(100)), (2, ms(400)), (3, ms(800))):
        rec.on_packet_sent(mk(pn, t), t)
    rec.on_packet_sent(mk(4, ms(900)), ms(900))
    result = rec.on_ack_frame(AckFrame(4, 0, ((4, 4),)), ms(950))
    assert len(result.lost) == 3
    assert result.persistent_congestion


def test_short_loss_span_is_not_persistent():
    rec = primed_recovery()
    for pn, t in ((1, ms(100)), (2, ms(101)), (3, ms(102))):
        rec.on_packet_sent(mk(pn, t), t)
    rec.on_packet_sent(mk(4, ms(110)), ms(110))
    result = rec.on_ack_frame(AckFrame(4, 0, ((4, 4),)), ms(160))
    assert result.lost
    assert not result.persistent_congestion


def test_single_loss_never_persistent():
    rec = primed_recovery()
    rec.on_packet_sent(mk(1, ms(100)), ms(100))
    rec.on_packet_sent(mk(2, seconds(3)), seconds(3))
    result = rec.on_ack_frame(AckFrame(2, 0, ((2, 2),)), seconds(3) + ms(50))
    assert len(result.lost) == 1
    assert not result.persistent_congestion


def test_intervening_ack_breaks_persistence():
    rec = primed_recovery()
    rec.on_packet_sent(mk(1, ms(100)), ms(100))
    rec.on_packet_sent(mk(2, ms(500)), ms(500))  # will be acked
    rec.on_packet_sent(mk(3, ms(900)), ms(900))
    rec.on_packet_sent(mk(4, ms(1000)), ms(1000))
    result = rec.on_ack_frame(AckFrame(4, 0, ((4, 4), (2, 2))), ms(1050))
    assert {sp.pn for sp in result.lost} == {1, 3}
    assert not result.persistent_congestion


def test_requires_rtt_sample():
    rec = LossRecovery(RttEstimator())  # no sample yet
    assert not rec._is_persistent_congestion([mk(1, 0), mk(2, seconds(5))], [])


def test_cubic_collapses_to_minimum():
    cc = Cubic(params=CubicParams(hystart=False), mtu=MTU)
    drive_acks(cc, 100)
    assert cc.cwnd > cc.min_cwnd
    cc.on_persistent_congestion(ms(5000))
    assert cc.cwnd == cc.min_cwnd
    assert cc.epoch_start == -1
    assert cc._checkpoint is None


def test_end_to_end_outage_recovery():
    """A connection survives a multi-second total outage via PTO + collapse."""
    from repro.quic.stream import DataSource
    from repro.units import kib
    from tests.quic.test_connection import complete_handshake, make_pair, pump

    server, client = make_pair()
    complete_handshake(server, client)
    server.open_send_stream(0, DataSource(kib(30)))
    now = ms(1)
    # Phase 1: everything the server sends for 2 seconds is dropped.
    while now < seconds(2):
        while server.wants_to_send(now):
            built = server.build_packet(now)
            if built is None:
                break
            server.on_packet_sent(built, now)  # never delivered
        server.on_timeout(now)
        now += ms(50)
    # Phase 2: connectivity returns. Recovery must wait out the backed-off
    # PTO (seconds by now), then probe, detect the outage losses and refill.
    for _ in range(1500):
        pump(server, client, now)
        now += ms(10)
        server.on_timeout(now)
        client.on_timeout(now)
        if client.transfer_complete(0):
            break
    assert client.transfer_complete(0)
    assert server.recovery.lost_packets_total > 0
