"""QUIC varint encoding (RFC 9000 §16), including RFC test vectors."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EncodingError
from repro.quic.varint import MAX_VARINT, decode_varint, encode_varint, varint_len


# RFC 9000 Appendix A.1 example values.
RFC_VECTORS = [
    (151_288_809_941_952_652, bytes.fromhex("c2197c5eff14e88c")),
    (494_878_333, bytes.fromhex("9d7f3e7d")),
    (15_293, bytes.fromhex("7bbd")),
    (37, bytes.fromhex("25")),
]


@pytest.mark.parametrize("value,encoded", RFC_VECTORS)
def test_rfc_vectors_encode(value, encoded):
    assert encode_varint(value) == encoded


@pytest.mark.parametrize("value,encoded", RFC_VECTORS)
def test_rfc_vectors_decode(value, encoded):
    decoded, offset = decode_varint(encoded)
    assert decoded == value
    assert offset == len(encoded)


def test_length_boundaries():
    assert varint_len(0) == 1
    assert varint_len(63) == 1
    assert varint_len(64) == 2
    assert varint_len(16383) == 2
    assert varint_len(16384) == 4
    assert varint_len((1 << 30) - 1) == 4
    assert varint_len(1 << 30) == 8
    assert varint_len(MAX_VARINT) == 8


def test_negative_rejected():
    with pytest.raises(EncodingError):
        encode_varint(-1)


def test_too_large_rejected():
    with pytest.raises(EncodingError):
        encode_varint(MAX_VARINT + 1)


def test_truncated_input_rejected():
    encoded = encode_varint(494_878_333)
    with pytest.raises(EncodingError):
        decode_varint(encoded[:2])
    with pytest.raises(EncodingError):
        decode_varint(b"")


def test_decode_at_offset():
    data = b"\x00" + encode_varint(15_293)
    value, offset = decode_varint(data, 1)
    assert value == 15_293
    assert offset == 3


@given(st.integers(min_value=0, max_value=MAX_VARINT))
def test_roundtrip(value):
    encoded = encode_varint(value)
    assert len(encoded) == varint_len(value)
    decoded, offset = decode_varint(encoded)
    assert decoded == value
    assert offset == len(encoded)


@given(st.lists(st.integers(min_value=0, max_value=MAX_VARINT), min_size=1, max_size=20))
def test_concatenated_stream_roundtrip(values):
    blob = b"".join(encode_varint(v) for v in values)
    out = []
    offset = 0
    while offset < len(blob):
        v, offset = decode_varint(blob, offset)
        out.append(v)
    assert out == values
