"""Minimal HTTP/3 framing layer."""

import pytest

from repro.errors import EncodingError
from repro.quic import h3


def test_request_parses_as_headers_frame():
    req = h3.encode_request("/file")
    ftype, length, offset = h3.parse_frame_header(req)
    assert ftype == h3.FRAME_HEADERS
    assert offset + length == len(req)


def test_response_prefix_announces_body_size():
    prefix = h3.encode_response_prefix(1000)
    ftype, hlen, off = h3.parse_frame_header(prefix)
    assert ftype == h3.FRAME_HEADERS
    ftype2, dlen, off2 = h3.parse_frame_header(prefix, off + hlen)
    assert ftype2 == h3.FRAME_DATA
    assert dlen == 1000
    assert off2 == len(prefix)


def test_response_stream_size_consistent():
    body = 123_456
    assert h3.response_stream_size(body) == len(h3.encode_response_prefix(body)) + body


def test_response_size_grows_with_varint_width():
    small = h3.response_stream_size(10) - 10
    large = h3.response_stream_size(10**9) - 10**9
    assert large > small


def test_unknown_frame_type_rejected():
    with pytest.raises(EncodingError):
        h3.parse_frame_header(b"\x21\x00")
