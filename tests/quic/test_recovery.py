"""Loss recovery: ACK processing, thresholds, PTO, rate samples, spurious loss."""

from repro.quic.frames import AckFrame
from repro.quic.recovery import LossRecovery, SentPacket
from repro.quic.rtt import RttEstimator
from repro.units import ms


def mk(pn, t, size=1200, eliciting=True):
    return SentPacket(pn=pn, time_sent=t, size=size, ack_eliciting=eliciting, in_flight=eliciting)


def ack_frame(*ranges, delay_us=0):
    return AckFrame(largest=ranges[0][1], ack_delay_us=delay_us, ranges=tuple(ranges))


def fresh():
    return LossRecovery(RttEstimator())


def test_bytes_in_flight_accounting():
    rec = fresh()
    for pn in range(3):
        rec.on_packet_sent(mk(pn, pn * 100), pn * 100)
    assert rec.bytes_in_flight == 3600
    result = rec.on_ack_frame(ack_frame((0, 1)), ms(40))
    assert rec.bytes_in_flight == 1200
    assert [sp.pn for sp in result.newly_acked] == [0, 1]


def test_ack_only_packets_not_in_flight():
    rec = fresh()
    rec.on_packet_sent(mk(0, 0, eliciting=False), 0)
    assert rec.bytes_in_flight == 0


def test_rtt_sample_only_for_largest_newly_acked():
    rec = fresh()
    rec.on_packet_sent(mk(0, 0), 0)
    rec.on_packet_sent(mk(1, 100), 100)
    result = rec.on_ack_frame(ack_frame((0, 1)), ms(40))
    assert result.rtt_updated
    assert rec.rtt.latest_rtt == ms(40) - 100


def test_duplicate_ack_ignored():
    rec = fresh()
    rec.on_packet_sent(mk(0, 0), 0)
    rec.on_ack_frame(ack_frame((0, 0)), ms(40))
    result = rec.on_ack_frame(ack_frame((0, 0)), ms(41))
    assert result.newly_acked == []
    assert not result.rtt_updated


def test_packet_threshold_loss():
    rec = fresh()
    for pn in range(5):
        rec.on_packet_sent(mk(pn, pn), pn)
    result = rec.on_ack_frame(ack_frame((3, 4)), ms(40))
    # pns 0 and 1 are >= 3 behind largest acked (4): lost. pn 2 waits.
    assert [sp.pn for sp in result.lost] == [0, 1]
    assert rec.loss_time is not None
    assert rec.lost_packets_total == 2


def test_time_threshold_loss():
    rec = fresh()
    # pn 0 is slightly older than pn 1 but too recent for immediate loss:
    # a loss timer is armed instead, and firing it declares pn 0 lost.
    rec.on_packet_sent(mk(0, ms(140)), ms(140))
    rec.on_packet_sent(mk(1, ms(141)), ms(141))
    result = rec.on_ack_frame(ack_frame((1, 1)), ms(166))
    assert result.lost == []
    assert rec.loss_time is not None
    lost, pto = rec.on_loss_timeout(rec.loss_time)
    assert [sp.pn for sp in lost] == [0]
    assert not pto


def test_old_packet_lost_immediately_by_time_threshold():
    rec = fresh()
    rec.on_packet_sent(mk(0, 0), 0)
    rec.on_packet_sent(mk(1, ms(100)), ms(100))
    result = rec.on_ack_frame(ack_frame((1, 1)), ms(140))
    assert [sp.pn for sp in result.lost] == [0]


def test_spurious_loss_detected_on_late_ack():
    rec = fresh()
    for pn in range(5):
        rec.on_packet_sent(mk(pn, pn), pn)
    rec.on_ack_frame(ack_frame((3, 4)), ms(40))  # 0,1 declared lost
    result = rec.on_ack_frame(ack_frame((0, 4)), ms(41))
    assert set(result.spurious_pns) == {0, 1}
    # Not double counted.
    result2 = rec.on_ack_frame(ack_frame((0, 4)), ms(42))
    assert result2.spurious_pns == []


def test_pto_deadline_and_backoff():
    rec = fresh()
    rec.on_packet_sent(mk(0, 0), 0)
    first = rec.pto_deadline()
    assert first is not None
    lost, pto = rec.on_loss_timeout(first)
    assert pto and not lost
    assert rec.pto_count == 1
    assert rec.pto_deadline() > first  # exponential backoff


def test_pto_cleared_when_nothing_eliciting_in_flight():
    rec = fresh()
    rec.on_packet_sent(mk(0, 0), 0)
    rec.on_ack_frame(ack_frame((0, 0)), ms(40))
    assert rec.pto_deadline() is None
    assert rec.next_timeout() is None


def test_pto_count_resets_on_ack():
    rec = fresh()
    rec.on_packet_sent(mk(0, 0), 0)
    rec.on_loss_timeout(rec.pto_deadline())
    rec.on_packet_sent(mk(1, ms(900)), ms(900))
    rec.on_ack_frame(ack_frame((0, 1)), ms(940))
    assert rec.pto_count == 0


def test_rate_sample_produced():
    rec = fresh()
    rec.on_packet_sent(mk(0, 0, size=1000), 0)
    result = rec.on_ack_frame(ack_frame((0, 0)), ms(40))
    rs = result.rate_sample
    assert rs is not None
    assert rs.delivered_bytes == 1000
    # 1000 bytes over 40ms = 200 kbit/s.
    assert abs(rs.delivery_rate_bps - 200_000) < 1_000


def test_rate_sample_interval_uses_prior_ack():
    rec = fresh()
    rec.on_packet_sent(mk(0, 0, size=1000), 0)
    rec.on_ack_frame(ack_frame((0, 0)), ms(40))
    # Next packet sent right after the first ACK; interval should be ~1 RTT,
    # not the whole connection lifetime.
    rec.on_packet_sent(mk(1, ms(41), size=1000), ms(41))
    result = rec.on_ack_frame(ack_frame((0, 1)), ms(81))
    rs = result.rate_sample
    assert rs is not None
    assert rs.interval_ns <= ms(41)


def test_app_limited_flag_snapshot():
    rec = fresh()
    rec.app_limited = True
    rec.on_packet_sent(mk(0, 0), 0)
    rec.app_limited = False
    rec.on_packet_sent(mk(1, 10), 10)
    assert rec.sent[0].is_app_limited
    assert not rec.sent[1].is_app_limited


def test_lost_history_pruning():
    rec = fresh()
    for pn in range(5):
        rec.on_packet_sent(mk(pn, pn), pn)
    rec.on_ack_frame(ack_frame((3, 4)), ms(40))
    assert rec._lost_history
    # A very late ACK long after the horizon no longer counts as spurious.
    rec.on_packet_sent(mk(5, ms(30_000)), ms(30_000))
    result = rec.on_ack_frame(ack_frame((0, 5)), ms(30_040))
    assert result.spurious_pns == []


def test_oldest_unacked():
    rec = fresh()
    assert rec.oldest_unacked() is None
    rec.on_packet_sent(mk(3, 0), 0)
    rec.on_packet_sent(mk(4, 1), 1)
    assert rec.oldest_unacked().pn == 3
