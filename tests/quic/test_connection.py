"""Connection-level behaviour: handshake, data transfer, acks, loss handling.

These tests drive two Connection objects directly (no network, no drivers),
passing packets between them by hand with controlled timing.
"""

import pytest

from repro.cc.newreno import NewReno
from repro.errors import ProtocolError
from repro.quic.connection import Connection, ConnectionConfig
from repro.quic.packet import PacketType
from repro.quic.stream import DataSource
from repro.units import kib, mib, ms


def make_pair(**overrides):
    server_cfg = ConnectionConfig(**overrides)
    client_cfg = ConnectionConfig(**overrides)
    server = Connection("server", config=server_cfg)
    client = Connection("client", config=client_cfg)
    return server, client


def pump(a, b, now, limit=100):
    """Exchange all pending packets between two connections at time `now`."""
    moved = 0
    progress = True
    while progress and moved < limit:
        progress = False
        for src, dst in ((a, b), (b, a)):
            while src.wants_to_send(now):
                built = src.build_packet(now)
                if built is None:
                    break
                src.on_packet_sent(built, now)
                dst.on_datagram(built.encoded, now)
                moved += 1
                progress = True
    return moved


def complete_handshake(server, client, now=0):
    client.start_handshake()
    pump(client, server, now)
    assert server.established and client.established


def test_role_validation():
    with pytest.raises(ProtocolError):
        Connection("middlebox")


def test_only_client_starts_handshake():
    server, _ = make_pair()
    with pytest.raises(ProtocolError):
        server.start_handshake()


def test_handshake_establishes_both_sides():
    server, client = make_pair()
    complete_handshake(server, client)
    assert client.handshake_done_received


def test_first_client_packet_is_padded_initial():
    _, client = make_pair()
    client.start_handshake()
    built = client.build_packet(0)
    assert built.packet.packet_type is PacketType.INITIAL
    assert built.size >= client.config.initial_pad_to


def test_file_transfer_completes():
    server, client = make_pair()
    complete_handshake(server, client)
    server.open_send_stream(0, DataSource(kib(50)))
    now = ms(1)
    for _ in range(200):
        pump(server, client, now)
        now += ms(10)
        server.on_timeout(now)
        client.on_timeout(now)
        if client.transfer_complete(0):
            break
    assert client.transfer_complete(0)
    assert client.recv_streams[0].final_size == kib(50)


def test_packets_respect_mtu():
    server, client = make_pair()
    complete_handshake(server, client)
    server.open_send_stream(0, DataSource(kib(100)))
    built = server.build_packet(ms(1))
    assert built.size <= server.config.mtu_payload


def test_cwnd_limits_burst():
    server, client = make_pair()
    complete_handshake(server, client)
    server.open_send_stream(0, DataSource(mib(10)))
    sent = 0
    while server.wants_to_send(ms(1)):
        built = server.build_packet(ms(1))
        if built is None:
            break
        server.on_packet_sent(built, ms(1))
        sent += 1
    # Initial window is 10 packets; handshake consumed some budget.
    assert 5 <= sent <= 12
    assert server.recovery.bytes_in_flight <= server.cc.cwnd


def test_acks_free_window():
    server, client = make_pair()
    complete_handshake(server, client)
    server.open_send_stream(0, DataSource(mib(10)))
    now = ms(1)
    while server.wants_to_send(now):
        built = server.build_packet(now)
        if built is None:
            break
        server.on_packet_sent(built, now)
        client.on_datagram(built.encoded, now)
    # Deliver only the client's ACKs back to the server.
    later = now + ms(40)
    while client.wants_to_send(later):
        built = client.build_packet(later)
        if built is None:
            break
        client.on_packet_sent(built, later)
        server.on_datagram(built.encoded, later)
    assert server.wants_to_send(later)


def test_ack_only_packet_not_ack_eliciting():
    server, client = make_pair()
    complete_handshake(server, client)
    server.open_send_stream(0, DataSource(kib(5)))
    now = ms(1)
    while server.wants_to_send(now):
        built = server.build_packet(now)
        if built is None:
            break
        server.on_packet_sent(built, now)
        client.on_datagram(built.encoded, now)
    ack_packet = client.build_packet(now)
    assert ack_packet is not None
    assert not ack_packet.ack_eliciting


def test_pto_fires_and_sends_probe():
    server, client = make_pair()
    complete_handshake(server, client)
    server.open_send_stream(0, DataSource(kib(5)))
    now = ms(1)
    built = server.build_packet(now)
    server.on_packet_sent(built, now)  # never delivered
    deadline = server.next_timeout(now)
    assert deadline is not None
    server.on_timeout(deadline)
    assert server.probe_packets_pending >= 1
    probe = server.build_packet(deadline)
    assert probe is not None and probe.ack_eliciting


def test_lost_stream_data_is_retransmitted():
    server, client = make_pair()
    complete_handshake(server, client)
    server.open_send_stream(0, DataSource(kib(20)))
    now = ms(1)
    # Send the window; drop the first data packet, deliver the rest.
    packets = []
    while server.wants_to_send(now):
        built = server.build_packet(now)
        if built is None:
            break
        server.on_packet_sent(built, now)
        packets.append(built)
    for built in packets[1:]:
        client.on_datagram(built.encoded, now + ms(20))
    # Client acks; server detects the hole.
    pump(client, server, now + ms(40))
    stream = server.send_streams[0]
    assert stream.has_retx or server.recovery.lost_packets_total > 0


def test_flow_control_update_issued():
    server, client = make_pair(recv_stream_window=kib(16), recv_conn_window=kib(16))
    complete_handshake(server, client)
    server.open_send_stream(0, DataSource(kib(64)))
    now = ms(1)
    for _ in range(100):
        pump(server, client, now)
        now += ms(5)
        server.on_timeout(now)
        client.on_timeout(now)
        if client.transfer_complete(0):
            break
    # The transfer exceeds the initial 16 KiB window, so it can only complete
    # if MAX_(STREAM_)DATA updates flowed back.
    assert client.transfer_complete(0)
    assert server.conn_send_limit.limit > kib(16)


def test_connection_close_stops_sending():
    server, client = make_pair()
    complete_handshake(server, client)
    from repro.quic.frames import ConnectionCloseFrame
    from repro.quic.packet import QuicPacket

    close = QuicPacket(PacketType.ONE_RTT, 99, [ConnectionCloseFrame(0, b"done")])
    server.on_datagram(close.encode(), ms(5))
    assert server.closed
    assert not server.wants_to_send(ms(5))
    assert server.build_packet(ms(5)) is None


def test_spurious_loss_reported_to_cc():
    calls = []

    class SpyCC(NewReno):
        def on_spurious_loss(self, pns, now, lost_total):
            calls.append(list(pns))

    server = Connection("server", cc=SpyCC())
    client = Connection("client")
    client.start_handshake()
    pump(client, server, 0)
    server.open_send_stream(0, DataSource(kib(30)))
    now = ms(1)
    packets = []
    while server.wants_to_send(now):
        built = server.build_packet(now)
        if built is None:
            break
        server.on_packet_sent(built, now)
        packets.append(built)
    # Deliver all but the first two; acks make the server declare them lost.
    for built in packets[2:]:
        client.on_datagram(built.encoded, now + ms(20))
    pump(client, server, now + ms(40))
    assert server.recovery.lost_packets_total >= 1
    # The "lost" packets arrive very late after all; their ACK is spurious.
    for built in packets[:2]:
        client.on_datagram(built.encoded, now + ms(45))
    pump(client, server, now + ms(50))
    assert calls, "late ACK should surface a spurious-loss event"
