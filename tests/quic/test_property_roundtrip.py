"""Randomized round-trip properties for the wire-format building blocks.

Complements ``test_fuzz.py`` (parsers never crash on arbitrary bytes) with
the dual property: everything the encoders produce must decode back to an
equal value, and every *strict prefix* of an encoding must be rejected with
:class:`EncodingError` rather than silently mis-parse. Corpora come from a
seeded ``random.Random`` so failures reproduce exactly.
"""

import random

import pytest

from repro.errors import EncodingError
from repro.quic.frames import (
    AckFrame,
    ConnectionCloseFrame,
    CryptoFrame,
    DataBlockedFrame,
    MaxDataFrame,
    MaxStreamDataFrame,
    PaddingFrame,
    PingFrame,
    StreamDataBlockedFrame,
    StreamFrame,
    parse_frames,
)
from repro.quic.ranges import RangeSet
from repro.quic.varint import MAX_VARINT, decode_varint, encode_varint, varint_len

RNG_SEED = 20240913

#: Encoding-class boundaries (RFC 9000 §16): last value of each length and
#: the first value of the next.
VARINT_BOUNDARIES = [
    0, 1, 0x3F, 0x40, 0x3FFF, 0x4000, 0x3FFF_FFFF, 0x4000_0000, MAX_VARINT - 1, MAX_VARINT
]


def _random_varints(rng, count=500):
    values = list(VARINT_BOUNDARIES)
    for _ in range(count):
        # Uniform over bit-lengths, not over values, so every encoding class
        # is exercised instead of almost always drawing 8-byte varints.
        bits = rng.randrange(0, 63)
        values.append(rng.randrange(0, 1 << bits) if bits else 0)
    return values


class TestVarintRoundTrip:
    def test_encode_decode_identity(self):
        rng = random.Random(RNG_SEED)
        for value in _random_varints(rng):
            encoded = encode_varint(value)
            assert len(encoded) == varint_len(value)
            decoded, end = decode_varint(encoded)
            assert decoded == value
            assert end == len(encoded)

    def test_identity_at_nonzero_offset(self):
        rng = random.Random(RNG_SEED + 1)
        for value in _random_varints(rng, count=100):
            prefix = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 8)))
            decoded, end = decode_varint(prefix + encode_varint(value), len(prefix))
            assert decoded == value

    def test_every_truncation_rejected(self):
        rng = random.Random(RNG_SEED + 2)
        for value in _random_varints(rng, count=100):
            encoded = encode_varint(value)
            for cut in range(len(encoded)):
                with pytest.raises(EncodingError):
                    decode_varint(encoded[:cut])

    def test_out_of_range_values_rejected(self):
        for value in (-1, MAX_VARINT + 1, 1 << 62, 1 << 70):
            with pytest.raises(EncodingError):
                encode_varint(value)


class TestRangeSetModel:
    """RangeSet vs. the obvious model: a plain set of covered integers."""

    def _build(self, rng, ops=60, universe=200):
        rs, model = RangeSet(), set()
        for _ in range(ops):
            start = rng.randrange(universe)
            end = start + rng.randrange(0, 12)
            added = rs.add(start, end)
            before = len(model)
            model.update(range(start, end))
            assert added == len(model) - before
        return rs, model

    def test_matches_model_set(self):
        for seed in range(10):
            rng = random.Random(RNG_SEED + seed)
            rs, model = self._build(rng)
            assert rs.total == len(model)
            covered = {v for lo, hi in rs for v in range(lo, hi)}
            assert covered == model
            for v in rng.sample(range(220), 50):
                assert rs.contains(v) == (v in model)

    def test_ranges_stay_disjoint_and_sorted(self):
        rng = random.Random(RNG_SEED + 20)
        rs, _ = self._build(rng, ops=200)
        spans = list(rs)
        assert all(lo < hi for lo, hi in spans)
        # Strictly separated: merged ranges never touch.
        assert all(a[1] < b[0] for a, b in zip(spans, spans[1:]))

    def test_covers_and_missing_within_match_model(self):
        rng = random.Random(RNG_SEED + 21)
        rs, model = self._build(rng)
        for _ in range(100):
            start = rng.randrange(220)
            end = start + rng.randrange(0, 30)
            want = all(v in model for v in range(start, end))
            assert rs.covers(start, end) == want
            gaps = rs.missing_within(start, end)
            missing = {v for lo, hi in gaps for v in range(lo, hi)}
            assert missing == {v for v in range(start, end) if v not in model}
            assert all(lo < hi for lo, hi in gaps)

    def test_first_gap_matches_model(self):
        rng = random.Random(RNG_SEED + 22)
        rs, model = self._build(rng)
        for start in rng.sample(range(220), 40):
            pos = start
            while pos in model:
                pos += 1
            assert rs.first_gap_from(start) == pos


def _random_ack(rng):
    pns = sorted(rng.sample(range(rng.randrange(30, 400)), rng.randrange(1, 40)))
    ranges = []
    start = prev = pns[0]
    for pn in pns[1:]:
        if pn == prev + 1:
            prev = pn
        else:
            ranges.append((start, prev))
            start = prev = pn
    ranges.append((start, prev))
    ranges.reverse()  # descending by hi, as the frame requires
    ecn = None
    if rng.random() < 0.5:
        ecn = (rng.randrange(1000), rng.randrange(1000), rng.randrange(100))
    # ACK delay travels in 2**ACK_DELAY_EXPONENT µs units; stay on-grid so
    # the round trip is exact.
    return AckFrame(ranges[0][1], rng.randrange(0, 10_000) << 3, tuple(ranges), ecn)


def _random_frame(rng):
    kind = rng.randrange(9)
    data = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 60)))
    if kind == 0:
        return PingFrame()
    if kind == 1:
        return _random_ack(rng)
    if kind == 2:
        return CryptoFrame(rng.randrange(1 << 20), data)
    if kind == 3:
        return StreamFrame(
            stream_id=rng.randrange(1 << 16),
            offset=rng.choice([0, rng.randrange(1, 1 << 30)]),
            data=data,
            fin=rng.random() < 0.3,
        )
    if kind == 4:
        return MaxDataFrame(rng.randrange(1 << 40))
    if kind == 5:
        return MaxStreamDataFrame(rng.randrange(1 << 16), rng.randrange(1 << 40))
    if kind == 6:
        return DataBlockedFrame(rng.randrange(1 << 30))
    if kind == 7:
        return StreamDataBlockedFrame(rng.randrange(1 << 16), rng.randrange(1 << 30))
    return PaddingFrame(rng.randrange(1, 20))


class TestFrameRoundTrip:
    def test_single_frames_round_trip(self):
        rng = random.Random(RNG_SEED + 30)
        for _ in range(300):
            frame = _random_frame(rng)
            encoded = frame.encode()
            assert len(encoded) == frame.encoded_len
            assert parse_frames(encoded) == [frame]

    def test_frame_sequences_round_trip(self):
        rng = random.Random(RNG_SEED + 31)
        for _ in range(100):
            frames = []
            for _ in range(rng.randrange(1, 8)):
                frame = _random_frame(rng)
                # Adjacent PADDING runs coalesce on parse by design; keep
                # them apart so list equality is exact.
                if frames and isinstance(frame, PaddingFrame) and isinstance(frames[-1], PaddingFrame):
                    continue
                frames.append(frame)
            payload = b"".join(f.encode() for f in frames)
            assert parse_frames(payload) == frames

    def test_connection_close_round_trips(self):
        rng = random.Random(RNG_SEED + 32)
        for _ in range(50):
            frame = ConnectionCloseFrame(
                error_code=rng.randrange(1 << 20),
                reason=bytes(rng.randrange(256) for _ in range(rng.randrange(0, 30))),
            )
            assert parse_frames(frame.encode()) == [frame]

    def test_every_truncation_rejected(self):
        rng = random.Random(RNG_SEED + 33)
        for _ in range(120):
            frame = _random_frame(rng)
            if isinstance(frame, (PingFrame, PaddingFrame)):
                continue  # 1-byte/run encodings: every prefix is legal
            encoded = frame.encode()
            for cut in range(1, len(encoded)):
                with pytest.raises(EncodingError):
                    parse_frames(encoded[:cut])

    def test_ack_decode_reconstructs_exact_ranges(self):
        rng = random.Random(RNG_SEED + 34)
        for _ in range(200):
            ack = _random_ack(rng)
            (decoded,) = parse_frames(ack.encode())
            assert decoded.ranges == ack.ranges
            assert decoded.acked_packet_numbers() == ack.acked_packet_numbers()
            assert decoded.ecn_counts == ack.ecn_counts
