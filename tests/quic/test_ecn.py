"""ECN: ACK_ECN frames, CE accounting, congestion response without loss."""

import pytest

from repro.cc.cubic import Cubic, CubicParams
from repro.cc.newreno import NewReno
from repro.cc.bbr import Bbr
from repro.quic.connection import Connection, ConnectionConfig
from repro.quic.frames import AckFrame, parse_frames
from repro.quic.stream import DataSource
from repro.units import kib, mib, ms
from tests.cc.helpers import drive_acks
from tests.quic.test_connection import complete_handshake, make_pair, pump


class TestAckEcnFrame:
    def test_roundtrip_with_counts(self):
        f = AckFrame(10, 800, ((0, 10),), ecn_counts=(100, 0, 7))
        parsed = parse_frames(f.encode())[0]
        assert parsed.ecn_counts == (100, 0, 7)
        assert parsed.ranges == ((0, 10),)

    def test_plain_ack_has_no_counts(self):
        f = AckFrame(10, 0, ((0, 10),))
        assert parse_frames(f.encode())[0].ecn_counts is None

    def test_wire_types_differ(self):
        plain = AckFrame(0, 0, ((0, 0),)).encode()
        ecn = AckFrame(0, 0, ((0, 0),), ecn_counts=(1, 0, 0)).encode()
        assert plain[0] == 0x02
        assert ecn[0] == 0x03


class TestConnectionEcn:
    def make_ecn_pair(self):
        server = Connection("server", config=ConnectionConfig(ecn=True))
        client = Connection("client", config=ConnectionConfig(ecn=True))
        return server, client

    def test_receiver_counts_marks(self):
        server, client = self.make_ecn_pair()
        complete_handshake(server, client)
        server.open_send_stream(0, DataSource(kib(10)))
        built = server.build_packet(ms(1))
        server.on_packet_sent(built, ms(1))
        client.on_datagram(built.encoded, ms(2), ecn=2)
        built2 = server.build_packet(ms(1))
        server.on_packet_sent(built2, ms(1))
        client.on_datagram(built2.encoded, ms(2), ecn=3)
        assert client.ecn_received[0] >= 1
        assert client.ecn_received[2] == 1

    def test_acks_echo_counts_and_sender_reacts(self):
        server, client = self.make_ecn_pair()
        complete_handshake(server, client)
        server.open_send_stream(0, DataSource(kib(20)))
        now = ms(1)
        built = []
        while server.wants_to_send(now):
            b = server.build_packet(now)
            if b is None:
                break
            server.on_packet_sent(b, now)
            built.append(b)
        cwnd_before = server.cc.cwnd
        for b in built:
            client.on_datagram(b.encoded, now + ms(20), ecn=3)  # all CE-marked
        # Client acks carry the CE count; the server reduces its window.
        while client.wants_to_send(now + ms(40)):
            ack = client.build_packet(now + ms(40))
            if ack is None:
                break
            client.on_packet_sent(ack, now + ms(40))
            server.on_datagram(ack.encoded, now + ms(40))
        assert server.ecn_ce_events >= 1
        assert server.cc.cwnd < cwnd_before

    def test_ecn_disabled_ignores_marks(self):
        server, client = make_pair()  # ecn off
        complete_handshake(server, client)
        server.open_send_stream(0, DataSource(kib(5)))
        b = server.build_packet(ms(1))
        server.on_packet_sent(b, ms(1))
        client.on_datagram(b.encoded, ms(2), ecn=3)
        ack = client.build_packet(ms(30))
        assert ack is not None
        ack_frames = [f for f in ack.packet.frames if isinstance(f, AckFrame)]
        assert ack_frames and ack_frames[0].ecn_counts is None


class TestCcEcnResponse:
    def test_cubic_reduces_once_per_epoch(self):
        cc = Cubic(params=CubicParams(hystart=False), mtu=1252)
        drive_acks(cc, 50)
        before = cc.cwnd
        cc.on_ecn_ce(ms(1000), ms(999))
        first = cc.cwnd
        assert first < before
        cc.on_ecn_ce(ms(1001), ms(999))  # same epoch: no further cut
        assert cc.cwnd == first
        cc.on_ecn_ce(ms(2000), ms(1999))  # new epoch
        assert cc.cwnd < first

    def test_newreno_halves(self):
        cc = NewReno(hystart=False, mtu=1252)
        drive_acks(cc, 50)
        before = cc.cwnd
        cc.on_ecn_ce(ms(1000), ms(999))
        assert cc.cwnd == before // 2

    def test_bbr_ignores_ce(self):
        cc = Bbr(mtu=1252)
        before = cc.cwnd
        cc.on_ecn_ce(ms(100), ms(99))
        assert cc.cwnd == before


class TestEndToEndEcn:
    def test_ecn_removes_bottleneck_drops(self):
        from repro.framework.config import ExperimentConfig
        from repro.framework.experiment import Experiment

        base = dict(
            stack="quiche", qdisc="fq", spurious_rollback=False,
            file_size=mib(4), repetitions=1,
        )
        plain = Experiment(ExperimentConfig(**base), seed=3)
        r_plain = plain.run()
        ecn = Experiment(ExperimentConfig(ecn=True, **base), seed=3)
        r_ecn = ecn.run()
        assert r_plain.completed and r_ecn.completed
        assert ecn.bottleneck.ce_marked > 0
        assert r_ecn.dropped < r_plain.dropped
        # Goodput stays comparable.
        assert r_ecn.goodput_mbps > 0.9 * r_plain.goodput_mbps
