"""Multi-stream scheduling and multi-object downloads."""

from repro.framework.config import ExperimentConfig
from repro.framework.experiment import Experiment
from repro.quic.stream import DataSource
from repro.units import kib, ms
from tests.quic.test_connection import complete_handshake, make_pair, pump


class TestRoundRobin:
    def test_streams_interleave_across_packets(self):
        server, client = make_pair()
        complete_handshake(server, client)
        server.open_send_stream(0, DataSource(kib(50)))
        server.open_send_stream(4, DataSource(kib(50)))
        now = ms(1)
        order = []
        while server.wants_to_send(now) and len(order) < 8:
            built = server.build_packet(now)
            if built is None:
                break
            server.on_packet_sent(built, now)
            from repro.quic.frames import StreamFrame

            sids = {f.stream_id for f in built.packet.frames if isinstance(f, StreamFrame)}
            order.append(tuple(sorted(sids)))
        flat = [sid for sids in order for sid in sids]
        # Both streams appear within the first few packets, alternating.
        assert 0 in flat and 4 in flat
        assert flat[0] != flat[1]

    def test_all_streams_complete(self):
        server, client = make_pair()
        complete_handshake(server, client)
        for sid in (0, 4, 8):
            server.open_send_stream(sid, DataSource(kib(30)))
        now = ms(1)
        for _ in range(300):
            pump(server, client, now)
            now += ms(10)
            server.on_timeout(now)
            client.on_timeout(now)
            if all(
                client.recv_streams.get(sid) and client.recv_streams[sid].complete
                for sid in (0, 4, 8)
            ):
                break
        for sid in (0, 4, 8):
            assert client.recv_streams[sid].complete
            assert client.recv_streams[sid].final_size == kib(30)


class TestMultiObjectExperiment:
    def test_objects_all_complete_and_split_file(self):
        cfg = ExperimentConfig(
            stack="quiche", objects=4, file_size=kib(400), repetitions=1
        )
        result = Experiment(cfg, seed=2).run()
        assert result.completed
        assert len(result.object_completion_ns) == 4
        assert all(t > 0 for t in result.object_completion_ns.values())

    def test_round_robin_finishes_objects_together(self):
        cfg = ExperimentConfig(
            stack="quiche", objects=4, file_size=kib(800), repetitions=1
        )
        result = Experiment(cfg, seed=2).run()
        times = sorted(result.object_completion_ns.values())
        # Fair sharing: the spread between first and last object is small
        # relative to the total duration.
        assert times[-1] - times[0] < result.duration_ns // 3

    def test_single_object_unchanged(self):
        cfg = ExperimentConfig(stack="quiche", objects=1, file_size=kib(200), repetitions=1)
        result = Experiment(cfg, seed=2).run()
        assert result.completed
        assert list(result.object_completion_ns) == [0]

    def test_invalid_objects_rejected(self):
        import pytest

        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            ExperimentConfig(objects=0).validate()
        with pytest.raises(ConfigError):
            ExperimentConfig(stack="tcp", objects=2).validate()
