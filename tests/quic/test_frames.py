"""Frame encode/parse round trips and ACK range arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EncodingError
from repro.quic.frames import (
    AckFrame,
    ConnectionCloseFrame,
    CryptoFrame,
    DataBlockedFrame,
    HandshakeDoneFrame,
    MaxDataFrame,
    MaxStreamDataFrame,
    PaddingFrame,
    PingFrame,
    StreamFrame,
    StreamDataBlockedFrame,
    parse_frames,
)


def roundtrip(frame):
    parsed = parse_frames(frame.encode())
    assert len(parsed) == 1
    return parsed[0]


def test_padding_runs_collapse():
    frames = parse_frames(bytes(10))
    assert frames == [PaddingFrame(10)]
    assert frames[0].encoded_len == 10


def test_ping_roundtrip():
    assert roundtrip(PingFrame()) == PingFrame()


def test_crypto_roundtrip():
    f = CryptoFrame(offset=100, data=b"hello")
    assert roundtrip(f) == f


def test_stream_roundtrip_all_flag_combinations():
    for offset in (0, 500):
        for fin in (False, True):
            f = StreamFrame(stream_id=4, offset=offset, data=b"abc", fin=fin)
            assert roundtrip(f) == f


def test_stream_encoded_len_matches_encoding():
    for offset in (0, 1, 16384):
        f = StreamFrame(stream_id=0, offset=offset, data=bytes(100), fin=True)
        assert f.encoded_len == len(f.encode())


def test_stream_header_overhead_helper():
    f = StreamFrame(stream_id=8, offset=300, data=bytes(50))
    overhead = StreamFrame.header_overhead(8, 300, 50)
    assert overhead == f.encoded_len - 50


def test_control_frames_roundtrip():
    for frame in [
        MaxDataFrame(123456),
        MaxStreamDataFrame(4, 99999),
        DataBlockedFrame(5000),
        StreamDataBlockedFrame(8, 777),
        HandshakeDoneFrame(),
        ConnectionCloseFrame(error_code=3, reason=b"bye"),
    ]:
        assert roundtrip(frame) == frame


def test_ack_frame_single_range():
    f = AckFrame(largest=10, ack_delay_us=800, ranges=((0, 10),))
    parsed = roundtrip(f)
    assert parsed.largest == 10
    assert parsed.ranges == ((0, 10),)
    # Delay is quantized by the exponent (2^3 us).
    assert parsed.ack_delay_us == 800 // 8 * 8


def test_ack_frame_multiple_ranges():
    f = AckFrame(largest=100, ack_delay_us=0, ranges=((90, 100), (50, 70), (0, 10)))
    parsed = roundtrip(f)
    assert parsed.ranges == ((90, 100), (50, 70), (0, 10))


def test_ack_frame_covered_numbers():
    f = AckFrame(largest=5, ack_delay_us=0, ranges=((4, 5), (0, 1)))
    assert f.acked_packet_numbers() == [4, 5, 0, 1]


def test_ack_frame_validates_largest():
    with pytest.raises(EncodingError):
        AckFrame(largest=10, ack_delay_us=0, ranges=((0, 5),))


def test_ack_frame_needs_ranges():
    with pytest.raises(EncodingError):
        AckFrame(largest=0, ack_delay_us=0, ranges=())


def test_ack_frame_rejects_overlapping_ranges_on_encode():
    f = AckFrame(largest=10, ack_delay_us=0, ranges=((5, 10), (4, 6)))
    with pytest.raises(EncodingError):
        f.encode()


def test_multiple_frames_parse_in_order():
    blob = PingFrame().encode() + MaxDataFrame(5).encode() + StreamFrame(0, 0, b"x").encode()
    parsed = parse_frames(blob)
    assert [type(f) for f in parsed] == [PingFrame, MaxDataFrame, StreamFrame]


def test_unknown_frame_type_rejected():
    with pytest.raises(EncodingError):
        parse_frames(bytes([0x3F]))


def test_ack_eliciting_classification():
    assert PingFrame().ack_eliciting
    assert StreamFrame(0, 0, b"x").ack_eliciting
    assert MaxDataFrame(1).ack_eliciting
    assert not AckFrame(0, 0, ((0, 0),)).ack_eliciting
    assert not PaddingFrame(3).ack_eliciting
    assert not ConnectionCloseFrame().ack_eliciting


@st.composite
def ack_ranges(draw):
    """Generate valid descending, disjoint ACK ranges."""
    count = draw(st.integers(min_value=1, max_value=8))
    ranges = []
    hi = draw(st.integers(min_value=0, max_value=10_000))
    for _ in range(count):
        lo = hi - draw(st.integers(min_value=0, max_value=50))
        if lo < 0:
            lo = 0
        ranges.append((lo, hi))
        hi = lo - 2 - draw(st.integers(min_value=0, max_value=50))
        if hi < 0:
            break
    return tuple(ranges)


@given(ack_ranges(), st.integers(min_value=0, max_value=1 << 20))
def test_ack_roundtrip_property(ranges, delay):
    f = AckFrame(largest=ranges[0][1], ack_delay_us=delay, ranges=ranges)
    parsed = parse_frames(f.encode())[0]
    assert parsed.ranges == ranges
    assert parsed.largest == f.largest


@given(
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=0, max_value=100_000),
    st.binary(min_size=0, max_size=200),
    st.booleans(),
)
def test_stream_roundtrip_property(sid, offset, data, fin):
    f = StreamFrame(sid, offset, data, fin)
    assert parse_frames(f.encode())[0] == f
