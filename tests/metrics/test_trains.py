"""Packet-train detection with the paper's 0.1 ms threshold."""

from hypothesis import given, strategies as st

from repro.metrics.trains import (
    TRAIN_GAP_THRESHOLD_NS,
    fraction_of_packets_in_trains_leq,
    packet_trains,
    packets_by_train_length,
)
from repro.net.tap import CaptureRecord
from repro.units import us


def recs(times):
    return [
        CaptureRecord(
            time_ns=t, wire_size=1294, payload_size=1252,
            flow=("a", 1, "b", 2), packet_number=i, dgram_id=i, gso_id=None,
        )
        for i, t in enumerate(times)
    ]


def test_default_threshold_is_100us():
    assert TRAIN_GAP_THRESHOLD_NS == us(100)


def test_all_spread_packets_are_singletons():
    r = recs([0, us(500), us(1000), us(1500)])
    assert packet_trains(r) == [1, 1, 1, 1]


def test_burst_forms_one_train():
    r = recs([0, us(10), us(20), us(30)])
    assert packet_trains(r) == [4]


def test_mixed_pattern():
    r = recs([0, us(10), us(500), us(510), us(520), us(2000)])
    assert packet_trains(r) == [2, 3, 1]


def test_boundary_gap_exactly_threshold_joins():
    r = recs([0, TRAIN_GAP_THRESHOLD_NS])
    assert packet_trains(r) == [2]


def test_empty_input():
    assert packet_trains([]) == []
    assert packets_by_train_length([]) == {}
    assert fraction_of_packets_in_trains_leq([], 5) == 0.0


def test_packets_by_train_length_weights_by_packets():
    r = recs([0, us(10), us(500), us(510), us(520), us(2000)])
    assert packets_by_train_length(r) == {2: 2, 3: 3, 1: 1}


def test_fraction_leq_weighted_by_packets():
    # One 16-burst and 4 singles: 4/20 of packets are in trains <= 5.
    times = [i * us(10) for i in range(16)] + [us(10_000) * k for k in range(1, 5)]
    r = recs(times)
    assert fraction_of_packets_in_trains_leq(r, 5) == 4 / 20


@given(st.lists(st.integers(min_value=1, max_value=1_000_000), min_size=1, max_size=200))
def test_train_lengths_partition_all_packets(gaps):
    times = [0]
    for g in gaps:
        times.append(times[-1] + g)
    r = recs(times)
    trains = packet_trains(r)
    assert sum(trains) == len(r)
    dist = packets_by_train_length(r)
    assert sum(dist.values()) == len(r)
    assert fraction_of_packets_in_trains_leq(r, max(trains)) == 1.0
