"""ASCII rendering helpers."""

from repro.metrics.report import render_cdf, render_histogram, render_table


def test_render_table_alignment():
    out = render_table(
        ["Implementation", "Goodput"],
        [["quiche", "34.67"], ["picoquic", "37.09"]],
        title="Table 1",
    )
    lines = out.splitlines()
    assert lines[0] == "Table 1"
    assert "Implementation" in lines[1]
    assert set(lines[2]) <= {"-", "+"}
    assert "quiche" in lines[3]
    # Columns align: all rows have the separator at the same offset.
    sep_positions = {line.index("|") for line in lines[1:] if "|" in line}
    assert len(sep_positions) == 1


def test_render_cdf_quantiles():
    series = {"quiche": ([1e6, 2e6, 3e6], [0.0, 0.5, 1.0])}
    out = render_cdf(series, quantiles=(0.5,), title="Fig 2")
    assert "Fig 2" in out
    assert "p50" in out
    assert "2.000ms" in out


def test_render_cdf_empty_series():
    out = render_cdf({"x": ([], [])}, quantiles=(0.5,))
    assert "-" in out


def test_render_histogram_buckets_tail():
    dist = {1: 10, 2: 20, 30: 30}
    out = render_histogram(dist, title="PTL", bucket_tail_at=21)
    assert "PTL" in out
    assert ">=21" in out
    assert "#" in out


def test_render_histogram_percentages_sum():
    dist = {1: 50, 2: 50}
    out = render_histogram(dist)
    assert "50.00%" in out
