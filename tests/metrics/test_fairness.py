"""Jain fairness index."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.fairness import jain_index


def test_equal_allocation_is_one():
    assert jain_index([10, 10, 10]) == pytest.approx(1.0)


def test_single_hog_is_one_over_n():
    assert jain_index([40, 0, 0, 0]) == pytest.approx(0.25)


def test_two_to_one_split():
    assert jain_index([20, 10]) == pytest.approx(0.9)


def test_all_zero_is_fair():
    assert jain_index([0, 0]) == 1.0


def test_empty_rejected():
    with pytest.raises(ValueError):
        jain_index([])


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=20))
def test_bounds(values):
    idx = jain_index(values)
    assert 1 / len(values) - 1e-9 <= idx <= 1 + 1e-9


@given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=20),
       st.floats(min_value=0.1, max_value=100))
def test_scale_invariance(values, factor):
    assert jain_index(values) == pytest.approx(jain_index([v * factor for v in values]))
