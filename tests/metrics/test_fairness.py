"""Jain fairness index and the QUICbench-style competition helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.fairness import (
    beats_relation,
    jain_index,
    throughput_ratio_matrix,
    transitivity_violations,
)


def test_equal_allocation_is_one():
    assert jain_index([10, 10, 10]) == pytest.approx(1.0)


def test_single_hog_is_one_over_n():
    assert jain_index([40, 0, 0, 0]) == pytest.approx(0.25)


def test_two_to_one_split():
    assert jain_index([20, 10]) == pytest.approx(0.9)


def test_all_zero_is_fair():
    assert jain_index([0, 0]) == 1.0


def test_empty_rejected():
    with pytest.raises(ValueError):
        jain_index([])


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=20))
def test_bounds(values):
    idx = jain_index(values)
    assert 1 / len(values) - 1e-9 <= idx <= 1 + 1e-9


@given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=20),
       st.floats(min_value=0.1, max_value=100))
def test_scale_invariance(values, factor):
    assert jain_index(values) == pytest.approx(jain_index([v * factor for v in values]))


def test_ratio_matrix_diagonal_and_reciprocal():
    matrix = throughput_ratio_matrix({"a": 20.0, "b": 10.0})
    assert matrix["a"]["a"] == pytest.approx(1.0)
    assert matrix["a"]["b"] == pytest.approx(2.0)
    assert matrix["b"]["a"] == pytest.approx(0.5)


def test_ratio_matrix_zero_denominator():
    matrix = throughput_ratio_matrix({"a": 5.0, "b": 0.0})
    assert matrix["a"]["b"] == float("inf")
    assert matrix["b"]["b"] == 1.0
    assert matrix["b"]["a"] == 0.0


def test_beats_requires_margin():
    head_to_head = {("a", "b"): (10.4, 10.0), ("a", "c"): (12.0, 10.0)}
    relation = beats_relation(head_to_head, margin=0.05)
    assert ("a", "b") not in relation  # 4% win is inside the noise band
    assert ("a", "c") in relation


def test_beats_implies_reverse_entry():
    relation = beats_relation({("a", "b"): (10.0, 20.0)})
    assert relation == {("b", "a")}


def test_beats_rejects_negative_margin():
    with pytest.raises(ValueError):
        beats_relation({}, margin=-0.1)


def test_transitive_relation_has_no_violations():
    relation = {("a", "b"), ("b", "c"), ("a", "c")}
    assert transitivity_violations(relation) == []


def test_rock_paper_scissors_is_intransitive():
    relation = {("a", "b"), ("b", "c"), ("c", "a")}
    violations = transitivity_violations(relation)
    assert ("a", "b", "c") in violations
    assert ("b", "c", "a") in violations
    assert ("c", "a", "b") in violations


def test_missing_edge_is_a_violation():
    # a beats b, b beats c, but the a-c duel was a tie: no consistent order.
    relation = {("a", "b"), ("b", "c")}
    assert transitivity_violations(relation) == [("a", "b", "c")]
