"""Burst-cycle analysis, including the paper's picoquic 10 ms claim."""

from repro.metrics.timeline import Burst, analyze_cycle, bursts, dominant_cycle_ns, idle_gaps
from repro.net.tap import CaptureRecord
from repro.units import ms, us


def recs(times):
    return [
        CaptureRecord(
            time_ns=t, wire_size=1294, payload_size=1252,
            flow=("a", 1, "b", 2), packet_number=i, dgram_id=i, gso_id=None,
        )
        for i, t in enumerate(times)
    ]


def synthetic_cycle(period_ns=ms(10), burst_len=16, cycles=20):
    """Burst of `burst_len` at each period start, then paced singles."""
    times = []
    for c in range(cycles):
        base = c * period_ns
        times.extend(base + i * us(12) for i in range(burst_len))
        times.extend(base + ms(3) + i * us(250) for i in range(8))
    return recs(sorted(times))


class TestBursts:
    def test_detects_long_trains_only(self):
        r = recs([0, us(10), us(20), ms(5), ms(5) + us(10)])
        assert bursts(r, min_packets=3) == [Burst(0, us(20), 3)]
        assert bursts(r, min_packets=2) == [
            Burst(0, us(20), 3),
            Burst(ms(5), ms(5) + us(10), 2),
        ]

    def test_empty(self):
        assert bursts([]) == []
        assert idle_gaps([]) == []


class TestIdleGaps:
    def test_threshold(self):
        r = recs([0, ms(1), ms(6), ms(6) + us(100)])
        assert idle_gaps(r, min_idle_ns=ms(2)) == [ms(5)]


class TestDominantCycle:
    def test_finds_period(self):
        events = [i * ms(10) for i in range(20)]
        cycle = dominant_cycle_ns(events)
        assert abs(cycle - ms(10)) <= ms(1)

    def test_too_few_events(self):
        assert dominant_cycle_ns([0, ms(10)]) is None

    def test_noisy_period(self):
        events = []
        t = 0
        for i in range(40):
            t += ms(10) + (i % 3 - 1) * us(300)
            events.append(t)
        cycle = dominant_cycle_ns(events)
        assert abs(cycle - ms(10)) <= ms(1)


class TestAnalyzeCycle:
    def test_synthetic_pattern_recovered(self):
        report = analyze_cycle(synthetic_cycle())
        assert report.burst_count == 20
        assert report.median_burst_packets == 16
        assert abs(report.cycle_ns - ms(10)) <= ms(1)
        # Idle gaps: burst-to-paced-phase (~2.8 ms) and paced-to-burst (~5.2 ms).
        assert ms(2) <= report.median_idle_ns < ms(7)


class TestPaperClaim:
    def test_picoquic_cycle_matches_section_41(self):
        """Bursts 'after a 5 ms idle period happening almost every 10 ms'."""
        from repro.framework.config import ExperimentConfig
        from repro.framework.experiment import Experiment
        from repro.units import mib

        result = Experiment(
            ExperimentConfig(stack="picoquic", file_size=mib(4), repetitions=1),
            seed=21,
        ).run()
        # Steady state only (skip slow start).
        records = [r for r in result.server_records if r.time_ns > result.duration_ns // 2]
        report = analyze_cycle(records, min_burst_packets=10)
        assert report.burst_count > 15
        assert 12 <= report.median_burst_packets <= 20
        assert ms(6) <= report.cycle_ns <= ms(14)  # "almost every 10 ms"
        assert ms(2) <= report.median_idle_ns <= ms(8)  # "~5 ms idle"
