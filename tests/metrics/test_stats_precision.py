"""Aggregation (mean ± std), goodput, and the precision metric."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.metrics.goodput import goodput_mbps
from repro.metrics.precision import match_expected_actual, pacing_precision_ns
from repro.metrics.stats import Summary, summarize
from repro.net.tap import CaptureRecord
from repro.units import SEC, mib, seconds


def rec(t, pn):
    return CaptureRecord(
        time_ns=t, wire_size=1294, payload_size=1252,
        flow=("a", 1, "b", 2), packet_number=pn, dgram_id=pn, gso_id=None,
    )


class TestSummarize:
    def test_mean_and_std(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == 2.0
        assert abs(s.std - 1.0) < 1e-9
        assert s.n == 3

    def test_single_value(self):
        s = summarize([5.0])
        assert s.mean == 5.0 and s.std == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str_format(self):
        assert str(Summary(34.67, 0.64, 20)) == "34.67 ± 0.64"

    def test_within(self):
        assert Summary(10, 1, 5).within(9, 11)
        assert not Summary(10, 1, 5).within(11, 12)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=50))
    def test_matches_numpy_definition(self, values):
        import numpy as np

        s = summarize(values)
        assert math.isclose(s.mean, float(np.mean(values)), abs_tol=1e-6)
        assert math.isclose(s.std, float(np.std(values, ddof=1)), abs_tol=1e-6)


class TestGoodput:
    def test_basic(self):
        # 100 MiB in 22.44 s is ~37.38 Mbit/s (the paper's TCP number).
        assert abs(goodput_mbps(100 * 1024 * 1024, seconds(22.44)) - 37.38) < 0.05

    def test_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            goodput_mbps(1, 0)


class TestPrecision:
    def test_matches_by_packet_number(self):
        expected = [(0, 100), (1, 200), (2, 300)]
        records = [rec(150, 0), rec(250, 1), rec(350, 2)]
        assert match_expected_actual(expected, records) == [50, 50, 50]

    def test_constant_offset_has_zero_std(self):
        # Unsynchronized clocks: constant offset is fine, stddev is the metric.
        expected = [(i, i * 1000) for i in range(50)]
        records = [rec(i * 1000 + 777, i) for i in range(50)]
        assert pacing_precision_ns(expected, records) == 0.0

    def test_jitter_produces_std(self):
        expected = [(i, i * 1000) for i in range(4)]
        records = [rec(0, 0), rec(1100, 1), rec(1900, 2), rec(3100, 3)]
        std = pacing_precision_ns(expected, records)
        assert std > 0

    def test_dropped_packets_skipped(self):
        expected = [(0, 100), (1, 200)]
        records = [rec(150, 0)]  # pn 1 never hit the wire
        assert match_expected_actual(expected, records) == [50]

    def test_first_capture_wins_for_duplicates(self):
        expected = [(0, 100)]
        records = [rec(150, 0), rec(900, 0)]
        assert match_expected_actual(expected, records) == [50]

    def test_too_few_samples_returns_zero(self):
        assert pacing_precision_ns([(0, 1)], [rec(5, 0)]) == 0.0
