"""Capture CSV import/export."""

import pytest

from repro.errors import ConfigError
from repro.metrics.capture_io import load_capture, save_capture
from repro.metrics.gaps import inter_packet_gaps
from repro.net.tap import CaptureRecord


def rec(t, pn=None):
    return CaptureRecord(
        time_ns=t, wire_size=1294, payload_size=1252,
        flow=("10.0.0.1", 443, "10.0.0.2", 40000),
        packet_number=pn, dgram_id=0, gso_id=None,
    )


def test_roundtrip(tmp_path):
    records = [rec(100, 0), rec(350, 1), rec(900, None)]
    path = save_capture(records, tmp_path / "cap.csv")
    loaded = load_capture(path)
    assert [r.time_ns for r in loaded] == [100, 350, 900]
    assert [r.packet_number for r in loaded] == [0, 1, None]
    assert loaded[0].flow == ("10.0.0.1", 443, "10.0.0.2", 40000)
    assert inter_packet_gaps(loaded) == inter_packet_gaps(records)


def test_minimal_columns(tmp_path):
    path = tmp_path / "min.csv"
    path.write_text("time_ns,wire_size\n1000,1294\n2000,1294\n")
    loaded = load_capture(path)
    assert len(loaded) == 2
    assert loaded[0].payload_size == 1294 - 42
    assert loaded[0].packet_number is None


def test_records_sorted_by_time(tmp_path):
    path = tmp_path / "unsorted.csv"
    path.write_text("time_ns,wire_size\n5000,100\n1000,100\n3000,100\n")
    loaded = load_capture(path)
    assert [r.time_ns for r in loaded] == [1000, 3000, 5000]
    # The point of sorting: downstream gaps stay non-negative.
    assert all(g >= 0 for g in inter_packet_gaps(loaded))


def test_strict_rejects_unordered_rows(tmp_path):
    path = tmp_path / "unsorted.csv"
    path.write_text("time_ns,wire_size\n5000,100\n1000,100\n")
    with pytest.raises(ConfigError, match="row 3 is out of order"):
        load_capture(path, strict=True)


def test_strict_accepts_ordered_rows(tmp_path):
    path = tmp_path / "sorted.csv"
    path.write_text("time_ns,wire_size\n1000,100\n1000,100\n5000,100\n")
    loaded = load_capture(path, strict=True)
    assert [r.time_ns for r in loaded] == [1000, 1000, 5000]


def test_float_times_accepted(tmp_path):
    # tshark exports epoch seconds; pre-scaled floats must parse.
    path = tmp_path / "float.csv"
    path.write_text("time_ns,wire_size\n1000.0,100\n2000.7,100\n")
    loaded = load_capture(path)
    assert loaded[1].time_ns == 2000


def test_missing_header_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("a,b\n1,2\n")
    with pytest.raises(ConfigError):
        load_capture(path)


def test_bad_row_reports_line(tmp_path):
    path = tmp_path / "bad2.csv"
    path.write_text("time_ns,wire_size\nnot_a_number,100\n")
    with pytest.raises(ConfigError, match="row 2"):
        load_capture(path)


def test_experiment_capture_roundtrips(tmp_path):
    from repro.framework.config import ExperimentConfig
    from repro.framework.experiment import Experiment
    from repro.metrics.trains import packets_by_train_length
    from repro.units import kib

    result = Experiment(
        ExperimentConfig(stack="quiche", file_size=kib(200), repetitions=1), seed=5
    ).run()
    path = save_capture(result.server_records, tmp_path / "exp.csv")
    loaded = load_capture(path)
    assert packets_by_train_length(loaded) == packets_by_train_length(result.server_records)
