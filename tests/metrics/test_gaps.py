"""Inter-packet gaps and CDF helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.gaps import cdf, fraction_leq, inter_packet_gaps, percentile
from repro.net.tap import CaptureRecord


def rec(t):
    return CaptureRecord(
        time_ns=t, wire_size=1294, payload_size=1252,
        flow=("a", 1, "b", 2), packet_number=None, dgram_id=0, gso_id=None,
    )


def test_gaps_between_consecutive_records():
    records = [rec(0), rec(100), rec(250), rec(1000)]
    assert inter_packet_gaps(records) == [100, 150, 750]


def test_gaps_empty_and_single():
    assert inter_packet_gaps([]) == []
    assert inter_packet_gaps([rec(5)]) == []


def test_fraction_leq():
    values = [1, 2, 3, 4, 5]
    assert fraction_leq(values, 3) == 0.6
    assert fraction_leq(values, 0) == 0.0
    assert fraction_leq([], 10) == 0.0


def test_cdf_monotone_and_bounded():
    xs, ps = cdf([5, 1, 3, 2, 4], points=10)
    assert ps[0] == 0.0 and ps[-1] == 1.0
    assert xs == sorted(xs)
    assert xs[0] == 1 and xs[-1] == 5


def test_cdf_empty():
    assert cdf([]) == ([], [])


def test_percentile():
    values = list(range(1, 101))
    assert percentile(values, 0.0) == 1
    assert percentile(values, 1.0) == 100
    assert abs(percentile(values, 0.5) - 50) <= 1


def test_percentile_empty_raises():
    with pytest.raises(ValueError):
        percentile([], 0.5)


@given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1, max_size=100))
def test_cdf_covers_all_quantiles(values):
    xs, ps = cdf(values, points=50)
    assert len(xs) == len(ps) == 51
    assert min(xs) == min(values)
    assert max(xs) == max(values)
