"""TCP comparator: segments, sender/receiver over a lossless and lossy wire."""

import random

from repro.kernel.socket import UdpSocket
from repro.kernel.qdisc.netem import NetemQdisc
from repro.tcp.receiver import TcpReceiver
from repro.tcp.segment import TCP_MSS, TcpSegment
from repro.tcp.sender import TcpSender
from repro.units import kib, ms


class TestSegment:
    def test_wire_payload_includes_framing(self):
        seg = TcpSegment(seq=0, length=TCP_MSS, ack_no=0)
        assert seg.wire_payload > TCP_MSS

    def test_is_data(self):
        assert TcpSegment(0, 100, 0).is_data
        assert TcpSegment(100, 0, 0, fin=True).is_data
        assert not TcpSegment(0, 0, 500).is_data


def build_pair(sim, file_size, loss_rate=0.0, seed=3):
    """Sender and receiver joined by two 20 ms delay pipes."""
    rsock = UdpSocket(sim, "client", 1)
    ssock = UdpSocket(sim, "server", 2)
    fwd = NetemQdisc(sim, "fwd", sink=rsock, delay_ns=ms(20),
                     loss_rate=loss_rate, rng=random.Random(seed))
    rev = NetemQdisc(sim, "rev", sink=ssock, delay_ns=ms(20))
    ssock.egress = fwd
    rsock.egress = rev
    ssock.connect("client", 1)
    rsock.connect("server", 2)
    sender = TcpSender(sim, ssock, file_size)
    receiver = TcpReceiver(sim, rsock, file_size)
    return sender, receiver


def test_small_transfer_completes(sim):
    sender, receiver = build_pair(sim, kib(64))
    sender.start()
    sim.run(until=ms(5000))
    assert receiver.done
    assert sender.complete
    assert receiver.rcv_nxt == kib(64)


def test_delivery_takes_at_least_one_way_delay(sim):
    sender, receiver = build_pair(sim, kib(8))
    sender.start()
    sim.run(until=ms(5000))
    assert receiver.completed_at >= ms(20)


def test_ack_clocking_grows_window(sim):
    sender, receiver = build_pair(sim, kib(512))
    sender.start()
    start_cwnd = sender.cc.cwnd
    sim.run(until=ms(500))
    assert sender.cc.cwnd > start_cwnd


def test_transfer_survives_random_loss(sim):
    sender, receiver = build_pair(sim, kib(128), loss_rate=0.02)
    sender.start()
    sim.run(until=ms(60_000))
    assert receiver.done
    assert sender.retransmissions > 0 or sender.cc.congestion_events > 0


def test_fast_retransmit_on_dup_acks(sim):
    # Heavier loss makes dup-ack recovery near certain within the window.
    sender, receiver = build_pair(sim, kib(256), loss_rate=0.05, seed=11)
    sender.start()
    sim.run(until=ms(120_000))
    assert receiver.done
    assert sender.retransmissions > 0


def test_delayed_ack_policy(sim):
    sender, receiver = build_pair(sim, kib(64))
    sender.start()
    sim.run(until=ms(5000))
    # Roughly one ACK per two segments (plus delayed-ack stragglers).
    segments = -(-kib(64) // TCP_MSS)
    assert receiver.acks_sent <= segments + 5
    assert receiver.acks_sent >= segments // 2 - 2


def test_receiver_counts_duplicate_bytes(sim):
    sender, receiver = build_pair(sim, kib(128), loss_rate=0.03, seed=5)
    sender.start()
    sim.run(until=ms(60_000))
    assert receiver.done
    assert receiver.bytes_received_total >= kib(128)
