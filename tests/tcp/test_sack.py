"""SACK-based TCP recovery specifics."""

import random

from repro.kernel.qdisc.netem import NetemQdisc
from repro.kernel.socket import UdpSocket
from repro.quic.ranges import RangeSet
from repro.tcp.receiver import TcpReceiver
from repro.tcp.segment import TCP_MSS, TcpSegment
from repro.tcp.sender import LOSS_SACK_BYTES, TcpSender
from repro.units import kib, ms


def build_pair(sim, file_size, loss_rate=0.0, seed=3):
    rsock = UdpSocket(sim, "client", 1)
    ssock = UdpSocket(sim, "server", 2)
    fwd = NetemQdisc(sim, "fwd", sink=rsock, delay_ns=ms(20),
                     loss_rate=loss_rate, rng=random.Random(seed))
    rev = NetemQdisc(sim, "rev", sink=ssock, delay_ns=ms(20))
    ssock.egress = fwd
    rsock.egress = rev
    ssock.connect("client", 1)
    rsock.connect("server", 2)
    return TcpSender(sim, ssock, file_size), TcpReceiver(sim, rsock, file_size)


class TestScoreboard:
    def _sender(self, sim):
        sender, _ = build_pair(sim, kib(512))
        return sender

    def test_sack_blocks_populate_scoreboard(self, sim):
        sender = self._sender(sim)
        sender.snd_nxt = 20 * TCP_MSS
        ack = TcpSegment(0, 0, ack_no=0, sack_blocks=((5 * TCP_MSS, 8 * TCP_MSS),))
        sender._on_ack(ack)
        assert sender.highest_sacked == 8 * TCP_MSS
        assert sender.sacked.covers(5 * TCP_MSS, 8 * TCP_MSS)

    def test_hole_lost_after_three_mss_sacked_above(self, sim):
        sender = self._sender(sim)
        sender.snd_nxt = 20 * TCP_MSS
        # SACK exactly LOSS_SACK_BYTES above the hole at [0, MSS).
        sender._on_ack(
            TcpSegment(0, 0, 0, sack_blocks=((TCP_MSS, TCP_MSS + LOSS_SACK_BYTES),))
        )
        lost = sender._lost_ranges()
        assert lost and lost[0][0] == 0
        assert sender.in_recovery

    def test_small_sack_does_not_trigger_recovery(self, sim):
        sender = self._sender(sim)
        sender.snd_nxt = 20 * TCP_MSS
        sender._on_ack(TcpSegment(0, 0, 0, sack_blocks=((TCP_MSS, 2 * TCP_MSS),)))
        assert not sender.in_recovery

    def test_pipe_excludes_sacked_and_lost(self, sim):
        sender = self._sender(sim)
        sender.snd_nxt = 10 * TCP_MSS
        assert sender._pipe() == 10 * TCP_MSS
        sender._on_ack(
            TcpSegment(0, 0, 0, sack_blocks=((TCP_MSS, TCP_MSS + LOSS_SACK_BYTES),))
        )
        # 3 MSS sacked + 1 MSS lost leave 6 MSS in the pipe.
        assert sender._pipe() == 6 * TCP_MSS

    def test_retransmitted_hole_counts_in_pipe(self, sim):
        sender = self._sender(sim)
        sender.snd_nxt = 10 * TCP_MSS
        sender._on_ack(
            TcpSegment(0, 0, 0, sack_blocks=((TCP_MSS, TCP_MSS + LOSS_SACK_BYTES),))
        )
        before = sender._pipe()
        sender._send_window()  # retransmits the hole
        assert sender.retransmissions >= 1
        assert sender._pipe() >= before

    def test_recovery_ends_at_recover_point(self, sim):
        sender = self._sender(sim)
        sender.snd_nxt = 10 * TCP_MSS
        sender._on_ack(
            TcpSegment(0, 0, 0, sack_blocks=((TCP_MSS, TCP_MSS + LOSS_SACK_BYTES),))
        )
        assert sender.in_recovery
        sender._on_ack(TcpSegment(0, 0, ack_no=10 * TCP_MSS))
        assert not sender.in_recovery


class TestReceiverSack:
    def test_receiver_reports_blocks_above_cumulative(self, sim):
        _, receiver = build_pair(sim, kib(512))
        receiver.received = RangeSet()
        receiver.received.add(0, 1000)
        receiver.received.add(3000, 4000)
        receiver.received.add(6000, 7000)
        receiver.received.add(9000, 10000)
        receiver.received.add(12000, 13000)
        receiver.rcv_nxt = 1000
        blocks = receiver._sack_blocks()
        assert len(blocks) == 3
        assert blocks[0] == (12000, 13000)  # highest first
        assert (3000, 4000) not in blocks  # truncated to three
        assert all(hi > receiver.rcv_nxt for _lo, hi in blocks)

    def test_no_blocks_when_in_order(self, sim):
        _, receiver = build_pair(sim, kib(512))
        receiver.received.add(0, 5000)
        receiver.rcv_nxt = 5000
        assert receiver._sack_blocks() == ()


class TestEndToEnd:
    def test_burst_loss_recovers_within_few_rtts(self, sim):
        sender, receiver = build_pair(sim, kib(256), loss_rate=0.0)
        # Manually drop a contiguous burst by intercepting the forward path.
        dropped = []
        fwd = sender.socket.egress
        orig = fwd.enqueue

        def lossy(dgram):
            seg = dgram.payload
            if seg.is_data and 20 * TCP_MSS <= seg.seq < 30 * TCP_MSS and seg.seq not in dropped:
                dropped.append(seg.seq)
                return
            orig(dgram)

        fwd.enqueue = lossy
        sender.start()
        sim.run(until=ms(20_000))
        assert receiver.done
        assert len(dropped) >= 5
        # SACK recovery repairs a 10-segment burst quickly: well under the
        # ~10 RTTs NewReno would need (1 hole per RTT) plus slow-start time.
        assert receiver.completed_at < ms(3_000)
        assert sender.rto_events == 0

    def test_heavy_random_loss_still_completes(self, sim):
        sender, receiver = build_pair(sim, kib(128), loss_rate=0.08, seed=13)
        sender.start()
        sim.run(until=ms(120_000))
        assert receiver.done
        assert sender.retransmissions > 0
