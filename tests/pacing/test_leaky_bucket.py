"""Leaky-bucket pacer (picoquic): credit banking, post-idle bursts."""

from hypothesis import given, strategies as st

from repro.pacing.leaky_bucket import LeakyBucketPacer
from repro.units import SEC, mbit, ms

SIZE = 1252


def make(rate=mbit(40), bucket_packets=16):
    return LeakyBucketPacer(rate_bps=rate, bucket_max_bytes=bucket_packets * SIZE)


def test_starts_with_full_bucket():
    p = make()
    assert p.credit_bytes == 16 * SIZE
    assert p.release_time(0, SIZE) == 0


def test_burst_up_to_bucket_then_blocks():
    p = make(bucket_packets=4)
    now = ms(10)
    sent = 0
    while p.release_time(now, SIZE) <= now and sent < 20:
        p.commit(now, SIZE)
        sent += 1
    assert sent == 4


def test_credit_refills_at_rate():
    p = make(bucket_packets=1)
    p.commit(0, SIZE)  # bucket empty
    wait = p.release_time(0, SIZE)
    expected = SIZE * 8 * SEC // mbit(40)
    assert abs(wait - expected) <= expected // 100 + 2


def test_idle_banks_credit_capped_at_bucket():
    p = make(bucket_packets=8)
    for _ in range(8):
        p.commit(0, SIZE)
    # Very long idle: credit caps at the bucket, not more.
    later = ms(1000)
    p.release_time(later, SIZE)
    assert p.credit_bytes <= 8 * SIZE + 1


def test_rate_change_affects_refill():
    slow = make(rate=mbit(10), bucket_packets=1)
    fast = make(rate=mbit(40), bucket_packets=1)
    slow.commit(0, SIZE)
    fast.commit(0, SIZE)
    assert slow.release_time(0, SIZE) > fast.release_time(0, SIZE)


def test_debt_is_bounded():
    p = make(bucket_packets=2)
    for _ in range(50):
        p.commit(0, SIZE)
    assert p.credit_bytes >= -2 * SIZE


@given(
    st.integers(min_value=2_000_000, max_value=10**8),
    st.integers(min_value=1, max_value=32),
)
def test_sustained_rate_bounded_by_configuration(rate, bucket_pkts):
    p = LeakyBucketPacer(rate_bps=rate, bucket_max_bytes=bucket_pkts * SIZE)
    t = 0
    sent_bytes = 0
    for _ in range(300):
        t = max(t, p.release_time(t, SIZE))
        p.commit(t, SIZE)
        sent_bytes += SIZE
    # Over a long run, throughput can't exceed rate + one bucket of credit.
    if t > 0:
        max_bytes = rate * t / (8 * SEC) + bucket_pkts * SIZE + SIZE
        assert sent_bytes <= max_bytes


def test_release_time_never_in_past():
    p = make()
    for now in (0, ms(1), ms(5)):
        assert p.release_time(now, SIZE) >= now
