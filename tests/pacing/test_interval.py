"""Interval pacer (quiche/ngtcp2): schedule advance, idle reset, catch-up."""

from hypothesis import given, strategies as st

from repro.pacing.interval import IntervalPacer
from repro.units import SEC, mbit, ms, us

SIZE = 1252


def interval(rate):
    return SIZE * 8 * SEC // rate


def test_first_packet_releases_immediately():
    p = IntervalPacer(rate_bps=mbit(40))
    assert p.release_time(ms(1), SIZE) == ms(1)


def test_schedule_spaces_consecutive_packets():
    p = IntervalPacer(rate_bps=mbit(40))
    now = ms(1)
    t1 = p.release_time(now, SIZE)
    p.commit(t1, SIZE)
    t2 = p.release_time(now, SIZE)
    p.commit(t2, SIZE)
    t3 = p.release_time(now, SIZE)
    gap = interval(mbit(40))
    assert t2 - t1 == gap
    assert t3 - t2 == gap


def test_idle_resets_schedule_without_credit():
    p = IntervalPacer(rate_bps=mbit(40))
    t1 = p.release_time(0, SIZE)
    p.commit(t1, SIZE)
    # Long idle: far past the catch-up horizon.
    later = ms(100)
    t = p.release_time(later, SIZE)
    assert t == later
    p.commit(t, SIZE)
    # No banked burst: the next packet is spaced normally.
    assert p.release_time(later, SIZE) == later + interval(mbit(40))


def test_slightly_late_wakeup_catches_up():
    p = IntervalPacer(rate_bps=mbit(40), catchup_horizon_ns=ms(2))
    t1 = p.release_time(0, SIZE)
    p.commit(t1, SIZE)
    # Wake up one interval late: both this and the next packet go now.
    late = 2 * interval(mbit(40))
    t2 = p.release_time(late, SIZE)
    assert t2 == late
    p.commit(t2, SIZE)
    t3 = p.release_time(late, SIZE)
    assert t3 <= late + interval(mbit(40))


def test_rate_update_changes_spacing():
    p = IntervalPacer(rate_bps=mbit(10))
    t1 = p.release_time(0, SIZE)
    p.commit(t1, SIZE)
    p.update_rate(mbit(40), 0)
    t2 = p.release_time(0, SIZE)
    p.commit(t2, SIZE)
    t3 = p.release_time(0, SIZE)
    assert t3 - t2 == interval(mbit(40))


def test_burst_budget_allows_shared_timestamps():
    p = IntervalPacer(rate_bps=mbit(40), burst_budget_bytes=2 * SIZE)
    t1 = p.release_time(0, SIZE)
    p.commit(t1, SIZE)
    t2 = p.release_time(0, SIZE)
    # Within the burst budget the second packet may release early.
    assert t2 < interval(mbit(40))


@given(
    st.integers(min_value=1_000_000, max_value=10**9),
    st.lists(st.integers(min_value=200, max_value=1500), min_size=2, max_size=40),
)
def test_timestamps_monotonic_nondecreasing(rate, sizes):
    p = IntervalPacer(rate_bps=rate)
    now = 0
    last = 0
    for size in sizes:
        t = p.release_time(now, size)
        assert t >= last
        p.commit(t, size)
        last = t


@given(st.integers(min_value=5_000_000, max_value=10**9))
def test_long_run_average_rate_close_to_target(rate):
    p = IntervalPacer(rate_bps=rate)
    t = 0
    total = 0
    n = 200
    for _ in range(n):
        t = max(t, p.release_time(t, SIZE))
        p.commit(t, SIZE)
        total += SIZE
    if t > 0:
        achieved = (total - SIZE) * 8 * SEC / t
        assert achieved >= rate * 0.9
