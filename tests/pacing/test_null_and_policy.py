"""Null pacer and GSO policy."""

from repro.pacing.gso_policy import GSO_DISABLED, GSO_ENABLED, GSO_PACED, GsoPolicy
from repro.pacing.null import NullPacer
from repro.units import ms


def test_null_pacer_always_now():
    p = NullPacer()
    assert p.release_time(ms(5), 1500) == ms(5)
    p.commit(ms(5), 1500)
    assert p.release_time(ms(5), 1500) == ms(5)


def test_null_pacer_interval_helper():
    p = NullPacer(rate_bps=8_000)
    assert p.interval_ns(1) == 1_000_000


def test_policy_disabled_one_segment():
    assert GSO_DISABLED.segments_for(50) == 1


def test_policy_enabled_caps_at_max():
    assert GSO_ENABLED.segments_for(50) == 10
    assert GSO_ENABLED.segments_for(3) == 3
    assert GSO_ENABLED.segments_for(0) == 1


def test_presets():
    assert not GSO_DISABLED.enabled
    assert GSO_ENABLED.enabled and not GSO_ENABLED.paced
    assert GSO_PACED.enabled and GSO_PACED.paced


def test_custom_policy():
    p = GsoPolicy(enabled=True, max_segments=4, paced=True)
    assert p.segments_for(10) == 4
