"""Stack profile construction and CCA-dependent quirks."""

import pytest

from repro.errors import ConfigError
from repro.pacing import IntervalPacer, LeakyBucketPacer, NullPacer
from repro.stacks.base import StackProfile, make_pacer
from repro.stacks.profiles import ngtcp2_profile, picoquic_profile, profile_for, quiche_profile


def test_quiche_uses_txtime_and_so_txtime():
    p = quiche_profile()
    assert p.pacing == "txtime"
    assert p.so_txtime
    assert p.spurious_rollback  # stock quiche


def test_quiche_sf_patch():
    p = profile_for("quiche", spurious_rollback=False)
    assert not p.spurious_rollback


def test_picoquic_leaky_bucket_and_ack_frequency_client():
    p = picoquic_profile()
    assert p.pacing == "leaky_bucket"
    assert p.client_ack_threshold > 100  # timer-driven acks
    assert p.client_max_ack_delay_ns > 0


def test_picoquic_bbr_small_bucket():
    cubic = profile_for("picoquic", "cubic")
    bbr = profile_for("picoquic", "bbr")
    assert bbr.bucket_packets < cubic.bucket_packets


def test_ngtcp2_fixed_windows():
    p = ngtcp2_profile()
    assert p.pacing == "app_interval"
    assert not p.fc_autotune
    assert p.recv_conn_window < 1 << 20
    assert p.bbr_params is not None


def test_profile_for_sets_cca():
    assert profile_for("quiche", "bbr").cca == "bbr"


def test_unknown_stack_rejected():
    with pytest.raises(ConfigError):
        profile_for("msquic")


def test_invalid_pacing_mode_rejected():
    with pytest.raises(ConfigError):
        StackProfile(name="x", pacing="warp").validate()


def test_make_pacer_mapping():
    assert isinstance(make_pacer(profile_for("quiche"), 1252), IntervalPacer)
    assert isinstance(make_pacer(profile_for("ngtcp2"), 1252), IntervalPacer)
    assert isinstance(make_pacer(profile_for("picoquic"), 1252), LeakyBucketPacer)
    assert isinstance(
        make_pacer(StackProfile(name="x", pacing="none"), 1252), NullPacer
    )


def test_leaky_bucket_sized_by_profile():
    pacer = make_pacer(profile_for("picoquic"), 1252)
    assert pacer.bucket_max_bytes == profile_for("picoquic").bucket_packets * 1252
