"""Server-driver send strategies, observed through real experiments.

These are white-box checks on the driver layer: timestamp monotonicity, GSO
grouping, pacing-mode invariants — run on small end-to-end experiments so the
drivers see realistic ACK clocking.
"""

import pytest

from repro.framework.config import ExperimentConfig
from repro.framework.experiment import Experiment
from repro.units import kib, us

SMALL = kib(300)


def build(**kwargs):
    kwargs.setdefault("file_size", SMALL)
    kwargs.setdefault("repetitions", 1)
    return Experiment(ExperimentConfig(**kwargs), seed=13)


class TestTxTimeDriver:
    def test_txtimes_monotonic_nondecreasing(self):
        e = build(stack="quiche", qdisc="fq", spurious_rollback=False)
        e.run()
        log = e.server.expected_send_log
        times = [t for _, t in log]
        assert times == sorted(times)

    def test_txtime_lookahead_bounded(self):
        e = build(stack="quiche", qdisc="fq", spurious_rollback=False)
        result = e.run()
        lookahead = e.profile.txtime_lookahead_ns
        # Expected send times never run further ahead of the wire than the
        # lookahead plus one scheduling slop.
        actual_by_pn = {r.packet_number: r.time_ns for r in result.server_records}
        for pn, expected in e.server.expected_send_log:
            actual = actual_by_pn.get(pn)
            if actual is not None:
                assert expected - actual < lookahead + us(500)

    def test_every_logged_packet_reached_the_wire(self):
        e = build(stack="quiche", qdisc="fq", spurious_rollback=False)
        result = e.run()
        wire_pns = {r.packet_number for r in result.server_records}
        logged = {pn for pn, _ in e.server.expected_send_log}
        missing = logged - wire_pns
        # Only bottleneck-dropped packets may be missing... but the sniffer
        # sits before the bottleneck, so everything logged must appear.
        assert not missing

    def test_etf_timestamps_respect_min_offset(self):
        e = build(stack="quiche", qdisc="etf", spurious_rollback=False)
        e.run()
        assert e.profile.txtime_min_offset_ns > 0
        assert e.qdisc.stats.dropped_late == 0


class TestGsoDriver:
    def test_buffers_respect_segment_cap(self):
        e = build(
            stack="quiche", qdisc="fq", gso="on", gso_segments=4, spurious_rollback=False
        )
        e.run()
        assert e.segmenter.buffers_split > 0
        # Reconstruct group sizes from gso ids on the wire.
        sizes = {}
        for r in e.sniffer.records:
            if r.gso_id is not None:
                sizes[r.gso_id] = sizes.get(r.gso_id, 0) + 1
        assert sizes
        assert max(sizes.values()) <= 4

    def test_paced_gso_marks_buffers(self):
        e = build(stack="quiche", qdisc="fq", gso="paced", spurious_rollback=False)
        e.run()
        assert e.segmenter.paced_buffers > 0
        assert e.segmenter.paced_buffers <= e.segmenter.buffers_split


class TestAppPacedDrivers:
    @pytest.mark.parametrize("stack", ["picoquic", "ngtcp2"])
    def test_one_datagram_per_sendmsg(self, stack):
        e = build(stack=stack)
        e.run()
        # App-paced drivers never batch via sendmmsg/GSO.
        assert e.server_sock.gso_sends == 0
        assert e.server.conn.packets_sent == e.server_sock.datagrams_sent

    def test_pacer_deadline_drives_wakeups(self):
        e = build(stack="ngtcp2")
        e.run()
        # The driver woke many times (pacing timers), far more than packets
        # could be coalesced into a handful of bursts.
        assert e.server.wakeups > 100


class TestPacingOverride:
    def test_none_override_disables_pacer(self):
        e = build(stack="picoquic", pacing_override="none")
        from repro.pacing import NullPacer

        assert isinstance(e.server.pacer, NullPacer)
        result = e.run()
        assert result.completed
