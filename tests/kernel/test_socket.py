"""UDP socket model: send staggering, SO_TXTIME gating, GSO wrapping, rcvbuf."""

import pytest

from repro.errors import ConfigError
from repro.kernel.gso import GsoBuffer
from repro.kernel.socket import SendSpec, UdpSocket
from repro.kernel.syscall import SyscallModel
from repro.units import kib
from tests.conftest import Collector


def _sock(sim, collector, so_txtime=False, rcvbuf=kib(64)):
    sock = UdpSocket(
        sim,
        "10.0.0.1",
        443,
        egress=collector,
        syscalls=SyscallModel(syscall_ns=100, per_datagram_ns=50, per_byte_ns=0.0),
        so_txtime=so_txtime,
        rcvbuf_bytes=rcvbuf,
    )
    sock.connect("10.0.0.2", 40000)
    return sock


def test_flow_requires_connect(sim, collector):
    sock = UdpSocket(sim, "a", 1, egress=collector)
    with pytest.raises(ConfigError):
        _ = sock.flow


def test_sendmsg_charges_cost_before_enqueue(sim, collector):
    sock = _sock(sim, collector)
    sock.sendmsg(SendSpec(payload=b"x", payload_size=1))
    sim.run()
    assert collector.times == [150]


def test_consecutive_sends_stagger(sim, collector):
    sock = _sock(sim, collector)
    for _ in range(3):
        sock.sendmsg(SendSpec(payload=b"x", payload_size=1))
    sim.run()
    assert collector.times == [150, 300, 450]


def test_sendmmsg_one_syscall(sim, collector):
    sock = _sock(sim, collector)
    sock.sendmmsg([SendSpec(payload=b"x", payload_size=1) for _ in range(3)])
    sim.run()
    # One 100ns syscall + 50ns per datagram: arrivals at 150, 200, 250.
    assert collector.times == [150, 200, 250]


def test_txtime_dropped_without_so_txtime(sim, collector):
    sock = _sock(sim, collector, so_txtime=False)
    sock.sendmsg(SendSpec(payload=b"x", payload_size=1, txtime_ns=999))
    sim.run()
    assert collector.dgrams[0].txtime_ns is None


def test_txtime_attached_with_so_txtime(sim, collector):
    sock = _sock(sim, collector, so_txtime=True)
    sock.sendmsg(SendSpec(payload=b"x", payload_size=1, txtime_ns=999))
    sim.run()
    assert collector.dgrams[0].txtime_ns == 999


def test_send_gso_wraps_segments(sim, collector):
    sock = _sock(sim, collector, so_txtime=True)
    specs = [SendSpec(payload=b"x", payload_size=100, packet_number=i) for i in range(5)]
    sock.send_gso(specs, txtime_ns=777, pacing_rate_Bps=1000)
    sim.run()
    assert len(collector) == 1
    super_dgram = collector.dgrams[0]
    assert super_dgram.payload_size == 500
    assert super_dgram.txtime_ns == 777
    buffer = super_dgram.payload
    assert isinstance(buffer, GsoBuffer)
    assert len(buffer) == 5
    assert buffer.pacing_rate_Bps == 1000
    assert all(seg.gso_id == super_dgram.gso_id for seg in buffer.segments)


def test_gso_counts_all_datagrams(sim, collector):
    sock = _sock(sim, collector)
    sock.send_gso([SendSpec(payload=b"x", payload_size=10) for _ in range(4)])
    sim.run()
    assert sock.datagrams_sent == 4
    assert sock.gso_sends == 1


def test_receive_buffer_accounts_and_drops(sim):
    sock = UdpSocket(sim, "a", 1, rcvbuf_bytes=250)
    from tests.conftest import make_dgram

    for _ in range(3):
        sock.deliver(make_dgram(100))
    assert sock.rx_pending == 2
    assert sock.rx_dropped == 1
    drained = sock.recv_all()
    assert len(drained) == 2
    assert sock.rx_pending == 0
    # Buffer freed: next delivery accepted.
    sock.deliver(make_dgram(100))
    assert sock.rx_pending == 1


def test_on_readable_callback_fires(sim):
    from tests.conftest import make_dgram

    sock = UdpSocket(sim, "a", 1)
    calls = []
    sock.on_readable = lambda: calls.append(sim.now)
    sock.deliver(make_dgram(10))
    assert calls == [0]


def test_empty_batches_are_noops(sim, collector):
    sock = _sock(sim, collector)
    assert sock.sendmmsg([]) == sim.now
    assert sock.send_gso([]) == sim.now
    sim.run()
    assert len(collector) == 0
