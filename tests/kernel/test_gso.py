"""GSO segmenter: splitting, stock bursts, paced spreading, no reordering."""

from repro.kernel.gso import GsoBuffer, GsoSegmenter, SEGMENT_SPLIT_NS
from repro.net.packet import Datagram
from repro.units import SEC, us
from tests.conftest import make_dgram


def _buffer_dgram(segments, rate=None):
    buf = GsoBuffer(segments=segments, pacing_rate_Bps=rate)
    return Datagram(
        flow=segments[0].flow, payload_size=buf.total_payload, payload=buf, gso_id=1
    )


def test_plain_datagram_passes_through(sim, collector):
    seg = GsoSegmenter(sim, sink=collector)
    seg.receive(make_dgram(100, pn=1))
    sim.run()
    assert len(collector) == 1
    assert seg.buffers_split == 0


def test_stock_gso_emits_back_to_back(sim, collector):
    seg = GsoSegmenter(sim, sink=collector)
    segs = [make_dgram(1252, pn=i) for i in range(5)]
    seg.receive(_buffer_dgram(segs))
    sim.run()
    assert len(collector) == 5
    gaps = [collector.times[i] - collector.times[i - 1] for i in range(1, 5)]
    assert all(g == SEGMENT_SPLIT_NS for g in gaps)
    assert seg.buffers_split == 1
    assert seg.paced_buffers == 0


def test_paced_gso_spreads_at_rate(sim, collector):
    seg = GsoSegmenter(sim, sink=collector)
    rate_Bps = 5_000_000  # 40 Mbit/s
    segs = [make_dgram(1252, pn=i) for i in range(4)]
    seg.receive(_buffer_dgram(segs, rate=rate_Bps))
    sim.run()
    expected_gap = 1252 * SEC // rate_Bps
    gaps = [collector.times[i] - collector.times[i - 1] for i in range(1, 4)]
    assert all(g == expected_gap for g in gaps)
    assert seg.paced_buffers == 1


def test_consecutive_paced_buffers_do_not_interleave(sim, collector):
    seg = GsoSegmenter(sim, sink=collector)
    slow = [make_dgram(1252, pn=i) for i in range(3)]
    fast = [make_dgram(1252, pn=10 + i) for i in range(3)]
    seg.receive(_buffer_dgram(slow, rate=1_000_000))  # slow spread
    seg.receive(_buffer_dgram(fast, rate=100_000_000))  # would overtake
    sim.run()
    pns = [d.packet_number for d in collector.dgrams]
    assert pns == [0, 1, 2, 10, 11, 12]


def test_plain_datagram_does_not_overtake_spreading_buffer(sim, collector):
    seg = GsoSegmenter(sim, sink=collector)
    seg.receive(_buffer_dgram([make_dgram(1252, pn=i) for i in range(3)], rate=1_000_000))
    seg.receive(make_dgram(100, pn=99))
    sim.run()
    pns = [d.packet_number for d in collector.dgrams]
    assert pns == [0, 1, 2, 99]


def test_buffer_total_payload(sim):
    buf = GsoBuffer(segments=[make_dgram(100), make_dgram(200)])
    assert buf.total_payload == 300
    assert len(buf) == 2
