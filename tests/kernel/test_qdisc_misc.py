"""pfifo_fast, TBF, netem, FQ_CoDel, and the qdisc factory."""

import random

import pytest

from repro.errors import ConfigError
from repro.kernel.qdisc import (
    EtfQdisc,
    FqCodel,
    FqQdisc,
    NetemQdisc,
    PfifoFast,
    TbfQdisc,
    make_qdisc,
)
from repro.units import mbit, ms, tx_time_ns, us
from tests.conftest import Collector, make_dgram


class TestPfifoFast:
    def test_pass_through_preserves_order(self, sim, collector):
        q = PfifoFast(sim, sink=collector)
        for i in range(5):
            q.enqueue(make_dgram(100, pn=i))
        sim.run()
        assert [d.packet_number for d in collector.dgrams] == list(range(5))
        assert collector.times == [0] * 5

    def test_ignores_txtime(self, sim, collector):
        q = PfifoFast(sim, sink=collector)
        q.enqueue(make_dgram(100, txtime=us(10_000)))
        sim.run()
        assert collector.times == [0]
        assert not q.honors_txtime

    def test_limit_drops(self, sim, collector):
        q = PfifoFast(sim, sink=collector, limit_packets=0)
        q.enqueue(make_dgram(100))
        assert q.stats.dropped == 1


class TestTbf:
    def test_shapes_to_rate(self, sim, collector):
        q = TbfQdisc(sim, sink=collector, rate_bps=mbit(40), burst_bytes=2000, limit_bytes=10**7)
        for _ in range(50):
            q.enqueue(make_dgram(1252))
        sim.run()
        duration = collector.times[-1] - collector.times[0]
        rate = 48 * make_dgram(1252).wire_size * 8 * 1e9 / duration
        assert mbit(35) < rate < mbit(45)

    def test_limit_drops(self, sim, collector):
        wire = make_dgram(1252).wire_size
        q = TbfQdisc(sim, sink=collector, limit_bytes=2 * wire, burst_bytes=1500)
        for _ in range(10):
            q.enqueue(make_dgram(1252))
        # One passes straight through on the initial bucket; two queue; the
        # rest overflow the byte limit.
        assert q.stats.dropped >= 7
        sim.run()
        assert q.stats.dequeued + q.stats.dropped == 10

    def test_backlog_reported(self, sim, collector):
        q = TbfQdisc(sim, sink=collector, rate_bps=mbit(1), burst_bytes=1500, limit_bytes=10**6)
        q.enqueue(make_dgram(1252))
        q.enqueue(make_dgram(1252))
        assert q.backlog_bytes > 0
        sim.run()
        assert q.backlog_bytes == 0

    def test_oversize_packet_dropped(self, sim, collector):
        q = TbfQdisc(sim, sink=collector, burst_bytes=500)
        q.enqueue(make_dgram(1252))
        assert q.stats.dropped == 1


class TestNetem:
    def test_fixed_delay(self, sim, collector):
        q = NetemQdisc(sim, sink=collector, delay_ns=ms(20))
        q.enqueue(make_dgram(100))
        sim.run()
        assert collector.times == [ms(20)]

    def test_jitter_preserves_order(self, sim, collector):
        q = NetemQdisc(
            sim, sink=collector, delay_ns=ms(5), jitter_ns=ms(4), rng=random.Random(3)
        )
        for i in range(50):
            sim.schedule(i * us(10), q.enqueue, make_dgram(100, pn=i))
        sim.run()
        assert [d.packet_number for d in collector.dgrams] == list(range(50))

    def test_random_loss(self, sim, collector):
        q = NetemQdisc(sim, sink=collector, loss_rate=0.5, rng=random.Random(1))
        for _ in range(200):
            q.enqueue(make_dgram(100))
        sim.run()
        assert 60 < q.stats.dropped < 140
        assert len(collector) == 200 - q.stats.dropped

    def test_loss_drops_counted_separately(self, sim, collector):
        q = NetemQdisc(sim, sink=collector, loss_rate=0.3, rng=random.Random(2))
        for _ in range(300):
            q.enqueue(make_dgram(100))
        sim.run()
        assert q.stats.dropped_loss > 0
        assert q.stats.dropped_overflow == 0
        assert q.stats.dropped == q.stats.dropped_loss
        assert q.stats.as_dict()["dropped_loss"] == q.stats.dropped_loss

    def test_overflow_drops_counted_separately(self, sim, collector):
        q = NetemQdisc(sim, sink=collector, delay_ns=ms(20), limit_packets=5)
        for _ in range(8):
            q.enqueue(make_dgram(100))
        sim.run()
        assert q.stats.dropped_overflow == 3
        assert q.stats.dropped_loss == 0
        assert q.stats.dropped == 3
        assert len(collector) == 5

    def test_default_rng_derives_from_seed(self, sim):
        def drops(seed, name="netem"):
            c = Collector(sim)
            q = NetemQdisc(sim, name=name, sink=c, loss_rate=0.5, seed=seed)
            pattern = []
            for _ in range(64):
                before = q.stats.dropped_loss
                q.enqueue(make_dgram(100))
                pattern.append(q.stats.dropped_loss > before)
            return pattern

        # Deterministic per (seed, name) — and different across seeds and
        # across instance names, unlike the old shared Random(0) default.
        assert drops(1) == drops(1)
        assert drops(1) != drops(2)
        assert drops(3, "netem-fwd") != drops(3, "netem-rev")


class TestFqCodel:
    def test_pass_through_without_drain_rate(self, sim, collector):
        q = FqCodel(sim, sink=collector)
        for i in range(5):
            q.enqueue(make_dgram(100, pn=i))
        sim.run()
        assert len(collector) == 5

    def test_ignores_txtime(self, sim, collector):
        q = FqCodel(sim, sink=collector)
        q.enqueue(make_dgram(100, txtime=us(10_000)))
        sim.run()
        assert collector.times[0] < us(10_000)

    def test_codel_drops_under_sustained_overload(self, sim, collector):
        q = FqCodel(sim, sink=collector, drain_rate_bps=mbit(10), target_ns=ms(5), interval_ns=ms(100))
        # Offer 4x the drain rate for a while: sojourn exceeds target.
        gap = tx_time_ns(make_dgram(1252).serialized_size, mbit(40))
        for i in range(800):
            sim.schedule(i * gap, q.enqueue, make_dgram(1252))
        sim.run()
        assert q.stats.dropped > 0
        assert q.stats.dequeued + q.stats.dropped <= 800

    def test_no_codel_drops_when_underloaded(self, sim, collector):
        q = FqCodel(sim, sink=collector, drain_rate_bps=mbit(100))
        gap = tx_time_ns(make_dgram(1252).serialized_size, mbit(40))
        for i in range(100):
            sim.schedule(i * gap, q.enqueue, make_dgram(1252))
        sim.run()
        assert q.stats.dropped == 0


class TestFactory:
    def test_known_names(self, sim, collector):
        assert isinstance(make_qdisc("none", sim, collector), PfifoFast)
        assert isinstance(make_qdisc("pfifo_fast", sim, collector), PfifoFast)
        assert isinstance(make_qdisc("fq", sim, collector), FqQdisc)
        assert isinstance(make_qdisc("fq_codel", sim, collector), FqCodel)
        assert isinstance(make_qdisc("etf", sim, collector), EtfQdisc)
        assert isinstance(make_qdisc("etf-offload", sim, collector), EtfQdisc)
        assert isinstance(make_qdisc("tbf", sim, collector), TbfQdisc)
        assert isinstance(make_qdisc("netem", sim, collector), NetemQdisc)

    def test_unknown_name_raises(self, sim, collector):
        with pytest.raises(ConfigError):
            make_qdisc("htb", sim, collector)

    def test_params_forwarded(self, sim, collector):
        etf = make_qdisc("etf", sim, collector, delta_ns=us(500))
        assert etf.delta_ns == us(500)
