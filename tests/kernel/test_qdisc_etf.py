"""ETF qdisc: delta-advanced watchdog, drop-if-late, txtime ordering."""

import random

from repro.kernel.qdisc.etf import EtfQdisc
from repro.sim.clock import JitterModel
from repro.units import us
from tests.conftest import make_dgram

NO_JITTER = JitterModel(median_ns=0, sigma=0.0)


def _etf(sim, collector, delta=us(200), jitter=NO_JITTER, **kwargs):
    kwargs.setdefault("watchdog_latency_max_ns", 0)
    return EtfQdisc(
        sim,
        sink=collector,
        delta_ns=delta,
        processing_jitter=jitter,
        rng=random.Random(1),
        **kwargs,
    )


def test_packet_released_near_its_timestamp(sim, collector):
    etf = _etf(sim, collector)
    etf.enqueue(make_dgram(100, txtime=us(1000)))
    sim.run()
    # Watchdog fires at txtime - delta; zero jitter -> release then.
    assert collector.times == [us(800)]


def test_untimed_packet_dropped(sim, collector):
    etf = _etf(sim, collector)
    etf.enqueue(make_dgram(100))
    sim.run()
    assert etf.stats.dropped == 1
    assert len(collector) == 0


def test_past_timestamp_dropped_late(sim, collector):
    etf = _etf(sim, collector)
    sim.schedule(us(500), etf.enqueue, make_dgram(100, txtime=us(100)))
    sim.run()
    assert etf.stats.dropped_late == 1
    assert len(collector) == 0


def test_releases_sorted_by_txtime_not_arrival(sim, collector):
    etf = _etf(sim, collector, delta=0)
    etf.enqueue(make_dgram(100, txtime=us(2000), pn=0))
    etf.enqueue(make_dgram(100, txtime=us(1000), pn=1))
    sim.run()
    assert [d.packet_number for d in collector.dgrams] == [1, 0]


def test_processing_jitter_never_reorders(sim, collector):
    etf = _etf(
        sim,
        collector,
        delta=us(200),
        jitter=JitterModel(median_ns=us(150), sigma=1.0),
    )
    for i in range(30):
        etf.enqueue(make_dgram(100, txtime=us(1000) + i * us(250), pn=i))
    sim.run()
    assert [d.packet_number for d in collector.dgrams] == list(range(30))
    times = collector.times
    assert times == sorted(times)


def test_limit_drops(sim, collector):
    etf = _etf(sim, collector, limit_packets=2)
    for i in range(4):
        etf.enqueue(make_dgram(100, txtime=us(10_000) + i))
    assert etf.stats.dropped == 2


def test_rearm_for_earlier_insertion(sim, collector):
    etf = _etf(sim, collector, delta=0)
    etf.enqueue(make_dgram(100, txtime=us(5000), pn=0))
    etf.enqueue(make_dgram(100, txtime=us(1000), pn=1))
    sim.run()
    assert collector.times[0] == us(1000)


def test_small_delta_with_watchdog_latency_drops_late(sim, collector):
    etf = _etf(sim, collector, delta=us(10), watchdog_latency_max_ns=us(120))
    for i in range(200):
        etf.enqueue(make_dgram(100, txtime=us(1000) + i * us(250), pn=i))
    sim.run()
    # With the watchdog landing up to 120 us late and only 10 us of delta,
    # a substantial share of packets misses its deadline.
    assert etf.stats.dropped_late > 20


def test_conservative_delta_absorbs_watchdog_latency(sim, collector):
    etf = _etf(sim, collector, delta=us(200), watchdog_latency_max_ns=us(120))
    for i in range(200):
        etf.enqueue(make_dgram(100, txtime=us(1000) + i * us(250), pn=i))
    sim.run()
    assert etf.stats.dropped_late == 0
    assert len(collector) == 200
