"""Syscall cost model: batching amortization."""

from repro.kernel.syscall import SyscallModel


def test_sendmsg_cost_components():
    m = SyscallModel(syscall_ns=1000, per_datagram_ns=500, per_byte_ns=1.0)
    assert m.sendmsg_cost(100) == 1000 + 500 + 100


def test_sendmmsg_amortizes_syscall():
    m = SyscallModel(syscall_ns=1000, per_datagram_ns=500, per_byte_ns=0.0)
    individual = 4 * m.sendmsg_cost(100)
    batched = m.sendmmsg_cost([100] * 4)
    assert batched == 1000 + 4 * 500
    assert batched < individual


def test_gso_cheaper_than_sendmmsg_for_same_bytes():
    m = SyscallModel()
    sizes = [1252] * 10
    assert m.gso_cost(sum(sizes)) < m.sendmmsg_cost(sizes)


def test_costs_scale_with_bytes():
    m = SyscallModel()
    assert m.sendmsg_cost(10_000) > m.sendmsg_cost(100)
