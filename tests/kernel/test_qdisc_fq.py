"""FQ qdisc: timestamp scheduling, past timestamps never dropped, flow FIFO."""

import random

import pytest

from repro.kernel.qdisc.fq import FqQdisc
from repro.sim.clock import JitterModel
from repro.units import us
from tests.conftest import make_dgram

NO_JITTER = JitterModel(median_ns=0, sigma=0.0)


def _fq(sim, collector, **kwargs):
    kwargs.setdefault("release_jitter", NO_JITTER)
    return FqQdisc(sim, sink=collector, rng=random.Random(1), **kwargs)


def test_untimed_packet_released_immediately(sim, collector):
    fq = _fq(sim, collector)
    fq.enqueue(make_dgram(100))
    sim.run()
    assert collector.times == [0]


def test_future_timestamp_is_honored(sim, collector):
    fq = _fq(sim, collector)
    fq.enqueue(make_dgram(100, txtime=us(500)))
    sim.run()
    assert collector.times == [us(500)]
    assert fq.throttled_events == 1


def test_past_timestamp_sent_immediately_not_dropped(sim, collector):
    fq = _fq(sim, collector)
    sim.schedule(us(100), fq.enqueue, make_dgram(100, txtime=us(10)))
    sim.run()
    assert len(collector) == 1
    assert fq.stats.dropped == 0


def test_batch_with_spread_timestamps_is_paced(sim, collector):
    fq = _fq(sim, collector)
    for i in range(5):
        fq.enqueue(make_dgram(100, txtime=us(100) * i, pn=i))
    sim.run()
    assert collector.times == [0, us(100), us(200), us(300), us(400)]
    assert [d.packet_number for d in collector.dgrams] == list(range(5))


def test_flow_fifo_even_with_inverted_timestamps(sim, collector):
    fq = _fq(sim, collector)
    fq.enqueue(make_dgram(100, txtime=us(500), pn=0))
    fq.enqueue(make_dgram(100, txtime=us(100), pn=1))  # same flow, later packet
    sim.run()
    assert [d.packet_number for d in collector.dgrams] == [0, 1]
    assert collector.times[0] == us(500)


def test_separate_flows_scheduled_independently(sim, collector):
    fq = _fq(sim, collector)
    fq.enqueue(make_dgram(100, txtime=us(500), pn=0, flow=("a", 1, "b", 2)))
    fq.enqueue(make_dgram(100, txtime=us(100), pn=1, flow=("c", 3, "d", 4)))
    sim.run()
    assert [d.packet_number for d in collector.dgrams] == [1, 0]


def test_horizon_drop(sim, collector):
    fq = _fq(sim, collector, horizon_ns=us(1000), horizon_drop=True)
    fq.enqueue(make_dgram(100, txtime=us(2000)))
    sim.run()
    assert fq.stats.dropped == 1
    assert len(collector) == 0


def test_queue_limit_drops(sim, collector):
    fq = _fq(sim, collector, limit_packets=3)
    for i in range(5):
        fq.enqueue(make_dgram(100, txtime=us(10_000)))
    assert fq.stats.dropped == 2
    assert fq.backlog_packets == 3


def test_flow_limit_drops(sim, collector):
    fq = _fq(sim, collector, flow_limit_packets=2)
    for _ in range(4):
        fq.enqueue(make_dgram(100, txtime=us(10_000)))
    assert fq.stats.dropped == 2


def test_release_jitter_delays_timed_releases(sim, collector):
    fq = FqQdisc(
        sim,
        sink=collector,
        release_jitter=JitterModel(median_ns=us(50), sigma=0.0),
        rng=random.Random(1),
    )
    fq.enqueue(make_dgram(100, txtime=us(100)))
    sim.run()
    assert collector.times == [us(150)]


def test_ready_packets_flushed_in_one_pass(sim, collector):
    fq = _fq(sim, collector)
    # Head is timed; the two behind it have due timestamps by release time.
    fq.enqueue(make_dgram(100, txtime=us(100), pn=0))
    fq.enqueue(make_dgram(100, txtime=us(100), pn=1))
    fq.enqueue(make_dgram(100, pn=2))
    sim.run()
    assert collector.times == [us(100)] * 3


def test_stats_accounting(sim, collector):
    fq = _fq(sim, collector)
    for i in range(3):
        fq.enqueue(make_dgram(100))
    sim.run()
    assert fq.stats.enqueued == 3
    assert fq.stats.dequeued == 3
    assert fq.stats.bytes_sent == 3 * make_dgram(100).wire_size
