"""Fast, small-scale checks that the paper's qualitative findings hold.

The benchmarks regenerate the full tables/figures; these tests pin the load-
bearing *orderings* at reduced scale so regressions surface in `pytest tests/`.
"""

import pytest

from repro.framework.config import ExperimentConfig
from repro.framework.experiment import Experiment
from repro.metrics import (
    fraction_of_packets_in_trains_leq,
    inter_packet_gaps,
    fraction_leq,
    pacing_precision_ns,
    packets_by_train_length,
)
from repro.units import mib, us

SCALE = mib(4)

_cache = {}


def result(stack, **kwargs):
    key = (stack, tuple(sorted(kwargs.items())))
    if key not in _cache:
        kwargs.setdefault("file_size", SCALE)
        cfg = ExperimentConfig(stack=stack, repetitions=1, **kwargs)
        _cache[key] = Experiment(cfg, seed=21).run()
    return _cache[key]


class TestBaseline:
    """Section 4.1 / Figures 2-3 / Table 1."""

    def test_all_stacks_complete(self):
        for stack in ("quiche", "picoquic", "ngtcp2", "tcp"):
            assert result(stack).completed

    def test_tcp_has_best_goodput_and_fewest_drops(self):
        tcp = result("tcp")
        for stack in ("quiche", "picoquic", "ngtcp2"):
            r = result(stack)
            assert tcp.goodput_mbps >= r.goodput_mbps - 0.5
            assert tcp.dropped <= r.dropped

    def test_ngtcp2_goodput_is_far_lowest(self):
        ngtcp2 = result("ngtcp2")
        assert ngtcp2.goodput_mbps < 20
        assert result("quiche").goodput_mbps > 25
        assert result("picoquic").goodput_mbps > 25

    def test_ngtcp2_and_tcp_pace_almost_perfectly(self):
        for stack in ("ngtcp2", "tcp"):
            frac = fraction_of_packets_in_trains_leq(result(stack).server_records, 5)
            assert frac > 0.99, stack

    def test_picoquic_bursts_with_cubic(self):
        recs = result("picoquic").server_records
        frac5 = fraction_of_packets_in_trains_leq(recs, 5)
        assert frac5 < 0.85  # large trains exist
        dist = packets_by_train_length(recs)
        total = sum(dist.values())
        big = sum(v for k, v in dist.items() if 14 <= k <= 19) / total
        assert big > 0.10  # bucket-sized bursts carry real mass

    def test_quiche_intermediate_burstiness(self):
        frac = fraction_of_packets_in_trains_leq(result("quiche").server_records, 5)
        assert 0.80 < frac <= 1.0

    def test_roughly_half_of_packets_back_to_back(self):
        for stack in ("quiche", "tcp"):
            gaps = inter_packet_gaps(result(stack).server_records)
            assert 0.3 < fraction_leq(gaps, us(15)) < 0.8, stack


class TestCcaSweep:
    """Section 4.1 / Figure 4."""

    def test_picoquic_bbr_nearly_perfect_pacing(self):
        bbr = result("picoquic", cca="bbr")
        cubic = result("picoquic", cca="cubic")

        def burst_mass(r):
            # Mass in trains > 5 packets during steady state (the paper's
            # claim concerns post-startup behaviour; BBR's startup itself is
            # a high-gain burst phase in every implementation).
            records = r.server_records
            cutoff = records[0].time_ns + int(
                0.75 * (records[-1].time_ns - records[0].time_ns)
            )
            tail = [rec for rec in records if rec.time_ns >= cutoff]
            dist = packets_by_train_length(tail)
            total = sum(dist.values())
            return sum(v for k, v in dist.items() if k > 5) / total

        # BBR never releases the bucket-sized bursts loss-based CCAs show.
        assert burst_mass(bbr) < burst_mass(cubic) / 3
        # And it avoids the bottleneck losses entirely (model-based control).
        assert bbr.dropped <= cubic.dropped

    def test_picoquic_newreno_also_bursty(self):
        frac = fraction_of_packets_in_trains_leq(
            result("picoquic", cca="newreno").server_records, 5
        )
        assert frac < 0.85

    def test_ngtcp2_bbr_increases_loss(self):
        baseline = result("ngtcp2", cca="cubic", file_size=mib(8))
        bbr = result("ngtcp2", cca="bbr", file_size=mib(8))
        assert bbr.dropped > baseline.dropped
        assert bbr.dropped > 50  # an order of magnitude beyond its baseline


class TestFqAndRollback:
    """Section 4.2 / Figure 5."""

    def test_fq_makes_long_trains_rare(self):
        fq = result("quiche", qdisc="fq", spurious_rollback=False)
        baseline = result("quiche", spurious_rollback=False)
        f_fq = fraction_of_packets_in_trains_leq(fq.server_records, 5)
        f_base = fraction_of_packets_in_trains_leq(baseline.server_records, 5)
        assert f_fq >= f_base
        assert f_fq > 0.95

    def test_rollback_increases_loss_under_fq(self):
        stock = result("quiche", qdisc="fq", spurious_rollback=True, file_size=mib(16))
        patched = result("quiche", qdisc="fq", spurious_rollback=False, file_size=mib(16))
        assert stock.server_stats["rollbacks"] > 0
        assert patched.server_stats["rollbacks"] == 0
        assert stock.dropped > patched.dropped


class TestGso:
    """Section 4.3 / Figure 6 / Table 2."""

    def test_gso_is_bursty(self):
        on = result("quiche", qdisc="fq", gso="on", spurious_rollback=False)
        off = result("quiche", qdisc="fq", gso="off", spurious_rollback=False)
        f_on = fraction_of_packets_in_trains_leq(on.server_records, 5)
        f_off = fraction_of_packets_in_trains_leq(off.server_records, 5)
        assert f_on < 0.3 < f_off

    def test_paced_gso_restores_pacing(self):
        paced = result("quiche", qdisc="fq", gso="paced", spurious_rollback=False)
        dist = packets_by_train_length(paced.server_records)
        total = sum(dist.values())
        assert dist.get(1, 0) / total > 0.8  # paper: >80% outside any train

    def test_bursty_gso_avoids_slow_start_overshoot_loss(self):
        on = result("quiche", qdisc="fq", gso="on", spurious_rollback=False)
        off = result("quiche", qdisc="fq", gso="off", spurious_rollback=False)
        paced = result("quiche", qdisc="fq", gso="paced", spurious_rollback=False)
        # Paper Table 2: enabled ~6 drops; disabled/paced ~160.
        assert on.dropped < off.dropped
        assert on.dropped < paced.dropped


class TestPrecision:
    """Section 4.4."""

    @pytest.fixture(scope="class")
    def precisions(self):
        out = {}
        for qdisc in ("none", "fq", "etf", "etf-offload"):
            r = result("quiche", qdisc=qdisc, spurious_rollback=False)
            out[qdisc] = pacing_precision_ns(r.expected_send_log, r.server_records)
        return out

    def test_fq_is_most_precise(self, precisions):
        assert precisions["fq"] < precisions["etf"]
        assert precisions["fq"] < precisions["none"]

    def test_no_qdisc_is_least_precise(self, precisions):
        assert precisions["none"] > precisions["etf"]
        assert precisions["none"] > precisions["etf-offload"]

    def test_launchtime_adds_no_meaningful_precision(self, precisions):
        ratio = precisions["etf-offload"] / precisions["etf"]
        assert 0.5 < ratio < 1.5
