"""Gilbert–Elliott burst loss reproduces quiche's spurious-loss cwnd rollback.

Section 4.2's pathology: quiche checkpoints CUBIC before every congestion
response and *rolls the reduction back* when the recovery episode ends with
few losses. Queue-overflow drops at a 2×BDP buffer arrive in large clumps
that fail the small-loss test, so the pathology was unreachable with the
clean-bottleneck network model; dribbled burst loss (a few packets at a
time) passes it on every episode. These tests assert the rollback signature
directly on the cwnd timeline, and that the paper's SF patch removes it.
"""

from functools import lru_cache

from repro.framework.experiment import run_experiment
from repro.framework.scenarios import IMPAIRMENT_SWEEP_SPECS, impairment_config
from repro.units import mib

SEED = 5


@lru_cache(maxsize=None)
def _run(spurious_rollback: bool):
    cfg = impairment_config(
        IMPAIRMENT_SWEEP_SPECS["burst"],
        spurious_rollback=spurious_rollback,
        file_size=mib(2),
        repetitions=1,
        trace_cwnd=True,
    )
    return run_experiment(cfg, seed=SEED)


def _restoring_jumps(cwnd_trace, factor=1.25):
    """Rollback signature: an instant cwnd jump of >= ``factor`` that lands
    exactly on a previously recorded cwnd value (the restored checkpoint).

    Ordinary growth can't produce this: congestion avoidance moves by small
    increments per ACK batch, and slow-start doubling never *returns* to an
    old value after a reduction.
    """
    jumps = []
    seen = set()
    for (t_prev, c_prev), (t, c) in zip(cwnd_trace, cwnd_trace[1:]):
        seen.add(c_prev)
        if c > c_prev * factor and c in seen:
            jumps.append((t, c_prev, c))
    return jumps


def test_burst_loss_triggers_rollback_on_cwnd_timeline():
    result = _run(True)
    assert result.completed
    # The loss pattern is injected, not congestion: the bottleneck queue
    # never overflowed, yet the controller saw loss episodes.
    assert result.injected_drops > 0
    assert result.server_stats["congestion_events"] > 0
    # Stock quiche rolled the reductions back ...
    assert result.server_stats["rollbacks"] >= 1
    # ... and the cwnd timeline shows it: instantaneous restores to the
    # checkpointed pre-reduction window.
    jumps = _restoring_jumps(result.cwnd_trace)
    assert len(jumps) >= 1
    assert len(jumps) == result.server_stats["rollbacks"]


def test_sf_patch_removes_rollback_signature():
    stock, patched = _run(True), _run(False)
    assert patched.server_stats["rollbacks"] == 0
    assert not _restoring_jumps(patched.cwnd_trace)
    # Identical injected-loss pattern (same derived streams) on both runs.
    assert patched.injected_drops == stock.injected_drops
    # The rollback keeps the window inflated through loss episodes, so stock
    # quiche outruns the patched sender under dribbled burst loss.
    assert stock.goodput_mbps > patched.goodput_mbps


def test_rollback_repeats_across_episodes():
    # "Perpetual rollbacks" (Figure 7): not a one-off — every small-loss
    # episode re-arms the checkpoint and rolls back again.
    result = _run(True)
    assert result.server_stats["rollbacks"] == result.server_stats["congestion_events"]
