"""Cross-cutting invariants checked over randomized configurations.

Property-style end-to-end checks: whatever the stack/qdisc/seed, conservation
and accounting invariants must hold.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.framework.config import ExperimentConfig
from repro.framework.experiment import Experiment
from repro.units import kib

configs = st.fixed_dictionaries(
    {
        "stack": st.sampled_from(["quiche", "picoquic", "ngtcp2", "tcp"]),
        "cca": st.sampled_from(["cubic", "newreno", "bbr"]),
        "seed": st.integers(min_value=1, max_value=10_000),
    }
)


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(configs)
def test_every_configuration_completes_with_consistent_accounting(params):
    seed = params.pop("seed")
    cfg = ExperimentConfig(file_size=kib(200), repetitions=1, **params)
    experiment = Experiment(cfg, seed=seed)
    result = experiment.run()

    assert result.completed
    assert 0 < result.goodput_mbps <= cfg.network.bottleneck_rate_bps / 1e6
    # Conservation at the bottleneck — the tap sits directly before it, so
    # captured server packets equal forwarded + dropped.
    bneck = experiment.bottleneck
    server_records = result.server_records
    assert len(server_records) == bneck.forwarded + bneck.dropped
    # Capture timestamps strictly increase (serialized link).
    times = [r.time_ns for r in server_records]
    assert all(t2 > t1 for t1, t2 in zip(times, times[1:]))
    # Drops reported by the experiment match the bottleneck.
    assert result.dropped == bneck.dropped


@settings(max_examples=4, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.sampled_from(["none", "fq", "etf", "etf-offload"]),
    st.integers(min_value=1, max_value=1000),
)
def test_qdisc_conservation(qdisc, seed):
    cfg = ExperimentConfig(
        stack="quiche", qdisc=qdisc, spurious_rollback=False,
        file_size=kib(150), repetitions=1,
    )
    experiment = Experiment(cfg, seed=seed)
    result = experiment.run()
    assert result.completed
    stats = experiment.qdisc.stats
    backlog = getattr(experiment.qdisc, "backlog_packets", 0)
    assert stats.enqueued == stats.dequeued + stats.dropped + backlog
