"""Metric stability across repetitions (paper Section 4: "we verified the
stability of results and found that the presented inter-packet gap and packet
train length metrics showed a small standard deviation")."""

from repro.framework.config import ExperimentConfig
from repro.framework.runner import run_repetitions
from repro.metrics.gaps import fraction_leq, inter_packet_gaps
from repro.metrics.stats import summarize
from repro.metrics.trains import fraction_of_packets_in_trains_leq
from repro.units import mib, us


def test_gap_and_train_metrics_are_stable_across_repetitions():
    summary = run_repetitions(
        ExperimentConfig(stack="quiche", file_size=mib(2), repetitions=4, seed=3)
    )
    assert summary.all_completed

    b2b = summarize(
        [
            fraction_leq(inter_packet_gaps(records), us(15))
            for records in summary.pooled_records
        ]
    )
    trains = summarize(
        [
            fraction_of_packets_in_trains_leq(records, 5)
            for records in summary.pooled_records
        ]
    )
    # The distributions are stable enough to pool across repetitions.
    assert b2b.std < 0.08
    assert trains.std < 0.08
    # And non-degenerate (actual traffic was measured).
    assert 0.1 < b2b.mean < 0.95
    assert 0.5 < trains.mean <= 1.0


def test_goodput_repeatability_matches_paper_style():
    summary = run_repetitions(
        ExperimentConfig(stack="picoquic", file_size=mib(2), repetitions=4, seed=9)
    )
    # The paper reports picoquic goodput with a +-0.03 stddev; ours is
    # similarly tight (deterministic simulation, per-rep seeds).
    assert summary.goodput.std < 0.5
