"""Timer-model behaviour: granularity, overhead, jitter determinism."""

import random

from repro.sim.clock import JitterModel, TimerModel, PERFECT_TIMER
from repro.units import us, ms


def test_perfect_timer_fires_exactly(rng):
    assert PERFECT_TIMER.fire_time(1000, 0, rng) == 1000


def test_requested_time_in_past_clamps_to_now(rng):
    assert PERFECT_TIMER.fire_time(100, 500, rng) == 500


def test_granularity_rounds_up(rng):
    model = TimerModel(granularity_ns=ms(1))
    assert model.fire_time(ms(1) + 1, 0, rng) == ms(2)
    assert model.fire_time(ms(3), 0, rng) == ms(3)


def test_overhead_is_added(rng):
    model = TimerModel(overhead_ns=us(5))
    assert model.fire_time(1000, 0, rng) == 1000 + us(5)


def test_zero_median_jitter_is_zero():
    jm = JitterModel(median_ns=0, sigma=1.0)
    assert jm.sample(random.Random(1)) == 0


def test_deterministic_jitter_without_sigma():
    jm = JitterModel(median_ns=us(10), sigma=0.0)
    assert jm.sample(random.Random(1)) == us(10)
    assert jm.sample(random.Random(2)) == us(10)


def test_jitter_is_positive_and_spreads():
    jm = JitterModel(median_ns=us(100), sigma=0.8)
    rng = random.Random(42)
    samples = [jm.sample(rng) for _ in range(500)]
    assert all(s > 0 for s in samples)
    assert min(samples) < us(100) < max(samples)
    # The median should land near the configured median.
    samples.sort()
    assert us(40) < samples[250] < us(250)


def test_jitter_reproducible_for_seed():
    jm = JitterModel(median_ns=us(100), sigma=0.8)
    a = [jm.sample(random.Random(7)) for _ in range(10)]
    b = [jm.sample(random.Random(7)) for _ in range(10)]
    assert a == b


def test_fire_time_never_before_now(rng):
    model = TimerModel(granularity_ns=us(100))
    assert model.fire_time(0, us(5000), rng) >= us(5000)
