"""Event-engine semantics: ordering, cancellation, run bounds."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_clock_starts_at_zero(sim):
    assert sim.now == 0


def test_schedule_and_run_advances_clock(sim):
    fired = []
    sim.schedule(100, fired.append, 1)
    sim.run()
    assert fired == [1]
    assert sim.now == 100


def test_events_fire_in_time_order(sim):
    order = []
    sim.schedule(300, order.append, "c")
    sim.schedule(100, order.append, "a")
    sim.schedule(200, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_fifo(sim):
    order = []
    for i in range(10):
        sim.schedule(50, order.append, i)
    sim.run()
    assert order == list(range(10))


def test_schedule_at_absolute_time(sim):
    sim.schedule(10, lambda: None)
    sim.run()
    handle = sim.schedule_at_cancellable(500, lambda: None)
    assert handle.time == 500


def test_cannot_schedule_in_past(sim):
    sim.schedule(100, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_at(50, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_cancellable(-1, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_at_cancellable(50, lambda: None)


def test_cancelled_event_does_not_fire(sim):
    fired = []
    handle = sim.schedule_cancellable(100, fired.append, 1)
    handle.cancel()
    sim.run()
    assert fired == []
    assert handle.cancelled


def test_cancellable_event_fires_when_not_cancelled(sim):
    fired = []
    sim.schedule_cancellable(100, fired.append, 1)
    sim.run()
    assert fired == [1]
    assert sim.now == 100


def test_cancel_is_idempotent(sim):
    handle = sim.schedule_cancellable(100, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_run_until_stops_before_later_events(sim):
    fired = []
    sim.schedule(100, fired.append, 1)
    sim.schedule(300, fired.append, 2)
    sim.run(until=200)
    assert fired == [1]
    assert sim.now == 200
    sim.run()
    assert fired == [1, 2]


def test_run_until_advances_clock_even_without_events(sim):
    sim.run(until=12345)
    assert sim.now == 12345


def test_events_scheduled_during_run_fire(sim):
    order = []

    def first():
        order.append("first")
        sim.schedule(50, lambda: order.append("nested"))

    sim.schedule(10, first)
    sim.run()
    assert order == ["first", "nested"]


def test_call_soon_runs_at_current_time_after_pending(sim):
    order = []

    def handler():
        order.append("a")
        sim.call_soon(lambda: order.append("soon"))
        order.append("b")

    sim.schedule(10, handler)
    sim.run()
    assert order == ["a", "b", "soon"]
    assert sim.now == 10


def test_max_events_bound(sim):
    for i in range(100):
        sim.schedule(i + 1, lambda: None)
    sim.run(max_events=10)
    assert sim.events_processed == 10


def test_step_returns_false_when_empty(sim):
    assert sim.step() is False


def test_peek_time_skips_cancelled(sim):
    h1 = sim.schedule_cancellable(100, lambda: None)
    sim.schedule(200, lambda: None)
    h1.cancel()
    assert sim.peek_time() == 200


def test_pending_live_excludes_cancelled(sim):
    h1 = sim.schedule_cancellable(100, lambda: None)
    sim.schedule_cancellable(150, lambda: None)
    sim.schedule(200, lambda: None)
    assert sim.pending == 3
    assert sim.pending_live == 3
    h1.cancel()
    assert sim.pending == 3
    assert sim.pending_live == 2


def test_mixed_plain_and_cancellable_fifo_order(sim):
    order = []
    sim.schedule(50, order.append, "plain-0")
    sim.schedule_cancellable(50, order.append, "cancellable")
    sim.schedule(50, order.append, "plain-1")
    sim.run()
    assert order == ["plain-0", "cancellable", "plain-1"]


def test_run_skips_cancelled_without_counting(sim):
    h = sim.schedule_cancellable(100, lambda: None)
    sim.schedule(200, lambda: None)
    h.cancel()
    sim.run()
    assert sim.events_processed == 1
    assert sim.now == 200


def test_events_processed_counter(sim):
    for _ in range(5):
        sim.schedule(1, lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_reentrant_run_rejected(sim):
    def inner():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1, inner)
    sim.run()


def test_cancelled_events_drop_references(sim):
    class Big:
        pass

    obj = Big()
    handle = sim.schedule_cancellable(100, lambda o: None, obj)
    handle.cancel()
    assert handle.args == ()
