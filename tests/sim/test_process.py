"""SimProcess wake-up semantics: re-arming, external wakes, jitter paths."""

import random

from repro.sim.clock import JitterModel, TimerModel
from repro.sim.process import SimProcess
from repro.units import us


class Recorder(SimProcess):
    def __init__(self, sim, timer_model=TimerModel()):
        super().__init__(sim, "rec", timer_model, random.Random(1))
        self.times = []

    def on_wakeup(self):
        self.times.append(self.sim.now)


def test_arm_timer_fires_at_deadline(sim):
    proc = Recorder(sim)
    proc.arm_timer(1000)
    sim.run()
    assert proc.times == [1000]
    assert proc.wakeups == 1


def test_rearm_with_earlier_deadline_wins(sim):
    proc = Recorder(sim)
    proc.arm_timer(5000)
    proc.arm_timer(1000)
    sim.run()
    assert proc.times == [1000]


def test_rearm_with_later_deadline_ignored(sim):
    proc = Recorder(sim)
    proc.arm_timer(1000)
    proc.arm_timer(5000)
    sim.run()
    assert proc.times == [1000]


def test_wake_now_supersedes_timer(sim):
    proc = Recorder(sim)
    proc.arm_timer(5000)
    sim.schedule(100, proc.wake_now)
    sim.run()
    assert proc.times == [100]


def test_cancel_timer(sim):
    proc = Recorder(sim)
    proc.arm_timer(1000)
    proc.cancel_timer()
    sim.run()
    assert proc.times == []
    assert not proc.timer_armed


def test_timer_granularity_applies_to_timers(sim):
    proc = Recorder(sim, TimerModel(granularity_ns=us(100)))
    proc.arm_timer(us(150))
    sim.run()
    assert proc.times == [us(200)]


def test_wake_now_skips_granularity(sim):
    proc = Recorder(sim, TimerModel(granularity_ns=us(100)))
    sim.schedule(us(150), proc.wake_now)
    sim.run()
    assert proc.times == [us(150)]


def test_wake_now_pays_jitter(sim):
    proc = Recorder(sim, TimerModel(jitter=JitterModel(median_ns=us(10), sigma=0.0)))
    sim.schedule(us(100), proc.wake_now)
    sim.run()
    assert proc.times == [us(100) + us(10)]


def test_process_can_rearm_from_handler(sim):
    class Periodic(SimProcess):
        def __init__(self, s):
            super().__init__(s, "p")
            self.count = 0

        def on_wakeup(self):
            self.count += 1
            if self.count < 5:
                self.arm_timer(self.sim.now + 100)

    proc = Periodic(sim)
    proc.arm_timer(100)
    sim.run()
    assert proc.count == 5
    assert sim.now == 500
