"""Timer-wheel scheduling and soft-cancel timers.

The wheel is a pure scheduling-cost optimization: event order must be
bit-identical with the wheel disabled (``REPRO_TIMER_WHEEL=0``) and across
the pure/compiled builds. The property test drives a seeded random mix of
plain events, cancellable handles, and re-armed timers across all three
wheel levels (L0, L1, overflow) and requires the exact same fire sequence
from every engine variant.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import SimulationError
from repro.sim.engine import PureSimulator, Simulator
from repro.units import ms, seconds


def _engines(monkeypatch=None):
    """Engine constructors to cross-check: compiled (when present), pure,
    and pure with the wheel disabled."""
    variants = [("default", Simulator)]
    if Simulator is not PureSimulator:
        variants.append(("pure", PureSimulator))
    return variants


def _random_workload(sim, rng, fired):
    """Schedule a seeded mix that exercises every admission path."""
    timers = [
        sim.timer(lambda i=i: fired.append(("timer", i, sim.now))) for i in range(8)
    ]
    handles = []

    def noteworthy(tag):
        fired.append((tag, sim.now))

    # Spread deadlines across L0 (~ms), L1 (~hundreds of ms), and overflow
    # (tens of seconds) territory, from a moving "now".
    def spray(depth):
        if depth == 0:
            return
        for _ in range(rng.randrange(1, 5)):
            choice = rng.randrange(6)
            delay = rng.choice(
                [rng.randrange(0, 2_000_000),        # L0 horizon
                 rng.randrange(0, 300_000_000),      # L1 horizon
                 rng.randrange(0, 30 * 10**9)]       # overflow
            )
            if choice == 0:
                sim.schedule(delay, noteworthy, f"plain-{depth}")
            elif choice == 1:
                handles.append(
                    sim.schedule_cancellable(delay, noteworthy, f"canc-{depth}")
                )
            elif choice == 2 and handles:
                handles.pop(rng.randrange(len(handles))).cancel()
            elif choice == 3:
                timers[rng.randrange(len(timers))].schedule(delay)
            elif choice == 4:
                timers[rng.randrange(len(timers))].cancel()
            else:
                # Re-schedule from inside a callback: the recursive case.
                sim.schedule(delay, spray, depth - 1)

    spray(4)
    return timers


@pytest.mark.parametrize("seed", [0, 1, 7, 42])
def test_wheel_and_heap_fire_identically(seed, monkeypatch):
    """Seeded random schedule/cancel/re-arm: wheel on, wheel off, and the
    pure engine all produce the exact same fire sequence."""
    sequences = []
    for wheel in ("1", "0"):
        monkeypatch.setenv("REPRO_TIMER_WHEEL", wheel)
        for _name, engine_cls in _engines():
            sim = engine_cls()
            fired = []
            _random_workload(sim, random.Random(seed), fired)
            sim.run()
            assert sim.pending_live == 0
            sequences.append(fired)
    reference = sequences[0]
    assert reference, "workload fired nothing"
    assert all(seq == reference for seq in sequences)


def test_wheel_disabled_via_env(monkeypatch):
    monkeypatch.setenv("REPRO_TIMER_WHEEL", "0")
    assert PureSimulator()._wheel_on is False
    monkeypatch.delenv("REPRO_TIMER_WHEEL")
    assert PureSimulator()._wheel_on is True


@pytest.mark.parametrize("_name,engine_cls", _engines())
def test_far_future_events_survive_cascade(_name, engine_cls):
    """Events beyond the L1 horizon (overflow) still fire, in order."""
    sim = engine_cls()
    fired = []
    for t in (seconds(40), ms(1), seconds(20), seconds(300), 0):
        sim.schedule_at(t, fired.append, t)
    sim.run()
    assert fired == [0, ms(1), seconds(20), seconds(40), seconds(300)]
    assert sim.now == seconds(300)


@pytest.mark.parametrize("_name,engine_cls", _engines())
class TestTimer:
    def test_rearm_supersedes(self, _name, engine_cls):
        sim = engine_cls()
        fired = []
        timer = sim.timer(lambda: fired.append(sim.now))
        timer.schedule(100)
        timer.schedule(50)  # supersedes; only the 50ns arm fires
        sim.run()
        assert fired == [50]

    def test_cancel_and_rearm_cycle(self, _name, engine_cls):
        sim = engine_cls()
        fired = []
        timer = sim.timer(fired.append, "x")
        for _ in range(3):
            timer.schedule(10)
            timer.cancel()
        assert not timer.armed
        timer.schedule(10)
        assert timer.armed and timer.time == 10
        sim.run()
        assert fired == ["x"]
        assert not timer.armed

    def test_fire_disarms(self, _name, engine_cls):
        sim = engine_cls()
        timer = sim.timer(lambda: None)
        timer.schedule(5)
        sim.run()
        assert not timer.armed
        # Re-arming after a fire works (the reuse the call sites rely on).
        timer.schedule(5)
        assert timer.armed
        sim.run()
        assert not timer.armed

    def test_past_deadline_rejected(self, _name, engine_cls):
        sim = engine_cls()
        sim.schedule(100, lambda: None)
        sim.run()
        timer = sim.timer(lambda: None)
        with pytest.raises(SimulationError):
            timer.schedule_at(50)
        with pytest.raises(SimulationError):
            timer.schedule(-1)

    def test_stale_entries_are_free(self, _name, engine_cls):
        """Re-arming leaves stale calendar entries behind; they are dropped
        without firing and pending_live never counts them."""
        sim = engine_cls()
        fired = []
        timer = sim.timer(lambda: fired.append(sim.now))
        for delay in range(1, 51):
            timer.schedule(delay)
        assert sim.pending >= 1
        assert sim.pending_live == 1
        sim.run()
        assert fired == [50]
        assert sim.pending == 0


@pytest.mark.parametrize("_name,engine_cls", _engines())
def test_handle_cancelled_after_fire(_name, engine_cls):
    """EventHandle.cancelled is True once the event can no longer fire —
    including after it fired."""
    sim = engine_cls()
    handle = sim.schedule_cancellable(10, lambda: None)
    assert not handle.cancelled
    sim.run()
    assert handle.cancelled


def test_detached_process_never_reschedules():
    """SimProcess.detach() (flow departure) silences arm_timer and wake_now
    permanently — the dead-timer fix behind flow churn."""
    from repro.sim.process import SimProcess

    class Proc(SimProcess):
        def on_wakeup(self):
            pass

    sim = Simulator()
    proc = Proc(sim, "p")
    proc.arm_timer(100)
    assert proc.timer_armed
    proc.detach()
    assert not proc.timer_armed
    proc.arm_timer(50)
    proc.wake_now()
    assert not proc.timer_armed
    assert sim.pending_live == 0
    sim.run()
    assert proc.wakeups == 0


def test_detached_tcp_endpoints_never_reschedule():
    """TcpSender/TcpReceiver detach() cancels the RTO and delayed-ACK timers
    and refuses re-arms from straggler input."""
    from repro.kernel.socket import UdpSocket
    from repro.tcp.sender import TcpSender
    from repro.tcp.receiver import TcpReceiver

    sim = Simulator()
    sender_sock = UdpSocket(sim, "10.0.0.1", 1, egress=None)
    sender_sock.connect("10.0.0.2", 2)
    recv_sock = UdpSocket(sim, "10.0.0.2", 2, egress=None)
    recv_sock.connect("10.0.0.1", 1)
    sender = TcpSender(sim, sender_sock, 10_000)
    receiver = TcpReceiver(sim, recv_sock, 10_000)
    sim.schedule_at(0, sender.start)
    sim.run(until=ms(1))
    sender.detach()
    receiver.detach()
    live_before = sim.pending_live
    sender._arm_rto()
    assert sim.pending_live == live_before
