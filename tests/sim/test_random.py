"""Deterministic named random streams."""

from repro.sim.random import RngRegistry


def test_same_name_returns_same_stream():
    reg = RngRegistry(1)
    assert reg.stream("a") is reg.stream("a")


def test_streams_are_independent():
    reg = RngRegistry(1)
    a = reg.stream("a").random()
    b = reg.stream("b").random()
    assert a != b


def test_reproducible_across_registries():
    r1 = RngRegistry(99).stream("qdisc").random()
    r2 = RngRegistry(99).stream("qdisc").random()
    assert r1 == r2


def test_different_seeds_differ():
    r1 = RngRegistry(1).stream("x").random()
    r2 = RngRegistry(2).stream("x").random()
    assert r1 != r2


def test_fork_derives_new_deterministic_registry():
    base = RngRegistry(5)
    f1 = base.fork(0)
    f2 = base.fork(0)
    f3 = base.fork(1)
    assert f1.seed == f2.seed
    assert f1.seed != f3.seed
    assert f1.seed != base.seed


def test_drawing_from_one_stream_does_not_disturb_another():
    reg1 = RngRegistry(3)
    reg2 = RngRegistry(3)
    # Interleave draws on reg1 only.
    reg1.stream("noise").random()
    v1 = reg1.stream("signal").random()
    v2 = reg2.stream("signal").random()
    assert v1 == v2
