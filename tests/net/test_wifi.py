"""WiFi aggregating bottleneck."""

from repro.net.wifi import WifiBottleneck
from repro.units import mbit, ms, us
from tests.conftest import make_dgram


def _wifi(sim, collector, **kwargs):
    kwargs.setdefault("phy_rate_bps", mbit(60))
    kwargs.setdefault("access_overhead_ns", us(400))
    kwargs.setdefault("max_aggregate", 8)
    return WifiBottleneck(sim, "wifi", sink=collector, **kwargs)


def test_single_frame_pays_full_access_overhead(sim, collector):
    w = _wifi(sim, collector)
    w.receive(make_dgram(1252))
    sim.run()
    assert len(collector) == 1
    assert collector.times[0] >= us(400)
    assert w.accesses == 1


def test_burst_shares_one_access(sim, collector):
    w = _wifi(sim, collector)
    for i in range(8):
        w.receive(make_dgram(1252, pn=i))
    sim.run()
    assert w.accesses == 1
    assert w.mean_aggregate == 8
    # All frames of the aggregate are delivered together.
    assert len(set(collector.times)) == 1


def test_aggregate_cap(sim, collector):
    w = _wifi(sim, collector, max_aggregate=4)
    for i in range(10):
        w.receive(make_dgram(1252, pn=i))
    sim.run()
    assert w.accesses == 3  # 4 + 4 + 2
    assert len(collector) == 10


def test_bursty_offered_load_gets_higher_throughput(sim, collector):
    """The core Manzoor mechanism: same bytes, bursty arrivals finish sooner."""
    from repro.sim.engine import Simulator
    from tests.conftest import Collector

    def run(spacing_ns):
        s = Simulator()
        col = Collector(s)
        w = WifiBottleneck(s, "w", phy_rate_bps=mbit(60), access_overhead_ns=us(400),
                           max_aggregate=32, sink=col)
        for i in range(64):
            s.schedule(i * spacing_ns, w.receive, make_dgram(1252, pn=i))
        s.run()
        return col.times[-1], w.mean_aggregate

    paced_finish, paced_agg = run(us(250))  # one packet per 250 us
    bursty_finish, bursty_agg = run(0)  # all at once
    assert bursty_agg > paced_agg
    assert bursty_finish < paced_finish


def test_ordering_preserved(sim, collector):
    w = _wifi(sim, collector, max_aggregate=3)
    for i in range(9):
        sim.schedule(i * us(50), w.receive, make_dgram(1252, pn=i))
    sim.run()
    pns = [d.packet_number for d in collector.dgrams]
    assert pns == sorted(pns)


def test_queue_overflow_drops_and_counts_by_flow(sim, collector):
    wire = make_dgram(1252).wire_size
    w = _wifi(sim, collector, queue_limit_bytes=3 * wire)
    flow = ("a", 1, "b", 2)
    for i in range(10):
        w.receive(make_dgram(1252, pn=i, flow=flow))
    sim.run()
    assert w.dropped > 0
    assert w.drops_by_flow[flow] == w.dropped


def test_delay_applied_after_access(sim, collector):
    w = _wifi(sim, collector, delay_ns=ms(20))
    w.receive(make_dgram(100))
    sim.run()
    assert collector.times[0] >= ms(20) + us(400)
