"""Link serialization and propagation."""

from repro.net.link import Link
from repro.units import gbit, mbit, tx_time_ns, us
from tests.conftest import make_dgram


def test_single_frame_delivery_time(sim, collector):
    link = Link(sim, "l", rate_bps=gbit(1), propagation_ns=us(1), sink=collector)
    d = make_dgram(1252)
    link.receive(d)
    sim.run()
    assert len(collector) == 1
    expected = tx_time_ns(d.serialized_size, gbit(1)) + us(1)
    assert collector.times[0] == expected


def test_back_to_back_frames_serialize_sequentially(sim, collector):
    link = Link(sim, "l", rate_bps=mbit(100), sink=collector)
    for _ in range(3):
        link.receive(make_dgram(1000))
    sim.run()
    assert len(collector) == 3
    gaps = [collector.times[i] - collector.times[i - 1] for i in (1, 2)]
    per_frame = tx_time_ns(make_dgram(1000).serialized_size, mbit(100))
    assert gaps == [per_frame, per_frame]


def test_link_preserves_order(sim, collector):
    link = Link(sim, "l", rate_bps=gbit(1), sink=collector)
    dgrams = [make_dgram(100, pn=i) for i in range(10)]
    for d in dgrams:
        link.receive(d)
    sim.run()
    assert [d.packet_number for d in collector.dgrams] == list(range(10))


def test_busy_flag_and_queue_depth(sim, collector):
    link = Link(sim, "l", rate_bps=mbit(1), sink=collector)
    link.receive(make_dgram(1000))
    link.receive(make_dgram(1000))
    assert link.busy
    assert link.queued == 1
    sim.run()
    assert not link.busy
    assert link.queued == 0


def test_counters(sim, collector):
    link = Link(sim, "l", rate_bps=gbit(1), sink=collector)
    for _ in range(4):
        link.receive(make_dgram(500))
    sim.run()
    assert link.frames_sent == 4
    assert link.bytes_sent == 4 * make_dgram(500).wire_size


def test_larger_frames_take_longer(sim):
    times = []
    for size in (100, 1400):
        s = type(sim)()  # fresh simulator
        from tests.conftest import Collector

        col = Collector(s)
        link = Link(s, "l", rate_bps=mbit(10), sink=col)
        link.receive(make_dgram(size))
        s.run()
        times.append(col.times[0])
    assert times[1] > times[0]
