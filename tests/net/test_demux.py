"""Port demultiplexer."""

from repro.net.demux import PortDemux
from tests.conftest import Collector, make_dgram


def test_routes_by_destination_port(sim):
    a, b = Collector(sim), Collector(sim)
    demux = PortDemux({1000: a, 2000: b})
    demux.receive(make_dgram(10, flow=("s", 1, "c", 1000)))
    demux.receive(make_dgram(10, flow=("s", 1, "c", 2000)))
    demux.receive(make_dgram(10, flow=("s", 1, "c", 1000)))
    assert len(a) == 2
    assert len(b) == 1


def test_unrouted_counted_and_dropped(sim):
    demux = PortDemux()
    demux.receive(make_dgram(10, flow=("s", 1, "c", 9999)))
    assert demux.unrouted == 1


def test_add_route_later(sim):
    col = Collector(sim)
    demux = PortDemux()
    demux.add_route(5, col)
    demux.receive(make_dgram(10, flow=("s", 1, "c", 5)))
    assert len(col) == 1
