"""Fiber tap and sniffer capture."""

from repro.net.tap import FiberTap, Sniffer
from tests.conftest import Collector, make_dgram


def test_tap_forwards_and_captures(sim):
    sniffer = Sniffer()
    col = Collector(sim)
    tap = FiberTap(sim, sniffer, sink=col)
    d = make_dgram(1252, pn=7)
    sim.schedule(100, tap.receive, d)
    sim.run()
    assert len(col) == 1
    assert len(sniffer) == 1
    rec = sniffer.records[0]
    assert rec.time_ns == 100
    assert rec.packet_number == 7
    assert rec.wire_size == d.wire_size


def test_tap_adds_no_delay(sim):
    sniffer = Sniffer()
    col = Collector(sim)
    tap = FiberTap(sim, sniffer, sink=col)
    sim.schedule(42, tap.receive, make_dgram(10))
    sim.run()
    assert col.times == [42]


def test_sniffer_filters_by_source(sim):
    sniffer = Sniffer()
    tap = FiberTap(sim, sniffer)
    tap.receive(make_dgram(10, flow=("a", 1, "b", 2)))
    tap.receive(make_dgram(10, flow=("b", 2, "a", 1)))
    tap.receive(make_dgram(10, flow=("a", 1, "b", 2)))
    assert len(sniffer.from_host("a")) == 2
    assert len(sniffer.from_host("b")) == 1
    assert len(sniffer.from_host("c")) == 0


def test_capture_records_are_immutable(sim):
    import dataclasses
    import pytest

    sniffer = Sniffer()
    FiberTap(sim, sniffer).receive(make_dgram(10))
    with pytest.raises(dataclasses.FrozenInstanceError):
        sniffer.records[0].time_ns = 5
