"""TBF + netem bottleneck: shaping rate, queue limit drops, added delay."""

from repro.net.bottleneck import Bottleneck
from repro.units import mbit, ms, tx_time_ns, us
from tests.conftest import make_dgram


def _bneck(sim, collector, rate=mbit(40), queue=400_000, burst=5000, delay=0):
    return Bottleneck(
        sim,
        "b",
        rate_bps=rate,
        queue_limit_bytes=queue,
        burst_bytes=burst,
        delay_ns=delay,
        sink=collector,
    )


def test_single_packet_passes(sim, collector):
    b = _bneck(sim, collector)
    b.receive(make_dgram(1000))
    sim.run()
    assert len(collector) == 1
    assert b.forwarded == 1
    assert b.dropped == 0


def test_delay_is_applied(sim, collector):
    b = _bneck(sim, collector, delay=ms(20))
    b.receive(make_dgram(100))
    sim.run()
    assert collector.times[0] >= ms(20)


def test_burst_passes_at_line_rate_then_shapes(sim, collector):
    b = _bneck(sim, collector, burst=5000)
    # 10 packets of ~1294B wire size; bucket holds ~3.8 of them.
    for i in range(10):
        b.receive(make_dgram(1252, pn=i))
    sim.run()
    gaps = [collector.times[i] - collector.times[i - 1] for i in range(1, 10)]
    shaped_gap = tx_time_ns(make_dgram(1252).wire_size, mbit(40))
    # Early gaps are near zero (bucket), later gaps at the shaped rate.
    assert gaps[0] < shaped_gap // 10
    assert abs(gaps[-1] - shaped_gap) <= shaped_gap // 5


def test_sustained_rate_matches_configuration(sim, collector):
    b = _bneck(sim, collector, rate=mbit(40), queue=10_000_000)
    n = 200
    for _ in range(n):
        b.receive(make_dgram(1252))
    sim.run()
    duration = collector.times[-1] - collector.times[0]
    wire = make_dgram(1252).wire_size
    rate = (n - 4) * wire * 8 * 1e9 / duration  # allow for the initial burst
    assert mbit(36) < rate < mbit(44)


def test_queue_overflow_drops(sim, collector):
    b = _bneck(sim, collector, queue=5 * make_dgram(1252).wire_size)
    for _ in range(20):
        b.receive(make_dgram(1252))
    sim.run()
    assert b.dropped > 0
    assert b.forwarded + b.dropped == 20
    assert len(collector) == b.forwarded


def test_drop_is_tail_drop(sim, collector):
    b = _bneck(sim, collector, queue=3 * make_dgram(1252).wire_size)
    for i in range(10):
        b.receive(make_dgram(1252, pn=i))
    sim.run()
    # The packets that survive are the earliest ones.
    assert [d.packet_number for d in collector.dgrams] == sorted(
        d.packet_number for d in collector.dgrams
    )
    assert collector.dgrams[0].packet_number == 0


def test_ordering_preserved(sim, collector):
    b = _bneck(sim, collector, queue=10_000_000)
    for i in range(50):
        b.receive(make_dgram(800, pn=i))
    sim.run()
    pns = [d.packet_number for d in collector.dgrams]
    assert pns == sorted(pns)


def test_queue_trace_records_when_enabled(sim, collector):
    b = _bneck(sim, collector)
    b.trace_queue = True
    b.receive(make_dgram(100))
    sim.run()
    assert len(b.queue_trace) >= 2  # enqueue and dequeue samples
