"""Datagram metadata and size accounting."""

from repro.net.packet import Datagram, ETHERNET_OVERHEAD, WIRE_FRAMING

FLOW = ("10.0.0.1", 443, "10.0.0.2", 40000)


def test_wire_size_adds_headers():
    d = Datagram(flow=FLOW, payload_size=1252)
    assert d.wire_size == 1252 + ETHERNET_OVERHEAD


def test_serialized_size_adds_framing():
    d = Datagram(flow=FLOW, payload_size=100)
    assert d.serialized_size == d.wire_size + WIRE_FRAMING


def test_dgram_ids_unique_and_increasing():
    a = Datagram(flow=FLOW, payload_size=1)
    b = Datagram(flow=FLOW, payload_size=1)
    assert b.dgram_id > a.dgram_id


def test_reply_flow_swaps_endpoints():
    d = Datagram(flow=FLOW, payload_size=1)
    assert d.reply_flow() == ("10.0.0.2", 40000, "10.0.0.1", 443)


def test_repr_mentions_packet_number():
    d = Datagram(flow=FLOW, payload_size=1, packet_number=42)
    assert "pn=42" in repr(d)


def test_optional_fields_default_none():
    d = Datagram(flow=FLOW, payload_size=1)
    assert d.txtime_ns is None
    assert d.gso_id is None
    assert d.expected_send_ns is None
