"""NIC LaunchTime hold behaviour."""

import random

from repro.net.link import Link
from repro.net.nic import Nic
from repro.units import gbit, us
from tests.conftest import make_dgram


def _nic(sim, collector, launchtime, precision=0):
    link = Link(sim, "l", rate_bps=gbit(100), sink=collector)
    return Nic(
        sim,
        "nic",
        link,
        launchtime=launchtime,
        launchtime_precision_ns=precision,
        rng=random.Random(1),
    )


def test_without_launchtime_frames_pass_through(sim, collector):
    nic = _nic(sim, collector, launchtime=False)
    nic.receive(make_dgram(100, txtime=us(500)))
    sim.run()
    assert collector.times[0] < us(500)
    assert nic.frames_held == 0


def test_launchtime_holds_until_timestamp(sim, collector):
    nic = _nic(sim, collector, launchtime=True)
    nic.receive(make_dgram(100, txtime=us(500)))
    sim.run()
    assert collector.times[0] >= us(500)
    assert nic.frames_held == 1


def test_launchtime_ignores_past_timestamps(sim, collector):
    nic = _nic(sim, collector, launchtime=True)
    sim.schedule(us(100), lambda: nic.receive(make_dgram(100, txtime=us(50))))
    sim.run()
    assert nic.frames_held == 0
    assert len(collector) == 1


def test_launchtime_without_timestamp_sends_immediately(sim, collector):
    nic = _nic(sim, collector, launchtime=True)
    nic.receive(make_dgram(100))
    sim.run()
    assert nic.frames_held == 0


def test_launchtime_precision_bounds_jitter(sim, collector):
    nic = _nic(sim, collector, launchtime=True, precision=us(1))
    for i in range(20):
        nic.receive(make_dgram(100, txtime=us(100) * (i + 1)))
    sim.run()
    for i, t in enumerate(collector.times):
        target = us(100) * (i + 1)
        assert target <= t <= target + us(3)


def test_launchtime_preserves_order(sim, collector):
    nic = _nic(sim, collector, launchtime=True, precision=us(2))
    # Two frames with timestamps closer than the precision jitter.
    nic.receive(make_dgram(100, txtime=us(100), pn=0))
    nic.receive(make_dgram(100, txtime=us(100) + 10, pn=1))
    sim.run()
    assert [d.packet_number for d in collector.dgrams] == [0, 1]
