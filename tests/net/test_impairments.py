"""The composable fault-injection layer: specs, stages, and the modulator."""

import random
from dataclasses import asdict

import pytest

from repro.errors import ConfigError
from repro.net.bottleneck import Bottleneck
from repro.net.impairments import (
    DuplicateStage,
    GilbertElliottStage,
    IidLossStage,
    ImpairmentSpec,
    LinkFlapper,
    ReorderStage,
    build_impairments,
    burst_loss,
    duplication,
    iid_loss,
    rate_flap,
    reordering,
)
from repro.units import mbit, ms, us
from tests.conftest import Collector, make_dgram


def _run_stage(sim, collector, cls, spec, seed=7, count=1000):
    stage = cls(sim, spec, collector, random.Random(seed))
    for i in range(count):
        stage.receive(make_dgram(1252, pn=i))
    sim.run()
    return stage


class TestSpecs:
    def test_factories_validate(self):
        for spec in (
            iid_loss(0.01),
            burst_loss(),
            reordering(),
            duplication(0.02),
            rate_flap(),
        ):
            spec.validate()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            ImpairmentSpec(kind="gremlins").validate()

    @pytest.mark.parametrize(
        "spec",
        [
            ImpairmentSpec(kind="loss", rate=0.0),
            ImpairmentSpec(kind="loss", rate=1.5),
            ImpairmentSpec(kind="burst", rate=1.0, p_enter=0.0, p_exit=0.5),
            ImpairmentSpec(kind="reorder", rate=0.1, extra_delay_ns=0),
            ImpairmentSpec(kind="rate_flap", low_rate_bps=0, period_ns=ms(100)),
            ImpairmentSpec(kind="rate_flap", low_rate_bps=mbit(1), period_ns=0),
            ImpairmentSpec(
                kind="rate_flap", low_rate_bps=mbit(1), period_ns=ms(100), duty=1.0
            ),
        ],
    )
    def test_bad_parameters_rejected(self, spec):
        with pytest.raises(ConfigError):
            spec.validate()

    def test_specs_are_asdict_serializable(self):
        # cache_key() relies on asdict over the nested NetworkConfig.
        d = asdict(burst_loss())
        assert d["kind"] == "burst"
        assert d["p_exit"] == 0.3

    def test_slugs_are_distinct(self):
        slugs = {
            spec.slug
            for spec in (iid_loss(0.01), burst_loss(), reordering(), duplication(0.02), rate_flap())
        }
        assert len(slugs) == 5


class TestLossStages:
    def test_iid_loss_rate(self, sim, collector):
        stage = _run_stage(sim, collector, IidLossStage, iid_loss(0.1), count=5000)
        assert stage.stats.seen == 5000
        assert stage.stats.injected_drops + len(collector) == 5000
        assert 0.07 < stage.stats.injected_drops / 5000 < 0.13

    def test_iid_loss_deterministic_per_seed(self, sim):
        drops = []
        for _ in range(2):
            c = Collector(sim)
            stage = _run_stage(sim, c, IidLossStage, iid_loss(0.05), seed=3)
            drops.append(stage.stats.injected_drops)
        assert drops[0] == drops[1]

    def test_gilbert_elliott_bursts(self, sim, collector):
        spec = burst_loss(p_enter=0.01, p_exit=0.25, loss_bad=1.0)
        stage = _run_stage(sim, collector, GilbertElliottStage, spec, count=20000)
        assert stage.bursts_entered > 0
        # Mean burst length tracks 1/p_exit (= 4), well above i.i.d.'s 1.
        mean_burst = stage.stats.injected_drops / stage.bursts_entered
        assert 2.0 < mean_burst < 8.0

    def test_gilbert_elliott_drops_cluster(self, sim, collector):
        spec = burst_loss(p_enter=0.005, p_exit=0.2)
        _run_stage(sim, collector, GilbertElliottStage, spec, count=20000)
        delivered = [d.packet_number for d in collector.dgrams]
        gaps = [b - a for a, b in zip(delivered, delivered[1:]) if b - a > 1]
        # Burst loss shows up as multi-packet holes in the delivered sequence.
        assert any(gap >= 3 for gap in gaps)


class TestReorderDuplicate:
    def test_reorder_delays_some_packets(self, sim, collector):
        spec = reordering(rate=0.2, extra_delay_ns=ms(2))
        stage = ReorderStage(sim, spec, collector, random.Random(11))
        for i in range(200):
            stage.receive(make_dgram(1252, pn=i))
            sim.run(until=sim.now + us(100))
        sim.run()
        assert stage.stats.reordered > 10
        assert len(collector) == 200  # nothing lost
        order = [d.packet_number for d in collector.dgrams]
        assert order != sorted(order)  # genuinely out of order
        assert sorted(order) == list(range(200))

    def test_duplicate_emits_copies(self, sim, collector):
        stage = _run_stage(sim, collector, DuplicateStage, duplication(0.1), count=2000)
        assert stage.stats.duplicated > 100
        assert len(collector) == 2000 + stage.stats.duplicated
        # Duplicates share packet number and dgram id with the original.
        pns = [d.packet_number for d in collector.dgrams]
        assert len(set(pns)) == 2000

    def test_duplicate_is_a_distinct_object(self, sim, collector):
        stage = DuplicateStage(sim, duplication(1.0), collector, random.Random(1))
        original = make_dgram(1252, pn=0)
        stage.receive(original)
        sim.run()
        assert len(collector) == 2
        dup = collector.dgrams[1]
        assert dup is not original
        assert dup.dgram_id == original.dgram_id


class TestLinkFlapper:
    def test_rate_toggles_on_schedule(self, sim, collector):
        bn = Bottleneck(sim, "bn", rate_bps=mbit(40), queue_limit_bytes=1 << 20, sink=collector)
        spec = rate_flap(low_rate_bps=mbit(10), period_ns=ms(100), duty=0.5)
        flapper = LinkFlapper(sim, bn, spec)
        sim.run(until=ms(75))
        assert flapper.low and bn.rate_bps == mbit(10)
        sim.run(until=ms(125))
        assert not flapper.low and bn.rate_bps == mbit(40)
        assert flapper.transitions == 2

    def test_flap_slows_drain(self, sim, collector):
        bn = Bottleneck(sim, "bn", rate_bps=mbit(8), queue_limit_bytes=1 << 22, sink=collector)
        LinkFlapper(sim, bn, rate_flap(low_rate_bps=mbit(1), period_ns=ms(40), duty=0.25))
        for i in range(400):
            bn.receive(make_dgram(1252, pn=i))
        sim.run(until=ms(400))
        # Mostly-slow (duty 0.25) drain: far fewer than the full-rate 400.
        assert 0 < len(collector) < 400

    def test_set_rate_replans_pending_drain(self, sim, collector):
        bn = Bottleneck(sim, "bn", rate_bps=mbit(1), queue_limit_bytes=1 << 20, sink=collector)
        for i in range(10):
            bn.receive(make_dgram(1252, pn=i))
        sim.run(until=ms(1))
        before = len(collector)
        bn.set_rate(mbit(1000))
        sim.run(until=ms(2))
        # The fast rate takes effect immediately rather than after the stale
        # slow-rate token deadline.
        assert len(collector) == 10
        assert before < 10


class TestBuildChain:
    def test_chain_order_and_streams(self, sim, collector):
        specs = (iid_loss(0.01), reordering(), duplication(0.01))
        names = []

        def rng_for(name):
            names.append(name)
            return random.Random(len(names))

        head, stages, flappers = build_impairments(
            specs, sim, collector, rng_for, direction="fwd"
        )
        assert [s.spec.kind for s in stages] == ["loss", "reorder", "duplicate"]
        assert head is stages[0]
        assert stages[0].sink is stages[1] and stages[1].sink is stages[2]
        assert stages[2].sink is collector
        assert not flappers
        assert sorted(names) == ["fwd/0/loss", "fwd/1/reorder", "fwd/2/duplicate"]

    def test_empty_chain_passes_sink_through(self, sim, collector):
        head, stages, flappers = build_impairments(
            (), sim, collector, lambda name: random.Random(0), direction="rev"
        )
        assert head is collector and not stages and not flappers

    def test_rate_flap_requires_bottleneck(self, sim, collector):
        with pytest.raises(ConfigError):
            build_impairments(
                (rate_flap(),), sim, collector, lambda name: random.Random(0), direction="rev"
            )

    def test_rate_flap_attaches_to_bottleneck(self, sim, collector):
        bn = Bottleneck(sim, "bn", rate_bps=mbit(40), queue_limit_bytes=1 << 20, sink=collector)
        head, stages, flappers = build_impairments(
            (rate_flap(), iid_loss(0.01)),
            sim,
            bn,
            lambda name: random.Random(0),
            direction="fwd",
            bottleneck=bn,
        )
        assert len(flappers) == 1 and flappers[0].bottleneck is bn
        assert [s.spec.kind for s in stages] == ["loss"]
        assert head is stages[0]

    def test_drop_event_hook(self, sim, collector):
        events = []
        head, stages, _ = build_impairments(
            (iid_loss(0.5),), sim, collector, lambda name: random.Random(5), direction="fwd"
        )
        stages[0].on_event = lambda name, t, data: events.append((name, t, data))
        for i in range(100):
            head.receive(make_dgram(1252, pn=i))
        assert events
        name, _, data = events[0]
        assert name == "network:injected_drop"
        assert data["kind"] == "loss" and data["stage"] == "fwd/0/loss"
