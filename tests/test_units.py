"""Unit conversions and serialization arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro import units


def test_time_helpers():
    assert units.us(1) == 1_000
    assert units.ms(1.5) == 1_500_000
    assert units.seconds(2) == 2_000_000_000


def test_rate_helpers():
    assert units.mbit(40) == 40_000_000
    assert units.gbit(1) == 1_000_000_000


def test_size_helpers():
    assert units.kib(1) == 1024
    assert units.mib(1) == 1024 * 1024


def test_tx_time_simple():
    # 1250 bytes at 1 Gbit/s = 10 us.
    assert units.tx_time_ns(1250, units.gbit(1)) == units.us(10)


def test_tx_time_rounds_up():
    assert units.tx_time_ns(1, units.gbit(1)) == 8


def test_tx_time_rejects_zero_rate():
    with pytest.raises(ValueError):
        units.tx_time_ns(100, 0)


def test_rate_from_bytes_and_duration():
    assert units.rate_bps_from(5_000_000, units.seconds(1)) == 40_000_000.0


def test_rate_from_rejects_zero_duration():
    with pytest.raises(ValueError):
        units.rate_bps_from(1, 0)


def test_fmt_time_scales():
    assert units.fmt_time(5) == "5ns"
    assert units.fmt_time(units.us(3)) == "3.000us"
    assert units.fmt_time(units.ms(2)) == "2.000ms"
    assert units.fmt_time(units.seconds(1)) == "1.000s"


def test_fmt_rate_scales():
    assert "Mbit" in units.fmt_rate(units.mbit(40))
    assert "Gbit" in units.fmt_rate(units.gbit(2))
    assert "kbit" in units.fmt_rate(50_000)
    assert "bit" in units.fmt_rate(10)


@given(st.integers(min_value=1, max_value=10**7), st.integers(min_value=1000, max_value=10**11))
def test_tx_time_inverse_of_rate(nbytes, rate):
    t = units.tx_time_ns(nbytes, rate)
    # Round-trip: the implied rate is never higher than requested (ceil).
    assert t >= nbytes * 8 * units.SEC / rate - 1
    assert t <= nbytes * 8 * units.SEC / rate + 1


@given(st.integers(min_value=0, max_value=10**12))
def test_bytes_per_ns_consistent(duration):
    rate = units.mbit(40)
    b = units.bytes_per_ns(rate, duration)
    assert b * 8 * units.SEC <= rate * duration + 8 * units.SEC
