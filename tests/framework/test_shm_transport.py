"""Shared-memory result transport: bit-identity, fallbacks, leak-proofing.

The transport is an *execution* detail like the backend itself: forcing every
result through shared memory (threshold 0) must reproduce the serial
fingerprints bit for bit, and the transport must never appear in cache keys
or fingerprints. Crashed workers may orphan segments; the post-campaign
sweep must reclaim exactly the transport's own namespace and nothing else.
"""

import os
import pickle

import pytest

from repro.errors import ExecutionError
from repro.framework.config import ExperimentConfig
from repro.framework.executors import (
    DEFAULT_SHM_THRESHOLD,
    Executor,
    ForkServerExecutor,
    PoolExecutor,
    SharedMemoryTransport,
    ShmSegmentRef,
    SpawnExecutor,
    _InlineBlob,
    _shm_worker_run,
    _shared_memory,
)
from repro.framework.runner import _run_one
from repro.framework.supervision import SupervisionPolicy
from repro.framework.sweep import SweepRunner
from repro.units import kib

pytestmark = pytest.mark.skipif(
    _shared_memory is None, reason="multiprocessing.shared_memory unavailable"
)

GRID = {
    "quiche": ExperimentConfig(stack="quiche", file_size=kib(96), repetitions=2),
    "tcp": ExperimentConfig(stack="tcp", file_size=kib(96), repetitions=2),
}

FAST = SupervisionPolicy(retries=2, backoff_base_s=0.0, poll_interval_s=0.02)


def _fingerprints(summaries):
    return {
        name: [r.fingerprint() for r in summary.results]
        for name, summary in summaries.items()
    }


def _segments_with(prefix: str):
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):
        return []
    return [f for f in os.listdir(shm_dir) if f.startswith(prefix)]


# -- unit level --------------------------------------------------------------


def _big_result(config, seed):
    return {"seed": seed, "payload": bytes(range(256)) * 4096}  # ~1 MiB


def _tiny_result(config, seed):
    return {"seed": seed}


class TestWorkerSide:
    def test_large_result_rides_shared_memory_and_unlinks_on_resolve(self):
        transport = SharedMemoryTransport(threshold=0)
        ref = _shm_worker_run(_big_result, transport.prefix, 0, None, 7)
        assert isinstance(ref, ShmSegmentRef)
        assert ref.name.startswith(transport.prefix)
        assert _segments_with(transport.prefix) == [ref.name]
        assert transport.resolve(ref) == _big_result(None, 7)
        # Resolve unlinks: nothing left to sweep, stats counted the ride.
        assert _segments_with(transport.prefix) == []
        assert transport.stats["shm_results"] == 1
        assert transport.sweep() == 0

    def test_small_result_stays_inline(self):
        transport = SharedMemoryTransport()  # default threshold
        sent = _shm_worker_run(
            _tiny_result, transport.prefix, DEFAULT_SHM_THRESHOLD, None, 7
        )
        assert isinstance(sent, _InlineBlob)
        assert transport.resolve(sent) == {"seed": 7}
        assert transport.stats == {
            "shm_results": 0,
            "inline_results": 1,
            "swept_segments": 0,
        }

    def test_inline_blob_is_the_workers_own_pickle(self):
        sent = _shm_worker_run(_tiny_result, "repro-shm-test-", 1 << 30, None, 3)
        assert pickle.loads(sent.blob) == {"seed": 3}

    def test_vanished_segment_is_an_execution_error(self):
        transport = SharedMemoryTransport()
        ref = ShmSegmentRef(name=f"{transport.prefix}999-0", size=16)
        with pytest.raises(ExecutionError, match="vanished"):
            transport.resolve(ref)

    def test_resolve_passes_foreign_objects_through(self):
        transport = SharedMemoryTransport()
        result = {"not": "wrapped"}
        assert transport.resolve(result) is result

    def test_disabled_transport_never_wraps(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        transport = SharedMemoryTransport()
        assert not transport.enabled
        assert transport.wrap(_run_one) is _run_one
        assert transport.sweep() == 0

    def test_threshold_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_THRESHOLD", "1024")
        assert SharedMemoryTransport().threshold == 1024


class TestSweep:
    def test_sweep_reclaims_only_its_own_namespace(self):
        mine = SharedMemoryTransport(threshold=0)
        other = SharedMemoryTransport(threshold=0)
        leaked = _shared_memory.SharedMemory(
            name=f"{mine.prefix}123-0", create=True, size=64
        )
        leaked.close()
        foreign = _shared_memory.SharedMemory(
            name=f"{other.prefix}123-0", create=True, size=64
        )
        foreign.close()
        try:
            assert mine.sweep() == 1
            assert _segments_with(mine.prefix) == []
            assert _segments_with(other.prefix) == [f"{other.prefix}123-0"]
            assert mine.stats["swept_segments"] == 1
        finally:
            assert other.sweep() == 1

    def test_executor_hooks_default_to_identity(self):
        base = Executor()
        assert base.wrap_run_fn(_run_one) is _run_one
        assert base.resolve_result("x") == "x"
        assert base.cleanup_transport() == 0

    def test_local_pool_backends_carry_a_transport(self):
        for cls in (PoolExecutor, SpawnExecutor, ForkServerExecutor):
            executor = cls()
            assert isinstance(executor.transport, SharedMemoryTransport)
        custom = SharedMemoryTransport(threshold=1)
        assert PoolExecutor(transport=custom).transport is custom


# -- campaign level ----------------------------------------------------------


@pytest.mark.parametrize("backend_cls", [PoolExecutor, ForkServerExecutor])
def test_forced_shm_campaign_is_bit_identical_and_leak_free(backend_cls):
    baseline = SweepRunner(workers=1, backend="inprocess").run(GRID)
    executor = backend_cls(transport=SharedMemoryTransport(threshold=0))
    swept = SweepRunner(workers=2, backend=executor, policy=FAST).run(GRID)
    assert _fingerprints(swept) == _fingerprints(baseline)
    assert all(not s.failures for s in swept.values())
    # Every repetition rode shared memory, every segment was reclaimed.
    assert executor.transport.stats["shm_results"] == 4
    assert executor.transport.stats["inline_results"] == 0
    assert _segments_with(executor.transport.prefix) == []


def test_default_threshold_keeps_small_results_on_the_queue():
    executor = PoolExecutor()  # default threshold: these results are tiny
    swept = SweepRunner(workers=2, backend=executor, policy=FAST).run(GRID)
    assert all(not s.failures for s in swept.values())
    assert executor.transport.stats["shm_results"] == 0
    assert executor.transport.stats["inline_results"] == 4


def crash_once_run_one(config, seed):
    """First execution of the tcp config's rep kills its worker mid-result."""
    import pathlib

    marker = pathlib.Path(os.environ["REPRO_CHAOS_DIR"]) / f"crashed-{seed}"
    if config.stack == "tcp" and not marker.exists():
        marker.touch()
        os._exit(23)
    return _run_one(config, seed)


def test_worker_crash_retries_clean_and_leaks_nothing(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path))
    baseline = SweepRunner(workers=1, backend="inprocess").run(GRID)
    executor = PoolExecutor(transport=SharedMemoryTransport(threshold=0))
    swept = SweepRunner(
        workers=2, backend=executor, policy=FAST, run_fn=crash_once_run_one
    ).run(GRID)
    assert _fingerprints(swept) == _fingerprints(baseline)
    assert all(not s.failures for s in swept.values())
    assert _segments_with(executor.transport.prefix) == []
