"""Parallel repetition runner: identical results, ordered output, seeds."""

from repro.framework.config import ExperimentConfig
from repro.framework.runner import derive_seed, run_repetitions
from repro.units import kib

CFG = ExperimentConfig(stack="quiche", file_size=kib(200), repetitions=3)


def test_derived_seeds_do_not_collide_across_bases():
    # Regression: the old `base * 1000 + rep` derivation aliased
    # seed 1 / rep 1000 with seed 2 / rep 0 (and every similar pair), so
    # overlapping sweeps reran identical "independent" repetitions.
    assert derive_seed(1, 1000) != derive_seed(2, 0)
    grid = {derive_seed(base, rep) for base in range(1, 21) for rep in range(2000)}
    assert len(grid) == 20 * 2000


def test_derived_seeds_are_stable():
    # Cache keys and serial-vs-parallel identity both rely on the derivation
    # being a pure function, stable across processes and PYTHONHASHSEED.
    assert derive_seed(1, 0) == 0x099B9DD8225C354B
    assert derive_seed(CFG.seed, 2) == derive_seed(CFG.seed, 2)


def test_summary_uses_derived_seeds_in_rep_order():
    summary = run_repetitions(CFG, workers=1)
    assert [r.seed for r in summary.results] == [
        derive_seed(CFG.seed, rep) for rep in range(CFG.repetitions)
    ]


def test_parallel_matches_serial():
    serial = run_repetitions(CFG)
    parallel = run_repetitions(CFG, workers=3)
    assert [r.seed for r in parallel.results] == [r.seed for r in serial.results]
    assert [r.goodput_mbps for r in parallel.results] == [
        r.goodput_mbps for r in serial.results
    ]
    assert [r.dropped for r in parallel.results] == [r.dropped for r in serial.results]
    assert parallel.goodput.mean == serial.goodput.mean


def test_single_repetition_ignores_workers():
    cfg = ExperimentConfig(stack="quiche", file_size=kib(150), repetitions=1)
    summary = run_repetitions(cfg, workers=4)
    assert len(summary.results) == 1


def test_results_are_complete_objects():
    parallel = run_repetitions(CFG, workers=2)
    for r in parallel.results:
        assert r.completed
        assert r.server_records  # capture survived pickling
        assert r.server_stats["packets_sent"] > 0
