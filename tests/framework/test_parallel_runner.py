"""Parallel repetition runner: identical results, ordered output."""

from repro.framework.config import ExperimentConfig
from repro.framework.runner import run_repetitions
from repro.units import kib

CFG = ExperimentConfig(stack="quiche", file_size=kib(200), repetitions=3)


def test_parallel_matches_serial():
    serial = run_repetitions(CFG)
    parallel = run_repetitions(CFG, workers=3)
    assert [r.seed for r in parallel.results] == [r.seed for r in serial.results]
    assert [r.goodput_mbps for r in parallel.results] == [
        r.goodput_mbps for r in serial.results
    ]
    assert [r.dropped for r in parallel.results] == [r.dropped for r in serial.results]
    assert parallel.goodput.mean == serial.goodput.mean


def test_single_repetition_ignores_workers():
    cfg = ExperimentConfig(stack="quiche", file_size=kib(150), repetitions=1)
    summary = run_repetitions(cfg, workers=4)
    assert len(summary.results) == 1


def test_results_are_complete_objects():
    parallel = run_repetitions(CFG, workers=2)
    for r in parallel.results:
        assert r.completed
        assert r.server_records  # capture survived pickling
        assert r.server_stats["packets_sent"] > 0
