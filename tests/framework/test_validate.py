"""Result invariants: a real run passes; tampered results name their defect."""

import dataclasses

import pytest

from repro.errors import ValidationError
from repro.framework.config import ExperimentConfig, NetworkConfig
from repro.framework.experiment import Experiment
from repro.framework.validate import validate_result
from repro.net.impairments import iid_loss
from repro.sim.random import derive_seed
from repro.units import kib


@pytest.fixture(scope="module")
def result():
    cfg = ExperimentConfig(stack="quiche", file_size=kib(150), repetitions=1)
    return Experiment(cfg, seed=derive_seed(cfg.seed, 0)).run()


def _expect(invariant, broken):
    with pytest.raises(ValidationError) as excinfo:
        validate_result(broken)
    assert str(excinfo.value).startswith(invariant + ":")


def test_real_results_pass(result):
    validate_result(result)
    result.validate()  # the ExperimentResult convenience delegates here


def test_real_impaired_result_passes():
    cfg = ExperimentConfig(
        stack="quiche",
        file_size=kib(150),
        repetitions=1,
        network=NetworkConfig(forward_impairments=(iid_loss(0.02),)),
    )
    validate_result(Experiment(cfg, seed=derive_seed(cfg.seed, 0)).run())


def test_negative_duration_rejected(result):
    _expect("duration", dataclasses.replace(result, duration_ns=0))


def test_negative_drop_counter_rejected(result):
    _expect("dropped", dataclasses.replace(result, dropped=-1))


def test_non_monotonic_capture_rejected(result):
    records = list(result.server_records)
    records[1], records[2] = records[2], records[1]
    _expect("capture-monotonic", dataclasses.replace(result, server_records=records))


def test_injected_drops_must_match_stage_counters(result):
    _expect("injected-drops", dataclasses.replace(result, injected_drops=7))


def test_stage_counters_must_be_consistent(result):
    stats = {"fwd/0/loss": {"seen": 10, "injected_drops": 11, "reordered": 0, "duplicated": 0}}
    _expect(
        "impairment-counters",
        dataclasses.replace(result, impairment_stats=stats, injected_drops=11),
    )


def test_completed_run_must_have_delivered_the_file(result):
    # Keep two frames: far too little payload for a "completed" download.
    _expect(
        "bytes-conservation",
        dataclasses.replace(result, server_records=result.server_records[:2]),
    )


def test_drops_cannot_exceed_frames_on_wire(result):
    _expect(
        "drop-conservation",
        dataclasses.replace(result, dropped=len(result.server_records) + 1),
    )


def test_goodput_cannot_beat_the_bottleneck(result):
    # Claim the whole download finished in 1 ms — physically impossible
    # through a 40 Mbit/s shaper.
    _expect("rate-ceiling", dataclasses.replace(result, duration_ns=1_000_000))
