"""Differential acceptance: JSON artifacts and the result store agree, and
neither can tell execution backends apart.

One grid, four execution paths — serial in-process, the default pool,
forkserver, and a warm-cache replay — each streaming into its own fresh
store. Every pairwise comparison must hold bit for bit:

* result ``fingerprint()`` lists are identical across all paths;
* every store digests to the same :meth:`ResultStore.content_fingerprint`;
* each store's :meth:`ResultStore.export_summary_dict` equals the
  ``summary_to_dict`` JSON artifact of the live run that produced it, so the
  store is a lossless replacement for per-run JSON, not a parallel truth.
"""

import pytest

from repro.framework.artifacts import summary_to_dict
from repro.framework.cache import ResultCache
from repro.framework.config import ExperimentConfig, NetworkConfig
from repro.framework.store import ResultStore
from repro.framework.sweep import SweepRunner
from repro.net.impairments import iid_loss
from repro.units import kib

GRID = {
    "quiche": ExperimentConfig(stack="quiche", file_size=kib(96), repetitions=2),
    "lossy": ExperimentConfig(
        stack="quiche",
        file_size=kib(96),
        repetitions=2,
        network=NetworkConfig(forward_impairments=(iid_loss(0.02),)),
    ),
}


def _fingerprints(summaries):
    return {
        name: [r.fingerprint() for r in summary.results]
        for name, summary in summaries.items()
    }


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    """(summaries, store) per execution path, all over the same grid."""
    root = tmp_path_factory.mktemp("differential")
    out = {}
    for backend, workers in (("inprocess", 1), ("pool", 2), ("forkserver", 2)):
        store = ResultStore(root / f"{backend}.sqlite")
        out[backend] = (
            SweepRunner(workers=workers, backend=backend, store=store).run(GRID),
            store,
        )
    # Warm-cache replay: populate the cache, then serve every rep from it.
    cache = ResultCache(root / "cache")
    SweepRunner(workers=2, cache=cache).run(GRID)
    warm_store = ResultStore(root / "warm.sqlite")
    warm = SweepRunner(
        workers=1, cache=ResultCache(root / "cache"), store=warm_store
    ).run(GRID)
    out["warm-cache"] = (warm, warm_store)
    return out


def test_fingerprints_identical_across_all_paths(runs):
    reference = _fingerprints(runs["inprocess"][0])
    for path, (summaries, _) in runs.items():
        assert _fingerprints(summaries) == reference, path
        assert all(not s.failures for s in summaries.values()), path


def test_stores_digest_identically_across_all_paths(runs):
    digests = {path: store.content_fingerprint() for path, (_, store) in runs.items()}
    assert len(set(digests.values())) == 1, digests
    counts = {path: store.rep_count() for path, (_, store) in runs.items()}
    assert set(counts.values()) == {4}  # 2 configs x 2 reps, no duplicates


def test_store_export_equals_the_json_artifact(runs):
    for path, (summaries, store) in runs.items():
        for name, summary in summaries.items():
            assert store.export_summary_dict(name) == summary_to_dict(summary), (
                path,
                name,
            )


def test_store_rows_expose_the_same_metrics_the_artifact_carries(runs):
    summaries, store = runs["inprocess"]
    for name, summary in summaries.items():
        artifact = summary_to_dict(summary)
        rows = store.query(name=name)
        for row, rep in zip(rows, artifact["repetitions"]):
            assert row["fingerprint"] == rep["fingerprint"]
            assert row["goodput_mbps"] == rep["goodput_mbps"]
            assert row["dropped"] == rep["dropped"]
            assert row["b2b_share"] == rep["metrics"]["back_to_back_share"]
            assert row["trains_leq5_share"] == rep["metrics"]["trains_leq5_share"]
