"""Unit tests for the distributed wire protocol and coordinator plumbing.

These drive the frame codec, host-spec parsing, and the coordinator against
hand-rolled fake agents over real sockets — no subprocesses — so the lease
lifecycle (dispatch, settle, duplicate discard, failure reconstruction) is
pinned independently of the full chaos harness.
"""

import socket
import threading
import time

import pytest

from repro.errors import ConfigError, HostLostError, ProtocolError
from repro.framework.remote import (
    Coordinator,
    HostSpec,
    MAX_FRAME_BYTES,
    callable_name,
    decode_obj,
    encode_obj,
    load_hosts_file,
    merge_hosts,
    parse_host_spec,
    parse_hosts,
    recv_frame,
    resolve_callable,
    send_frame,
)


# -- frame layer -----------------------------------------------------------


def _pair():
    return socket.socketpair()


def test_frame_round_trip():
    a, b = _pair()
    try:
        send_frame(a, {"type": "hello", "agent": "x/0", "pid": 7})
        assert recv_frame(b) == {"type": "hello", "agent": "x/0", "pid": 7}
    finally:
        a.close()
        b.close()


def test_frames_preserve_order_and_boundaries():
    a, b = _pair()
    try:
        for i in range(50):
            send_frame(a, {"n": i, "pad": "x" * i})
        for i in range(50):
            assert recv_frame(b)["n"] == i
    finally:
        a.close()
        b.close()


def test_recv_frame_returns_none_on_eof():
    a, b = _pair()
    a.close()
    try:
        assert recv_frame(b) is None
    finally:
        b.close()


def test_recv_frame_returns_none_on_torn_frame():
    a, b = _pair()
    try:
        # A length prefix promising more bytes than ever arrive (the peer
        # died mid-frame) must read as EOF, not hang or raise.
        a.sendall((1000).to_bytes(4, "big") + b'{"type":')
        a.close()
        assert recv_frame(b) is None
    finally:
        b.close()


def test_recv_frame_rejects_oversized_length_prefix():
    a, b = _pair()
    try:
        a.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
        with pytest.raises(ProtocolError):
            recv_frame(b)
    finally:
        a.close()
        b.close()


def test_send_frame_rejects_non_object_payload():
    a, b = _pair()
    try:
        send_frame(a, {"ok": 1})
        a.sendall((4).to_bytes(4, "big") + b"[10]")
        assert recv_frame(b) == {"ok": 1}
        with pytest.raises(ProtocolError):
            recv_frame(b)
    finally:
        a.close()
        b.close()


def test_object_codec_round_trips_arbitrary_python():
    payload = {"tuple": (1, 2), "bytes": b"\x00\xff", "nested": [{"x": 1.5}]}
    assert decode_obj(encode_obj(payload)) == payload


# -- callable naming -------------------------------------------------------


def _sample_fn(config, seed):
    return (config, seed * 2)


def test_callable_name_round_trips():
    name = callable_name(_sample_fn)
    assert name == f"{__name__}:_sample_fn"
    assert resolve_callable(name) is _sample_fn


def test_callable_name_rejects_lambdas_and_locals():
    with pytest.raises(ConfigError):
        callable_name(lambda c, s: None)

    def local_fn(c, s):
        return None

    with pytest.raises(ConfigError):
        callable_name(local_fn)


def test_resolve_callable_rejects_malformed_names():
    with pytest.raises(ProtocolError):
        resolve_callable("no-colon")


# -- host specs ------------------------------------------------------------


def test_parse_hosts_specs_and_slots():
    assert parse_hosts("localhost") == (HostSpec("localhost", 1),)
    assert parse_hosts("a:4,b") == (HostSpec("a", 4), HostSpec("b", 1))
    # Duplicate host names merge by summing slots.
    assert parse_hosts("a:1,a:2") == (HostSpec("a", 3),)


@pytest.mark.parametrize("bad", ["", ",", "a:zero", "a:0", ":3"])
def test_parse_hosts_rejects_garbage(bad):
    with pytest.raises(ConfigError):
        parse_hosts(bad)


def test_hosts_file_skips_comments_and_blanks(tmp_path):
    path = tmp_path / "hosts"
    path.write_text("# fleet\nnode1:2\n\nnode2  # gpu box\n")
    assert load_hosts_file(path) == (HostSpec("node1", 2), HostSpec("node2", 1))


def test_hosts_file_with_no_hosts_is_an_error(tmp_path):
    path = tmp_path / "hosts"
    path.write_text("# nothing here\n")
    with pytest.raises(ConfigError):
        load_hosts_file(path)


def test_merge_hosts_accepts_mixed_specs_and_strings():
    merged = merge_hosts(["a:2", HostSpec("a", 1), "b"])
    assert merged == (HostSpec("a", 3), HostSpec("b", 1))


# -- coordinator against a fake agent --------------------------------------


class FakeAgent:
    """A scripted agent: real socket, no subprocess, test-controlled replies."""

    def __init__(self, port: int, agent_id: str = "fake/0", host: str = "fake"):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=5.0)
        send_frame(self.sock, {"type": "hello", "agent": agent_id, "host": host, "pid": 0})

    def recv(self, timeout: float = 5.0) -> dict:
        self.sock.settimeout(timeout)
        frame = recv_frame(self.sock)
        assert frame is not None
        return frame

    def send(self, frame: dict) -> None:
        send_frame(self.sock, frame)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


@pytest.fixture
def coordinator():
    # No configured hosts: the coordinator launches nothing and can never
    # declare all hosts dead; fake agents connect in from the test.
    coord = Coordinator((), heartbeat_interval_s=60.0, lease_timeout_s=60.0).start()
    yield coord
    coord.shutdown(wait=False, cancel_futures=True)


def _wait(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def test_coordinator_dispatches_lease_and_settles_result(coordinator):
    agent = FakeAgent(coordinator.port)
    try:
        future = coordinator.submit(_sample_fn, "cfg", 7)
        lease = agent.recv()
        assert lease["type"] == "lease"
        assert lease["run_fn"] == f"{__name__}:_sample_fn"
        assert lease["seed"] == 7
        assert decode_obj(lease["config"]) == "cfg"
        agent.send(
            {"type": "result", "lease": lease["lease"], "payload": encode_obj(("cfg", 14))}
        )
        assert future.result(timeout=5.0) == ("cfg", 14)
        assert coordinator.stats.settled == 1
    finally:
        agent.close()


def test_duplicate_result_is_discarded_idempotently(coordinator):
    agent = FakeAgent(coordinator.port)
    try:
        future = coordinator.submit(_sample_fn, "cfg", 3)
        lease = agent.recv()
        reply = {"type": "result", "lease": lease["lease"], "payload": encode_obj(6)}
        agent.send(reply)
        assert future.result(timeout=5.0) == 6
        agent.send(reply)  # replayed after, e.g., a reconnect
        assert _wait(lambda: coordinator.stats.duplicates_discarded == 1)
        assert coordinator.stats.settled == 1
    finally:
        agent.close()


def test_unknown_lease_result_is_discarded(coordinator):
    agent = FakeAgent(coordinator.port)
    try:
        agent.send({"type": "result", "lease": 424242, "payload": encode_obj(1)})
        assert _wait(lambda: coordinator.stats.duplicates_discarded == 1)
    finally:
        agent.close()


def test_failure_frame_reconstructs_exception_with_host_attribution(coordinator):
    agent = FakeAgent(coordinator.port, agent_id="nodeX/0", host="nodeX")
    try:
        future = coordinator.submit(_sample_fn, "cfg", 5)
        lease = agent.recv()
        agent.send(
            {
                "type": "failure",
                "lease": lease["lease"],
                "error_type": "ValueError",
                "message": "injected",
                "traceback": "Traceback: injected\n",
            }
        )
        exc = future.exception(timeout=5.0)
        assert isinstance(exc, ValueError)
        assert str(exc) == "injected"
        assert exc.host == "nodeX"
        assert "injected" in exc.remote_traceback
    finally:
        agent.close()


def test_unconstructible_remote_error_falls_back_to_remote_rep_error(coordinator):
    agent = FakeAgent(coordinator.port)
    try:
        future = coordinator.submit(_sample_fn, "cfg", 5)
        lease = agent.recv()
        agent.send(
            {
                "type": "failure",
                "lease": lease["lease"],
                "error_type": "SomeThirdPartyError",
                "message": "boom",
                "traceback": "",
            }
        )
        exc = future.exception(timeout=5.0)
        from repro.errors import RemoteRepError

        assert isinstance(exc, RemoteRepError)
        assert "SomeThirdPartyError" in str(exc) and "boom" in str(exc)
    finally:
        agent.close()


def test_lost_agent_lease_is_reclaimed_and_redispatched():
    coord = Coordinator(
        (), heartbeat_interval_s=60.0, lease_timeout_s=60.0,
        reconnect_grace_s=0.1, poll_interval_s=0.02,
    ).start()
    first = FakeAgent(coord.port, agent_id="fake/0")
    try:
        future = coord.submit(_sample_fn, "cfg", 9)
        lease = first.recv()
        first.close()  # dies mid-lease
        assert _wait(lambda: coord.stats.reclaimed == 1)
        second = FakeAgent(coord.port, agent_id="fake/1")
        try:
            redispatch = second.recv()
            # Same task, same seed: recovery is bit-identical by construction.
            assert redispatch["seed"] == lease["seed"] == 9
            assert redispatch["lease"] != lease["lease"]
            second.send(
                {"type": "result", "lease": redispatch["lease"], "payload": encode_obj(18)}
            )
            assert future.result(timeout=5.0) == 18
        finally:
            second.close()
    finally:
        first.close()
        coord.shutdown(wait=False, cancel_futures=True)


def test_straggler_duplicate_first_result_wins():
    coord = Coordinator(
        (), heartbeat_interval_s=60.0, lease_timeout_s=60.0,
        straggler_after_s=0.1, poll_interval_s=0.02,
    ).start()
    slow = FakeAgent(coord.port, agent_id="slow/0", host="slow")
    fast = FakeAgent(coord.port, agent_id="fast/0", host="fast")
    try:
        future = coord.submit(_sample_fn, "cfg", 11)
        # One of the two idle agents gets the lease; the other goes idle and
        # after straggler_after_s receives a duplicate of the same task.
        for agent in (slow, fast):
            agent.sock.setblocking(False)
        deadline = time.monotonic() + 5.0
        leases = {}
        while len(leases) < 2 and time.monotonic() < deadline:
            for name, agent in (("slow", slow), ("fast", fast)):
                if name in leases:
                    continue
                try:
                    frame = recv_frame(agent.sock)
                except (BlockingIOError, socket.timeout):
                    continue
                if frame is not None:
                    leases[name] = frame
            time.sleep(0.01)
        assert len(leases) == 2, "straggler duplicate was never dispatched"
        assert leases["slow"]["seed"] == leases["fast"]["seed"] == 11
        assert coord.stats.stragglers == 1
        for agent in (slow, fast):
            agent.sock.setblocking(True)
        fast.send(
            {"type": "result", "lease": leases["fast"]["lease"], "payload": encode_obj(22)}
        )
        assert future.result(timeout=5.0) == 22
        slow.send(
            {"type": "result", "lease": leases["slow"]["lease"], "payload": encode_obj(99)}
        )
        assert _wait(lambda: coord.stats.duplicates_discarded == 1)
        assert future.result() == 22  # first result won; loser discarded
    finally:
        slow.close()
        fast.close()
        coord.shutdown(wait=False, cancel_futures=True)


def test_submit_after_shutdown_fails_fast_with_host_lost_error():
    coord = Coordinator(()).start()
    coord.shutdown(wait=False)
    future = coord.submit(_sample_fn, "cfg", 1)
    with pytest.raises(HostLostError):
        future.result(timeout=1.0)


def test_shutdown_sends_shutdown_frame_to_agents():
    coord = Coordinator(()).start()
    agent = FakeAgent(coord.port)
    try:
        assert _wait(lambda: coord.stats is not None and len(coord._agents) == 1)
        coord.shutdown(wait=False)
        frame = agent.recv()
        assert frame["type"] == "shutdown"
    finally:
        agent.close()
