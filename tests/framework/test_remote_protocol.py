"""Unit tests for the distributed wire protocol and coordinator plumbing.

These drive the frame codec, host-spec parsing, and the coordinator against
hand-rolled fake agents over real sockets — no subprocesses — so the lease
lifecycle (dispatch, settle, duplicate discard, failure reconstruction) is
pinned independently of the full chaos harness.
"""

import socket
import threading
import time

import pytest

from repro.errors import ConfigError, HostLostError, ProtocolError, RepTimeoutError
from repro.framework.remote import (
    Coordinator,
    HostSpec,
    MAX_FRAME_BYTES,
    callable_name,
    client_handshake,
    decode_obj,
    encode_obj,
    load_hosts_file,
    merge_hosts,
    parse_host_spec,
    parse_hosts,
    recv_frame,
    resolve_callable,
    send_frame,
)


# -- frame layer -----------------------------------------------------------


def _pair():
    return socket.socketpair()


def test_frame_round_trip():
    a, b = _pair()
    try:
        send_frame(a, {"type": "hello", "agent": "x/0", "pid": 7})
        assert recv_frame(b) == {"type": "hello", "agent": "x/0", "pid": 7}
    finally:
        a.close()
        b.close()


def test_frames_preserve_order_and_boundaries():
    a, b = _pair()
    try:
        for i in range(50):
            send_frame(a, {"n": i, "pad": "x" * i})
        for i in range(50):
            assert recv_frame(b)["n"] == i
    finally:
        a.close()
        b.close()


def test_recv_frame_returns_none_on_eof():
    a, b = _pair()
    a.close()
    try:
        assert recv_frame(b) is None
    finally:
        b.close()


def test_recv_frame_returns_none_on_torn_frame():
    a, b = _pair()
    try:
        # A length prefix promising more bytes than ever arrive (the peer
        # died mid-frame) must read as EOF, not hang or raise.
        a.sendall((1000).to_bytes(4, "big") + b'{"type":')
        a.close()
        assert recv_frame(b) is None
    finally:
        b.close()


def test_recv_frame_rejects_oversized_length_prefix():
    a, b = _pair()
    try:
        a.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
        with pytest.raises(ProtocolError):
            recv_frame(b)
    finally:
        a.close()
        b.close()


def test_send_frame_rejects_non_object_payload():
    a, b = _pair()
    try:
        send_frame(a, {"ok": 1})
        a.sendall((4).to_bytes(4, "big") + b"[10]")
        assert recv_frame(b) == {"ok": 1}
        with pytest.raises(ProtocolError):
            recv_frame(b)
    finally:
        a.close()
        b.close()


def test_object_codec_round_trips_arbitrary_python():
    payload = {"tuple": (1, 2), "bytes": b"\x00\xff", "nested": [{"x": 1.5}]}
    assert decode_obj(encode_obj(payload)) == payload


# -- callable naming -------------------------------------------------------


def _sample_fn(config, seed):
    return (config, seed * 2)


def test_callable_name_round_trips():
    name = callable_name(_sample_fn)
    assert name == f"{__name__}:_sample_fn"
    assert resolve_callable(name) is _sample_fn


def test_callable_name_rejects_lambdas_and_locals():
    with pytest.raises(ConfigError):
        callable_name(lambda c, s: None)

    def local_fn(c, s):
        return None

    with pytest.raises(ConfigError):
        callable_name(local_fn)


def test_resolve_callable_rejects_malformed_names():
    with pytest.raises(ProtocolError):
        resolve_callable("no-colon")


# -- host specs ------------------------------------------------------------


def test_parse_hosts_specs_and_slots():
    assert parse_hosts("localhost") == (HostSpec("localhost", 1),)
    assert parse_hosts("a:4,b") == (HostSpec("a", 4), HostSpec("b", 1))
    # Duplicate host names merge by summing slots.
    assert parse_hosts("a:1,a:2") == (HostSpec("a", 3),)


@pytest.mark.parametrize("bad", ["", ",", "a:zero", "a:0", ":3"])
def test_parse_hosts_rejects_garbage(bad):
    with pytest.raises(ConfigError):
        parse_hosts(bad)


def test_hosts_file_skips_comments_and_blanks(tmp_path):
    path = tmp_path / "hosts"
    path.write_text("# fleet\nnode1:2\n\nnode2  # gpu box\n")
    assert load_hosts_file(path) == (HostSpec("node1", 2), HostSpec("node2", 1))


def test_hosts_file_with_no_hosts_is_an_error(tmp_path):
    path = tmp_path / "hosts"
    path.write_text("# nothing here\n")
    with pytest.raises(ConfigError):
        load_hosts_file(path)


def test_merge_hosts_accepts_mixed_specs_and_strings():
    merged = merge_hosts(["a:2", HostSpec("a", 1), "b"])
    assert merged == (HostSpec("a", 3), HostSpec("b", 1))


# -- coordinator against a fake agent --------------------------------------


class FakeAgent:
    """A scripted agent: real socket, no subprocess, test-controlled replies."""

    def __init__(self, coord: Coordinator, agent_id: str = "fake/0", host: str = "fake"):
        self.sock = socket.create_connection(("127.0.0.1", coord.port), timeout=5.0)
        assert client_handshake(self.sock, coord.secret)
        send_frame(self.sock, {"type": "hello", "agent": agent_id, "host": host, "pid": 0})

    def recv(self, timeout: float = 5.0) -> dict:
        self.sock.settimeout(timeout)
        frame = recv_frame(self.sock)
        assert frame is not None
        return frame

    def send(self, frame: dict) -> None:
        send_frame(self.sock, frame)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


@pytest.fixture
def coordinator():
    # No configured hosts: the coordinator launches nothing and can never
    # declare all hosts dead; fake agents connect in from the test.
    coord = Coordinator((), heartbeat_interval_s=60.0, lease_timeout_s=60.0).start()
    yield coord
    coord.shutdown(wait=False, cancel_futures=True)


def _wait(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def test_coordinator_dispatches_lease_and_settles_result(coordinator):
    agent = FakeAgent(coordinator)
    try:
        future = coordinator.submit(_sample_fn, "cfg", 7)
        lease = agent.recv()
        assert lease["type"] == "lease"
        assert lease["run_fn"] == f"{__name__}:_sample_fn"
        assert lease["seed"] == 7
        assert decode_obj(lease["config"]) == "cfg"
        agent.send(
            {"type": "result", "lease": lease["lease"], "payload": encode_obj(("cfg", 14))}
        )
        assert future.result(timeout=5.0) == ("cfg", 14)
        assert coordinator.stats.settled == 1
    finally:
        agent.close()


def test_duplicate_result_is_discarded_idempotently(coordinator):
    agent = FakeAgent(coordinator)
    try:
        future = coordinator.submit(_sample_fn, "cfg", 3)
        lease = agent.recv()
        reply = {"type": "result", "lease": lease["lease"], "payload": encode_obj(6)}
        agent.send(reply)
        assert future.result(timeout=5.0) == 6
        agent.send(reply)  # replayed after, e.g., a reconnect
        assert _wait(lambda: coordinator.stats.duplicates_discarded == 1)
        assert coordinator.stats.settled == 1
    finally:
        agent.close()


def test_unknown_lease_result_is_discarded(coordinator):
    agent = FakeAgent(coordinator)
    try:
        agent.send({"type": "result", "lease": 424242, "payload": encode_obj(1)})
        assert _wait(lambda: coordinator.stats.duplicates_discarded == 1)
    finally:
        agent.close()


def test_failure_frame_reconstructs_exception_with_host_attribution(coordinator):
    agent = FakeAgent(coordinator, agent_id="nodeX/0", host="nodeX")
    try:
        future = coordinator.submit(_sample_fn, "cfg", 5)
        lease = agent.recv()
        agent.send(
            {
                "type": "failure",
                "lease": lease["lease"],
                "error_type": "ValueError",
                "message": "injected",
                "traceback": "Traceback: injected\n",
            }
        )
        exc = future.exception(timeout=5.0)
        assert isinstance(exc, ValueError)
        assert str(exc) == "injected"
        assert exc.host == "nodeX"
        assert "injected" in exc.remote_traceback
    finally:
        agent.close()


def test_unconstructible_remote_error_falls_back_to_remote_rep_error(coordinator):
    agent = FakeAgent(coordinator)
    try:
        future = coordinator.submit(_sample_fn, "cfg", 5)
        lease = agent.recv()
        agent.send(
            {
                "type": "failure",
                "lease": lease["lease"],
                "error_type": "SomeThirdPartyError",
                "message": "boom",
                "traceback": "",
            }
        )
        exc = future.exception(timeout=5.0)
        from repro.errors import RemoteRepError

        assert isinstance(exc, RemoteRepError)
        assert "SomeThirdPartyError" in str(exc) and "boom" in str(exc)
    finally:
        agent.close()


def test_lost_agent_lease_is_reclaimed_and_redispatched():
    coord = Coordinator(
        (), heartbeat_interval_s=60.0, lease_timeout_s=60.0,
        reconnect_grace_s=0.1, poll_interval_s=0.02,
    ).start()
    first = FakeAgent(coord, agent_id="fake/0")
    try:
        future = coord.submit(_sample_fn, "cfg", 9)
        lease = first.recv()
        first.close()  # dies mid-lease
        assert _wait(lambda: coord.stats.reclaimed == 1)
        second = FakeAgent(coord, agent_id="fake/1")
        try:
            redispatch = second.recv()
            # Same task, same seed: recovery is bit-identical by construction.
            assert redispatch["seed"] == lease["seed"] == 9
            assert redispatch["lease"] != lease["lease"]
            second.send(
                {"type": "result", "lease": redispatch["lease"], "payload": encode_obj(18)}
            )
            assert future.result(timeout=5.0) == 18
        finally:
            second.close()
    finally:
        first.close()
        coord.shutdown(wait=False, cancel_futures=True)


def test_straggler_duplicate_first_result_wins():
    coord = Coordinator(
        (), heartbeat_interval_s=60.0, lease_timeout_s=60.0,
        straggler_after_s=0.1, poll_interval_s=0.02,
    ).start()
    slow = FakeAgent(coord, agent_id="slow/0", host="slow")
    fast = FakeAgent(coord, agent_id="fast/0", host="fast")
    try:
        future = coord.submit(_sample_fn, "cfg", 11)
        # One of the two idle agents gets the lease; the other goes idle and
        # after straggler_after_s receives a duplicate of the same task.
        for agent in (slow, fast):
            agent.sock.setblocking(False)
        deadline = time.monotonic() + 5.0
        leases = {}
        while len(leases) < 2 and time.monotonic() < deadline:
            for name, agent in (("slow", slow), ("fast", fast)):
                if name in leases:
                    continue
                try:
                    frame = recv_frame(agent.sock)
                except (BlockingIOError, socket.timeout):
                    continue
                if frame is not None:
                    leases[name] = frame
            time.sleep(0.01)
        assert len(leases) == 2, "straggler duplicate was never dispatched"
        assert leases["slow"]["seed"] == leases["fast"]["seed"] == 11
        assert coord.stats.stragglers == 1
        for agent in (slow, fast):
            agent.sock.setblocking(True)
        fast.send(
            {"type": "result", "lease": leases["fast"]["lease"], "payload": encode_obj(22)}
        )
        assert future.result(timeout=5.0) == 22
        slow.send(
            {"type": "result", "lease": leases["slow"]["lease"], "payload": encode_obj(99)}
        )
        assert _wait(lambda: coord.stats.duplicates_discarded == 1)
        assert future.result() == 22  # first result won; loser discarded
    finally:
        slow.close()
        fast.close()
        coord.shutdown(wait=False, cancel_futures=True)


def test_submit_after_shutdown_fails_fast_with_host_lost_error():
    coord = Coordinator(()).start()
    coord.shutdown(wait=False)
    future = coord.submit(_sample_fn, "cfg", 1)
    with pytest.raises(HostLostError):
        future.result(timeout=1.0)


def test_shutdown_sends_shutdown_frame_to_agents():
    coord = Coordinator(()).start()
    agent = FakeAgent(coord)
    try:
        assert _wait(lambda: coord.stats is not None and len(coord._agents) == 1)
        coord.shutdown(wait=False)
        frame = agent.recv()
        assert frame["type"] == "shutdown"
    finally:
        agent.close()


# -- authentication --------------------------------------------------------


def test_wrong_secret_is_rejected_before_any_dispatch(coordinator):
    future = coordinator.submit(_sample_fn, "cfg", 1)
    sock = socket.create_connection(("127.0.0.1", coordinator.port), timeout=5.0)
    try:
        assert not client_handshake(sock, "not-the-campaign-secret")
        # The impostor never registers: no agent, no lease, task still queued.
        assert not _wait(lambda: coordinator._agents, timeout=0.3)
        assert not future.done()
    finally:
        sock.close()
    # A real agent still gets the work afterwards.
    agent = FakeAgent(coordinator)
    try:
        lease = agent.recv()
        agent.send({"type": "result", "lease": lease["lease"], "payload": encode_obj(2)})
        assert future.result(timeout=5.0) == 2
    finally:
        agent.close()


def test_unauthenticated_result_frame_is_never_processed(coordinator):
    """A peer that skips the handshake and fires payload frames directly
    must be dropped before any pickle is decoded (results are pickled, so
    this is the unauthenticated-RCE surface)."""
    future = coordinator.submit(_sample_fn, "cfg", 9)
    sock = socket.create_connection(("127.0.0.1", coordinator.port), timeout=5.0)
    try:
        # Ignore the challenge; blast hello + a forged result straight away.
        # (The second send may race the server's rejection and fail — fine.)
        try:
            send_frame(sock, {"type": "hello", "agent": "evil/0", "host": "evil", "pid": 0})
            send_frame(sock, {"type": "result", "lease": 0, "payload": encode_obj("pwned")})
        except OSError:
            pass
        # The coordinator rejects the connection (hello is not a valid auth
        # proof) and the forged frame never reaches the dispatch path.
        sock.settimeout(5.0)
        assert _connection_terminated(sock)
        assert not future.done()
        assert coordinator.stats.settled == 0
        assert not coordinator._agents
    finally:
        sock.close()


def _connection_terminated(sock) -> bool:
    """True once the peer hangs up (EOF or reset, within the timeout)."""
    try:
        while True:
            if not sock.recv(4096):
                return True
    except socket.timeout:
        return False
    except OSError:
        return True


def test_handshake_digest_depends_on_secret_and_nonce():
    from repro.framework.remote import _hmac_digest

    assert _hmac_digest("s", "n") == _hmac_digest("s", "n")
    assert _hmac_digest("s", "n") != _hmac_digest("s2", "n")
    assert _hmac_digest("s", "n") != _hmac_digest("s", "n2")


# -- bind/advertise address resolution --------------------------------------


class _NoLaunchCoordinator(Coordinator):
    """A coordinator that never launches agent processes, so non-local host
    specs can drive address-resolution tests without touching ssh."""

    def _launch_agent_locked(self, host):
        pass


def test_all_local_fleet_binds_loopback():
    coord = _NoLaunchCoordinator(("localhost:2",)).start()
    try:
        assert coord.bind_host == "127.0.0.1"
        assert coord._listener.getsockname()[0] == "127.0.0.1"
        assert coord.advertise_host == "127.0.0.1"
    finally:
        coord.shutdown(wait=False)


def test_nonlocal_hostspec_binds_all_interfaces_and_advertises_hostname():
    # SSH-launched agents connect to advertise_host:port from another
    # machine; a loopback-bound listener would strand every one of them.
    coord = _NoLaunchCoordinator(("node1:8", "node2:8")).start()
    try:
        assert coord.bind_host == "0.0.0.0"
        assert coord._listener.getsockname()[0] == "0.0.0.0"
        assert coord.advertise_host == socket.gethostname()
        # The wildcard bind is reachable on loopback too (and on every
        # other interface of the machine, which is the point).
        probe = socket.create_connection(("127.0.0.1", coord.port), timeout=5.0)
        probe.close()
    finally:
        coord.shutdown(wait=False)


def test_explicit_bind_host_is_respected_and_advertised():
    coord = _NoLaunchCoordinator(("node1",), bind_host="0.0.0.0").start()
    try:
        assert coord._listener.getsockname()[0] == "0.0.0.0"
        assert coord.advertise_host == socket.gethostname()
    finally:
        coord.shutdown(wait=False)
    coord = _NoLaunchCoordinator((), bind_host="127.0.0.1", advertise_host="10.0.0.7").start()
    try:
        assert coord._listener.getsockname()[0] == "127.0.0.1"
        assert coord.advertise_host == "10.0.0.7"
    finally:
        coord.shutdown(wait=False)


# -- straggler-race capacity regression -------------------------------------


def test_straggler_loser_remains_dispatchable_after_race():
    """The losing agent of a straggler race must return to the idle pool:
    its dead lease may not linger in its lease_ids and block dispatch."""
    coord = Coordinator(
        (), heartbeat_interval_s=60.0, lease_timeout_s=60.0,
        straggler_after_s=0.1, poll_interval_s=0.02,
    ).start()
    first = FakeAgent(coord, agent_id="first/0", host="first")
    second = FakeAgent(coord, agent_id="second/0", host="second")
    try:
        future = coord.submit(_sample_fn, "cfg", 5)
        for agent in (first, second):
            agent.sock.setblocking(False)
        leases = {}
        deadline = time.monotonic() + 5.0
        while len(leases) < 2 and time.monotonic() < deadline:
            for name, agent in (("first", first), ("second", second)):
                if name in leases:
                    continue
                try:
                    frame = recv_frame(agent.sock)
                except (BlockingIOError, socket.timeout):
                    continue
                if frame is not None:
                    leases[name] = frame
            time.sleep(0.01)
        assert len(leases) == 2, "straggler duplicate was never dispatched"
        for agent in (first, second):
            agent.sock.setblocking(True)
        # `first` wins the race; `second` is the loser whose lease dies.
        first.send(
            {"type": "result", "lease": leases["first"]["lease"], "payload": encode_obj(10)}
        )
        assert future.result(timeout=5.0) == 10
        # Both agents must be idle again: two fresh tasks must fan out one
        # to each (the coordinator grants one lease per agent).
        f_a = coord.submit(_sample_fn, "cfg", 6)
        f_b = coord.submit(_sample_fn, "cfg", 7)
        next_first = first.recv()
        next_second = second.recv()  # hangs/times out if the loser leaks its lease
        assert {next_first["seed"], next_second["seed"]} == {6, 7}
        for agent, lease in ((first, next_first), (second, next_second)):
            agent.send(
                {"type": "result", "lease": lease["lease"],
                 "payload": encode_obj(lease["seed"] * 2)}
            )
        assert f_a.result(timeout=5.0) == 12
        assert f_b.result(timeout=5.0) == 14
    finally:
        first.close()
        second.close()
        coord.shutdown(wait=False, cancel_futures=True)


# -- repeated lease expiry charges the config -------------------------------


def test_repeated_lease_expiry_charges_config_not_host():
    """One expiry is ambiguous (wedged agent -> host charged); a second
    expiry of the same repetition means the config is slow: the rep fails
    with RepTimeoutError and the host accrues no further quarantine
    pressure."""
    coord = _NoLaunchCoordinator(
        ("node9",), heartbeat_interval_s=60.0, lease_timeout_s=0.3,
        poll_interval_s=0.02, reconnect_grace_s=0.05,
    ).start()
    silent_a = FakeAgent(coord, agent_id="node9/0", host="node9")
    try:
        future = coord.submit(_sample_fn, "cfg", 4)
        # First lease expires: host charged one failure, task re-queued.
        assert _wait(lambda: coord.host_report()["node9"]["failures"] == 1)
        silent_b = FakeAgent(coord, agent_id="node9/1", host="node9")
        try:
            # Second lease expires too: the configuration is charged.
            exc = future.exception(timeout=5.0)
            assert isinstance(exc, RepTimeoutError)
            assert "twice" in str(exc)
            # No second host failure for the repeat expiry.
            assert coord.host_report()["node9"]["failures"] == 1
            assert not coord.host_report()["node9"]["quarantined"]
        finally:
            silent_b.close()
    finally:
        silent_a.close()
        coord.shutdown(wait=False, cancel_futures=True)
