"""On-disk result cache: identity on hit, versioning, corruption fallback."""

import pickle

import pytest

from repro.framework.cache import CACHE_VERSION, ResultCache
from repro.framework.config import ExperimentConfig
from repro.framework.experiment import Experiment
from repro.framework.runner import derive_seed, run_repetitions
from repro.units import kib

CFG = ExperimentConfig(stack="quiche", file_size=kib(150), repetitions=1)


@pytest.fixture
def result():
    return Experiment(CFG, seed=derive_seed(CFG.seed, 0)).run()


def _entry_path(cache, config, seed):
    return cache._path(cache.entry_key(config, seed))


def test_hit_returns_identical_result(tmp_path, result):
    cache = ResultCache(tmp_path)
    assert cache.get(CFG, result.seed) is None  # cold
    cache.put(CFG, result.seed, result)
    loaded = cache.get(CFG, result.seed)
    assert loaded == result  # dataclass equality covers records, traces, stats
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.stores == 1


@pytest.mark.parametrize("field,value", [
    ("seed", 2),
    ("cca", "bbr"),
    ("gso_segments", 11),
    ("client_ack_threshold", 4),
    ("trace_cwnd", True),
    ("ecn", True),
])
def test_any_config_field_changes_the_key(tmp_path, field, value):
    import dataclasses

    base = ResultCache.entry_key(CFG, 7)
    changed = dataclasses.replace(CFG, **{field: value})
    assert ResultCache.entry_key(changed, 7) != base


def test_repetitions_normalized_out_of_key():
    # Growing a sweep from 5 to 20 reps must reuse the first 5 entries.
    short = ExperimentConfig(stack="quiche", repetitions=5)
    long = ExperimentConfig(stack="quiche", repetitions=20)
    assert ResultCache.entry_key(short, 7) == ResultCache.entry_key(long, 7)


def test_version_bump_invalidates(tmp_path, result):
    writer = ResultCache(tmp_path, version=CACHE_VERSION)
    writer.put(CFG, result.seed, result)
    reader = ResultCache(tmp_path, version=CACHE_VERSION + 1)
    assert reader.get(CFG, result.seed) is None
    assert reader.stats.evictions == 1
    # The stale file is gone, so even the old version now misses.
    assert not _entry_path(writer, CFG, result.seed).exists()


def test_corrupted_entry_falls_back(tmp_path, result):
    cache = ResultCache(tmp_path)
    path = cache.put(CFG, result.seed, result)
    path.write_bytes(b"not a pickle")
    assert cache.get(CFG, result.seed) is None
    assert cache.stats.evictions == 1
    assert not path.exists()


def test_eviction_quarantines_instead_of_deleting(tmp_path, result):
    import io

    stream = io.StringIO()
    cache = ResultCache(tmp_path, stream=stream)
    path = cache.put(CFG, result.seed, result)
    path.write_bytes(b"not a pickle")
    assert cache.get(CFG, result.seed) is None
    moved = tmp_path / "quarantine" / path.name
    assert moved.exists() and moved.read_bytes() == b"not a pickle"
    assert cache.stats.evictions == 1
    assert cache.stats.quarantined == 1
    assert cache.stats.as_dict()["quarantined"] == 1
    warning = stream.getvalue()
    assert "quarantined" in warning and path.name in warning


def test_invalidate_quarantines_on_demand(tmp_path, result):
    cache = ResultCache(tmp_path)
    path = cache.put(CFG, result.seed, result)
    cache.invalidate(CFG, result.seed, reason="failed validation")
    assert not path.exists()
    assert (tmp_path / "quarantine" / path.name).exists()
    assert cache.get(CFG, result.seed) is None  # miss -> recompute


def test_wrong_payload_type_rejected(tmp_path, result):
    cache = ResultCache(tmp_path)
    path = cache.put(CFG, result.seed, result)
    path.write_bytes(pickle.dumps((CACHE_VERSION, "not a result")))
    assert cache.get(CFG, result.seed) is None
    assert cache.stats.evictions == 1


def test_run_repetitions_served_from_cache(tmp_path):
    cfg = ExperimentConfig(stack="quiche", file_size=kib(150), repetitions=2)
    cache = ResultCache(tmp_path)
    cold = run_repetitions(cfg, workers=1, cache=cache)
    assert cache.stats.stores == 2 and cache.stats.hits == 0
    warm = run_repetitions(cfg, workers=1, cache=cache)
    assert cache.stats.hits == 2
    assert warm.results == cold.results
    assert warm.goodput == cold.goodput
    # A cache shared with an uncached run stays bit-identical.
    fresh = run_repetitions(cfg, workers=1, cache=None)
    assert [r.goodput_mbps for r in fresh.results] == [
        r.goodput_mbps for r in cold.results
    ]
