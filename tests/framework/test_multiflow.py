"""Competing-flow experiments over a shared bottleneck."""

import pytest

from repro.framework.multiflow import FlowSpec, MultiFlowExperiment
from repro.units import kib, mib, ms

SMALL = kib(400)


def run(flows, **kwargs):
    kwargs.setdefault("seed", 6)
    return MultiFlowExperiment(flows, **kwargs).run()


def test_requires_at_least_one_flow():
    with pytest.raises(ValueError):
        MultiFlowExperiment([])


def test_single_flow_behaves_like_single_experiment():
    result = run([FlowSpec(file_size=SMALL)])
    assert result.all_completed
    flow = result.flows[0]
    assert 1 < flow.goodput_mbps < 40
    assert len(flow.records) > SMALL // 1252


def test_two_identical_flows_share_fairly():
    result = run([FlowSpec(file_size=mib(2)), FlowSpec(file_size=mib(2))])
    assert result.all_completed
    assert result.fairness > 0.85
    assert result.aggregate_goodput_mbps < 42


def test_flows_are_isolated_in_capture_and_drops():
    result = run([FlowSpec(file_size=SMALL), FlowSpec(file_size=SMALL)])
    ports = {r.flow[1] for f in result.flows for r in f.records}
    assert len(ports) == 2
    for flow in result.flows:
        flow_ports = {r.flow[1] for r in flow.records}
        assert len(flow_ports) == 1
    assert sum(f.dropped for f in result.flows) == result.total_dropped


def test_staggered_start():
    result = run(
        [
            FlowSpec(file_size=SMALL),
            FlowSpec(file_size=SMALL, start_ns=ms(300)),
        ]
    )
    assert result.all_completed
    first = min(r.time_ns for r in result.flows[0].records)
    second = min(r.time_ns for r in result.flows[1].records)
    assert second >= first + ms(250)


def test_mixed_stack_contest_completes():
    result = run(
        [
            FlowSpec(stack="quiche", qdisc="fq", spurious_rollback=False, file_size=SMALL),
            FlowSpec(stack="picoquic", cca="bbr", file_size=SMALL),
            FlowSpec(stack="tcp", file_size=SMALL),
        ]
    )
    assert result.all_completed
    labels = [f.spec.label for f in result.flows]
    assert labels == ["quiche/cubic/fq", "picoquic/bbr", "tcp/cubic"]


def test_deterministic_for_seed():
    flows = [FlowSpec(file_size=SMALL), FlowSpec(stack="tcp", file_size=SMALL)]
    r1 = run(flows, seed=9)
    r2 = run(flows, seed=9)
    assert [f.goodput_mbps for f in r1.flows] == [f.goodput_mbps for f in r2.flows]
    assert r1.total_dropped == r2.total_dropped


def test_contention_reduces_per_flow_goodput():
    solo = run([FlowSpec(file_size=mib(2))])
    duo = run([FlowSpec(file_size=mib(2)), FlowSpec(file_size=mib(2))])
    assert duo.flows[0].goodput_mbps < solo.flows[0].goodput_mbps


def test_incomplete_flow_reports_delivered_goodput():
    # Regression: goodput used to be computed from spec.file_size even when
    # the flow never finished, so a stalled flow looked fast. Cut the run
    # short and check the number comes from bytes actually delivered.
    from repro.metrics.goodput import goodput_mbps
    from repro.units import seconds

    result = run([FlowSpec(file_size=mib(16))], max_sim_time_ns=seconds(1))
    flow = result.flows[0]
    assert not flow.completed
    assert 0 < flow.bytes_received < flow.spec.file_size
    assert flow.goodput_mbps == pytest.approx(
        goodput_mbps(flow.bytes_received, flow.duration_ns)
    )
    # The buggy full-file number would claim >100 Mbit/s through a 40 Mbit/s
    # bottleneck; the delivered-bytes number must respect the ceiling.
    assert flow.goodput_mbps < 45


def test_completed_flows_deliver_exactly_file_size():
    result = run([FlowSpec(file_size=SMALL), FlowSpec(stack="tcp", file_size=SMALL)])
    assert result.all_completed
    for flow in result.flows:
        assert flow.bytes_received == flow.spec.file_size


def test_forward_impairments_are_wired_and_attributed():
    # Regression: MultiFlowExperiment used to ignore NetworkConfig
    # impairments entirely, so impaired configs silently ran clean.
    from repro.framework.config import NetworkConfig
    from repro.net.impairments import iid_loss

    net = NetworkConfig(forward_impairments=(iid_loss(0.02),))
    result = run([FlowSpec(file_size=SMALL), FlowSpec(file_size=SMALL)], network=net)
    assert result.all_completed
    assert result.injected_drops > 0
    assert sum(f.injected_drops for f in result.flows) == result.injected_drops
    assert "fwd/0/loss" in result.impairment_stats


def test_reverse_impairments_drop_acks_per_flow():
    from repro.framework.config import NetworkConfig
    from repro.net.impairments import iid_loss

    net = NetworkConfig(reverse_impairments=(iid_loss(0.05),))
    result = run([FlowSpec(file_size=SMALL), FlowSpec(file_size=SMALL)], network=net)
    assert result.all_completed
    assert result.ack_drops > 0
    assert sum(f.ack_drops for f in result.flows) == result.ack_drops
    assert "rev/0/loss" in result.impairment_stats


def test_unrouted_is_reported_and_zero():
    result = run([FlowSpec(file_size=SMALL)])
    assert result.unrouted == 0
    result.validate()  # conservation gate passes on a clean run


def test_validate_rejects_tampered_accounting():
    from repro.errors import ValidationError

    result = run([FlowSpec(file_size=SMALL)])
    result.flows[0].dropped += 1  # break per-flow vs. bottleneck attribution
    with pytest.raises(ValidationError):
        result.validate()


def test_fingerprint_deterministic_and_capture_independent():
    flows = [FlowSpec(file_size=SMALL), FlowSpec(stack="tcp", file_size=SMALL)]
    r1 = run(flows, seed=11)
    r2 = run(flows, seed=11)
    r3 = run(flows, seed=11, capture_records=False)
    assert r1.fingerprint() == r2.fingerprint()
    # Capture is an observability toggle, not a result.
    assert r1.fingerprint() == r3.fingerprint()
    assert all(not f.records for f in r3.flows)
    assert r3.flows[0].wire_packets == len(r1.flows[0].records)
    assert run(flows, seed=12).fingerprint() != r1.fingerprint()


def test_staggered_arrival_timing_in_result():
    late = ms(500)
    result = run([FlowSpec(file_size=SMALL), FlowSpec(file_size=SMALL, start_ns=late)])
    assert result.all_completed
    assert result.flows[1].start_ns == late
    # The late flow's transfer happens entirely after its arrival.
    second_first_frame = min(r.time_ns for r in result.flows[1].records)
    assert second_first_frame >= late


def test_extra_rtt_slows_a_flow_down():
    from repro.units import ms as _ms

    base = run([FlowSpec(file_size=mib(1))])
    slowed = run([FlowSpec(file_size=mib(1), extra_rtt_ns=_ms(80))])
    assert base.all_completed and slowed.all_completed
    assert slowed.flows[0].duration_ns > base.flows[0].duration_ns
    assert slowed.fingerprint() != base.fingerprint()


def test_port_budget_is_guarded():
    from repro.framework.multiflow import MAX_FLOWS

    with pytest.raises(ValueError):
        MultiFlowExperiment([FlowSpec()] * (MAX_FLOWS + 1))
