"""Competing-flow experiments over a shared bottleneck."""

import pytest

from repro.framework.multiflow import FlowSpec, MultiFlowExperiment
from repro.units import kib, mib, ms

SMALL = kib(400)


def run(flows, **kwargs):
    kwargs.setdefault("seed", 6)
    return MultiFlowExperiment(flows, **kwargs).run()


def test_requires_at_least_one_flow():
    with pytest.raises(ValueError):
        MultiFlowExperiment([])


def test_single_flow_behaves_like_single_experiment():
    result = run([FlowSpec(file_size=SMALL)])
    assert result.all_completed
    flow = result.flows[0]
    assert 1 < flow.goodput_mbps < 40
    assert len(flow.records) > SMALL // 1252


def test_two_identical_flows_share_fairly():
    result = run([FlowSpec(file_size=mib(2)), FlowSpec(file_size=mib(2))])
    assert result.all_completed
    assert result.fairness > 0.85
    assert result.aggregate_goodput_mbps < 42


def test_flows_are_isolated_in_capture_and_drops():
    result = run([FlowSpec(file_size=SMALL), FlowSpec(file_size=SMALL)])
    ports = {r.flow[1] for f in result.flows for r in f.records}
    assert len(ports) == 2
    for flow in result.flows:
        flow_ports = {r.flow[1] for r in flow.records}
        assert len(flow_ports) == 1
    assert sum(f.dropped for f in result.flows) == result.total_dropped


def test_staggered_start():
    result = run(
        [
            FlowSpec(file_size=SMALL),
            FlowSpec(file_size=SMALL, start_ns=ms(300)),
        ]
    )
    assert result.all_completed
    first = min(r.time_ns for r in result.flows[0].records)
    second = min(r.time_ns for r in result.flows[1].records)
    assert second >= first + ms(250)


def test_mixed_stack_contest_completes():
    result = run(
        [
            FlowSpec(stack="quiche", qdisc="fq", spurious_rollback=False, file_size=SMALL),
            FlowSpec(stack="picoquic", cca="bbr", file_size=SMALL),
            FlowSpec(stack="tcp", file_size=SMALL),
        ]
    )
    assert result.all_completed
    labels = [f.spec.label for f in result.flows]
    assert labels == ["quiche/cubic/fq", "picoquic/bbr", "tcp/cubic"]


def test_deterministic_for_seed():
    flows = [FlowSpec(file_size=SMALL), FlowSpec(stack="tcp", file_size=SMALL)]
    r1 = run(flows, seed=9)
    r2 = run(flows, seed=9)
    assert [f.goodput_mbps for f in r1.flows] == [f.goodput_mbps for f in r2.flows]
    assert r1.total_dropped == r2.total_dropped


def test_contention_reduces_per_flow_goodput():
    solo = run([FlowSpec(file_size=mib(2))])
    duo = run([FlowSpec(file_size=mib(2)), FlowSpec(file_size=mib(2))])
    assert duo.flows[0].goodput_mbps < solo.flows[0].goodput_mbps
