"""Execution backends: selection, start methods, and result invisibility.

The executor layer must be *invisible* in every observable output: the same
grid run under inprocess, pool, spawn, and forkserver backends produces
bit-identical fingerprints, because backends only decide *where* a repetition
runs, never *what* it computes (seeds, validation, and aggregation are all
backend-independent).
"""

import pytest

from repro.errors import ConfigError
from repro.framework.config import ExperimentConfig
from repro.framework.executors import (
    BACKENDS,
    DistributedExecutor,
    Executor,
    ForkServerExecutor,
    InProcessExecutor,
    PoolExecutor,
    SpawnExecutor,
    make_executor,
)
from repro.framework.sweep import SweepRunner
from repro.units import kib


def _start_method(pool) -> str:
    method = pool._mp_context.get_start_method()
    pool.shutdown(wait=False)
    return method


class TestMakeExecutor:
    def test_default_is_pool(self):
        assert isinstance(make_executor(None), PoolExecutor)

    def test_every_advertised_backend_resolves(self):
        assert BACKENDS == ("inprocess", "pool", "spawn", "forkserver", "distributed")
        for backend in BACKENDS:
            executor = make_executor(backend)
            assert isinstance(executor, Executor)
            assert executor.name == backend

    def test_executor_instance_passes_through(self):
        executor = InProcessExecutor()
        assert make_executor(executor) is executor

    def test_unknown_backend_is_a_config_error(self):
        with pytest.raises(ConfigError, match="unknown backend"):
            make_executor("threads")

    def test_only_inprocess_is_serial(self):
        assert InProcessExecutor().serial
        assert not PoolExecutor().serial
        assert not SpawnExecutor().serial
        assert not ForkServerExecutor().serial
        assert not DistributedExecutor().serial
        with pytest.raises(RuntimeError):
            InProcessExecutor().make_pool(2)

    def test_only_distributed_is_distributed(self):
        # The flag keeps the Supervisor from collapsing remote campaigns to
        # the local serial path when workers or tasks drop to one.
        assert DistributedExecutor().distributed
        for local in (InProcessExecutor, PoolExecutor, SpawnExecutor, ForkServerExecutor):
            assert not local().distributed

    def test_distributed_host_specs(self):
        executor = DistributedExecutor(hosts="localhost:2,node1")
        assert [(h.host, h.slots) for h in executor.hosts] == [("localhost", 2), ("node1", 1)]
        with pytest.raises(ConfigError, match="at least one host"):
            DistributedExecutor(hosts=())

    def test_observe_policy_floors_lease_timeout_above_rep_timeout(self):
        # The lease deadline must strictly outlive the Supervisor's per-rep
        # watchdog, so a slow repetition is charged to the config (retryable
        # RepTimeoutError) and never to the host.
        class Policy:
            timeout_s = 400.0

        executor = DistributedExecutor()
        executor.observe_policy(Policy())
        assert executor.coordinator_kwargs["lease_timeout_s"] == pytest.approx(500.0)
        # An explicitly larger lease timeout is left alone...
        executor = DistributedExecutor(lease_timeout_s=1000.0)
        executor.observe_policy(Policy())
        assert executor.coordinator_kwargs["lease_timeout_s"] == 1000.0
        # ...a smaller one is raised to the floor.
        executor = DistributedExecutor(lease_timeout_s=30.0)
        executor.observe_policy(Policy())
        assert executor.coordinator_kwargs["lease_timeout_s"] == pytest.approx(500.0)
        # Local backends accept the announcement and ignore it.
        PoolExecutor().observe_policy(Policy())


class TestStartMethods:
    def test_spawn_pool_uses_spawn(self):
        assert _start_method(SpawnExecutor().make_pool(1)) == "spawn"

    def test_forkserver_pool_uses_forkserver(self):
        assert _start_method(ForkServerExecutor().make_pool(1)) == "forkserver"

    def test_forkserver_tolerates_running_server(self):
        # The preload list can only be set before the singleton server starts;
        # constructing a second executor afterwards must not raise.
        first = ForkServerExecutor()
        first.make_pool(1).shutdown(wait=True)
        assert _start_method(ForkServerExecutor().make_pool(1)) == "forkserver"


GRID = {
    "quiche": ExperimentConfig(stack="quiche", file_size=kib(96), repetitions=2),
    "tcp": ExperimentConfig(stack="tcp", file_size=kib(96), repetitions=2),
}


def _fingerprints(summaries):
    return {
        name: [r.fingerprint() for r in summary.results]
        for name, summary in summaries.items()
    }


@pytest.mark.parametrize("backend", BACKENDS)
def test_every_backend_reproduces_the_serial_fingerprints(backend):
    baseline = SweepRunner(workers=1, backend="inprocess").run(GRID)
    swept = SweepRunner(workers=2, backend=backend).run(GRID)
    assert _fingerprints(swept) == _fingerprints(baseline)
    assert all(not s.failures for s in swept.values())


def test_backend_does_not_change_cache_keys():
    # The executor must be invisible to config identity: cache keys and
    # journal grid keys hash the config alone, never the backend.
    config = GRID["quiche"]
    key = config.cache_key()
    for backend in BACKENDS:
        SweepRunner(workers=1, backend=backend)  # construction has no side effect
        assert config.cache_key() == key
