"""SweepRunner: grid fan-out, serial/parallel determinism, progress lines."""

import io

from repro.framework.cache import ResultCache
from repro.framework.config import ExperimentConfig
from repro.framework.sweep import SweepRunner, resolve_workers, run_sweep
from repro.units import kib

GRID = {
    "quiche": ExperimentConfig(stack="quiche", file_size=kib(150), repetitions=2),
    "tcp": ExperimentConfig(stack="tcp", file_size=kib(150), repetitions=2),
}


def _fingerprint(summaries):
    return {
        name: [
            (r.seed, r.goodput_mbps, r.dropped, tuple(r.server_records))
            for r in summary.results
        ]
        for name, summary in summaries.items()
    }


def test_parallel_matches_serial_over_grid():
    serial = SweepRunner(workers=1).run(GRID)
    parallel = SweepRunner(workers=3).run(GRID)
    assert _fingerprint(parallel) == _fingerprint(serial)
    assert list(parallel) == list(GRID)  # summaries keep grid order


def test_cached_matches_uncached(tmp_path):
    cache = ResultCache(tmp_path)
    cold = SweepRunner(workers=2, cache=cache).run(GRID)
    assert cache.stats.stores == 4
    warm = SweepRunner(workers=2, cache=cache).run(GRID)
    assert cache.stats.hits == 4
    assert _fingerprint(warm) == _fingerprint(cold)


def test_progress_lines(tmp_path):
    cache = ResultCache(tmp_path)
    stream = io.StringIO()
    run_sweep(GRID, workers=1, cache=cache, stream=stream)
    lines = stream.getvalue().splitlines()
    assert len(lines) == 4  # one per (config, rep)
    assert all(line.startswith("[sweep] ") for line in lines)
    assert any("quiche rep 1/2" in line for line in lines)
    assert any("events" in line and "wall" in line for line in lines)
    assert "[cached]" not in stream.getvalue()

    warm = io.StringIO()
    run_sweep(GRID, workers=1, cache=cache, stream=warm)
    assert sum(1 for line in warm.getvalue().splitlines() if "[cached]" in line) == 4


def test_resolve_workers():
    assert resolve_workers(None) >= 1
    assert resolve_workers(0) == 1
    assert resolve_workers(-3) == 1
    assert resolve_workers(4) == 4


def test_rep_results_slot_into_rep_order():
    cfg = ExperimentConfig(stack="quiche", file_size=kib(150), repetitions=3)
    summary = run_sweep({"x": cfg}, workers=3)["x"]
    from repro.framework.runner import derive_seed

    assert [r.seed for r in summary.results] == [
        derive_seed(cfg.seed, rep) for rep in range(3)
    ]
