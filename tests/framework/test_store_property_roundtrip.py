"""Randomized round-trip properties for store serialization.

In the style of ``tests/quic/test_property_roundtrip.py``: corpora come from
a seeded ``random.Random`` so failures reproduce exactly. The store's
serialization seam is the canonical repetition payload
(:func:`repro.framework.artifacts.rep_to_dict` output) plus
:class:`~repro.framework.supervision.RepFailure`; every generated value must
survive write → read → export-to-JSON unchanged, the derived scalar columns
must stay consistent with the payload they were derived from, and the
content fingerprint must be a pure function of content (insertion order,
re-ingestion, and process restarts are invisible).
"""

import dataclasses
import json
import random

import pytest

from repro.framework.config import ExperimentConfig, NetworkConfig
from repro.framework.store import ResultStore, per_rep_key
from repro.framework.supervision import RepFailure
from repro.net.impairments import iid_loss, reordering

RNG_SEED = 20250807

STACKS = ("quiche", "picoquic", "ngtcp2", "tcp")
CCAS = ("cubic", "newreno", "bbr", "bbr2")
QDISCS = ("none", "fq", "etf", "etf-offload")
GSO = ("off", "on", "paced")


def _random_config(rng) -> ExperimentConfig:
    impairments = rng.choice(
        ((), (iid_loss(round(rng.uniform(0.001, 0.1), 4)),), (reordering(rate=0.01),))
    )
    return ExperimentConfig(
        stack=rng.choice(STACKS),
        cca=rng.choice(CCAS),
        qdisc=rng.choice(QDISCS),
        gso=rng.choice(GSO),
        file_size=rng.randrange(1, 1 << 24),
        repetitions=rng.randrange(1, 6),
        seed=rng.randrange(1, 1 << 48),
        network=NetworkConfig(forward_impairments=impairments),
    )


def _config_dict(config) -> dict:
    return json.loads(json.dumps(dataclasses.asdict(config)))


def _random_histogram(rng) -> dict:
    lengths = rng.sample(range(1, 40), rng.randrange(1, 8))
    return {str(length): rng.randrange(1, 500) for length in sorted(lengths)}


def _random_experiment_payload(rng, config, seed: int) -> dict:
    packets = rng.randrange(2, 5000)
    gap_count = packets - 1
    b2b_count = rng.randrange(0, gap_count + 1)
    trains = _random_histogram(rng)
    total = sum(trains.values())
    leq5 = sum(v for k, v in trains.items() if int(k) <= 5)
    return {
        "config": _config_dict(config),
        "seed": seed,
        "fingerprint": "%064x" % rng.getrandbits(256),
        "completed": rng.random() < 0.9,
        "duration_ns": rng.randrange(1, 1 << 40),
        "goodput_mbps": rng.uniform(0.01, 9500.0),
        "dropped": rng.randrange(0, 100),
        "injected_drops": rng.randrange(0, 50),
        "impairment_stats": {"injected": rng.randrange(0, 50)},
        "packets_on_wire": packets,
        "qdisc_stats": {"enqueued": rng.randrange(0, 10_000)},
        "server_stats": {"received": packets},
        "metrics": {
            "back_to_back_share": b2b_count / gap_count if gap_count else 0.0,
            "trains_leq5_share": leq5 / total,
            "packets_by_train_length": trains,
        },
    }


def _random_distribution(rng) -> dict:
    return {
        "mean": rng.uniform(0, 100),
        "p50": rng.uniform(0, 100),
        "p90": rng.uniform(0, 100),
        "p99": rng.uniform(0, 100),
    }


def _random_population_payload(rng, config, seed: int) -> dict:
    flows = rng.randrange(1, 400)
    return {
        "config": _config_dict(config),
        "seed": seed,
        "fingerprint": "%064x" % rng.getrandbits(256),
        "completed": rng.random() < 0.9,
        "flows": flows,
        "completed_flows": rng.randrange(0, flows + 1),
        "duration_ns": rng.randrange(1, 1 << 40),
        "aggregate_goodput_mbps": rng.uniform(0.01, 9500.0),
        "dropped": rng.randrange(0, 5000),
        "injected_drops": rng.randrange(0, 500),
        "ack_drops": rng.randrange(0, 500),
        "unrouted": 0,
        "fairness": rng.random(),
        "metrics": {
            "goodput_mbps": _random_distribution(rng),
            "fct_ms": _random_distribution(rng),
            "loss": _random_distribution(rng),
        },
        "per_profile": {
            "quiche/cubic": {"flows": flows, "goodput_mbps_mean": rng.uniform(0, 10)}
        },
        "ratio_matrix": [[rng.random() for _ in range(2)] for _ in range(2)],
        "beats": [["quiche/cubic", "tcp/cubic"]] if rng.random() < 0.5 else [],
        "transitivity_violations": [],
    }


def _random_failure(rng, name: str, seed: int) -> RepFailure:
    messages = ("exit code 23", "deadline exceeded", "péché véniel\nline two", "")
    return RepFailure(
        name=name,
        label=name,
        rep=rng.randrange(0, 6),
        seed=seed,
        error_type=rng.choice(("WorkerCrashError", "RepTimeoutError", "ValidationError")),
        message=rng.choice(messages),
        traceback="Traceback (most recent call last):\n  ..." * rng.randrange(0, 3),
        attempts=rng.randrange(1, 5),
        wall_time_s=rng.uniform(0, 600),
        quarantined=rng.random() < 0.3,
    )


def _corpus(seed_offset: int, groups: int = 12):
    """[(name, [payload...])]: unique (config, seed) keys by construction."""
    rng = random.Random(RNG_SEED + seed_offset)
    corpus = []
    for index in range(groups):
        config = _random_config(rng)
        generator = (
            _random_population_payload if index % 3 == 2 else _random_experiment_payload
        )
        seeds = rng.sample(range(1, 1 << 32), rng.randrange(1, 4))
        payloads = [generator(rng, config, seed) for seed in seeds]
        corpus.append((f"grp-{index}", config, payloads))
    return corpus


def _ingest(store, corpus):
    for name, config, payloads in corpus:
        for rep, payload in enumerate(payloads):
            store._ingest_payload(name=name, label=config.label, rep=rep, payload=payload)


class TestPayloadRoundTrip:
    def test_write_read_is_the_identity(self, tmp_path):
        corpus = _corpus(0)
        with ResultStore(tmp_path / "s.sqlite") as store:
            _ingest(store, corpus)
            for name, _, payloads in corpus:
                assert store.payloads(name) == payloads

    def test_export_to_json_file_round_trips(self, tmp_path):
        corpus = _corpus(1, groups=6)
        with ResultStore(tmp_path / "s.sqlite") as store:
            _ingest(store, corpus)
            for name, _, payloads in corpus:
                path = store.export_summary_json(name, tmp_path / f"{name}.json")
                data = json.loads(path.read_text())
                assert data["repetitions"] == payloads
                goodputs = [
                    p.get("aggregate_goodput_mbps", p.get("goodput_mbps"))
                    for p in payloads
                ]
                assert data["goodput_mbps"]["mean"] == pytest.approx(
                    sum(goodputs) / len(goodputs)
                )

    def test_scalar_columns_stay_consistent_with_the_payload(self, tmp_path):
        corpus = _corpus(2)
        with ResultStore(tmp_path / "s.sqlite") as store:
            _ingest(store, corpus)
            for name, config, payloads in corpus:
                rows = store.query(name=name)
                assert len(rows) == len(payloads)
                for row, payload in zip(rows, payloads):
                    assert row["seed"] == payload["seed"]
                    assert row["fingerprint"] == payload["fingerprint"]
                    assert row["completed"] == int(payload["completed"])
                    if "aggregate_goodput_mbps" in payload:
                        assert row["kind"] == "population"
                        assert row["goodput_mbps"] == payload["aggregate_goodput_mbps"]
                        assert row["flows"] == payload["flows"]
                        assert row["b2b_share"] is None
                    else:
                        assert row["kind"] == "experiment"
                        assert row["goodput_mbps"] == payload["goodput_mbps"]
                        metrics = payload["metrics"]
                        assert row["b2b_share"] == metrics["back_to_back_share"]
                        assert row["trains_leq5_share"] == metrics["trains_leq5_share"]
                        assert row["stack"] == config.stack

    def test_b2b_count_recovery_is_exact(self, tmp_path):
        # The share is stored as a float but derived from integer counts;
        # round(share * gap_count) must recover the generator's exact count.
        rng = random.Random(RNG_SEED + 100)
        with ResultStore(tmp_path / "s.sqlite") as store:
            config = _random_config(rng)
            for rep, seed in enumerate(rng.sample(range(1, 1 << 31), 200)):
                payload = _random_experiment_payload(rng, config, seed)
                store._ingest_payload(name="x", label="x", rep=rep, payload=payload)
                share = payload["metrics"]["back_to_back_share"]
                gaps = payload["packets_on_wire"] - 1
                row = store._conn.execute(
                    "SELECT gap_count, b2b_count FROM reps WHERE seed = ?", (seed,)
                ).fetchone()
                assert row["gap_count"] == gaps
                assert row["b2b_count"] == round(share * gaps)


class TestFailureRoundTrip:
    def test_failures_survive_write_read(self, tmp_path):
        rng = random.Random(RNG_SEED + 200)
        with ResultStore(tmp_path / "s.sqlite") as store:
            expected = []
            for index in range(40):
                config = _random_config(rng)
                failure = _random_failure(rng, f"f-{index}", rng.randrange(1, 1 << 32))
                store.record_failure(failure, config)
                expected.append(failure)
            expected.sort(key=lambda f: (f.name, f.rep, f.seed))
            assert store.failures() == expected

    def test_failure_export_round_trips_as_dict(self, tmp_path):
        rng = random.Random(RNG_SEED + 201)
        with ResultStore(tmp_path / "s.sqlite") as store:
            config = _random_config(rng)
            payload = _random_experiment_payload(rng, config, config.seed)
            store._ingest_payload(name="n", label=config.label, rep=0, payload=payload)
            failure = _random_failure(rng, "n", config.seed + 1)
            store.record_failure(failure, config)
            exported = store.export_summary_dict("n")
            assert exported["failures"] == [failure.as_dict()]
            assert RepFailure.from_dict(exported["failures"][0]) == failure


class TestContentIdentity:
    def test_fingerprint_ignores_insertion_order(self, tmp_path):
        corpus = _corpus(3)
        ordered = ResultStore(tmp_path / "a.sqlite")
        _ingest(ordered, corpus)
        shuffled = ResultStore(tmp_path / "b.sqlite")
        flat = [
            (name, config, rep, payload)
            for name, config, payloads in corpus
            for rep, payload in enumerate(payloads)
        ]
        random.Random(RNG_SEED + 300).shuffle(flat)
        for name, config, rep, payload in flat:
            shuffled._ingest_payload(
                name=name, label=config.label, rep=rep, payload=payload
            )
        assert shuffled.content_fingerprint() == ordered.content_fingerprint()
        assert shuffled.rep_count() == ordered.rep_count()

    def test_fingerprint_stable_under_re_ingestion(self, tmp_path):
        corpus = _corpus(4, groups=6)
        with ResultStore(tmp_path / "s.sqlite") as store:
            _ingest(store, corpus)
            digest = store.content_fingerprint()
            count = store.rep_count()
            _ingest(store, corpus)  # a resumed campaign replaying its journal
            assert store.content_fingerprint() == digest
            assert store.rep_count() == count

    def test_fingerprint_survives_reopen(self, tmp_path):
        corpus = _corpus(5, groups=4)
        path = tmp_path / "s.sqlite"
        with ResultStore(path) as store:
            _ingest(store, corpus)
            digest = store.content_fingerprint()
        with ResultStore(path) as store:
            assert store.content_fingerprint() == digest

    def test_per_rep_key_matches_payload_derived_key(self):
        rng = random.Random(RNG_SEED + 400)
        for _ in range(50):
            config = _random_config(rng)
            payload_key = per_rep_key(config)
            from repro.framework.store import per_rep_key_from_dict

            assert per_rep_key_from_dict(_config_dict(config)) == payload_key
