"""Sweep journal: atomic manifest, tolerant loading, grid keying."""

import json

from repro.framework.config import ExperimentConfig
from repro.framework.journal import JOURNAL_VERSION, SweepJournal, grid_key
from repro.framework.supervision import RepFailure
from repro.units import kib

GRID = {
    "a": ExperimentConfig(stack="quiche", file_size=kib(150), repetitions=2),
    "b": ExperimentConfig(stack="tcp", file_size=kib(150), repetitions=2),
}


def _failure(name="a", rep=1):
    return RepFailure(
        name=name, label=name, rep=rep, seed=99, error_type="WorkerCrashError",
        message="pool died", traceback="tb", attempts=3, wall_time_s=2.5,
    )


def test_grid_key_sees_names_configs_and_repetitions():
    base = grid_key(GRID)
    renamed = {"a2": GRID["a"], "b": GRID["b"]}
    assert grid_key(renamed) != base
    import dataclasses

    grown = dict(GRID, a=dataclasses.replace(GRID["a"], repetitions=5))
    assert grid_key(grown) != base
    assert grid_key(dict(reversed(list(GRID.items())))) == base  # order-free


def test_round_trip_success_and_failure(tmp_path):
    journal = SweepJournal.for_grid(tmp_path, GRID)
    journal.record_success("a", 0, 1234, "fp-a0")
    journal.record_failure(_failure())

    reloaded = SweepJournal.for_grid(tmp_path, GRID)
    assert len(reloaded) == 2
    assert reloaded.resumed_entries == 2
    ok = reloaded.get("a", 0)
    assert ok.status == "ok" and ok.fingerprint == "fp-a0" and ok.seed == 1234
    failed = reloaded.get("a", 1)
    assert failed.status == "failed"
    assert failed.failure == _failure()


def test_journal_is_a_single_parseable_snapshot(tmp_path):
    journal = SweepJournal.for_grid(tmp_path, GRID)
    journal.record_success("a", 0, 1, "fp")
    journal.record_success("b", 1, 2, "fp2")
    lines = journal.path.read_text().splitlines()
    header = json.loads(lines[0])
    assert header == {"journal": JOURNAL_VERSION, "grid_key": grid_key(GRID)}
    assert all(json.loads(line) for line in lines[1:])
    assert len(lines) == 3


def test_torn_line_is_skipped(tmp_path):
    journal = SweepJournal.for_grid(tmp_path, GRID)
    journal.record_success("a", 0, 1, "fp")
    journal.record_success("a", 1, 2, "fp2")
    text = journal.path.read_text().splitlines()
    journal.path.write_text("\n".join(text[:-1]) + "\n" + text[-1][: len(text[-1]) // 2])
    reloaded = SweepJournal.for_grid(tmp_path, GRID)
    assert reloaded.get("a", 0) is not None
    assert reloaded.get("a", 1) is None  # torn entry simply re-runs


def test_torn_line_warns_instead_of_aborting_resume(tmp_path, capsys):
    """A crash mid-append leaves a truncated final line; resume must skip it
    with a warning naming the journal, not abort the campaign."""
    journal = SweepJournal.for_grid(tmp_path, GRID)
    journal.record_success("a", 0, 1, "fp")
    journal.record_success("a", 1, 2, "fp2")
    raw = journal.path.read_bytes()
    journal.path.write_bytes(raw[:-7])  # byte-level tear, mid-JSON

    import io

    stream = io.StringIO()
    reloaded = SweepJournal.for_grid(tmp_path, GRID, stream=stream)
    assert reloaded.skipped_lines == 1
    assert reloaded.get("a", 0) is not None  # intact entries survive
    warning = stream.getvalue()
    assert "skipped 1 torn/undecodable line" in warning
    assert str(reloaded.path) in warning

    # Without an explicit stream the warning lands on stderr.
    SweepJournal.for_grid(tmp_path, GRID)
    assert "torn/undecodable" in capsys.readouterr().err


def test_mismatched_grid_starts_fresh(tmp_path):
    journal = SweepJournal.for_grid(tmp_path, GRID)
    journal.record_success("a", 0, 1, "fp")
    # Same path, different claimed grid key: entries must not be misapplied.
    imposter = SweepJournal(journal.path, "different-key")
    imposter._load()
    assert len(imposter) == 0


def test_fresh_discards_previous_run(tmp_path):
    journal = SweepJournal.for_grid(tmp_path, GRID)
    journal.record_failure(_failure())
    fresh = SweepJournal.for_grid(tmp_path, GRID, fresh=True)
    assert len(fresh) == 0
    assert not fresh.path.exists()


def test_rerecord_identical_success_is_a_noop(tmp_path):
    journal = SweepJournal.for_grid(tmp_path, GRID)
    journal.record_success("a", 0, 1, "fp")
    mtime = journal.path.stat().st_mtime_ns
    journal.record_success("a", 0, 1, "fp")
    assert journal.path.stat().st_mtime_ns == mtime  # no rewrite churn


def test_failure_then_success_overwrites(tmp_path):
    journal = SweepJournal.for_grid(tmp_path, GRID)
    journal.record_failure(_failure(rep=0))
    journal.record_success("a", 0, 99, "fp-after-retry")
    assert journal.get("a", 0).status == "ok"
    reloaded = SweepJournal.for_grid(tmp_path, GRID)
    assert reloaded.get("a", 0).status == "ok"
