"""End-to-end experiments at small scale (integration of everything)."""

import pytest

from repro.framework.config import ExperimentConfig
from repro.framework.experiment import Experiment, run_experiment
from repro.framework.runner import run_repetitions
from repro.units import kib, mbit, ms

SMALL = kib(300)


def run(stack="quiche", **kwargs):
    kwargs.setdefault("file_size", SMALL)
    kwargs.setdefault("repetitions", 1)
    return Experiment(ExperimentConfig(stack=stack, **kwargs), seed=11).run()


class TestQuicExperiment:
    def test_completes_and_reports(self):
        r = run("quiche")
        assert r.completed
        assert r.goodput_mbps > 1
        assert r.packets_on_wire > SMALL // 1252
        assert r.duration_ns > ms(40)  # at least one RTT

    def test_goodput_bounded_by_bottleneck(self):
        r = run("quiche")
        assert r.goodput_mbps < 40.0

    def test_deterministic_for_seed(self):
        cfg = ExperimentConfig(stack="picoquic", file_size=SMALL, repetitions=1)
        r1 = Experiment(cfg, seed=5).run()
        r2 = Experiment(cfg, seed=5).run()
        assert r1.goodput_mbps == r2.goodput_mbps
        assert r1.dropped == r2.dropped
        assert [rec.time_ns for rec in r1.server_records] == [
            rec.time_ns for rec in r2.server_records
        ]

    def test_seeds_differ(self):
        cfg = ExperimentConfig(stack="quiche", file_size=SMALL, repetitions=1)
        r1 = Experiment(cfg, seed=5).run()
        r2 = Experiment(cfg, seed=6).run()
        assert [rec.time_ns for rec in r1.server_records] != [
            rec.time_ns for rec in r2.server_records
        ]

    def test_expected_send_log_populated_for_quiche(self):
        r = run("quiche")
        assert len(r.expected_send_log) > 10

    def test_cwnd_trace_when_requested(self):
        r = run("quiche", trace_cwnd=True)
        assert len(r.cwnd_trace) > 2

    def test_gso_produces_buffers(self):
        r = run("quiche", qdisc="fq", gso="on", spurious_rollback=False)
        assert r.completed
        assert r.server_stats["gso_buffers"] > 0

    def test_etf_qdisc_with_headroom_completes(self):
        r = run("quiche", qdisc="etf", spurious_rollback=False)
        assert r.completed
        assert r.qdisc_stats["dropped_late"] == 0


class TestOtherStacks:
    @pytest.mark.parametrize("stack", ["picoquic", "ngtcp2", "tcp"])
    def test_all_stacks_complete(self, stack):
        r = run(stack)
        assert r.completed

    @pytest.mark.parametrize("cca", ["cubic", "newreno", "bbr"])
    def test_all_ccas_complete(self, cca):
        r = run("picoquic", cca=cca)
        assert r.completed


class TestRunner:
    def test_aggregates_repetitions(self):
        cfg = ExperimentConfig(stack="quiche", file_size=kib(200), repetitions=3)
        summary = run_repetitions(cfg)
        assert summary.all_completed
        assert summary.goodput.n == 3
        assert summary.dropped.n == 3
        assert len(summary.pooled_records) == 3
        assert "quiche" in summary.describe()

    def test_repetition_seeds_vary(self):
        cfg = ExperimentConfig(stack="quiche", file_size=kib(200), repetitions=2)
        summary = run_repetitions(cfg)
        seeds = [r.seed for r in summary.results]
        assert len(set(seeds)) == 2


def test_run_experiment_convenience():
    r = run_experiment(ExperimentConfig(stack="tcp", file_size=kib(100), repetitions=1))
    assert r.completed
