"""Chaos acceptance: a sweep survives injected crashes, hangs, and a
mid-run kill, and the surviving/resumed repetitions are bit-identical
(``fingerprint()``) to an uninterrupted serial run.

The chaotic worker functions wrap the real ``_run_one`` and consult marker
files under ``$REPRO_CHAOS_DIR`` (inherited by pool workers), so each fault
fires exactly once and the retry — which reuses the repetition's derived
seed — must reproduce the clean result bit for bit.
"""

import os
import time
from pathlib import Path

import pytest

from repro.framework.cache import ResultCache
from repro.framework.config import ExperimentConfig, NetworkConfig
from repro.framework.runner import _run_one
from repro.framework.store import ResultStore
from repro.framework.supervision import SupervisionPolicy
from repro.framework.sweep import SweepRunner
from repro.net.impairments import iid_loss
from repro.units import kib

FAST = SupervisionPolicy(timeout_s=20.0, retries=2, backoff_base_s=0.0, poll_interval_s=0.02)


def _grid():
    # Small but impaired, per the chaos-smoke brief: loss on one config.
    return {
        "clean": ExperimentConfig(stack="quiche", file_size=kib(150), repetitions=2),
        "lossy": ExperimentConfig(
            stack="quiche",
            file_size=kib(150),
            repetitions=2,
            network=NetworkConfig(forward_impairments=(iid_loss(0.02),)),
        ),
    }


def _fingerprints(summaries):
    return {
        name: [r.fingerprint() for r in summary.results]
        for name, summary in summaries.items()
    }


def _chaos_marker(tag: str) -> Path:
    return Path(os.environ["REPRO_CHAOS_DIR"]) / tag


def crash_once_run_one(config, seed):
    """First execution of the 'lossy' config's rep 0 kills its worker."""
    marker = _chaos_marker(f"crashed-{seed}")
    if config.network.forward_impairments and not marker.exists():
        marker.touch()
        os._exit(23)
    return _run_one(config, seed)


def hang_once_run_one(config, seed):
    """First execution of the 'lossy' config's rep 0 hangs past the timeout."""
    marker = _chaos_marker(f"hung-{seed}")
    if config.network.forward_impairments and not marker.exists():
        marker.touch()
        time.sleep(120)
    return _run_one(config, seed)


def interrupted_run_one(config, seed):
    """Simulates the operator killing the sweep after two settled reps."""
    done = len(list(Path(os.environ["REPRO_CHAOS_DIR"]).glob("settled-*")))
    if done >= 2:
        raise KeyboardInterrupt
    result = _run_one(config, seed)
    _chaos_marker(f"settled-{seed}").touch()
    return result


@pytest.fixture(scope="module")
def clean_serial():
    """The uninterrupted ground truth every chaotic run must reproduce."""
    return SweepRunner(workers=1).run(_grid())


@pytest.fixture
def chaos_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path / "chaos"))
    (tmp_path / "chaos").mkdir()
    return tmp_path


def test_sweep_survives_worker_crash(chaos_dir, clean_serial):
    summaries = SweepRunner(
        workers=2, policy=FAST, run_fn=crash_once_run_one
    ).run(_grid())
    assert _fingerprints(summaries) == _fingerprints(clean_serial)
    assert all(not s.failures for s in summaries.values())


def test_sweep_survives_hung_worker(chaos_dir, clean_serial):
    policy = SupervisionPolicy(
        timeout_s=3.0, retries=2, backoff_base_s=0.0, poll_interval_s=0.02
    )
    summaries = SweepRunner(
        workers=2, policy=policy, run_fn=hang_once_run_one
    ).run(_grid())
    assert _fingerprints(summaries) == _fingerprints(clean_serial)


def test_killed_sweep_resumes_bit_identically(chaos_dir, clean_serial):
    cache = ResultCache(chaos_dir / "cache")
    journal_dir = chaos_dir / "journals"
    with pytest.raises(KeyboardInterrupt):
        SweepRunner(
            workers=1,
            cache=cache,
            journal_dir=journal_dir,
            run_fn=interrupted_run_one,
        ).run(_grid())
    settled = len(list((chaos_dir / "chaos").glob("settled-*")))
    assert settled == 2  # the kill really landed mid-sweep
    assert cache.stats.stores == 2

    # Resume: journaled reps come back from the cache, the rest run fresh.
    resumed_cache = ResultCache(chaos_dir / "cache")
    summaries = SweepRunner(
        workers=1, cache=resumed_cache, journal_dir=journal_dir
    ).run(_grid())
    assert resumed_cache.stats.hits == 2
    assert resumed_cache.stats.stores == 2  # only the remaining reps computed
    assert _fingerprints(summaries) == _fingerprints(clean_serial)


def test_journaled_failures_carry_forward_until_no_resume(chaos_dir):
    """A rep that exhausts retries is recorded, carried forward on resume,
    and re-run (successfully) only when the operator passes fresh=True."""

    grid = _grid()
    cache = ResultCache(chaos_dir / "cache")
    journal_dir = chaos_dir / "journals"
    # The poison config crashes on every attempt; crash attribution must
    # shield the clean config's reps — an ambiguous pool crash re-runs the
    # in-flight suspects alone instead of charging them retry budget.
    policy = SupervisionPolicy(retries=1, backoff_base_s=0.0, poll_interval_s=0.02)
    summaries = SweepRunner(
        workers=2, cache=cache, journal_dir=journal_dir, policy=policy,
        run_fn=always_crash_lossy_run_one,
    ).run(grid)
    assert len(summaries["lossy"].failures) == 2
    assert summaries["lossy"].failures[0].error_type == "WorkerCrashError"
    assert not summaries["clean"].failures

    # Resume without clearing: failures are carried forward, nothing re-runs.
    carried = SweepRunner(
        workers=2, cache=ResultCache(chaos_dir / "cache"), journal_dir=journal_dir,
        policy=policy, run_fn=always_crash_lossy_run_one,
    ).run(grid)
    assert len(carried["lossy"].failures) == 2
    assert carried["lossy"].failures[0].error_type == "WorkerCrashError"

    # --no-resume: the journal is discarded and the reps run for real.
    healed = SweepRunner(
        workers=2, cache=ResultCache(chaos_dir / "cache"), journal_dir=journal_dir,
        resume=False, policy=policy,
    ).run(grid)
    assert not healed["lossy"].failures
    assert len(healed["lossy"].results) == 2


def always_crash_lossy_run_one(config, seed):
    if config.network.forward_impairments:
        os._exit(29)
    return _run_one(config, seed)


# ---------------------------------------------------------------------------
# Store chaos: a campaign killed with its result store half-written must,
# after a journal resume — under any backend — converge to a store whose
# content is bit-identical to an uninterrupted run's, with no duplicate rows.


def _store_of(summaries, path) -> ResultStore:
    """Record already-computed summaries into a fresh store (ground truth)."""
    store = ResultStore(path)
    for name, summary in summaries.items():
        for rep, result in enumerate(summary.results):
            store.record_result(name, rep, result)
    return store


@pytest.mark.parametrize("backend", ["pool", "forkserver"])
def test_killed_campaign_resumes_to_bit_identical_store(
    chaos_dir, clean_serial, backend
):
    cache = ResultCache(chaos_dir / "cache")
    journal_dir = chaos_dir / "journals"
    store_path = chaos_dir / "campaign.sqlite"
    with pytest.raises(KeyboardInterrupt):
        SweepRunner(
            workers=1,
            cache=cache,
            journal_dir=journal_dir,
            run_fn=interrupted_run_one,
            store=ResultStore(store_path),
        ).run(_grid())
    half_written = ResultStore(store_path)
    assert 0 < half_written.rep_count() < 4  # the kill landed mid-store
    half_written.close()

    resumed_store = ResultStore(store_path)
    summaries = SweepRunner(
        workers=2,
        backend=backend,
        cache=ResultCache(chaos_dir / "cache"),
        journal_dir=journal_dir,
        store=resumed_store,
    ).run(_grid())
    assert all(not s.failures for s in summaries.values())
    assert resumed_store.rep_count() == 4  # journal replay added no duplicates
    assert resumed_store.failure_count() == 0
    clean_store = _store_of(clean_serial, chaos_dir / "clean.sqlite")
    assert resumed_store.content_fingerprint() == clean_store.content_fingerprint()


@pytest.mark.parametrize("backend", ["pool", "spawn", "forkserver"])
def test_crash_looping_config_fails_into_the_store_under_every_pooled_backend(
    tmp_path, backend
):
    # always_crash_lossy_run_one consults no chaos markers, so it behaves
    # identically under spawn/forkserver workers (which see a snapshot of the
    # parent environment, not the live one).
    policy = SupervisionPolicy(retries=1, backoff_base_s=0.0, poll_interval_s=0.02)
    store = ResultStore(tmp_path / f"{backend}.sqlite")
    summaries = SweepRunner(
        workers=2,
        backend=backend,
        policy=policy,
        run_fn=always_crash_lossy_run_one,
        store=store,
    ).run(_grid())
    assert len(summaries["lossy"].failures) == 2
    assert not summaries["clean"].failures
    assert store.rep_count() == 2  # the clean config's repetitions
    assert store.failure_count() == 2
    assert {f.error_type for f in store.failures()} == {"WorkerCrashError"}
    assert {f.name for f in store.failures()} == {"lossy"}
