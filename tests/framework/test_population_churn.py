"""Flow churn and the per-component event census.

Churn (teardown on departure) is a *different deterministic workload*, not
an engine optimization: cutting post-completion traffic perturbs the shared
queue, so its fingerprint legitimately differs from the no-churn run — but
it must be a pure function of (config, seed), identical across engine
variants (wheel on/off, pure/compiled) and execution modes (serial, swept,
cache-resumed). The census must be behaviour-neutral and must certify the
teardown invariant: a departed flow schedules zero further events.
"""

from __future__ import annotations

import pytest

from repro.framework.cache import ResultCache
from repro.framework.population import PopulationConfig, run_population
from repro.framework.sweep import SweepRunner
from repro.units import kib, ms, seconds

#: Small, fast population crossing all stack families (two QUIC + TCP).
_BASE = dict(
    flows=30,
    arrival="poisson",
    arrival_rate_per_s=100.0,
    file_size=kib(48),
    extra_rtt_max_ns=ms(30),
    profiles=("quiche:cubic:fq", "picoquic:bbr", "tcp"),
    max_sim_time_ns=seconds(120),
    seed=5,
)

#: Recorded on the pre-wheel seed engine; every engine change must keep
#: reproducing it bit-for-bit (the population-scale golden).
GOLDEN_PLAIN = "8484eddb03c4e44b94bd3d6017f9a3c7000a7e6d681a2ecbd4cfe8aa62b5929d"
#: Recorded when churn shipped; pins churn determinism thereafter.
GOLDEN_CHURN = "985b24de449ee96280c1036a9dc72d73bb908e00c701a342fb4bcc6d5e916320"


def _config(**overrides) -> PopulationConfig:
    return PopulationConfig(**{**_BASE, **overrides})


def test_population_golden_fingerprint_wheel_on_and_off(monkeypatch):
    assert run_population(_config()).fingerprint() == GOLDEN_PLAIN
    monkeypatch.setenv("REPRO_TIMER_WHEEL", "0")
    assert run_population(_config()).fingerprint() == GOLDEN_PLAIN


def test_churn_golden_fingerprint_wheel_on_and_off(monkeypatch):
    result = run_population(_config(churn=True))
    assert result.fingerprint() == GOLDEN_CHURN
    assert result.completed_count == 30
    # Teardown absorbed stragglers rather than mis-routing them.
    assert result.multi.drained > 0
    assert result.multi.unrouted == 0
    monkeypatch.setenv("REPRO_TIMER_WHEEL", "0")
    assert run_population(_config(churn=True)).fingerprint() == GOLDEN_CHURN


def test_drained_zero_without_churn():
    result = run_population(_config())
    assert result.multi.drained == 0


def test_churn_cache_key_stable_and_distinct():
    """Adding the churn field must not invalidate pre-existing cache keys
    (recorded on the pre-churn config schema); enabling it must."""
    assert (
        _config().cache_key()
        == "a7c47a5a59197942de7a0796bb6a4cde9602813ecd5bb810aa297dc4bfb579a1"
    )
    assert _config(churn=True).cache_key() != _config().cache_key()


def test_churn_serial_swept_and_cached_agree(tmp_path):
    """Serial run == sweep-runner run == warm-cache replay, per repetition."""
    from repro.framework.runner import derive_seed

    config = _config(churn=True, repetitions=2)
    direct = [
        run_population(config, seed=derive_seed(config.seed, rep)).fingerprint()
        for rep in range(2)
    ]
    cache = ResultCache(tmp_path / "cache")
    cold = SweepRunner(workers=2, cache=cache).run({"churn": config})
    warm = SweepRunner(workers=1, cache=cache).run({"churn": config})
    assert cache.stats.hits == 2
    assert [r.fingerprint() for r in cold["churn"].results] == direct
    assert [r.fingerprint() for r in warm["churn"].results] == direct


class TestCensus:
    def test_census_is_behaviour_neutral(self):
        """A census-instrumented run fingerprints identically."""
        result = run_population(_config(churn=True), profile_events=True)
        assert result.fingerprint() == GOLDEN_CHURN
        assert result.census is not None

    def test_departed_flows_schedule_nothing(self):
        """The churn teardown invariant, certified by the census: once a
        flow departs, no component of it schedules another event."""
        result = run_population(_config(churn=True), profile_events=True)
        totals = result.census["totals"]
        assert totals["departed"] == 30
        assert totals["post_departure"] == 0
        assert result.census["post_departure"] == {}

    def test_census_accounting_consistent(self):
        result = run_population(_config(churn=True), profile_events=True)
        census = result.census
        totals = census["totals"]
        # Every fired or stale-discarded event was scheduled first; the
        # remainder is still pending at teardown time.
        assert totals["scheduled"] >= totals["fired"] + totals["stale"]
        assert totals["fired"] == result.events_processed
        # Attribution reached every per-flow component family.
        components = census["components"]
        for expected in ("UdpSocket", "ServerDriver", "ClientDriver", "TcpSender"):
            assert expected in components, sorted(components)
        for row in components.values():
            assert row["scheduled"] >= 0 and row["fired"] >= 0

    def test_census_off_by_default(self):
        result = run_population(_config())
        assert result.census is None


def test_census_cli_reports_clean_teardown(capsys):
    """``population --profile-events`` prints the census and exits 0 when no
    departed flow scheduled anything."""
    from repro.cli import main

    rc = main(
        [
            "population",
            "--flows", "12",
            "--size-kib", "32",
            "--max-sim-s", "60",
            "--churn",
            "--profile-events",
            "--seed", "3",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "event census" in out
    assert "post-departure check: clean" in out
