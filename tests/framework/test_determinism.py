"""Serial / parallel / cached bit-identity over an impairment grid.

Pins PR 1's equivalence claim and this PR's per-experiment RNG derivation:
the same grid must produce byte-for-byte identical results whether
repetitions run in-process (``workers=1``), fan out across a process pool
(``workers=4``), or come back from a warm :class:`ResultCache` — including
under seeded fault injection, whose randomness must be a pure function of
``(config, derived seed)``.
"""

from dataclasses import replace

import pytest

from repro.framework.cache import ResultCache
from repro.framework.config import ExperimentConfig, NetworkConfig
from repro.framework.sweep import SweepRunner
from repro.net.impairments import burst_loss, iid_loss, reordering
from repro.units import kib

#: Small but non-trivial: loss, bursts, and reordering all active, two reps.
GRID = {
    "burst": ExperimentConfig(
        stack="quiche",
        qdisc="fq",
        file_size=kib(256),
        repetitions=2,
        seed=11,
        trace_cwnd=True,
        network=NetworkConfig(forward_impairments=(burst_loss(),)),
    ),
    "loss+reorder": ExperimentConfig(
        stack="quiche",
        file_size=kib(256),
        repetitions=2,
        seed=11,
        network=NetworkConfig(
            forward_impairments=(iid_loss(0.02), reordering()),
            reverse_impairments=(iid_loss(0.01),),
        ),
    ),
}


def _fingerprints(summaries):
    return {
        name: [r.fingerprint() for r in summary.results]
        for name, summary in summaries.items()
    }


@pytest.fixture(scope="module")
def serial_summaries():
    return SweepRunner(workers=1).run(GRID)


def test_serial_vs_parallel_bit_identical(serial_summaries):
    parallel = SweepRunner(workers=4).run(GRID)
    assert _fingerprints(serial_summaries) == _fingerprints(parallel)
    for name in GRID:
        assert serial_summaries[name].goodput == parallel[name].goodput
        assert serial_summaries[name].dropped == parallel[name].dropped


def test_warm_cache_bit_identical(serial_summaries, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cold = SweepRunner(workers=2, cache=cache).run(GRID)
    assert cache.stats.stores == 4
    warm = SweepRunner(workers=1, cache=cache).run(GRID)
    assert cache.stats.hits == 4
    assert _fingerprints(serial_summaries) == _fingerprints(cold) == _fingerprints(warm)


def test_repetitions_are_rng_independent(serial_summaries):
    # Per-rep seed derivation must give each repetition its own impairment
    # randomness — identical reps would mean the old Random(0)-style bug.
    for summary in serial_summaries.values():
        a, b = summary.results
        assert a.fingerprint() != b.fingerprint()
        assert a.injected_drops > 0 and b.injected_drops > 0


def test_fingerprint_ignores_observability_fields(serial_summaries):
    result = serial_summaries["burst"].results[0]
    jittered = replace(result, wall_time_s=result.wall_time_s + 1.0,
                       events_processed=result.events_processed + 5)
    assert jittered.fingerprint() == result.fingerprint()
    changed = replace(result, dropped=result.dropped + 1)
    assert changed.fingerprint() != result.fingerprint()
