"""JSON artifact serialization."""

import json

from repro.framework.artifacts import (
    load_summary_dict,
    result_to_dict,
    save_summary,
    summary_to_dict,
)
from repro.framework.config import ExperimentConfig
from repro.framework.runner import run_repetitions
from repro.units import kib

CFG = ExperimentConfig(stack="quiche", file_size=kib(200), repetitions=2)


def _summary():
    return run_repetitions(CFG)


def test_result_dict_fields():
    summary = _summary()
    d = result_to_dict(summary.results[0])
    assert d["completed"]
    assert d["config"]["stack"] == "quiche"
    assert d["goodput_mbps"] > 0
    assert 0 <= d["metrics"]["back_to_back_share"] <= 1
    assert sum(d["metrics"]["packets_by_train_length"].values()) == d["packets_on_wire"]
    assert "capture" not in d


def test_capture_included_on_request():
    summary = _summary()
    d = result_to_dict(summary.results[0], include_capture=True)
    assert len(d["capture"]) == d["packets_on_wire"]
    assert {"t_ns", "pn", "size"} <= set(d["capture"][0])


def test_summary_roundtrips_through_json(tmp_path):
    summary = _summary()
    path = save_summary(summary, tmp_path / "out" / "run.json")
    assert path.exists()
    loaded = load_summary_dict(path)
    assert loaded == summary_to_dict(summary)
    assert loaded["label"] == "quiche/cubic"
    assert len(loaded["repetitions"]) == 2
    # Valid JSON end to end.
    json.dumps(loaded)
