"""Build-mode selection and cross-build bit-identity.

The compiled core is an *execution* detail: ``repro.build_info()`` reports
which build the process runs, but golden fingerprints, cache artifacts, and
result identity must be byte-equal across builds. Selection must degrade
cleanly — ``REPRO_PURE_PYTHON=1`` forces pure, an absent extension falls
back silently, and a *broken* extension falls back with exactly one stderr
notice. Subprocesses are used wherever the decision under test happens at
import time.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro import build_info
from repro._build import COMPILED_SCOPE, PURE_ENV
from repro.framework.cache import ResultCache
from repro.framework.config import ExperimentConfig
from repro.framework.sweep import SweepRunner
from repro.sim.engine import PureEventHandle, PureSimulator
from repro.units import kib
from tests.framework.test_golden_fingerprints import GOLDEN

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _run_py(code: str, **env_overrides: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (SRC, env.get("PYTHONPATH")) if p
    )
    env.pop(PURE_ENV, None)
    env.update(env_overrides)
    return subprocess.run(
        [sys.executable, "-c", textwrap.dedent(code)],
        capture_output=True, text=True, env=env,
    )


class TestSelection:
    def test_build_info_shape(self):
        info = build_info()
        assert info["mode"] in ("compiled", "pure")
        assert set(info["modules"]) >= set(COMPILED_SCOPE)
        assert all(v in ("compiled", "pure") for v in info["modules"].values())

    def test_pure_python_env_forces_pure(self):
        proc = _run_py(
            """
            import json
            from repro import build_info
            from repro.sim import engine
            info = build_info()
            assert engine.Simulator is engine.PureSimulator, engine.Simulator
            print(json.dumps(info))
            """,
            **{PURE_ENV: "1"},
        )
        assert proc.returncode == 0, proc.stderr
        info = json.loads(proc.stdout)
        assert info["mode"] == "pure"
        assert PURE_ENV in info["reason"]
        assert set(info["modules"].values()) == {"pure"}
        assert "falling back" not in proc.stderr  # forced, not degraded

    def test_broken_compiled_core_degrades_with_one_notice(self):
        # A meta-path hook that breaks the extension's import stands in for
        # a corrupt/ABI-mismatched build artifact.
        proc = _run_py(
            """
            import sys

            class Breaker:
                def find_spec(self, name, path=None, target=None):
                    if name == "repro._speed._core":
                        raise ImportError("simulated broken artifact")
                    return None

            sys.meta_path.insert(0, Breaker())
            import json
            from repro import build_info
            from repro.sim import engine
            assert engine.Simulator is engine.PureSimulator
            engine.Simulator().run(until=10)  # the fallback actually works
            print(json.dumps(build_info()))
            """
        )
        assert proc.returncode == 0, proc.stderr
        info = json.loads(proc.stdout)
        assert info["mode"] == "pure"
        assert "simulated broken artifact" in info["reason"]
        notices = [
            line for line in proc.stderr.splitlines()
            if "compiled core unavailable" in line
        ]
        assert len(notices) == 1, proc.stderr

    def test_absent_compiled_core_is_silent(self):
        # Hide the extension entirely: the expected state of a plain source
        # checkout must not produce any warning.
        proc = _run_py(
            """
            import sys

            class Hider:
                def find_spec(self, name, path=None, target=None):
                    if name == "repro._speed._core":
                        raise ModuleNotFoundError(
                            f"No module named {name!r}", name=name
                        )
                    return None

            sys.meta_path.insert(0, Hider())
            import json
            from repro import build_info
            print(json.dumps(build_info()))
            """
        )
        assert proc.returncode == 0, proc.stderr
        assert json.loads(proc.stdout)["mode"] == "pure"
        assert proc.stderr.strip() == ""

    def test_pure_classes_stay_importable_under_any_build(self):
        sim = PureSimulator()
        sim.schedule(5, lambda: None)
        sim.run()
        assert sim.now == 5
        assert PureEventHandle(0, 0, lambda: None, ()).cancelled is False


class TestCrossBuildIdentity:
    def test_pure_build_rederives_the_golden_fingerprints(self):
        # The goldens were recorded on the pure seed implementation; the
        # pure build must still reproduce them regardless of what this
        # process runs. Two entries keep the subprocess fast — the full
        # matrix runs in test_golden_fingerprints under the ambient build.
        cases = {name: GOLDEN[name] for name in ("tcp", "quiche-etf")}
        # Indent to match the template body so dedent still strips cleanly.
        lines = ("\n" + " " * 12).join(
            f"check({cfg.stack!r}, {cfg.qdisc!r}, {cfg.file_size}, "
            f"{seed}, {expected!r})"
            for cfg, seed, expected in cases.values()
        )
        proc = _run_py(
            """
            from repro import build_info
            from repro.framework.config import ExperimentConfig
            from repro.framework.experiment import run_experiment

            assert build_info()["mode"] == "pure"

            def check(stack, qdisc, size, seed, expected):
                config = ExperimentConfig(stack=stack, qdisc=qdisc, file_size=size)
                actual = run_experiment(config, seed=seed).fingerprint()
                assert actual == expected, (stack, actual)

            %s
            print("ok")
            """ % lines,
            **{PURE_ENV: "1"},
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "ok"

    def test_pure_written_cache_is_hit_byte_identically_by_this_build(self, tmp_path):
        grid = {
            "quiche": ExperimentConfig(
                stack="quiche", file_size=kib(128), repetitions=2
            )
        }
        cache_dir = tmp_path / "cache"
        # Warm the cache in a pure-build subprocess...
        proc = _run_py(
            """
            from repro import build_info
            from repro.framework.cache import ResultCache
            from repro.framework.config import ExperimentConfig
            from repro.framework.sweep import SweepRunner
            from repro.units import kib

            assert build_info()["mode"] == "pure"
            grid = {"quiche": ExperimentConfig(stack="quiche", file_size=kib(128), repetitions=2)}
            cache = ResultCache(%r)
            summaries = SweepRunner(workers=1, cache=cache).run(grid)
            assert cache.stats.stores == 2
            for result in summaries["quiche"].results:
                print(result.fingerprint())
            """ % str(cache_dir),
            **{PURE_ENV: "1"},
        )
        assert proc.returncode == 0, proc.stderr
        pure_prints = proc.stdout.split()
        assert len(pure_prints) == 2

        # ...then read it under the ambient build: every repetition must be
        # a cache hit (keys don't encode the build) and bit-identical.
        cache = ResultCache(cache_dir)
        summaries = SweepRunner(workers=1, cache=cache).run(grid)
        assert cache.stats.hits == 2
        assert cache.stats.stores == 0
        assert [r.fingerprint() for r in summaries["quiche"].results] == pure_prints


@pytest.mark.skipif(
    build_info()["mode"] != "compiled",
    reason="needs the compiled core built in place",
)
class TestCompiledBuild:
    def test_compiled_engine_is_active(self):
        from repro.sim import engine

        assert engine.Simulator is not engine.PureSimulator
        info = build_info()
        assert info["mode"] == "compiled"
        assert info["modules"]["repro.sim.engine"] == "compiled"
        assert info["modules"]["repro.quic.varint"] == "compiled"

    def test_compiled_and_pure_engines_agree_event_for_event(self):
        from repro.sim.engine import Simulator

        def trace(sim_cls):
            sim = sim_cls()
            out = []
            for i in (7, 3, 3, 11):
                sim.schedule(i, out.append, (i, sim_cls.__name__))
            handle = sim.schedule_cancellable(5, out.append, "cancelled")
            handle.cancel()
            sim.run(until=10)
            return [(t, v[0]) for t, v in zip((3, 3, 7), out)], sim.now

        compiled = trace(Simulator)
        pure = trace(PureSimulator)
        assert compiled == pure
