"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_rejects_unknown_stack():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "msquic"])


def test_run_command(capsys, tmp_path):
    out_json = tmp_path / "r.json"
    rc = main(
        ["run", "quiche", "--size-mib", "0.25", "--seed", "3", "--json", str(out_json)]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "quiche/cubic" in out
    assert "goodput" in out
    assert "back-to-back share" in out
    data = json.loads(out_json.read_text())
    assert data["label"] == "quiche/cubic"


def test_run_with_sf_flag(capsys):
    rc = main(["run", "quiche", "--size-mib", "0.25", "--sf"])
    assert rc == 0
    assert "quiche/cubic/sf" in capsys.readouterr().out


def test_compete_command(capsys):
    rc = main(["compete", "quiche:cubic:fq", "tcp", "--size-mib", "0.25", "--seed", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Jain fairness" in out
    assert "quiche/cubic/fq" in out
    assert "tcp/cubic" in out


def test_compete_parses_flow_spec_shorthand(capsys):
    rc = main(["compete", "picoquic:bbr", "--size-mib", "0.25"])
    assert rc == 0
    assert "picoquic/bbr" in capsys.readouterr().out


def test_scenarios_command(capsys):
    rc = main(["scenarios"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "baseline" in out
    assert "section 4.4" in out
