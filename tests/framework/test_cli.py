"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_rejects_unknown_stack():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "msquic"])


def test_run_command(capsys, tmp_path):
    out_json = tmp_path / "r.json"
    rc = main(
        ["run", "quiche", "--size-mib", "0.25", "--seed", "3", "--json", str(out_json),
         "--cache-dir", str(tmp_path / "cache")]
    )
    assert rc == 0
    captured = capsys.readouterr()
    out = captured.out
    assert "quiche/cubic" in out
    assert "goodput" in out
    assert "back-to-back share (pooled, 1 reps)" in out
    assert "train lengths (pooled, 1 reps)" in out
    assert "[sweep] quiche/cubic rep 1/1" in captured.err
    data = json.loads(out_json.read_text())
    assert data["label"] == "quiche/cubic"


def test_run_pools_metrics_across_reps(capsys, tmp_path):
    rc = main(
        ["run", "quiche", "--size-mib", "0.25", "--reps", "2",
         "--cache-dir", str(tmp_path / "cache")]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "back-to-back share (pooled, 2 reps)" in out
    assert "packets in trains <= 5 (pooled, 2 reps)" in out


def test_run_cache_roundtrip(capsys, tmp_path):
    argv = ["run", "quiche", "--size-mib", "0.25", "--cache-dir", str(tmp_path / "c")]
    assert main(argv) == 0
    cold = capsys.readouterr()
    assert "1 stores" in cold.err
    assert main(argv) == 0
    warm = capsys.readouterr()
    assert "[cached]" in warm.err
    # The pooled report is byte-identical when served from the cache.
    assert warm.out == cold.out


def test_run_with_sf_flag(capsys):
    rc = main(["run", "quiche", "--size-mib", "0.25", "--sf", "--no-cache"])
    assert rc == 0
    assert "quiche/cubic/sf" in capsys.readouterr().out


def test_sweep_command(capsys, tmp_path):
    rc = main(
        ["sweep", "baselines", "--size-mib", "0.25", "--reps", "1",
         "--cache-dir", str(tmp_path / "cache"), "--workers", "2"]
    )
    assert rc == 0
    captured = capsys.readouterr()
    for name in ("quiche", "picoquic", "ngtcp2", "tcp"):
        assert name in captured.out
    assert "b2b share" in captured.out
    assert "cache: 0 hits, 4 misses, 4 stores" in captured.err


def test_invalid_config_exits_2_with_one_line_message(capsys):
    rc = main(["run", "quiche", "--size-mib", "0.25", "--reps", "0", "--no-cache"])
    assert rc == 2
    captured = capsys.readouterr()
    assert captured.err.strip() == "error: repetitions must be positive, got 0"
    assert "Traceback" not in captured.err


def test_supervision_flags_are_accepted(capsys, tmp_path):
    rc = main(
        ["run", "quiche", "--size-mib", "0.25", "--timeout", "60", "--retries", "1",
         "--no-resume", "--cache-dir", str(tmp_path / "cache")]
    )
    assert rc == 0
    assert "goodput" in capsys.readouterr().out


def test_sweep_resume_serves_journaled_reps_from_cache(capsys, tmp_path):
    argv = ["sweep", "baselines", "--size-mib", "0.25", "--reps", "1",
            "--cache-dir", str(tmp_path / "cache"), "--workers", "1"]
    assert main(argv) == 0
    capsys.readouterr()
    assert main(argv) == 0  # resume: everything is journaled + cached
    warm = capsys.readouterr()
    assert "4 hits" in warm.err
    assert "[cached]" in warm.err


def test_compete_command(capsys):
    rc = main(["compete", "quiche:cubic:fq", "tcp", "--size-mib", "0.25", "--seed", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Jain fairness" in out
    assert "quiche/cubic/fq" in out
    assert "tcp/cubic" in out


def test_compete_parses_flow_spec_shorthand(capsys):
    rc = main(["compete", "picoquic:bbr", "--size-mib", "0.25"])
    assert rc == 0
    assert "picoquic/bbr" in capsys.readouterr().out


def test_scenarios_command(capsys):
    rc = main(["scenarios"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "baseline" in out
    assert "section 4.4" in out


# ---------------------------------------------------------------------------
# Exit-code contract: 0 = clean, 1 = partial results (failed reps), 2 =
# operator error (ConfigError) — under the default and the new backends.


@pytest.mark.parametrize("backend", ["pool", "forkserver"])
def test_failed_reps_exit_1_and_show_in_the_failed_column(capsys, backend):
    # A 1 MiB transfer cannot finish inside 50 ms of wall clock; with zero
    # retries every repetition fails, the table stays partial, and rc is 1.
    rc = main(
        ["run", "quiche", "--size-mib", "1", "--reps", "2", "--timeout", "0.05",
         "--retries", "0", "--workers", "2", "--backend", backend, "--no-cache"]
    )
    assert rc == 1
    out = capsys.readouterr().out
    assert "2 repetition(s) FAILED" in out
    assert "RepTimeoutError" in out


def test_invalid_backend_is_rejected_by_the_parser():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "quiche", "--backend", "threads"])


@pytest.mark.parametrize("backend", ["inprocess", "forkserver", "distributed"])
def test_run_under_new_backends_matches_pool_output(capsys, backend):
    argv = ["run", "quiche", "--size-mib", "0.25", "--no-cache"]
    assert main(argv + ["--backend", "pool"]) == 0
    pool_out = capsys.readouterr().out
    assert main(argv + ["--backend", backend, "--workers", "2"]) == 0
    assert capsys.readouterr().out == pool_out


def test_hosts_flag_selects_distributed_and_narrates_per_host(capsys):
    # --hosts alone upgrades the default backend; the campaign really runs
    # through localhost worker agents and reports per-host progress.
    rc = main(["run", "quiche", "--size-mib", "0.25", "--no-cache",
               "--hosts", "localhost", "--workers", "1"])
    assert rc == 0
    captured = capsys.readouterr()
    assert "goodput" in captured.out
    assert "[remote] localhost: rep settled" in captured.err


def test_hosts_file_merges_with_hosts_flag(capsys, tmp_path):
    hosts_file = tmp_path / "hosts.txt"
    hosts_file.write_text("# the fleet\nlocalhost:1\n")
    rc = main(["run", "quiche", "--size-mib", "0.25", "--no-cache",
               "--hosts", "localhost", "--hosts-file", str(hosts_file)])
    assert rc == 0
    assert "[remote] localhost: rep settled" in capsys.readouterr().err


def test_hosts_with_a_local_backend_is_an_operator_error(capsys):
    rc = main(["run", "quiche", "--size-mib", "0.25", "--no-cache",
               "--backend", "forkserver", "--hosts", "localhost"])
    assert rc == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "--backend distributed" in err


def test_missing_store_is_an_operator_error_exit_2(capsys, tmp_path):
    rc = main(["query", str(tmp_path / "absent.sqlite")])
    assert rc == 2
    err = capsys.readouterr().err
    assert err.startswith("error: no result store")
    assert "Traceback" not in err


def test_sweep_failed_column_reflects_store_failures(capsys, tmp_path):
    # The sweep table's `failed` column and the store's report must agree;
    # with nothing failing both read 0 across the grid.
    store = tmp_path / "st.sqlite"
    rc = main(
        ["sweep", "baselines", "--size-mib", "0.25", "--reps", "1",
         "--cache-dir", str(tmp_path / "cache"), "--workers", "2",
         "--backend", "forkserver", "--store", str(store)]
    )
    assert rc == 0
    assert "failed" in capsys.readouterr().out
    assert main(["report", str(store)]) == 0
    report = capsys.readouterr().out
    for name in ("quiche", "picoquic", "ngtcp2", "tcp"):
        assert name in report


# ---------------------------------------------------------------------------
# Store subcommands: query/report/store over a CLI-produced store.


@pytest.fixture
def cli_store(tmp_path):
    path = tmp_path / "st.sqlite"
    rc = main(
        ["run", "quiche", "--size-mib", "0.25", "--reps", "2", "--seed", "5",
         "--no-cache", "--workers", "1", "--store", str(path)]
    )
    assert rc == 0
    return path


def test_query_lists_rows_and_aggregates(capsys, cli_store):
    capsys.readouterr()
    assert main(["query", str(cli_store)]) == 0
    out = capsys.readouterr().out
    assert "2 repetition(s)" in out
    assert "quiche/cubic" in out

    assert main(["query", str(cli_store), "--metric", "goodput_mbps",
                 "--percentiles", "50,95"]) == 0
    agg = capsys.readouterr().out
    assert "n: 2" in agg
    assert "mean:" in agg and "p95:" in agg

    assert main(["query", str(cli_store), "--stack", "tcp"]) == 1
    assert "no repetitions match" in capsys.readouterr().out


def test_report_renders_ascii_and_markdown(capsys, cli_store):
    capsys.readouterr()
    assert main(["report", str(cli_store)]) == 0
    ascii_out = capsys.readouterr().out
    assert "goodput [Mbit/s]" in ascii_out

    assert main(["report", str(cli_store), "--format", "md"]) == 0
    md = capsys.readouterr().out
    assert md.startswith("| name |")
    assert "| --- |" in md
    assert "| quiche/cubic |" in md


def test_store_info_export_and_json_migration_round_trip(capsys, cli_store, tmp_path):
    capsys.readouterr()
    assert main(["store", "info", str(cli_store)]) == 0
    info = json.loads(capsys.readouterr().out)
    assert info["reps"] == 2 and info["failures"] == 0
    assert info["names"] == ["quiche/cubic"]

    exported = tmp_path / "out.json"
    assert main(["store", "export", str(cli_store), "quiche/cubic", str(exported)]) == 0
    capsys.readouterr()

    # Migrating the export into a fresh store reproduces the original content.
    migrated = tmp_path / "m.sqlite"
    assert main(["store", "migrate", str(migrated), "--from-json", str(exported)]) == 0
    assert "migrated 2 repetition(s)" in capsys.readouterr().out
    assert main(["store", "info", str(migrated)]) == 0
    migrated_info = json.loads(capsys.readouterr().out)
    assert migrated_info["fingerprint"] == info["fingerprint"]


def test_store_migrate_without_sources_exits_2(capsys, tmp_path):
    rc = main(["store", "migrate", str(tmp_path / "m.sqlite")])
    assert rc == 2
    assert "nothing to migrate" in capsys.readouterr().err


def test_store_cache_migration_from_cli_cache(capsys, tmp_path):
    cache_dir = tmp_path / "cache"
    assert main(["run", "quiche", "--size-mib", "0.25", "--cache-dir",
                 str(cache_dir)]) == 0
    capsys.readouterr()
    store = tmp_path / "m.sqlite"
    assert main(["store", "migrate", str(store), "--from-cache", str(cache_dir)]) == 0
    assert "migrated 1 repetition(s) from cache" in capsys.readouterr().out
