"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_rejects_unknown_stack():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "msquic"])


def test_run_command(capsys, tmp_path):
    out_json = tmp_path / "r.json"
    rc = main(
        ["run", "quiche", "--size-mib", "0.25", "--seed", "3", "--json", str(out_json),
         "--cache-dir", str(tmp_path / "cache")]
    )
    assert rc == 0
    captured = capsys.readouterr()
    out = captured.out
    assert "quiche/cubic" in out
    assert "goodput" in out
    assert "back-to-back share (pooled, 1 reps)" in out
    assert "train lengths (pooled, 1 reps)" in out
    assert "[sweep] quiche/cubic rep 1/1" in captured.err
    data = json.loads(out_json.read_text())
    assert data["label"] == "quiche/cubic"


def test_run_pools_metrics_across_reps(capsys, tmp_path):
    rc = main(
        ["run", "quiche", "--size-mib", "0.25", "--reps", "2",
         "--cache-dir", str(tmp_path / "cache")]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "back-to-back share (pooled, 2 reps)" in out
    assert "packets in trains <= 5 (pooled, 2 reps)" in out


def test_run_cache_roundtrip(capsys, tmp_path):
    argv = ["run", "quiche", "--size-mib", "0.25", "--cache-dir", str(tmp_path / "c")]
    assert main(argv) == 0
    cold = capsys.readouterr()
    assert "1 stores" in cold.err
    assert main(argv) == 0
    warm = capsys.readouterr()
    assert "[cached]" in warm.err
    # The pooled report is byte-identical when served from the cache.
    assert warm.out == cold.out


def test_run_with_sf_flag(capsys):
    rc = main(["run", "quiche", "--size-mib", "0.25", "--sf", "--no-cache"])
    assert rc == 0
    assert "quiche/cubic/sf" in capsys.readouterr().out


def test_sweep_command(capsys, tmp_path):
    rc = main(
        ["sweep", "baselines", "--size-mib", "0.25", "--reps", "1",
         "--cache-dir", str(tmp_path / "cache"), "--workers", "2"]
    )
    assert rc == 0
    captured = capsys.readouterr()
    for name in ("quiche", "picoquic", "ngtcp2", "tcp"):
        assert name in captured.out
    assert "b2b share" in captured.out
    assert "cache: 0 hits, 4 misses, 4 stores" in captured.err


def test_invalid_config_exits_2_with_one_line_message(capsys):
    rc = main(["run", "quiche", "--size-mib", "0.25", "--reps", "0", "--no-cache"])
    assert rc == 2
    captured = capsys.readouterr()
    assert captured.err.strip() == "error: repetitions must be positive, got 0"
    assert "Traceback" not in captured.err


def test_supervision_flags_are_accepted(capsys, tmp_path):
    rc = main(
        ["run", "quiche", "--size-mib", "0.25", "--timeout", "60", "--retries", "1",
         "--no-resume", "--cache-dir", str(tmp_path / "cache")]
    )
    assert rc == 0
    assert "goodput" in capsys.readouterr().out


def test_sweep_resume_serves_journaled_reps_from_cache(capsys, tmp_path):
    argv = ["sweep", "baselines", "--size-mib", "0.25", "--reps", "1",
            "--cache-dir", str(tmp_path / "cache"), "--workers", "1"]
    assert main(argv) == 0
    capsys.readouterr()
    assert main(argv) == 0  # resume: everything is journaled + cached
    warm = capsys.readouterr()
    assert "4 hits" in warm.err
    assert "[cached]" in warm.err


def test_compete_command(capsys):
    rc = main(["compete", "quiche:cubic:fq", "tcp", "--size-mib", "0.25", "--seed", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Jain fairness" in out
    assert "quiche/cubic/fq" in out
    assert "tcp/cubic" in out


def test_compete_parses_flow_spec_shorthand(capsys):
    rc = main(["compete", "picoquic:bbr", "--size-mib", "0.25"])
    assert rc == 0
    assert "picoquic/bbr" in capsys.readouterr().out


def test_scenarios_command(capsys):
    rc = main(["scenarios"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "baseline" in out
    assert "section 4.4" in out
