"""Supervised execution: crashes, hangs, retries, quarantine, degradation.

The fault stand-ins below are module-level so the process pool can pickle
them by reference; ``FaultConfig.marker`` points cross-process state at a
per-test temporary directory.
"""

import os
import time
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.errors import ValidationError
from repro.framework.supervision import (
    RepFailure,
    RepTask,
    SupervisionPolicy,
    Supervisor,
)

FAST = dict(backoff_base_s=0.0, poll_interval_s=0.02)


@dataclass(frozen=True)
class FaultConfig:
    """Stand-in for ExperimentConfig: picklable, labels itself."""

    mode: str = "ok"
    marker: str = ""

    @property
    def label(self) -> str:
        return f"fault/{self.mode}"


def _marker(cfg: FaultConfig, seed: int) -> Path:
    return Path(cfg.marker) / f"seen-{cfg.mode}-{seed}"


def _stamp_attempt(cfg: FaultConfig, seed: int) -> int:
    """Count executions of this (config, seed) across processes."""
    base = Path(cfg.marker)
    count = len(list(base.glob(f"run-{cfg.mode}-{seed}-*"))) + 1
    (base / f"run-{cfg.mode}-{seed}-{count}-{os.getpid()}-{time.monotonic_ns()}").touch()
    return count


def fault_run(cfg: FaultConfig, seed: int):
    if cfg.mode == "ok":
        return ("ok", seed)
    if cfg.mode == "boom":
        _stamp_attempt(cfg, seed)
        raise ValueError(f"boom for seed {seed}")
    if cfg.mode == "crash":
        os._exit(17)
    if cfg.mode == "hang":
        time.sleep(60)
        return ("hung-through", seed)
    if cfg.mode == "flaky":
        if not _marker(cfg, seed).exists():
            _marker(cfg, seed).touch()
            raise RuntimeError("transient failure")
        return ("ok-after-retry", seed)
    if cfg.mode == "crash-once":
        if not _marker(cfg, seed).exists():
            _marker(cfg, seed).touch()
            os._exit(17)
        return ("ok-after-crash", seed)
    raise AssertionError(f"unknown mode {cfg.mode}")


def _tasks(cfg, count):
    return [RepTask(name=cfg.label, config=cfg, rep=i, seed=1000 + i) for i in range(count)]


def _collect(supervisor, tasks, workers):
    successes, failures = {}, {}

    def on_success(task, result):
        successes[(task.name, task.rep)] = (task, result)

    def on_failure(task, failure):
        failures[(task.name, task.rep)] = failure

    supervisor.run(tasks, workers, on_success, on_failure)
    return successes, failures


class TestPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = SupervisionPolicy(backoff_base_s=0.1, backoff_max_s=0.5)
        assert policy.backoff_s(0) == 0.0
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.2)
        assert policy.backoff_s(10) == pytest.approx(0.5)
        assert policy.max_attempts == 3

    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            SupervisionPolicy(timeout_s=0)
        with pytest.raises(ValueError):
            SupervisionPolicy(retries=-1)
        with pytest.raises(ValueError):
            SupervisionPolicy(quarantine_after=0)

    def test_backoff_schedule_is_derived_not_random(self):
        # Retry delays are a pure function of (policy, failed-attempt count):
        # no wall clock, no RNG — so a campaign's retry timing is replayable
        # and two coordinators with the same policy behave identically.
        policy = SupervisionPolicy(backoff_base_s=0.05, backoff_max_s=5.0)
        schedule = [policy.backoff_s(n) for n in range(1, 12)]
        assert schedule == [policy.backoff_s(n) for n in range(1, 12)]
        assert schedule == [min(5.0, 0.05 * 2 ** (n - 1)) for n in range(1, 12)]
        twin = SupervisionPolicy(backoff_base_s=0.05, backoff_max_s=5.0)
        assert schedule == [twin.backoff_s(n) for n in range(1, 12)]


class TestRepFailure:
    def test_round_trips_through_dict(self):
        failure = RepFailure(
            name="x", label="x/y", rep=3, seed=42, error_type="ValueError",
            message="boom", traceback="tb", attempts=2, wall_time_s=1.5,
            quarantined=True,
        )
        assert RepFailure.from_dict(failure.as_dict()) == failure

    def test_describe_names_the_error(self):
        failure = RepFailure(
            name="x", label="x", rep=0, seed=1, error_type="RepTimeoutError",
            message="too slow", traceback="", attempts=3, wall_time_s=9.0,
        )
        assert "RepTimeoutError" in failure.describe()
        assert "3 attempt" in failure.describe()


class TestSerialSupervision:
    def test_deterministic_error_is_retried_then_recorded(self, tmp_path):
        cfg = FaultConfig(mode="boom", marker=str(tmp_path))
        supervisor = Supervisor(SupervisionPolicy(retries=2, **FAST), run_fn=fault_run)
        successes, failures = _collect(supervisor, _tasks(cfg, 1), workers=1)
        assert not successes
        failure = failures[(cfg.label, 0)]
        assert failure.error_type == "ValueError"
        assert failure.attempts == 3
        assert "boom for seed 1000" in failure.message
        assert "ValueError" in failure.traceback
        assert len(list(tmp_path.glob("run-*"))) == 3  # really ran 3 times

    def test_flaky_task_recovers_with_same_seed(self, tmp_path):
        cfg = FaultConfig(mode="flaky", marker=str(tmp_path))
        supervisor = Supervisor(SupervisionPolicy(retries=2, **FAST), run_fn=fault_run)
        successes, failures = _collect(supervisor, _tasks(cfg, 1), workers=1)
        assert not failures
        task, result = successes[(cfg.label, 0)]
        assert result == ("ok-after-retry", 1000)  # retry reused the seed
        assert task.attempts == 2

    def test_quarantine_skips_remaining_reps(self, tmp_path):
        cfg = FaultConfig(mode="boom", marker=str(tmp_path))
        supervisor = Supervisor(
            SupervisionPolicy(retries=0, quarantine_after=2, **FAST), run_fn=fault_run
        )
        successes, failures = _collect(supervisor, _tasks(cfg, 5), workers=1)
        assert not successes
        assert len(failures) == 5
        assert failures[(cfg.label, 0)].error_type == "ValueError"
        assert failures[(cfg.label, 1)].error_type == "ValueError"
        assert failures[(cfg.label, 1)].quarantined  # tripped the threshold
        for rep in (2, 3, 4):
            assert failures[(cfg.label, rep)].error_type == "QuarantinedError"
            assert failures[(cfg.label, rep)].quarantined
        # Only the first two reps ever executed.
        assert len(list(tmp_path.glob("run-*"))) == 2

    def test_validation_failure_is_not_retried(self, tmp_path):
        cfg = FaultConfig(mode="ok", marker=str(tmp_path))

        def reject(result):
            raise ValidationError("rate-ceiling: impossible goodput")

        supervisor = Supervisor(
            SupervisionPolicy(retries=3, **FAST), run_fn=fault_run, validate_fn=reject
        )
        successes, failures = _collect(supervisor, _tasks(cfg, 1), workers=1)
        assert not successes
        failure = failures[(cfg.label, 0)]
        assert failure.error_type == "ValidationError"
        assert failure.attempts == 1  # deterministic: no retry


class TestPooledSupervision:
    def test_worker_exception_keeps_surviving_results(self, tmp_path):
        good = FaultConfig(mode="ok", marker=str(tmp_path))
        bad = FaultConfig(mode="boom", marker=str(tmp_path))
        tasks = _tasks(good, 3) + _tasks(bad, 1)
        supervisor = Supervisor(SupervisionPolicy(retries=1, **FAST), run_fn=fault_run)
        successes, failures = _collect(supervisor, tasks, workers=2)
        assert len(successes) == 3
        assert failures[(bad.label, 0)].error_type == "ValueError"
        assert failures[(bad.label, 0)].attempts == 2

    def test_worker_crash_restarts_pool_and_keeps_survivors(self, tmp_path):
        good = FaultConfig(mode="ok", marker=str(tmp_path))
        poison = FaultConfig(mode="crash", marker=str(tmp_path))
        tasks = _tasks(good, 4) + _tasks(poison, 1)
        supervisor = Supervisor(SupervisionPolicy(retries=1, **FAST), run_fn=fault_run)
        successes, failures = _collect(supervisor, tasks, workers=2)
        assert len(successes) == 4  # every non-poison rep survived the crash
        failure = failures[(poison.label, 0)]
        assert failure.error_type == "WorkerCrashError"
        assert "pool died" in failure.message

    def test_crash_once_recovers_bit_identically(self, tmp_path):
        cfg = FaultConfig(mode="crash-once", marker=str(tmp_path))
        supervisor = Supervisor(SupervisionPolicy(retries=2, **FAST), run_fn=fault_run)
        successes, failures = _collect(supervisor, _tasks(cfg, 2), workers=2)
        assert not failures
        for rep in (0, 1):
            task, result = successes[(cfg.label, rep)]
            assert result == ("ok-after-crash", 1000 + rep)  # same derived seed

    def test_hang_is_killed_by_the_watchdog(self, tmp_path):
        good = FaultConfig(mode="ok", marker=str(tmp_path))
        stuck = FaultConfig(mode="hang", marker=str(tmp_path))
        tasks = _tasks(stuck, 1) + _tasks(good, 3)
        supervisor = Supervisor(
            SupervisionPolicy(timeout_s=0.4, retries=0, **FAST), run_fn=fault_run
        )
        start = time.monotonic()
        successes, failures = _collect(supervisor, tasks, workers=2)
        assert time.monotonic() - start < 30  # nowhere near the 60s sleep
        assert len(successes) == 3
        failure = failures[(stuck.label, 0)]
        assert failure.error_type == "RepTimeoutError"
        assert failure.attempts == 1
        assert failure.wall_time_s >= 0.4

    def test_hang_retry_charges_only_expired_task(self, tmp_path):
        # The hung rep is retried (retries=1) and must time out twice; the
        # innocents that shared the pool still complete exactly once each.
        good = FaultConfig(mode="ok", marker=str(tmp_path))
        stuck = FaultConfig(mode="hang", marker=str(tmp_path))
        tasks = _tasks(stuck, 1) + _tasks(good, 2)
        supervisor = Supervisor(
            SupervisionPolicy(timeout_s=0.3, retries=1, **FAST), run_fn=fault_run
        )
        successes, failures = _collect(supervisor, tasks, workers=2)
        assert len(successes) == 2
        assert failures[(stuck.label, 0)].attempts == 2


@dataclass(frozen=True)
class FlakyExperiment:
    """A real experiment config plus a marker directory, picklable across
    spawn/forkserver workers (which see a stale environment snapshot, so the
    marker path must travel inside the config, not in ``os.environ``)."""

    config: object
    marker: str

    @property
    def label(self) -> str:
        return self.config.label


def flaky_experiment_run(wrapper: FlakyExperiment, seed: int):
    marker = Path(wrapper.marker) / f"flaked-{seed}"
    if not marker.exists():
        marker.touch()
        raise RuntimeError("transient failure before the simulation started")
    from repro.framework.runner import _run_one

    return _run_one(wrapper.config, seed)


class TestRetryDeterminism:
    """Satellite guarantee: a retried repetition reuses its derived seed, so
    its result is byte-identical to a first-try success — under every pooled
    backend (the distributed equivalent lives in ``test_remote_chaos``)."""

    @pytest.mark.parametrize("backend", ["pool", "spawn", "forkserver"])
    def test_retried_rep_matches_first_try_success(self, tmp_path, backend):
        from repro.framework.config import ExperimentConfig
        from repro.framework.executors import make_executor
        from repro.framework.runner import _run_one, derive_seed
        from repro.units import kib

        config = ExperimentConfig(stack="quiche", file_size=kib(64), repetitions=2)
        seeds = [derive_seed(config.seed, rep) for rep in range(2)]
        baseline = {seed: _run_one(config, seed).fingerprint() for seed in seeds}

        wrapper = FlakyExperiment(config=config, marker=str(tmp_path))
        tasks = [
            RepTask(name="flaky", config=wrapper, rep=rep, seed=seed)
            for rep, seed in enumerate(seeds)
        ]
        supervisor = Supervisor(
            SupervisionPolicy(retries=2, **FAST),
            run_fn=flaky_experiment_run,
            executor=make_executor(backend),
        )
        successes, failures = _collect(supervisor, tasks, workers=2)
        assert not failures
        for (_, rep), (task, result) in successes.items():
            assert task.attempts == 2  # first try really flaked
            assert result.fingerprint() == baseline[seeds[rep]]
