"""Experiment configuration validation and derived values."""

import pytest

from repro.errors import ConfigError
from repro.framework.config import ExperimentConfig, NetworkConfig
from repro.net.impairments import ImpairmentSpec, burst_loss, iid_loss, rate_flap
from repro.units import kib, mbit, mib, ms


class TestNetworkConfig:
    def test_paper_defaults(self):
        net = NetworkConfig()
        assert net.bottleneck_rate_bps == mbit(40)
        assert net.min_rtt_ns == ms(40)
        # BDP = 40 Mbit/s * 40 ms = 200 kB; buffer = 2 BDP.
        assert net.bdp_bytes == 200_000
        assert net.buffer_bytes == 400_000
        assert net.forward_impairments == () and net.reverse_impairments == ()

    def test_impairment_specs_validated(self):
        NetworkConfig(forward_impairments=(iid_loss(0.01),)).validate()
        with pytest.raises(ConfigError):
            NetworkConfig(forward_impairments=(ImpairmentSpec(kind="loss", rate=2.0),)).validate()
        with pytest.raises(ConfigError):
            NetworkConfig(reverse_impairments=(ImpairmentSpec(kind="gremlins"),)).validate()

    def test_rate_flap_only_on_forward_tbf(self):
        NetworkConfig(forward_impairments=(rate_flap(),)).validate()
        with pytest.raises(ConfigError):
            NetworkConfig(reverse_impairments=(rate_flap(),)).validate()
        with pytest.raises(ConfigError):
            NetworkConfig(bottleneck="wifi", forward_impairments=(rate_flap(),)).validate()


class TestExperimentConfig:
    def test_defaults_valid(self):
        ExperimentConfig().validate()

    @pytest.mark.parametrize("field,value", [
        ("stack", "msquic"),
        ("qdisc", "htb"),
        ("gso", "sometimes"),
        ("file_size", 0),
        ("repetitions", 0),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigError):
            ExperimentConfig(**{field: value}).validate()

    def test_tcp_with_gso_rejected(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(stack="tcp", gso="on").validate()

    @pytest.mark.parametrize("field,value", [
        ("file_size", -5),
        ("repetitions", 0),
        ("objects", 0),
        ("gso_segments", 0),
        ("etf_delta_ns", -1),
        ("max_sim_time_ns", 0),
        ("client_ack_threshold", 0),
        ("bucket_packets", 0),
    ])
    def test_errors_name_the_offending_field_and_value(self, field, value):
        with pytest.raises(ConfigError) as excinfo:
            ExperimentConfig(**{field: value}).validate()
        assert field in str(excinfo.value)
        assert str(value) in str(excinfo.value)

    @pytest.mark.parametrize("field,value", [
        ("link_rate_bps", 0),
        ("bottleneck_rate_bps", -1),
        ("wifi_phy_rate_bps", 0),
        ("one_way_delay_ns", -1),
        ("wifi_access_overhead_ns", -1),
        ("buffer_bdp_multiplier", 0),
        ("tbf_burst_bytes", 0),
        ("wifi_max_aggregate", 0),
    ])
    def test_network_errors_name_the_offending_field(self, field, value):
        with pytest.raises(ConfigError) as excinfo:
            ExperimentConfig(network=NetworkConfig(**{field: value})).validate()
        assert field in str(excinfo.value)
        assert str(value) in str(excinfo.value)

    def test_label_encodes_variant(self):
        cfg = ExperimentConfig(stack="quiche", qdisc="fq", gso="paced", spurious_rollback=False)
        assert cfg.label == "quiche/cubic/fq/gso-paced/sf"
        assert ExperimentConfig(stack="tcp").label == "tcp/cubic"

    def test_scaled_returns_new_config(self):
        cfg = ExperimentConfig(file_size=mib(8), repetitions=5)
        scaled = cfg.scaled(kib(100), repetitions=2)
        assert scaled.file_size == kib(100)
        assert scaled.repetitions == 2
        assert cfg.file_size == mib(8)  # original untouched

    def test_cache_key_is_stable_and_complete(self):
        import dataclasses

        cfg = ExperimentConfig()
        assert cfg.cache_key() == ExperimentConfig().cache_key()
        # Every field — including ones the old hand-built benchmark key
        # missed (qdisc, gso, ack overrides, the nested network config) —
        # must perturb the key.
        for field, value in [
            ("qdisc", "fq"),
            ("gso", "on"),
            ("client_ack_threshold", 4),
            ("bucket_packets", 16),
            ("ecn", True),
            ("network", NetworkConfig(bottleneck_rate_bps=mbit(10))),
        ]:
            changed = dataclasses.replace(cfg, **{field: value})
            assert changed.cache_key() != cfg.cache_key(), field

    def test_cache_key_sees_impairments(self):
        cfg = ExperimentConfig()
        keys = {
            cfg.cache_key(),
            ExperimentConfig(
                network=NetworkConfig(forward_impairments=(iid_loss(0.01),))
            ).cache_key(),
            ExperimentConfig(
                network=NetworkConfig(forward_impairments=(iid_loss(0.02),))
            ).cache_key(),
            ExperimentConfig(
                network=NetworkConfig(reverse_impairments=(iid_loss(0.01),))
            ).cache_key(),
        }
        assert len(keys) == 4

    def test_label_encodes_impairments(self):
        cfg = ExperimentConfig(
            stack="quiche",
            qdisc="fq",
            network=NetworkConfig(
                forward_impairments=(burst_loss(),),
                reverse_impairments=(iid_loss(0.01),),
            ),
        )
        assert cfg.label == "quiche/cubic/fq/ge0.003-0.3/r-loss0.01"

    def test_experiment_validate_runs_network_validate(self):
        bad = ExperimentConfig(network=NetworkConfig(reverse_impairments=(rate_flap(),)))
        with pytest.raises(ConfigError):
            bad.validate()


def test_scenarios_cover_paper_experiments():
    from repro.framework import scenarios

    base = scenarios.all_baselines()
    assert set(base) == {"quiche", "picoquic", "ngtcp2", "tcp"}
    for cfg in base.values():
        cfg.validate()
        assert cfg.cca == "cubic"

    fq = scenarios.quiche_fq(spurious_rollback=True)
    assert fq.qdisc == "fq" and fq.spurious_rollback

    gso = scenarios.quiche_gso("paced")
    assert gso.gso == "paced" and gso.spurious_rollback is False

    sweep = scenarios.cca_sweep("picoquic")
    assert set(sweep) == {"cubic", "newreno", "bbr"}

    for qdisc in ("none", "fq", "etf", "etf-offload"):
        scenarios.precision_config(qdisc).validate()
