"""Distributed chaos acceptance: a 2-agent localhost campaign survives agent
SIGKILLs, dropped heartbeats, socket partitions, and a coordinator kill —
and every surviving run is bit-identical (result fingerprints and store
``content_fingerprint``) to the in-process run of the same grid.

Worker agents are real subprocesses launched by the coordinator; the chaos
worker functions run *inside the agents* (resolved by importable name) and
consult marker files under ``$REPRO_CHAOS_DIR``, which agents inherit from
the coordinator's environment at launch, so each fault fires exactly once
and the re-dispatched lease — same derived seed — must reproduce the clean
result bit for bit.
"""

import os
import time
from pathlib import Path

import pytest

from repro.framework.cache import ResultCache
from repro.framework.config import ExperimentConfig, NetworkConfig
from repro.framework.executors import DistributedExecutor
from repro.framework.runner import _run_one
from repro.framework.store import ResultStore
from repro.framework.supervision import SupervisionPolicy
from repro.framework.sweep import SweepRunner
from repro.net.impairments import iid_loss
from repro.units import kib

FAST = SupervisionPolicy(timeout_s=60.0, retries=2, backoff_base_s=0.0, poll_interval_s=0.02)

#: Tight failure-detection knobs so each chaos case converges in seconds.
TUNED = dict(
    lease_timeout_s=30.0,
    heartbeat_interval_s=0.1,
    heartbeat_misses=5,
    relaunch_backoff_s=0.1,
    relaunch_backoff_max_s=0.5,
    max_host_failures=10,
    connect_timeout_s=30.0,
    reconnect_grace_s=0.3,
    straggler_after_s=20.0,
    poll_interval_s=0.02,
)


def _executor(hosts="localhost:2", **overrides):
    return DistributedExecutor(hosts=hosts, **{**TUNED, **overrides})


def _grid():
    return {
        "clean": ExperimentConfig(stack="quiche", file_size=kib(100), repetitions=2),
        "lossy": ExperimentConfig(
            stack="quiche",
            file_size=kib(100),
            repetitions=2,
            network=NetworkConfig(forward_impairments=(iid_loss(0.02),)),
        ),
    }


def _fingerprints(summaries):
    return {
        name: [r.fingerprint() for r in summary.results]
        for name, summary in summaries.items()
    }


def _store_of(summaries, path) -> ResultStore:
    """Record already-computed summaries into a fresh store (ground truth)."""
    store = ResultStore(path)
    for name, summary in summaries.items():
        for rep, result in enumerate(summary.results):
            store.record_result(name, rep, result)
    return store


def _chaos_marker(tag: str) -> Path:
    return Path(os.environ["REPRO_CHAOS_DIR"]) / tag


@pytest.fixture(scope="module")
def clean_serial():
    """The uninterrupted in-process ground truth every chaotic run must match."""
    return SweepRunner(workers=1, backend="inprocess").run(_grid())


@pytest.fixture
def chaos_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path / "chaos"))
    (tmp_path / "chaos").mkdir()
    return tmp_path


# -- chaos worker functions (execute inside agent processes) ----------------


def die_once_run_one(config, seed):
    """First execution of each lossy rep kills its agent process outright."""
    marker = _chaos_marker(f"died-{seed}")
    if config.network.forward_impairments and not marker.exists():
        marker.touch()
        os._exit(31)  # as abrupt as a SIGKILL: no result, no failure frame
    return _run_one(config, seed)


def stall_heartbeats_run_one(config, seed):
    """First lossy rep wedges its agent: heartbeats stop, the rep never ends."""
    marker = _chaos_marker(f"stalled-{seed}")
    if config.network.forward_impairments and not marker.exists():
        marker.touch()
        from repro.framework import remote

        remote.stop_heartbeats()
        time.sleep(120)  # agent is declared lost and killed long before this
    return _run_one(config, seed)


def partition_once_run_one(config, seed):
    """First lossy rep severs the agent's socket, then computes anyway.

    The coordinator reclaims the lease and re-dispatches it; the partitioned
    agent finishes its copy, reconnects, and re-delivers — first result
    wins, the other is discarded idempotently.
    """
    marker = _chaos_marker(f"partitioned-{seed}")
    if config.network.forward_impairments and not marker.exists():
        marker.touch()
        from repro.framework import remote

        remote.drop_connection()
    return _run_one(config, seed)


def flaky_once_run_one(config, seed):
    """Every rep's first execution raises; the Supervisor's retry (same
    derived seed, possibly on another host) must match the clean run."""
    # Both grid configs share default seeds, so the marker needs the config
    # identity too or the second config's rep would not flake.
    kind = "lossy" if config.network.forward_impairments else "clean"
    marker = _chaos_marker(f"flaked-{kind}-{seed}")
    if not marker.exists():
        marker.touch()
        raise ValueError("injected remote flake")
    return _run_one(config, seed)


def always_die_run_one(config, seed):
    os._exit(33)


# -- the harness -----------------------------------------------------------


def test_distributed_campaign_matches_inprocess_bit_for_bit(clean_serial):
    executor = _executor()
    summaries = SweepRunner(workers=4, policy=FAST, backend=executor).run(_grid())
    assert _fingerprints(summaries) == _fingerprints(clean_serial)
    assert all(not s.failures for s in summaries.values())
    coordinator = executor.last_coordinator
    assert coordinator.stats.settled == 4  # all four reps really ran remotely
    report = coordinator.host_report()
    assert report["localhost"]["reps_done"] == 4
    assert report["localhost"]["failures"] == 0


def test_agent_killed_mid_rep_recovers_bit_identically(chaos_dir, clean_serial):
    executor = _executor()
    summaries = SweepRunner(
        workers=4, policy=FAST, backend=executor, run_fn=die_once_run_one
    ).run(_grid())
    assert _fingerprints(summaries) == _fingerprints(clean_serial)
    # The kill is charged to the host (relaunch), never the config: no
    # RepFailures, no quarantine, and the host report shows the crashes.
    assert all(not s.failures for s in summaries.values())
    coordinator = executor.last_coordinator
    report = coordinator.host_report()
    assert report["localhost"]["failures"] >= 1
    assert not report["localhost"]["quarantined"]
    assert coordinator.stats.reclaimed >= 1
    assert report["localhost"]["agents_launched"] >= 3  # replacements came up


def test_agent_with_dropped_heartbeats_is_replaced(chaos_dir, clean_serial):
    executor = _executor()
    summaries = SweepRunner(
        workers=4, policy=FAST, backend=executor, run_fn=stall_heartbeats_run_one
    ).run(_grid())
    assert _fingerprints(summaries) == _fingerprints(clean_serial)
    assert all(not s.failures for s in summaries.values())
    coordinator = executor.last_coordinator
    assert coordinator.stats.reclaimed >= 1  # the wedged lease was reclaimed
    assert coordinator.host_report()["localhost"]["failures"] >= 1


def test_partitioned_socket_reconnects_and_duplicates_resolve(chaos_dir, clean_serial):
    store = ResultStore(chaos_dir / "partition.sqlite")
    # Long ghost grace: the partitioned agent must survive long enough to
    # finish its repetition, reconnect, and re-deliver the held result.
    executor = _executor(reconnect_grace_s=15.0)
    summaries = SweepRunner(
        workers=4, policy=FAST, backend=executor,
        run_fn=partition_once_run_one, store=store,
    ).run(_grid())
    assert _fingerprints(summaries) == _fingerprints(clean_serial)
    assert all(not s.failures for s in summaries.values())
    # Both the re-dispatched copy and the reconnecting agent's held result
    # were delivered; the store's (config-hash, seed) key keeps one row each.
    assert store.rep_count() == 4
    assert store.failure_count() == 0
    clean_store = _store_of(clean_serial, chaos_dir / "clean.sqlite")
    assert store.content_fingerprint() == clean_store.content_fingerprint()


def test_remote_exception_retried_with_same_seed_is_bit_identical(
    chaos_dir, clean_serial
):
    executor = _executor()
    summaries = SweepRunner(
        workers=4, policy=FAST, backend=executor, run_fn=flaky_once_run_one
    ).run(_grid())
    assert _fingerprints(summaries) == _fingerprints(clean_serial)
    assert all(not s.failures for s in summaries.values())
    # Exceptions raised *by the repetition* travel back as failure frames
    # and are charged to the config through the ordinary retry machinery.
    assert executor.last_coordinator.stats.rep_failures == 4


class _KillAfter:
    """A progress stream whose write raises once enough sweep-level progress
    lines have been printed — the in-process stand-in for SIGKILLing the
    coordinator process.

    It only trips on ``[sweep]`` lines, which the SweepRunner prints on the
    main thread *after* journaling and storing the repetition; the
    coordinator's own ``[remote]`` narration (emitted from its service
    threads) passes through untouched.
    """

    def __init__(self, sweep_lines: int):
        self.remaining = sweep_lines

    def write(self, text: str) -> None:
        if "[sweep]" in text:
            self.remaining -= 1
            if self.remaining < 0:
                raise KeyboardInterrupt

    def flush(self) -> None:
        pass


def test_coordinator_killed_mid_campaign_resumes_to_bit_identical_store(
    chaos_dir, clean_serial
):
    """The PR's acceptance case: 2 localhost agents, the coordinator dies
    after two settled reps, a second invocation resumes through the journal
    and the final store fingerprint equals the in-process run's."""
    cache = ResultCache(chaos_dir / "cache")
    journal_dir = chaos_dir / "journals"
    store_path = chaos_dir / "campaign.sqlite"
    with pytest.raises(KeyboardInterrupt):
        SweepRunner(
            workers=4,
            policy=FAST,
            backend=_executor(),
            stream=_KillAfter(sweep_lines=1),
            cache=cache,
            journal_dir=journal_dir,
            store=ResultStore(store_path),
        ).run(_grid())
    interrupted = ResultStore(store_path)
    assert 0 < interrupted.rep_count() < 4  # the kill landed mid-campaign
    interrupted.close()

    resumed_store = ResultStore(store_path)
    summaries = SweepRunner(
        workers=4,
        policy=FAST,
        backend=_executor(),
        cache=ResultCache(chaos_dir / "cache"),
        journal_dir=journal_dir,
        store=resumed_store,
    ).run(_grid())
    assert all(not s.failures for s in summaries.values())
    assert _fingerprints(summaries) == _fingerprints(clean_serial)
    assert resumed_store.rep_count() == 4  # journal replay added no duplicates
    assert resumed_store.failure_count() == 0
    clean_store = _store_of(clean_serial, chaos_dir / "clean.sqlite")
    assert resumed_store.content_fingerprint() == clean_store.content_fingerprint()


def test_all_hosts_lost_fails_with_per_host_attribution(chaos_dir):
    """When every host is gone the campaign fails fast — and the failures
    are attributed to the host, not the configuration."""
    executor = _executor(hosts="localhost:1", max_host_failures=1)
    grid = {"clean": ExperimentConfig(stack="quiche", file_size=kib(100), repetitions=2)}
    summaries = SweepRunner(
        workers=2, policy=FAST, backend=executor, run_fn=always_die_run_one
    ).run(grid)
    failures = summaries["clean"].failures
    assert len(failures) == 2
    for failure in failures:
        assert failure.error_type == "HostLostError"
        assert failure.host == "localhost"  # charged to the host...
        assert not failure.quarantined  # ...not the config
    report = executor.last_coordinator.host_report()
    assert report["localhost"]["quarantined"]
    assert report["localhost"]["failures"] >= 1
