"""ResultStore unit tests: recording, identity, querying, migration.

The differential suite (``test_store_differential.py``) pins store-vs-JSON
equality across backends; this file covers the store's own contract —
idempotent keys, filters, pooled aggregation, schema versioning, and
migration from the two legacy artifact forms (result cache, summary JSON).
"""

import dataclasses
import io
import json
import pickle
import sqlite3

import pytest

from repro.errors import ConfigError
from repro.framework.cache import ResultCache
from repro.framework.config import ExperimentConfig, NetworkConfig
from repro.framework.experiment import run_experiment
from repro.framework.runner import run_repetitions
from repro.framework.store import (
    ResultStore,
    STORE_VERSION,
    per_rep_key,
    per_rep_key_from_dict,
)
from repro.framework.supervision import RepFailure
from repro.metrics.gaps import fraction_leq, pooled_gaps
from repro.metrics.trains import pooled_fraction_of_packets_in_trains_leq
from repro.net.impairments import iid_loss
from repro.units import kib, us

CONFIG = ExperimentConfig(stack="quiche", file_size=kib(96), repetitions=2)
LOSSY = ExperimentConfig(
    stack="tcp",
    file_size=kib(96),
    repetitions=1,
    network=NetworkConfig(forward_impairments=(iid_loss(0.02),)),
)


@pytest.fixture(scope="module")
def results():
    return [run_experiment(CONFIG, seed=seed) for seed in (11, 12)]


@pytest.fixture
def store(tmp_path):
    with ResultStore(tmp_path / "results.sqlite") as st:
        yield st


def _failure(name="poison", seed=99, rep=0):
    return RepFailure(
        name=name,
        label="quiche/cubic",
        rep=rep,
        seed=seed,
        error_type="WorkerCrashError",
        message="exit code 23",
        traceback="Traceback ...",
        attempts=3,
        wall_time_s=1.5,
        quarantined=True,
    )


class TestRecording:
    def test_rows_land_with_queryable_scalars(self, store, results):
        for rep, result in enumerate(results):
            store.record_result("quiche", rep, result)
        rows = store.query()
        assert [r["rep"] for r in rows] == [0, 1]
        assert [r["seed"] for r in rows] == [r.seed for r in results]
        for row, result in zip(rows, results):
            assert row["fingerprint"] == result.fingerprint()
            assert row["goodput_mbps"] == pytest.approx(result.goodput_mbps)
            assert row["stack"] == "quiche"
            assert row["kind"] == "experiment"
            assert 0.0 <= row["b2b_share"] <= 1.0

    def test_re_recording_is_idempotent(self, store, results):
        for _ in range(3):
            store.record_result("quiche", 0, results[0])
        assert store.rep_count() == 1
        fingerprint = store.content_fingerprint()
        store.record_result("quiche", 0, results[0])
        assert store.content_fingerprint() == fingerprint

    def test_failures_round_trip_and_success_supersedes(self, store, results):
        failure = _failure(name="quiche", seed=results[0].seed)
        store.record_failure(failure, CONFIG)
        assert store.failures() == [failure]
        assert store.names() == ["quiche"]
        # The same (config, seed) later succeeds (e.g. after --no-resume):
        # the stale failure row must not survive next to the success.
        store.record_result("quiche", 0, results[0])
        assert store.failure_count() == 0
        assert store.rep_count() == 1

    def test_precision_column_filled_when_expected_log_present(self, store):
        config = ExperimentConfig(stack="quiche", qdisc="etf", file_size=kib(96))
        result = run_experiment(config, seed=5)
        store.record_result("etf", 0, result)
        (row,) = store.query()
        if getattr(result, "expected_send_log", None):
            assert row["precision_ns"] is not None and row["precision_ns"] >= 0.0
        else:
            assert row["precision_ns"] is None


class TestSeeds:
    def test_full_64_bit_seed_range_round_trips(self, store):
        # derive_seed mixes into the full unsigned 64-bit range; the upper
        # half must survive SQLite's signed INTEGER (stored two's-complement).
        for seed in (0, 1, (1 << 63) - 1, 1 << 63, (1 << 64) - 1):
            failure = _failure(name=f"s-{seed}", seed=seed)
            store.record_failure(failure, CONFIG)
            (read,) = store.failures(f"s-{seed}")
            assert read.seed == seed

    def test_large_seed_results_query_back_exactly(self, store, results):
        from repro.framework.artifacts import rep_to_dict

        raw = dict(rep_to_dict(results[0]), seed=(1 << 64) - 3)
        store._ingest_payload(name="big", label="big", rep=0, payload=raw)
        (row,) = store.query(name="big")
        assert row["seed"] == (1 << 64) - 3
        assert store.payloads("big")[0]["seed"] == (1 << 64) - 3


class TestKeys:
    def test_live_and_json_config_keys_agree(self, results):
        payload_config = json.loads(json.dumps(dataclasses.asdict(results[0].config)))
        assert per_rep_key(results[0].config) == per_rep_key_from_dict(payload_config)

    def test_key_ignores_repetition_count(self):
        grown = dataclasses.replace(CONFIG, repetitions=20)
        assert per_rep_key(CONFIG) == per_rep_key(grown)

    def test_key_distinguishes_configs(self):
        assert per_rep_key(CONFIG) != per_rep_key(LOSSY)


class TestQuerying:
    @pytest.fixture
    def populated(self, store, results):
        for rep, result in enumerate(results):
            store.record_result("quiche", rep, result)
        store.record_result("lossy", 0, run_experiment(LOSSY, seed=7))
        return store

    def test_filters_restrict_rows(self, populated):
        assert len(populated.query()) == 3
        assert len(populated.query(stack="quiche")) == 2
        assert len(populated.query(name="lossy")) == 1
        assert len(populated.query(stack="quiche", qdisc="none")) == 2
        assert populated.query(stack="msquic") == []

    def test_impairment_filter_matches_slug_substring(self, populated):
        rows = populated.query(impairment="loss")
        assert [r["name"] for r in rows] == ["lossy"]
        assert populated.query(impairment="reorder") == []

    def test_unknown_filter_is_a_config_error(self, populated):
        with pytest.raises(ConfigError, match="unknown filter"):
            populated.query(stacks="quiche")

    def test_aggregate_mean_and_percentiles(self, populated, results):
        agg = populated.aggregate("goodput_mbps", stack="quiche")
        assert agg["n"] == 2
        values = sorted(r.goodput_mbps for r in results)
        assert agg["mean"] == pytest.approx(sum(values) / 2)
        assert agg["p50"] in values and agg["p99"] in values

    def test_aggregate_unknown_metric_is_a_config_error(self, populated):
        with pytest.raises(ConfigError, match="unknown metric"):
            populated.aggregate("wall_time_s")

    def test_aggregate_empty_selection(self, populated):
        agg = populated.aggregate("goodput_mbps", stack="msquic")
        assert agg == {"metric": "goodput_mbps", "n": 0}

    def test_names_keep_first_insertion_order(self, populated):
        assert populated.names() == ["quiche", "lossy"]
        populated.record_failure(_failure(name="poison"), CONFIG)
        assert populated.names() == ["quiche", "lossy", "poison"]

    def test_group_summaries_pool_shares_exactly_like_the_sweep_cli(
        self, populated, results
    ):
        groups = populated.group_summaries()
        grp = groups["quiche"]
        records = [r.server_records for r in results]
        assert grp["reps"] == 2
        assert grp["b2b_share"] == pytest.approx(
            fraction_leq(pooled_gaps(records), us(15)), abs=1e-12
        )
        assert grp["trains_leq5_share"] == pytest.approx(
            pooled_fraction_of_packets_in_trains_leq(records, 5), abs=1e-12
        )
        assert grp["failed"] == 0

    def test_group_summaries_surface_all_failed_configs(self, store):
        store.record_failure(_failure(), CONFIG)
        groups = store.group_summaries()
        assert groups["poison"]["reps"] == 0
        assert groups["poison"]["failed"] == 1
        assert groups["poison"]["goodput"] is None


class TestConcurrency:
    def test_store_opens_in_wal_mode(self, store):
        (mode,) = store._conn.execute("PRAGMA journal_mode").fetchone()
        assert mode.lower() == "wal"

    def test_reader_queries_while_a_campaign_streams_in(self, tmp_path, results):
        """`repro store query/report` must work mid-campaign: WAL readers
        never block (or get blocked by) the coordinator's writer connection."""
        import threading

        path = tmp_path / "live.sqlite"
        writer = ResultStore(path)
        writer.record_result("quiche", 0, results[0])
        errors = []
        stop = threading.Event()

        def read_loop():
            # Its own connection, like a separate `repro store query` process.
            try:
                reader = ResultStore(path)
                while not stop.is_set():
                    reader.query()
                    reader.content_fingerprint()
                reader.close()
            except Exception as exc:  # pragma: no cover - the failure path
                errors.append(exc)

        thread = threading.Thread(target=read_loop)
        thread.start()
        try:
            for _ in range(30):
                writer.record_result("quiche", 1, results[1])
                writer.record_failure(_failure(), CONFIG)
        finally:
            stop.set()
            thread.join()
        assert errors == []
        assert writer.rep_count() == 2
        assert writer.failure_count() == 1

    def test_locked_write_retries_until_the_lock_clears(self, tmp_path):
        """A write that hits `database is locked` retries with backoff instead
        of surfacing the OperationalError to the campaign."""
        import threading

        path = tmp_path / "contended.sqlite"
        store = ResultStore(path)
        # check_same_thread=False so the timer thread may release the lock.
        blocker = sqlite3.connect(str(path), check_same_thread=False)
        blocker.execute("PRAGMA busy_timeout = 0")
        blocker.execute("BEGIN IMMEDIATE")  # holds the write lock

        timer = threading.Timer(0.3, blocker.rollback)
        timer.start()
        try:
            store.record_failure(_failure(), CONFIG)  # must outlast the lock
        finally:
            timer.cancel()
            blocker.close()
        assert store.failure_count() == 1

    def test_lock_retry_is_bounded_not_infinite(self, tmp_path, monkeypatch):
        from repro.framework import store as store_module

        monkeypatch.setattr(store_module, "_LOCK_RETRY_BASE_S", 0.001)
        path = tmp_path / "stuck.sqlite"
        store = ResultStore(path)
        blocker = sqlite3.connect(str(path))
        blocker.execute("PRAGMA busy_timeout = 0")
        blocker.execute("BEGIN IMMEDIATE")
        store._conn.execute("PRAGMA busy_timeout = 0")  # keep the test fast
        try:
            with pytest.raises(sqlite3.OperationalError, match="locked"):
                store.record_failure(_failure(), CONFIG)
        finally:
            blocker.rollback()
            blocker.close()


class TestVersioning:
    def test_newer_store_is_rejected_not_misread(self, tmp_path):
        path = tmp_path / "future.sqlite"
        ResultStore(path).close()
        conn = sqlite3.connect(str(path))
        conn.execute(f"PRAGMA user_version = {STORE_VERSION + 1}")
        conn.commit()
        conn.close()
        with pytest.raises(ConfigError, match="newer"):
            ResultStore(path)

    def test_reopening_preserves_rows(self, tmp_path, results):
        path = tmp_path / "persist.sqlite"
        with ResultStore(path) as store:
            store.record_result("quiche", 0, results[0])
            fingerprint = store.content_fingerprint()
        with ResultStore(path) as store:
            assert store.rep_count() == 1
            assert store.content_fingerprint() == fingerprint


class TestExport:
    def test_export_unknown_name_is_a_config_error(self, store):
        with pytest.raises(ConfigError, match="no repetitions named"):
            store.export_summary_dict("nope")

    def test_export_round_trips_through_json_file(self, store, results, tmp_path):
        for rep, result in enumerate(results):
            store.record_result("quiche", rep, result)
        path = store.export_summary_json("quiche", tmp_path / "out.json")
        data = json.loads(path.read_text())
        assert data["label"] == "quiche/cubic"
        assert [r["seed"] for r in data["repetitions"]] == [r.seed for r in results]


class TestMigration:
    def test_cache_migration_reproduces_the_live_store(self, tmp_path, results):
        cache = ResultCache(tmp_path / "cache")
        live = ResultStore(tmp_path / "live.sqlite")
        run_repetitions(CONFIG, workers=1, cache=cache, store=live)

        migrated = ResultStore(tmp_path / "migrated.sqlite")
        assert migrated.migrate_cache(cache.root) == 2
        # Cache entries key by label (the per-run grid name), as does the
        # single-config run above — content must match bit for bit.
        assert migrated.content_fingerprint() == live.content_fingerprint()

    def test_cache_migration_skips_unreadable_entries(self, tmp_path):
        root = tmp_path / "cache"
        (root / "ab").mkdir(parents=True)
        (root / "ab" / "abcd.pkl").write_bytes(pickle.dumps((999, None)))
        (root / "ab" / "torn.pkl").write_bytes(b"\x80not a pickle")
        stream = io.StringIO()
        store = ResultStore(tmp_path / "m.sqlite", stream=stream)
        assert store.migrate_cache(root) == 0
        warnings = stream.getvalue()
        assert warnings.count("[store] warning: skipped") == 2

    def test_json_artifact_migration_matches_live_recording(
        self, tmp_path, results
    ):
        from repro.framework.artifacts import save_summary
        from repro.framework.runner import summarize_results

        summary = summarize_results(CONFIG, results)
        artifact = save_summary(summary, tmp_path / "a.json")

        live = ResultStore(tmp_path / "live.sqlite")
        for rep, result in enumerate(results):
            live.record_result(CONFIG.label, rep, result)

        migrated = ResultStore(tmp_path / "migrated.sqlite")
        assert migrated.ingest_summary_json(artifact) == 2
        # precision_ns is the one live-only column (needs the expected-send
        # log); this config has no pacing log, so content matches exactly.
        assert migrated.content_fingerprint() == live.content_fingerprint()
