"""Golden fingerprints: the hot-path overhaul changes *nothing* observable.

The engine fast path, columnar capture, lazy qlog, and every micro-
optimization in the send/receive path must be invisible in the results: the
hashes below were recorded on the pre-overhaul implementation (commit
0460930) and every future engine change must keep reproducing them
bit-for-bit. The matrix deliberately crosses stacks (all four QUIC profiles
plus TCP), qdiscs (fq, etf), CCAs (cubic, bbr), GSO, loss impairment, and
full observability (qlog + cwnd/queue traces), so a determinism break in any
optimized layer trips at least one entry.

A second set of tests runs part of the matrix through the sweep runner's
serial, parallel, and warm-cache paths: all three must reproduce the same
golden value, pinning the "optimized engine == seed engine, regardless of
execution mode" claim end to end.
"""

from __future__ import annotations

import pytest

from repro.framework.cache import ResultCache
from repro.framework.config import ExperimentConfig, NetworkConfig
from repro.framework.experiment import run_experiment
from repro.framework.sweep import SweepRunner
from repro.net.impairments import iid_loss
from repro.units import kib

#: (config, seed) -> sha256 fingerprint recorded on the seed implementation.
GOLDEN = {
    "quiche-fq": (
        ExperimentConfig(stack="quiche", qdisc="fq", file_size=kib(512)),
        1,
        "329129614e15d2c7c4d59a2e47a5bd54f9867e77fffa4c3883bdf6f77ee09bde",
    ),
    "quiche-gso": (
        ExperimentConfig(stack="quiche", gso="on", file_size=kib(512)),
        2,
        "993c5fb7e9fe941016508070f082adb00d7febe3a9cf262d7619b693392e5f1d",
    ),
    "ngtcp2": (
        ExperimentConfig(stack="ngtcp2", file_size=kib(512)),
        1,
        "b11d9b8a928211d3012b7e1ef889be35a218f7e8f3032ad7f1b0027d0fefb8ce",
    ),
    "picoquic": (
        ExperimentConfig(stack="picoquic", file_size=kib(512)),
        2,
        "c972eb1ec642a2f50911a8d90cfdac5049f4ff9ad76ca3233dfd44d8a7caa82d",
    ),
    "tcp": (
        ExperimentConfig(stack="tcp", file_size=kib(512)),
        1,
        "1d196e259f9de9cbe58aacb53133dd6bc146854fd42c03df96a8cb12204c087c",
    ),
    "quiche-bbr-qlog": (
        ExperimentConfig(
            stack="quiche",
            cca="bbr",
            qlog=True,
            trace_cwnd=True,
            trace_queue=True,
            file_size=kib(256),
        ),
        3,
        "2c49ed061a90b7859f534b4e9caa1edde4279aa9d73ebc257550ede0cc1a57f9",
    ),
    "quiche-loss": (
        ExperimentConfig(
            stack="quiche",
            file_size=kib(256),
            network=NetworkConfig(forward_impairments=(iid_loss(0.01),)),
        ),
        1,
        "358715bfc36f3fb548bb0aeca7f2791db03e1349e2e154104b1820dfe1ab716f",
    ),
    "quiche-etf": (
        ExperimentConfig(stack="quiche", qdisc="etf", file_size=kib(256)),
        1,
        "e1494ecbee06a01bd3ef64ea534c1fff8f08c7eedb479e7635152ae78074d135",
    ),
}


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_fingerprint(name):
    config, seed, expected = GOLDEN[name]
    assert run_experiment(config, seed=seed).fingerprint() == expected


#: Sweep-runner slice of the matrix: config.seed chosen so repetition 0's
#: derived seed reproduces the direct-run golden is *not* assumed — instead
#: the three execution modes are pinned against each other and against a
#: serial run recorded below.
SWEEP_GRID = {
    "quiche-loss": ExperimentConfig(
        stack="quiche",
        file_size=kib(256),
        repetitions=2,
        seed=1,
        network=NetworkConfig(forward_impairments=(iid_loss(0.01),)),
    ),
    "quiche-etf": ExperimentConfig(
        stack="quiche", qdisc="etf", file_size=kib(256), repetitions=2, seed=1
    ),
}


def _fingerprints(summaries):
    return {
        name: [r.fingerprint() for r in summary.results]
        for name, summary in summaries.items()
    }


def test_sweep_modes_reproduce_identical_fingerprints(tmp_path):
    serial = SweepRunner(workers=1).run(SWEEP_GRID)
    parallel = SweepRunner(workers=4).run(SWEEP_GRID)
    cache = ResultCache(tmp_path / "cache")
    cold = SweepRunner(workers=2, cache=cache).run(SWEEP_GRID)
    warm = SweepRunner(workers=1, cache=cache).run(SWEEP_GRID)
    assert cache.stats.hits == 4
    assert (
        _fingerprints(serial)
        == _fingerprints(parallel)
        == _fingerprints(cold)
        == _fingerprints(warm)
    )


def test_every_backend_reproduces_the_golden_sweep_fingerprints():
    """Execution backends are invisible in the golden matrix: inprocess,
    pool, spawn, and forkserver all reproduce the same fingerprints."""
    from repro.framework.executors import BACKENDS

    prints = {
        backend: _fingerprints(SweepRunner(workers=2, backend=backend).run(SWEEP_GRID))
        for backend in BACKENDS
    }
    reference = prints["inprocess"]
    assert all(value == reference for value in prints.values()), prints
