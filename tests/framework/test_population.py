"""Flow populations: generation, determinism, sweep integration, scale."""

import json
import tempfile
from pathlib import Path

import pytest

from repro.errors import ConfigError
from repro.framework.population import (
    FlowPopulation,
    PopulationConfig,
    duel_analysis,
    parse_profile,
    run_population,
)
from repro.sim.random import derive_seed
from repro.units import kib, mib, ms, seconds


def small_config(**kwargs):
    kwargs.setdefault("flows", 16)
    kwargs.setdefault("arrival_rate_per_s", 200.0)
    kwargs.setdefault("file_size", kib(32))
    kwargs.setdefault("profiles", ("quiche:cubic", "tcp"))
    kwargs.setdefault("max_sim_time_ns", seconds(120))
    return PopulationConfig(**kwargs)


# -- profile parsing ---------------------------------------------------------


def test_parse_profile_defaults():
    profile = parse_profile("quiche")
    assert (profile.stack, profile.cca, profile.qdisc, profile.gso) == (
        "quiche", "cubic", "none", "off",
    )


def test_parse_profile_full():
    profile = parse_profile("quiche:bbr:fq:paced")
    assert profile.label == "quiche/bbr/fq/gso-paced"


@pytest.mark.parametrize("bad", ["", "nosuchstack", "quiche:cubic:fq:paced:extra", "tcp:cubic:none:on"])
def test_parse_profile_rejects(bad):
    with pytest.raises(ConfigError):
        parse_profile(bad)


# -- config validation -------------------------------------------------------


def test_config_validates():
    small_config().validate()


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(flows=0),
        dict(flows=100_000),
        dict(arrival="tides"),
        dict(arrival_rate_per_s=0.0),
        dict(arrival="trace"),  # no times supplied
        dict(arrival="trace", arrival_times_ns=(0, -1) + (0,) * 14),
        dict(size_dist="zipf"),
        dict(file_size=0),
        dict(min_file_size=0),
        dict(profiles=()),
        dict(profiles=("nosuchstack",)),
        dict(repetitions=0),
        dict(extra_rtt_max_ns=-1),
    ],
)
def test_config_rejects(kwargs):
    with pytest.raises(ConfigError):
        small_config(**kwargs).validate()


def test_cache_key_covers_every_field():
    base = small_config()
    assert base.cache_key() != small_config(flows=17).cache_key()
    assert base.cache_key() != small_config(extra_rtt_max_ns=ms(1)).cache_key()
    assert base.cache_key() == small_config().cache_key()


# -- generation --------------------------------------------------------------


def test_generator_is_deterministic():
    config = small_config(size_dist="exp", extra_rtt_max_ns=ms(30))
    assert FlowPopulation(config).specs(7) == FlowPopulation(config).specs(7)
    assert FlowPopulation(config).specs(7) != FlowPopulation(config).specs(8)


def test_profiles_assigned_round_robin():
    specs = FlowPopulation(small_config(flows=10)).specs(1)
    stacks = [s.stack for s in specs]
    assert stacks.count("quiche") == 5
    assert stacks.count("tcp") == 5


def test_poisson_arrivals_are_increasing():
    specs = FlowPopulation(small_config(flows=50)).specs(3)
    starts = [s.start_ns for s in specs]
    assert starts == sorted(starts)
    assert starts[-1] > starts[0]


def test_uniform_arrivals_are_evenly_spaced():
    specs = FlowPopulation(small_config(arrival="uniform", arrival_rate_per_s=100.0)).specs(1)
    gaps = {b.start_ns - a.start_ns for a, b in zip(specs, specs[1:])}
    assert gaps == {ms(10)}


def test_trace_arrivals_are_exact():
    times = tuple(ms(5) * i for i in range(16))
    specs = FlowPopulation(small_config(arrival="trace", arrival_times_ns=times)).specs(1)
    assert tuple(s.start_ns for s in specs) == times


def test_exp_sizes_respect_floor_and_vary():
    config = small_config(size_dist="exp", file_size=kib(64), min_file_size=kib(16))
    sizes = [s.file_size for s in FlowPopulation(config).specs(1)]
    assert all(size >= kib(16) for size in sizes)
    assert len(set(sizes)) > 1


def test_extra_rtt_draws_bounded():
    config = small_config(extra_rtt_max_ns=ms(25))
    rtts = [s.extra_rtt_ns for s in FlowPopulation(config).specs(1)]
    assert all(0 <= r <= ms(25) for r in rtts)
    assert len(set(rtts)) > 1


# -- execution ---------------------------------------------------------------


def test_population_run_completes_and_validates():
    result = run_population(small_config())
    assert result.completed
    assert result.completed_count == 16
    assert result.multi.unrouted == 0
    result.multi.validate()
    from repro.framework.validate import validate_result

    validate_result(result)  # dispatches to validate_population


def test_population_capture_stays_columnar():
    result = run_population(small_config())
    assert all(not f.records for f in result.multi.flows)
    assert all(f.wire_packets > 0 for f in result.multi.flows)


def test_per_profile_partition_and_distributions():
    result = run_population(small_config())
    assert sum(int(p["flows"]) for p in result.per_profile.values()) == 16
    assert set(result.goodput_dist) == {"mean", "p50", "p90", "p99"}
    assert result.goodput_dist["p50"] <= result.goodput_dist["p99"]
    assert 0.0 <= result.fairness <= 1.0


def test_incomplete_population_reports_delivered_goodput():
    config = small_config(file_size=mib(8), max_sim_time_ns=seconds(1))
    result = run_population(config)
    assert not result.completed
    stalled = [f for f in result.multi.flows if not f.completed]
    assert stalled
    assert all(f.bytes_received < f.spec.file_size for f in stalled)
    # Delivered-bytes goodput respects the bottleneck; the old full-file
    # accounting would report absurd rates for cut-off flows.
    assert all(f.goodput_mbps < 45 for f in stalled)
    result.multi.validate()


def test_ratio_matrix_and_beats_consistent():
    result = run_population(small_config(flows=20))
    labels = sorted(result.per_profile)
    assert set(result.ratio_matrix) == set(labels)
    for winner, loser in result.beats:
        assert result.ratio_matrix[winner][loser] > 1.05
    # Within one population the relation comes from one goodput per profile,
    # so it is transitive by construction.
    assert result.transitivity == []


# -- determinism and sweep integration ---------------------------------------


def test_deterministic_fingerprint_serial_vs_swept():
    from repro.framework.cache import ResultCache
    from repro.framework.sweep import SweepRunner

    config = small_config(repetitions=2, seed=5)
    serial = [
        run_population(config, seed=derive_seed(config.seed, rep)).fingerprint()
        for rep in range(2)
    ]
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(root=Path(tmp) / "cache")
        runner = SweepRunner(workers=2, cache=cache, journal_dir=Path(tmp) / "j")
        summary = runner.run({"pop": config})["pop"]
        assert not summary.failures
        assert [r.fingerprint() for r in summary.results] == serial
        # Second invocation resumes entirely from cache, bit-identically.
        rerun = SweepRunner(workers=2, cache=cache, journal_dir=Path(tmp) / "j")
        cached = rerun.run({"pop": config})["pop"]
        assert [r.fingerprint() for r in cached.results] == serial
        assert cache.stats.hits == 2


def test_population_artifact_roundtrip():
    from repro.framework.artifacts import population_result_to_dict

    result = run_population(small_config())
    artifact = population_result_to_dict(result)
    encoded = json.loads(json.dumps(artifact))
    assert encoded["fingerprint"] == result.fingerprint()
    assert encoded["completed_flows"] == 16
    assert encoded["unrouted"] == 0


def test_duel_analysis_reports_head_to_head():
    from repro.framework.scenarios import fairness_duels

    grid = fairness_duels(profiles=("quiche:cubic", "tcp"), file_size=kib(256))
    results = {name: run_population(cfg) for name, cfg in grid.items()}
    analysis = duel_analysis(results)
    assert len(analysis["head_to_head"]) == 1
    assert analysis["transitivity_violations"] == []


@pytest.mark.slow
def test_two_hundred_flow_poisson_population_is_deterministic():
    # The acceptance-scale run: 200 Poisson arrivals, four mixed profiles,
    # heterogeneous RTTs, one shared bottleneck. Same seed => identical
    # fingerprint, delivered-byte goodput, clean conservation counters.
    from benchmarks.perf.manyflow import population_config

    config = population_config(200)
    first = run_population(config, seed=1)
    second = run_population(config, seed=1)
    assert first.fingerprint() == second.fingerprint()
    assert len(first.multi.flows) == 200
    assert first.completed
    assert first.multi.unrouted == 0
    for flow in first.multi.flows:
        assert flow.bytes_received == flow.spec.file_size
    first.multi.validate()
