"""CUBIC (RFC 9438) including quiche's spurious-loss rollback."""

from repro.cc.cubic import BETA_CUBIC, Cubic, CubicParams
from tests.cc.helpers import MTU, drive_acks, rtt_of, sp
from repro.units import ms, seconds


def make(**params):
    params.setdefault("hystart", False)
    return Cubic(params=CubicParams(**params), mtu=MTU)


def test_slow_start_exponential():
    cc = make()
    start = cc.cwnd
    drive_acks(cc, 20)
    assert cc.cwnd == start + 20 * MTU


def test_beta_reduction_on_loss():
    cc = make()
    drive_acks(cc, 100)
    before = cc.cwnd
    cc.on_packets_lost([sp(200, ms(2000))], ms(2005), cc.cwnd, 1)
    assert cc.cwnd == int(before * BETA_CUBIC)
    assert not cc.in_slow_start


def test_loss_ends_slow_start_permanently():
    cc = make(hystart=True)
    cc.on_packets_lost([sp(5, ms(100))], ms(105), cc.cwnd, 1)
    assert cc.hystart.done


def test_concave_growth_toward_w_max():
    cc = make()
    drive_acks(cc, 200)
    w_at_loss = cc.cwnd
    cc.on_packets_lost([sp(300, ms(3000))], ms(3001), cc.cwnd, 1)
    reduced = cc.cwnd
    # Drive acks for a simulated while; cwnd approaches but respects W_max.
    rtt = rtt_of(ms(40))
    now = ms(3100)
    for i in range(400):
        p = sp(400 + i, now - ms(40))
        cc.on_packet_sent(p, cc.cwnd, now - ms(40))
        cc.on_packets_acked([p], now, rtt, cc.cwnd, 1)
        now += ms(4)
    assert cc.cwnd > reduced
    # Within the concave region the window should not wildly overshoot W_max.
    assert cc.cwnd <= int(w_at_loss * 1.6)


def test_convex_growth_after_k():
    cc = make()
    drive_acks(cc, 30)
    cc.on_packets_lost([sp(200, ms(2000))], ms(2001), cc.cwnd, 1)
    rtt = rtt_of(ms(40))
    # The cubic epoch starts at the first CA ack; driving past K (a few
    # seconds for this W_max) must push cwnd beyond W_max (convex region).
    w_max_bytes = cc.w_max * MTU
    now = ms(2100)
    for i in range(600):
        p = sp(500 + i, now - ms(40))
        cc.on_packet_sent(p, cc.cwnd, now - ms(40))
        cc.on_packets_acked([p], now, rtt, cc.cwnd, 1)
        now += ms(20)  # 12 simulated seconds overall
    assert cc.cwnd > w_max_bytes


def test_fast_convergence_lowers_w_max():
    cc = make(fast_convergence=True)
    drive_acks(cc, 100)
    cc.on_packets_lost([sp(200, ms(2000))], ms(2001), cc.cwnd, 1)
    first_w_max = cc.w_max
    # Second loss at a lower cwnd: w_max shrinks below current cwnd segments.
    cc.on_packets_lost([sp(300, ms(3000))], ms(3001), cc.cwnd, 2)
    assert cc.w_max < first_w_max


class TestRollback:
    def test_rollback_restores_checkpoint(self):
        cc = make(spurious_rollback=True, rollback_loss_threshold=5)
        drive_acks(cc, 100)
        before = cc.cwnd
        cc.on_packets_lost([sp(200, ms(2000))], ms(2005), cc.cwnd, 1)
        assert cc.cwnd < before
        # ACK for a packet sent after recovery began, few losses since.
        rtt = rtt_of(ms(40))
        p = sp(201, ms(2010))
        cc.on_packets_acked([p], ms(2050), rtt, cc.cwnd, 1)
        assert cc.cwnd == before
        assert cc.rollbacks == 1

    def test_no_rollback_above_threshold(self):
        cc = make(spurious_rollback=True, rollback_loss_threshold=5, rollback_loss_fraction=0.0)
        drive_acks(cc, 100)
        before = cc.cwnd
        lost = [sp(200 + i, ms(2000)) for i in range(6)]
        cc.on_packets_lost(lost, ms(2005), cc.cwnd, 6)
        rtt = rtt_of(ms(40))
        cc.on_packets_acked([sp(210, ms(2010))], ms(2050), rtt, cc.cwnd, 6)
        assert cc.cwnd < before
        assert cc.rollbacks == 0

    def test_threshold_scales_with_cwnd(self):
        cc = make(spurious_rollback=True, rollback_loss_threshold=5, rollback_loss_fraction=0.10)
        drive_acks(cc, 200)  # large cwnd
        before = cc.cwnd
        lost = [sp(300 + i, ms(3000)) for i in range(10)]
        # 10 losses > 5 but < 10% of cwnd in packets: still spurious.
        assert 10 < 0.10 * before / MTU
        cc.on_packets_lost(lost, ms(3005), cc.cwnd, 10)
        rtt = rtt_of(ms(40))
        cc.on_packets_acked([sp(310, ms(3010))], ms(3050), rtt, cc.cwnd, 10)
        assert cc.cwnd == before

    def test_ack_before_recovery_keeps_checkpoint(self):
        cc = make(spurious_rollback=True)
        drive_acks(cc, 100)
        before = cc.cwnd
        cc.on_packets_lost([sp(200, ms(2000))], ms(2005), cc.cwnd, 1)
        rtt = rtt_of(ms(40))
        # Ack for a pre-recovery packet: decision deferred.
        cc.on_packets_acked([sp(199, ms(1999))], ms(2006), rtt, cc.cwnd, 1)
        assert cc.cwnd < before
        # Then the post-recovery ack rolls back.
        cc.on_packets_acked([sp(201, ms(2010))], ms(2050), rtt, cc.cwnd, 1)
        assert cc.cwnd == before

    def test_spurious_loss_event_rolls_back(self):
        cc = make(spurious_rollback=True)
        drive_acks(cc, 100)
        before = cc.cwnd
        cc.on_packets_lost([sp(200, ms(2000))], ms(2005), cc.cwnd, 1)
        cc.on_spurious_loss([200], ms(2040), 1)
        assert cc.cwnd == before
        assert cc.rollbacks == 1

    def test_disabled_never_rolls_back(self):
        cc = make(spurious_rollback=False)
        drive_acks(cc, 100)
        before = cc.cwnd
        cc.on_packets_lost([sp(200, ms(2000))], ms(2005), cc.cwnd, 1)
        rtt = rtt_of(ms(40))
        cc.on_packets_acked([sp(201, ms(2010))], ms(2050), rtt, cc.cwnd, 1)
        cc.on_spurious_loss([200], ms(2060), 1)
        assert cc.cwnd < before
        assert cc.rollbacks == 0
