"""BBR state machine: startup compounding, drain, probe_bw, probe_rtt, variants."""

from repro.cc.bbr import (
    Bbr,
    BbrParams,
    DRAIN_GAIN,
    NGTCP2_BBR_PARAMS,
    PROBE_BW_GAINS,
    STARTUP_GAIN,
)
from repro.quic.recovery import RateSample
from tests.cc.helpers import MTU, rtt_of, sp
from repro.units import SEC, mbit, ms


def make(**kwargs):
    return Bbr(mtu=MTU, **kwargs)


def sample(rate_bps, rtt_ns=ms(40), app_limited=False):
    return RateSample(
        delivery_rate_bps=float(rate_bps),
        interval_ns=rtt_ns,
        delivered_bytes=int(rate_bps * rtt_ns / (8 * SEC)),
        is_app_limited=app_limited,
        rtt_ns=rtt_ns,
    )


def feed_round(cc, rate_bps, now, rtt=None, bif=None):
    """One round: a rate sample plus an ack that advances the round counter."""
    rtt = rtt or rtt_of(ms(40))
    cc.on_rate_sample(sample(rate_bps), now)
    p = sp(cc.round_count, now - ms(40))
    p.delivered = cc._next_round_delivered  # force a round boundary
    cc.on_packets_acked([p], now, rtt, bif if bif is not None else cc.cwnd, 0)


def test_starts_in_startup_with_high_gain():
    cc = make()
    assert cc.state == "startup"
    assert cc.pacing_gain == STARTUP_GAIN


def test_btlbw_is_windowed_max():
    cc = make()
    cc.on_rate_sample(sample(mbit(10)), 0)
    cc.on_rate_sample(sample(mbit(30)), 1)
    cc.on_rate_sample(sample(mbit(20)), 2)
    assert cc.btlbw_bps == mbit(30)


def test_app_limited_samples_do_not_lower_estimate():
    cc = make()
    cc.on_rate_sample(sample(mbit(30)), 0)
    cc.on_rate_sample(sample(mbit(5), app_limited=True), 1)
    assert cc.btlbw_bps == mbit(30)
    # But an app-limited sample above the estimate still counts.
    cc.on_rate_sample(sample(mbit(40), app_limited=True), 2)
    assert cc.btlbw_bps == mbit(40)


def test_startup_exits_after_plateau():
    cc = make()
    now = ms(40)
    rate = mbit(5)
    # Growing samples keep startup alive.
    for _ in range(4):
        feed_round(cc, rate, now)
        rate = int(rate * 2)
        now += ms(40)
    assert cc.state == "startup"
    # Plateau for three rounds -> full pipe -> drain.
    for _ in range(4):
        feed_round(cc, rate, now)
        now += ms(40)
    assert cc.filled_pipe
    assert cc.state in ("drain", "probe_bw")


def test_drain_uses_inverse_gain_then_probe_bw():
    cc = make()
    now = ms(40)
    rate = mbit(5)
    for _ in range(8):
        feed_round(cc, rate, now, bif=10**9)  # keep inflight high: stay in drain
        rate = min(int(rate * 2), mbit(40))
        now += ms(40)
    assert cc.state == "drain"
    assert cc.pacing_gain == DRAIN_GAIN
    # Once inflight falls to BDP, probe_bw begins.
    feed_round(cc, mbit(40), now, bif=0)
    assert cc.state == "probe_bw"
    assert cc.pacing_gain in PROBE_BW_GAINS


def test_probe_bw_cycles_gains():
    cc = make()
    now = ms(40)
    rate = mbit(40)
    for _ in range(10):
        feed_round(cc, rate, now, bif=0)
        now += ms(40)
    assert cc.state == "probe_bw"
    seen = set()
    for _ in range(16):
        feed_round(cc, rate, now, bif=int(0.5 * cc.cwnd))
        seen.add(cc.pacing_gain)
        now += ms(40)
    assert 1.25 in seen and 0.75 in seen


def test_pacing_rate_follows_btlbw():
    cc = make()
    rtt = rtt_of(ms(40))
    cc.on_rate_sample(sample(mbit(40)), 0)
    assert cc.pacing_rate_bps(rtt) == int(STARTUP_GAIN * mbit(40))


def test_pacing_rate_before_estimate_uses_cwnd():
    cc = make()
    rtt = rtt_of(ms(40))
    assert cc.pacing_rate_bps(rtt) > 0


def test_cwnd_tracks_gain_times_bdp():
    cc = make()
    now = ms(40)
    rate = mbit(5)
    for _ in range(10):
        feed_round(cc, rate, now, bif=0)
        rate = min(int(rate * 2), mbit(40))
        now += ms(40)
    bdp = mbit(40) * ms(40) / (8 * SEC)
    assert cc.filled_pipe
    assert abs(cc.cwnd - cc.params.cwnd_gain * bdp) < 4 * MTU


def test_probe_rtt_entered_when_rtprop_stale():
    cc = make()
    now = ms(40)
    rate = mbit(40)
    for _ in range(8):
        feed_round(cc, rate, now, bif=0)
        now += ms(40)
    # Do not refresh min RTT for > 10 s.
    rtt = rtt_of(ms(50))
    now += 11 * SEC
    feed_round(cc, rate, now, rtt=rtt, bif=int(0.5 * cc.cwnd))
    assert cc.state == "probe_rtt"
    assert cc.cwnd <= 4 * MTU
    # After the probe duration, back to probe_bw with restored window.
    now += ms(250)
    feed_round(cc, rate, now, rtt=rtt, bif=0)
    assert cc.state == "probe_bw"
    assert cc.cwnd > 4 * MTU


def test_loss_response_bounds_cwnd():
    cc = make()
    now = ms(40)
    for _ in range(8):
        feed_round(cc, mbit(40), now, bif=0)
        now += ms(40)
    before = cc.cwnd
    cc.on_packets_lost([sp(999, now) for _ in range(4)], now + 1, cc.cwnd, 4)
    assert cc.cwnd <= before


def test_ngtcp2_variant_ignores_loss_and_keeps_gain():
    cc = make(params=NGTCP2_BBR_PARAMS)
    now = ms(40)
    for _ in range(8):
        feed_round(cc, mbit(40), now, bif=0)
        now += ms(40)
    before = cc.cwnd
    cc.on_packets_lost([sp(999, now)], now + 1, cc.cwnd, 1)
    assert cc.cwnd == before
    assert cc.params.cwnd_gain > BbrParams().cwnd_gain
    assert not cc.params.drain_enabled
