"""NewReno window dynamics (RFC 9002 Appendix B)."""

from repro.cc.newreno import NewReno
from tests.cc.helpers import MTU, drive_acks, rtt_of, sp
from repro.units import ms


def make():
    return NewReno(hystart=False, mtu=MTU)


def test_initial_window():
    cc = make()
    assert cc.cwnd == 10 * MTU
    assert cc.in_slow_start


def test_slow_start_grows_by_acked_bytes():
    cc = make()
    before = cc.cwnd
    rtt = rtt_of(ms(40))
    p = sp(0, 0)
    cc.on_packet_sent(p, cc.cwnd, 0)
    cc.on_packets_acked([p], ms(40), rtt, cc.cwnd, 0)
    assert cc.cwnd == before + MTU


def test_congestion_event_halves_window():
    cc = make()
    drive_acks(cc, 50)
    before = cc.cwnd
    cc.on_packets_lost([sp(100, ms(1000))], ms(1010), cc.cwnd, 1)
    assert cc.cwnd == before // 2
    assert cc.ssthresh == cc.cwnd
    assert cc.congestion_events == 1


def test_one_reduction_per_recovery_epoch():
    cc = make()
    drive_acks(cc, 50)
    cc.on_packets_lost([sp(100, ms(1000))], ms(1010), cc.cwnd, 1)
    after_first = cc.cwnd
    # A loss of a packet sent *before* recovery began is the same event.
    cc.on_packets_lost([sp(99, ms(999))], ms(1011), cc.cwnd, 2)
    assert cc.cwnd == after_first
    assert cc.congestion_events == 1


def test_new_epoch_allows_new_reduction():
    cc = make()
    drive_acks(cc, 50)
    cc.on_packets_lost([sp(100, ms(1000))], ms(1010), cc.cwnd, 1)
    first = cc.cwnd
    cc.on_packets_lost([sp(150, ms(2000))], ms(2010), cc.cwnd, 2)
    assert cc.cwnd == first // 2
    assert cc.congestion_events == 2


def test_window_floor():
    cc = make()
    for i in range(20):
        cc.on_packets_lost([sp(i, ms(100 * i))], ms(100 * i + 1), cc.cwnd, i)
    assert cc.cwnd == cc.min_cwnd


def test_congestion_avoidance_linear():
    cc = make()
    cc.ssthresh = cc.cwnd  # leave slow start
    rtt = rtt_of(ms(40))
    start = cc.cwnd
    # One cwnd worth of acks should add about one MTU.
    n = cc.cwnd // MTU
    now = ms(40)
    for i in range(n):
        p = sp(i, now - ms(40))
        cc.on_packet_sent(p, cc.cwnd, now - ms(40))
        cc.on_packets_acked([p], now, rtt, cc.cwnd, 0)
        now += 1000
    growth = cc.cwnd - start
    assert MTU // 2 <= growth <= 2 * MTU


def test_no_growth_while_in_recovery():
    cc = make()
    drive_acks(cc, 20)
    cc.on_packets_lost([sp(50, ms(500))], ms(505), cc.cwnd, 1)
    after = cc.cwnd
    rtt = rtt_of(ms(40))
    # Ack for a packet sent before the congestion event: no growth.
    p = sp(51, ms(500))
    cc.on_packets_acked([p], ms(510), rtt, cc.cwnd, 1)
    assert cc.cwnd == after


def test_no_growth_when_window_underutilized():
    cc = make()
    rtt = rtt_of(ms(40))
    before = cc.cwnd
    p = sp(0, 0)
    cc.on_packet_sent(p, 0, 0)
    # bytes_in_flight + acked far below cwnd.
    cc.on_packets_acked([p], ms(40), rtt, 0, 0)
    assert cc.cwnd == before


def test_pacing_rate_positive_and_scales_with_cwnd():
    cc = make()
    rtt = rtt_of(ms(40))
    r1 = cc.pacing_rate_bps(rtt)
    cc.cwnd *= 4
    assert cc.pacing_rate_bps(rtt) == 4 * r1


def test_trace_records_cwnd():
    cc = make()
    cc.enable_trace()
    drive_acks(cc, 5)
    assert len(cc.cwnd_trace) >= 2
    times = [t for t, _ in cc.cwnd_trace]
    assert times == sorted(times)
