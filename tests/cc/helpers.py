"""Shared helpers for congestion-control tests."""

from __future__ import annotations

from repro.quic.recovery import SentPacket
from repro.quic.rtt import RttEstimator
from repro.units import ms

MTU = 1252


def sp(pn: int, t: int, size: int = MTU, app_limited: bool = False) -> SentPacket:
    packet = SentPacket(pn=pn, time_sent=t, size=size, ack_eliciting=True, in_flight=True)
    packet.is_app_limited = app_limited
    return packet


def rtt_of(value_ns: int) -> RttEstimator:
    rtt = RttEstimator()
    rtt.update(value_ns)
    return rtt


def drive_acks(cc, count: int, start_pn: int = 0, rtt_ns: int = ms(40), t0: int | None = None):
    """Feed `count` single-packet ACKs with a cwnd-limited flight."""
    rtt = rtt_of(rtt_ns)
    # Default start leaves send times non-negative (and out of "recovery").
    now = rtt_ns if t0 is None else t0
    pn = start_pn
    for _ in range(count):
        packet = sp(pn, now - rtt_ns)
        cc.on_packet_sent(packet, cc.cwnd, now - rtt_ns)
        cc.on_packets_acked([packet], now, rtt, cc.cwnd, 0)
        pn += 1
        now += rtt_ns // 10
    return pn, now
