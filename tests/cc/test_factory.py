"""CC factory wiring."""

import pytest

from repro.cc import Bbr, Cubic, NewReno, make_cc
from repro.cc.bbr import NGTCP2_BBR_PARAMS
from repro.errors import ConfigError


def test_builds_each_kind():
    assert isinstance(make_cc("cubic"), Cubic)
    assert isinstance(make_cc("newreno"), NewReno)
    assert isinstance(make_cc("bbr"), Bbr)


def test_unknown_rejected():
    with pytest.raises(ConfigError):
        make_cc("vegas")


def test_cubic_quirks_forwarded():
    cc = make_cc("cubic", spurious_rollback=True, rollback_loss_threshold=9, hystart=False)
    assert cc.params.spurious_rollback
    assert cc.params.rollback_loss_threshold == 9
    assert not cc.hystart.enabled


def test_bbr_params_forwarded():
    cc = make_cc("bbr", bbr_params=NGTCP2_BBR_PARAMS)
    assert cc.params is NGTCP2_BBR_PARAMS


def test_mtu_and_initial_window():
    cc = make_cc("cubic", mtu=1000, initial_window_packets=20)
    assert cc.cwnd == 20_000
