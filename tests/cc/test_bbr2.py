"""BBRv2-flavoured controller: state machine and loss-awareness."""

from repro.cc.bbr2 import Bbr2, Bbr2Params, STARTUP_GAIN
from repro.quic.recovery import RateSample
from tests.cc.helpers import MTU, rtt_of, sp
from repro.units import SEC, mbit, ms


def make(**kwargs):
    return Bbr2(mtu=MTU, **kwargs)


def sample(rate_bps, rtt_ns=ms(40)):
    return RateSample(
        delivery_rate_bps=float(rate_bps),
        interval_ns=rtt_ns,
        delivered_bytes=int(rate_bps * rtt_ns / (8 * SEC)),
        is_app_limited=False,
        rtt_ns=rtt_ns,
    )


def feed_round(cc, rate_bps, now, bif=None):
    rtt = rtt_of(ms(40))
    cc.on_rate_sample(sample(rate_bps), now)
    p = sp(cc.round_count, now - ms(40))
    p.delivered = cc._next_round_delivered
    cc.on_packets_acked([p], now, rtt, bif if bif is not None else cc.cwnd, 0)


def fill_pipe(cc, rate=mbit(40)):
    now = ms(40)
    r = mbit(5)
    for _ in range(10):
        feed_round(cc, r, now, bif=0)
        r = min(int(r * 2), rate)
        now += ms(40)
    return now


def test_startup_then_probe_cycle():
    cc = make()
    assert cc.state == "startup"
    assert cc.pacing_gain == STARTUP_GAIN
    now = fill_pipe(cc)
    assert cc.filled_pipe
    assert cc.state in ("probe_down", "cruise", "refill", "probe_up")


def test_cycle_progresses_through_phases():
    cc = make()
    now = fill_pipe(cc)
    seen = set()
    for _ in range(20):
        feed_round(cc, mbit(40), now, bif=cc.cwnd // 2)
        seen.add(cc.state)
        now += ms(40)
    assert {"cruise", "refill", "probe_up"} <= seen


def test_loss_sets_inflight_hi_and_backs_off():
    cc = make()
    now = fill_pipe(cc)
    assert cc.inflight_hi is None
    bif = cc.cwnd
    cc.on_packets_lost([sp(900, now) for _ in range(3)], now + 1, bif, 3)
    assert cc.inflight_hi is not None
    assert cc.inflight_hi < bif + 4 * MTU
    assert cc.congestion_events == 1


def test_cruise_respects_headroom():
    cc = make()
    now = fill_pipe(cc)
    cc.on_packets_lost([sp(900, now)], now + 1, cc.cwnd, 1)
    hi = cc.inflight_hi
    # Drive into cruise.
    for _ in range(10):
        feed_round(cc, mbit(40), now, bif=int(hi * 0.5))
        now += ms(40)
        if cc.state == "cruise":
            break
    assert cc.state in ("cruise", "refill", "probe_up")
    if cc.state == "cruise":
        assert cc.cwnd <= int(cc.inflight_hi * cc.params.headroom) + MTU


def test_probe_up_raises_bound_when_loss_free():
    cc = make()
    now = fill_pipe(cc)
    cc.on_packets_lost([sp(900, now)], now + 1, cc.cwnd, 1)
    before = cc.inflight_hi
    cc._round_lost_bytes = 0  # the triggering loss is accounted; UP is clean
    cc._enter("probe_up")
    for _ in range(4):
        feed_round(cc, mbit(40), now, bif=cc.cwnd)
        now += ms(40)
        cc._round_lost_bytes = 0
        cc._enter("probe_up")  # stay in UP for the test
    assert cc.inflight_hi > before


def test_startup_loss_marks_pipe_full():
    cc = make()
    for _ in range(3):
        cc.on_packets_lost([sp(1, ms(10))], ms(20), cc.cwnd, 1)
        cc.recovery_start_time = -1  # allow repeat events for the test
    assert cc.filled_pipe


def test_ce_shaves_inflight_hi():
    cc = make()
    now = fill_pipe(cc)
    cc.on_packets_lost([sp(900, now)], now + 1, cc.cwnd, 1)
    before = cc.inflight_hi
    cc.on_ecn_ce(now + ms(100), now + ms(90))
    assert cc.inflight_hi < before


def test_factory_and_experiment_integration():
    from repro.cc import make_cc
    from repro.framework.config import ExperimentConfig
    from repro.framework.experiment import Experiment
    from repro.units import kib

    assert isinstance(make_cc("bbr2"), Bbr2)
    result = Experiment(
        ExperimentConfig(stack="picoquic", cca="bbr2", file_size=kib(300), repetitions=1),
        seed=4,
    ).run()
    assert result.completed
