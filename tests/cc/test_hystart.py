"""HyStart++ state machine (RFC 9406) and the classic ACK-train extension."""

from repro.cc.hystart import (
    CSS_ROUNDS,
    HyStartPP,
    MIN_RTT_THRESH,
    N_RTT_SAMPLE,
)
from repro.units import ms


def feed_round(h, rtt_ns, samples=N_RTT_SAMPLE):
    h.on_round_start()
    for _ in range(samples):
        h.on_rtt_sample(rtt_ns)


def test_stable_rtt_never_triggers():
    h = HyStartPP()
    for _ in range(20):
        feed_round(h, ms(40))
    assert not h.in_css
    assert not h.done


def test_rtt_jump_enters_css():
    h = HyStartPP()
    feed_round(h, ms(40))
    feed_round(h, ms(40))
    feed_round(h, ms(40) + MIN_RTT_THRESH + ms(2))
    assert h.in_css
    assert not h.done


def test_css_exits_slow_start_after_rounds():
    h = HyStartPP()
    feed_round(h, ms(40))
    feed_round(h, ms(40))
    for i in range(CSS_ROUNDS + 2):
        feed_round(h, ms(60))
        if h.done:
            break
    assert h.done


def test_css_falls_back_if_rtt_recovers():
    h = HyStartPP()
    feed_round(h, ms(40))
    feed_round(h, ms(40))
    feed_round(h, ms(50))  # triggers CSS (baseline 40ms)
    assert h.in_css
    feed_round(h, ms(40))  # transient spike gone
    assert not h.in_css
    assert not h.done


def test_needs_enough_samples():
    h = HyStartPP()
    feed_round(h, ms(40))
    h.on_round_start()
    for _ in range(N_RTT_SAMPLE - 1):
        h.on_rtt_sample(ms(100))
    assert not h.in_css  # one sample short


def test_growth_normal_vs_css():
    h = HyStartPP()
    assert h.growth(1000) == 1000
    h.in_css = True
    assert h.growth(1000) == 250


def test_disabled_does_nothing():
    h = HyStartPP(enabled=False)
    for _ in range(10):
        feed_round(h, ms(400))
    assert not h.in_css and not h.done


def test_eta_clamping_low():
    # With a tiny base RTT, eta clamps to MIN_RTT_THRESH (4 ms): a 3 ms rise
    # must not trigger, but a 5 ms rise must.
    h = HyStartPP()
    feed_round(h, ms(2))
    feed_round(h, ms(2))
    feed_round(h, ms(2) + ms(3))
    assert not h.in_css

    h2 = HyStartPP()
    feed_round(h2, ms(2))
    feed_round(h2, ms(2))
    feed_round(h2, ms(2) + ms(5))
    assert h2.in_css


def test_ack_train_detection():
    h = HyStartPP(ack_train=True, ack_train_fraction=0.5)
    h.on_round_start()
    h.on_ack_arrival(0, ms(40))
    h.on_ack_arrival(ms(10), ms(40))
    assert not h.done
    h.on_ack_arrival(ms(21), ms(40))  # spans >= minRTT/2
    assert h.done


def test_ack_train_resets_each_round():
    h = HyStartPP(ack_train=True, ack_train_fraction=0.5)
    h.on_round_start()
    h.on_ack_arrival(0, ms(40))
    h.on_round_start()
    h.on_ack_arrival(ms(100), ms(40))
    assert not h.done


def test_ack_train_disabled_by_default():
    h = HyStartPP()
    h.on_round_start()
    h.on_ack_arrival(0, ms(40))
    h.on_ack_arrival(ms(1000), ms(40))
    assert not h.done
