"""CongestionController base behaviour shared by all algorithms."""

from repro.cc.base import CongestionController, K_INITIAL_RTT_NS
from repro.quic.rtt import RttEstimator
from repro.units import ms
from tests.cc.helpers import MTU


class Minimal(CongestionController):
    def on_packets_acked(self, *a, **k):
        pass

    def on_packets_lost(self, *a, **k):
        pass


def test_can_send_window_arithmetic():
    cc = Minimal(mtu=MTU, initial_window_packets=10)
    assert cc.can_send(0) == 10 * MTU
    assert cc.can_send(9 * MTU) == MTU
    assert cc.can_send(11 * MTU) == 0


def test_in_recovery_semantics():
    cc = Minimal()
    assert not cc.in_recovery(0)
    cc.recovery_start_time = ms(100)
    assert cc.in_recovery(ms(100))
    assert cc.in_recovery(ms(50))
    assert not cc.in_recovery(ms(101))


def test_in_slow_start_tracks_ssthresh():
    cc = Minimal()
    assert cc.in_slow_start
    cc.ssthresh = cc.cwnd
    assert not cc.in_slow_start


def test_pacing_rate_uses_initial_rtt_before_samples():
    cc = Minimal(mtu=MTU)
    rtt = RttEstimator()
    expected = int(cc.cwnd * 8 * 1e9 / K_INITIAL_RTT_NS * cc.pacing_gain_factor)
    assert abs(cc.pacing_rate_bps(rtt) - expected) <= expected // 100


def test_pacing_rate_floor():
    cc = Minimal(mtu=MTU)
    cc.cwnd = 1  # absurdly small window
    rtt = RttEstimator()
    rtt.update(ms(40))
    assert cc.pacing_rate_bps(rtt) >= 8 * MTU


def test_pacing_gain_factor_scales_rate():
    cc = Minimal(mtu=MTU)
    rtt = RttEstimator()
    rtt.update(ms(40))
    base = cc.pacing_rate_bps(rtt)
    cc.pacing_gain_factor = 2.5
    assert abs(cc.pacing_rate_bps(rtt) - base * 2) >= 0  # sanity
    assert cc.pacing_rate_bps(rtt) > base


def test_trace_disabled_by_default():
    cc = Minimal()
    cc._record(0)
    assert cc.cwnd_trace == []
    cc.enable_trace()
    cc._record(5)
    assert len(cc.cwnd_trace) == 2


def test_default_hooks_are_noops():
    cc = Minimal()
    cc.on_spurious_loss([1], 0, 0)
    cc.on_ecn_ce(0, 0)
    cc.on_packet_sent(None, 0, 0)
    cc.on_rate_sample(None, 0)
