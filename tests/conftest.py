"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.sim.engine import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)


class Collector:
    """A PacketSink that records (time, datagram) pairs."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.items: list[tuple[int, object]] = []

    def receive(self, dgram) -> None:
        self.items.append((self.sim.now, dgram))

    @property
    def dgrams(self):
        return [d for _, d in self.items]

    @property
    def times(self):
        return [t for t, _ in self.items]

    def __len__(self):
        return len(self.items)


@pytest.fixture
def collector(sim) -> Collector:
    return Collector(sim)


def make_dgram(size: int = 1252, txtime=None, pn=None, flow=None):
    from repro.net.packet import Datagram

    return Datagram(
        flow=flow or ("10.0.0.1", 443, "10.0.0.2", 40000),
        payload_size=size,
        txtime_ns=txtime,
        packet_number=pn,
    )
