"""Stack profile definition and the server-side driver.

The :class:`ServerDriver` is the "application + library event loop" around a
:class:`~repro.quic.connection.Connection`. Its send strategy — chosen by the
profile's ``pacing`` mode — is where the paper's three approaches live:

* ``"txtime"`` (quiche): build every sendable packet now, stamp each with the
  pacer's departure timestamp, and hand the batch to the kernel (sendmmsg or
  GSO). Actual spacing is the qdisc's job; with a timestamp-blind qdisc the
  batch hits the wire back-to-back.
* ``"app_interval"`` (ngtcp2): send one packet at a time, sleeping on the
  event-loop timer until each packet's computed departure time.
* ``"leaky_bucket"`` (picoquic): send whenever bucket credit is available;
  credit banks while waiting, so coarse timers convert directly into bursts.
* ``"none"``: write whatever the window allows immediately.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.cc.bbr import BbrParams
from repro.errors import ConfigError
from repro.kernel.socket import SendSpec, UdpSocket
from repro.pacing import IntervalPacer, LeakyBucketPacer, NullPacer, Pacer
from repro.pacing.gso_policy import GsoPolicy
from repro.quic.connection import Connection
from repro.sim.clock import TimerModel, HIGHRES_TIMER
from repro.sim.engine import Simulator
from repro.sim.process import SimProcess
from repro.units import mib, ms, us

PACING_MODES = ("txtime", "app_interval", "leaky_bucket", "none")

#: Safety cap on packets produced in one wake-up.
MAX_PACKETS_PER_WAKEUP = 512


@dataclass(frozen=True)
class StackProfile:
    """Everything that makes a library behave like itself."""

    name: str
    pacing: str = "none"
    cca: str = "cubic"
    timer_model: TimerModel = HIGHRES_TIMER
    #: Max datagrams per sendmmsg batch when GSO is off.
    send_batch: int = 16
    gso: GsoPolicy = GsoPolicy(enabled=False)
    so_txtime: bool = False
    #: Receiver flow-control configuration (used by the peer *client* too).
    recv_conn_window: int = mib(15)
    recv_stream_window: int = mib(6)
    fc_autotune: bool = True
    #: CUBIC quirks.
    hystart: bool = True
    spurious_rollback: bool = False
    rollback_loss_threshold: int = 5
    #: BBR variant.
    bbr_params: Optional[BbrParams] = None
    #: Leaky-bucket depth (packets).
    bucket_packets: int = 17
    #: Interval-pacer initial burst budget (bytes).
    pacer_burst_bytes: int = 0
    #: picoquic loss-based quirk: on ACK wake-ups, defer sending to the send
    #: timer unless at least this many packets of credit are banked.
    ack_send_threshold_packets: int = 0
    #: Multiplier on cwnd/srtt for the pacing rate (RFC 9002 suggests a
    #: surplus; picoquic's loss-based bucket refills at ~1x).
    pacing_gain: float = 1.25
    #: txtime mode: how far into the future the app is willing to stamp and
    #: hand packets to the kernel before going back to sleep. Bounds both the
    #: burst size without a timestamp-aware qdisc and the no-qdisc precision.
    txtime_lookahead_ns: int = ms(2)
    #: txtime mode: minimum headroom added to every timestamp. Required with
    #: the ETF qdisc, which *drops* packets whose timestamp is not at least
    #: ``delta`` in the future when they reach the queue.
    txtime_min_offset_ns: int = 0
    #: The library's example *client* ACK policy (drives the server's ACK
    #: clock). picoquic implements the ACK-frequency extension and
    #: acknowledges roughly every RTT/4, which is what turns its banked
    #: leaky-bucket credit into periodic 16-17-packet bursts.
    client_ack_threshold: int = 2
    client_max_ack_delay_ns: int = ms(25)

    def validate(self) -> None:
        if self.pacing not in PACING_MODES:
            raise ConfigError(f"unknown pacing mode {self.pacing!r}")

    def with_cca(self, cca: str) -> "StackProfile":
        return replace(self, cca=cca)


class ServerDriver(SimProcess):
    """Event loop around the server connection."""

    def __init__(
        self,
        sim: Simulator,
        conn: Connection,
        socket: UdpSocket,
        profile: StackProfile,
        pacer: Pacer,
        response_size: int,
        rng: Optional[random.Random] = None,
    ):
        super().__init__(sim, f"server-{profile.name}", profile.timer_model, rng)
        profile.validate()
        self.conn = conn
        self.socket = socket
        self.profile = profile
        self.pacer = pacer
        self.response_size = response_size
        self.response_started = False
        self._responded: set[int] = set()
        socket.on_readable = self.wake_now
        #: (packet_number, expected_txtime) pairs for the precision metric.
        self.expected_send_log: List[tuple[int, int]] = []
        self._pacer_deadline: Optional[int] = None

    # -- event loop ---------------------------------------------------------

    def on_wakeup(self) -> None:
        now = self.sim.now
        conn = self.conn
        socket = self.socket
        woke_by_ack = bool(socket.rx_pending)
        if woke_by_ack:
            for dgram in socket.recv_all():
                conn.on_datagram(dgram.payload, now, ecn=dgram.ecn)
        conn.on_timeout(now)
        self._maybe_start_response()
        self._do_send(now, on_ack_wake=woke_by_ack)
        self._rearm(now)

    def _maybe_start_response(self) -> None:
        from repro.quic.stream import DataSource

        for sid, stream in self.conn.recv_streams.items():
            if stream.complete and sid not in self._responded:
                self._responded.add(sid)
                self.conn.open_send_stream(sid, DataSource(self.response_size))
                self.response_started = True

    def _rearm(self, now: int) -> None:
        deadline = self.conn.next_timeout(now)
        pacer = self._pacer_deadline
        if pacer is not None and (deadline is None or pacer < deadline):
            deadline = pacer
        if deadline is not None:
            self.arm_timer(deadline if deadline > now else now)

    # -- send strategies ---------------------------------------------------------

    def _do_send(self, now: int, on_ack_wake: bool) -> None:
        self._pacer_deadline = None
        self.pacer.update_rate(self.conn.pacing_rate_bps(), now)
        mode = self.profile.pacing
        if mode == "txtime":
            self._send_txtime(now)
        elif mode in ("app_interval", "leaky_bucket"):
            self._send_app_paced(now, on_ack_wake)
        else:
            self._send_unpaced(now)

    def _send_unpaced(self, now: int) -> None:
        specs = self._build_specs(now, stamp_txtime=False)
        self._write(specs)

    def _send_txtime(self, now: int) -> None:
        # Stock GSO defers until a full buffer is available (maximum batching,
        # maximum burstiness). With the paced-GSO patch the kernel restores
        # the spacing anyway, so the send loop behaves like the GSO-off one.
        if (
            self.profile.gso.enabled
            and not self.profile.gso.paced
            and self._defer_for_full_buffer(now)
        ):
            return
        specs = self._build_specs(now, stamp_txtime=True)
        self._write(specs)

    def _defer_for_full_buffer(self, now: int) -> bool:
        """GSO batching: wait until a full buffer's worth of window is
        available (the batching that makes GSO worthwhile, and bursty).

        Never defers when it could deadlock: without packets in flight no ACK
        will arrive to free more window, and small remainders at the end of
        the stream go out as short buffers.
        """
        conn = self.conn
        mtu = conn.config.mtu_payload
        buffer_bytes = self.profile.gso.max_segments * mtu
        room = conn.cc.can_send(conn.recovery.bytes_in_flight)
        pending_new = sum(s.new_bytes_available for s in conn.send_streams.values())
        has_retx = any(s.has_retx for s in conn.send_streams.values())
        if has_retx or pending_new < buffer_bytes:
            return False
        if conn.recovery.bytes_in_flight == 0 or conn.probe_packets_pending:
            return False
        if conn.ack_mgr.ack_pending and conn.ack_mgr.should_ack_now(now):
            return False
        return room < buffer_bytes

    def _build_specs(self, now: int, stamp_txtime: bool) -> List[SendSpec]:
        specs: List[SendSpec] = []
        conn = self.conn
        pacer = self.pacer
        profile = self.profile
        mtu = conn.config.mtu_payload
        min_offset = profile.txtime_min_offset_ns
        ecn = 2 if conn.config.ecn else 0
        lookahead = profile.txtime_lookahead_ns
        if profile.gso.enabled:
            # With GSO the app fills whole buffers before sleeping, so it is
            # willing to queue at least two buffers' worth into the kernel.
            lookahead = max(
                lookahead,
                2 * profile.gso.max_segments * pacer.interval_ns(mtu),
            )
        horizon = now + lookahead
        while len(specs) < MAX_PACKETS_PER_WAKEUP and conn.wants_to_send(now):
            if stamp_txtime:
                release = pacer.release_time(now, mtu)
                if release > horizon:
                    # Enough queued in the kernel; wake again near the horizon.
                    self._pacer_deadline = release - lookahead
                    break
            built = conn.build_packet(now)
            if built is None:
                break
            txtime = None
            expected = now
            if stamp_txtime and built.ack_eliciting:
                txtime = pacer.release_time(now, built.size)
                if min_offset:
                    txtime = max(txtime, now + min_offset)
                pacer.commit(txtime, built.size)
                expected = txtime
            conn.on_packet_sent(built, now)
            self.expected_send_log.append((built.packet.packet_number, expected))
            specs.append(
                SendSpec(
                    payload=built.packet,
                    payload_size=built.size,
                    txtime_ns=txtime,
                    expected_send_ns=expected,
                    packet_number=built.packet.packet_number,
                    ecn=ecn,
                )
            )
        return specs

    def _write(self, specs: List[SendSpec]) -> None:
        if not specs:
            return
        gso = self.profile.gso
        if gso.enabled:
            # Stock GSO cannot pace within a buffer, and quiche's send loop
            # flushes the whole wake-up's worth together: every buffer of the
            # batch carries the first packet's timestamp (the Figure 6
            # burstiness). The paced-GSO kernel patch restores per-buffer
            # scheduling plus in-kernel segment spacing.
            batch_txtime = specs[0].txtime_ns
            i = 0
            while i < len(specs):
                take = gso.segments_for(len(specs) - i)
                group = specs[i : i + take]
                if len(group) == 1:
                    if not gso.paced:
                        group[0].txtime_ns = batch_txtime
                    self.socket.sendmsg(group[0])
                else:
                    rate = None
                    if gso.paced:
                        rate = max(self.pacer.rate_bps // 8, 1)
                    self.socket.send_gso(
                        group,
                        txtime_ns=group[0].txtime_ns if gso.paced else batch_txtime,
                        pacing_rate_Bps=rate,
                        expected_send_ns=group[0].expected_send_ns,
                    )
                i += take
        elif len(specs) == 1:
            self.socket.sendmsg(specs[0])
        else:
            batch = self.profile.send_batch
            for i in range(0, len(specs), batch):
                self.socket.sendmmsg(specs[i : i + batch])

    def _send_app_paced(self, now: int, on_ack_wake: bool) -> None:
        """ngtcp2 / picoquic style: the application enforces timestamps."""
        profile = self.profile
        mtu = self.conn.config.mtu_payload
        threshold = profile.ack_send_threshold_packets * mtu
        if (
            on_ack_wake
            and threshold
            and isinstance(self.pacer, LeakyBucketPacer)
            and self.pacer.release_time(now, threshold) > now
            and self.conn.ack_mgr.received_count() > 0
        ):
            # picoquic loss-based quirk: not enough banked credit — wait for
            # the (coarse) send timer instead of dribbling packets per ACK.
            if self.conn.wants_to_send(now):
                self._pacer_deadline = self.pacer.release_time(now, threshold)
            return
        sent = 0
        while sent < MAX_PACKETS_PER_WAKEUP and self.conn.wants_to_send(now):
            release = self.pacer.release_time(now, mtu)
            if release > now:
                self._pacer_deadline = release
                break
            built = self.conn.build_packet(now)
            if built is None:
                break
            if built.ack_eliciting:
                self.pacer.commit(now, built.size)
            self.conn.on_packet_sent(built, now)
            self.expected_send_log.append((built.packet.packet_number, release))
            self.socket.sendmsg(
                SendSpec(
                    payload=built.packet,
                    payload_size=built.size,
                    txtime_ns=None,
                    expected_send_ns=release,
                    packet_number=built.packet.packet_number,
                    ecn=2 if self.conn.config.ecn else 0,
                )
            )
            sent += 1


def make_pacer(profile: StackProfile, mtu: int) -> Pacer:
    """Build the pacer the profile's pacing mode needs."""
    if profile.pacing == "none":
        return NullPacer()
    if profile.pacing == "leaky_bucket":
        return LeakyBucketPacer(bucket_max_bytes=profile.bucket_packets * mtu)
    return IntervalPacer(burst_budget_bytes=profile.pacer_burst_bytes)
