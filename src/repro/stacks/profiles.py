"""Concrete library profiles.

Each profile encodes the documented pacing mechanism of one stack plus the
behavioural calibrations listed in DESIGN.md ("Behavioural calibrations").
``profile_for(name, cca)`` applies CCA-dependent quirks (picoquic arms
high-resolution timers only for BBR; ngtcp2 swaps in its own BBR variant).
"""

from __future__ import annotations

from dataclasses import replace

from repro.cc.bbr import NGTCP2_BBR_PARAMS
from repro.errors import ConfigError
from repro.pacing.gso_policy import GsoPolicy
from repro.sim.clock import JitterModel, TimerModel
from repro.stacks.base import StackProfile
from repro.units import kib, mib, ms, us

STACK_NAMES = ("quiche", "picoquic", "ngtcp2")

#: quiche's event loop (mio/tokio): moderate wake-up latency whose jitter sets
#: how many ACK arrivals coalesce into one send batch (baseline trains 6-20).
_QUICHE_TIMER = TimerModel(
    overhead_ns=us(5), jitter=JitterModel(median_ns=us(150), sigma=1.2)
)

#: picoquic's packet loop arms fine-grained timers (it is the paper's example
#: of precise user-space pacing with BBR).
_PICOQUIC_FINE_TIMER = TimerModel(
    overhead_ns=us(1), jitter=JitterModel(median_ns=us(8), sigma=0.5)
)

#: ngtcp2's example server: epoll loop whose timer quantization makes roughly
#: every other pacing wake-up release two packets back-to-back (the ~50 %
#: back-to-back share of Figure 2).
_NGTCP2_TIMER = TimerModel(
    granularity_ns=us(800), overhead_ns=us(2), jitter=JitterModel(median_ns=us(25), sigma=0.6)
)


def quiche_profile(gso: GsoPolicy | None = None, spurious_rollback: bool = True) -> StackProfile:
    """Cloudflare quiche: SO_TXTIME stamping, kernel-delegated pacing.

    ``spurious_rollback=True`` is stock quiche; the paper's "SF" patch
    corresponds to ``False``.
    """
    return StackProfile(
        name="quiche",
        pacing="txtime",
        so_txtime=True,
        timer_model=_QUICHE_TIMER,
        send_batch=16,
        gso=gso or GsoPolicy(enabled=False),
        recv_conn_window=mib(12),
        recv_stream_window=mib(6),
        fc_autotune=True,
        hystart=True,
        spurious_rollback=spurious_rollback,
        rollback_loss_threshold=5,
        pacer_burst_bytes=0,
    )


def picoquic_profile() -> StackProfile:
    """picoquic: leaky-bucket pacing driven entirely by application timers.

    Its example client implements the ACK-frequency extension (ACKs roughly
    every RTT/4 = 10 ms here). Each large ACK frees a window of packets at
    once; the full leaky bucket releases the first 16-17 back-to-back, the
    rest drain at the pacing rate, then the link idles until the next ACK —
    the Section 4.1 burst pattern for loss-based CCAs.
    """
    return StackProfile(
        name="picoquic",
        pacing="leaky_bucket",
        timer_model=_PICOQUIC_FINE_TIMER,
        send_batch=1,
        recv_conn_window=mib(12),
        recv_stream_window=mib(6),
        fc_autotune=True,
        hystart=True,
        bucket_packets=16,
        pacing_gain=1.0,
        client_ack_threshold=1_000_000,  # ACK on the delay timer only
        client_max_ack_delay_ns=ms(10),
    )


def ngtcp2_profile() -> StackProfile:
    """ngtcp2: app-enforced interval pacing; fixed example-app flow windows.

    The fixed (non-autotuned) connection window is the DESIGN.md calibration
    for the paper's ~16 Mbit/s ngtcp2 baseline goodput.
    """
    return StackProfile(
        name="ngtcp2",
        pacing="app_interval",
        timer_model=_NGTCP2_TIMER,
        send_batch=1,
        recv_conn_window=kib(160),
        recv_stream_window=kib(160),
        fc_autotune=False,
        hystart=True,
        bbr_params=NGTCP2_BBR_PARAMS,
    )


def profile_for(name: str, cca: str = "cubic", **overrides) -> StackProfile:
    """Profile for ``name`` with CCA-dependent quirks applied."""
    if name == "quiche":
        profile = quiche_profile(
            gso=overrides.pop("gso", None),
            spurious_rollback=overrides.pop("spurious_rollback", True),
        )
    elif name == "picoquic":
        profile = picoquic_profile()
        if cca in ("bbr", "bbr2"):
            # BBR paces from its bandwidth model with only a tiny burst
            # allowance, so banked ACK-clock credit never turns into bursts.
            profile = replace(profile, bucket_packets=2)
    elif name == "ngtcp2":
        profile = ngtcp2_profile()
        if cca == "bbr":
            # ngtcp2's BBR example runs with ample flow-control credit, so
            # its aggressive variant (high gain, no drain, loss-blind) keeps
            # the bottleneck queue overfull — the paper's order-of-magnitude
            # loss increase.
            profile = replace(
                profile,
                recv_conn_window=mib(2),
                recv_stream_window=mib(2),
            )
    else:
        raise ConfigError(f"unknown stack {name!r}; expected one of {STACK_NAMES}")
    profile = replace(profile, cca=cca, **overrides)
    return profile
