"""Per-library stack personalities.

Each profile assembles the same QUIC transport with the pacing enforcement,
event-loop timing, batching and congestion-control quirks of one of the
paper's stacks (quiche, picoquic, ngtcp2) or the TCP/TLS comparator.
"""

from repro.stacks.base import StackProfile, ServerDriver, PACING_MODES
from repro.stacks.client import ClientDriver
from repro.stacks.profiles import (
    quiche_profile,
    picoquic_profile,
    ngtcp2_profile,
    profile_for,
    STACK_NAMES,
)

__all__ = [
    "StackProfile",
    "ServerDriver",
    "ClientDriver",
    "PACING_MODES",
    "quiche_profile",
    "picoquic_profile",
    "ngtcp2_profile",
    "profile_for",
    "STACK_NAMES",
]
