"""The download client.

One client implementation serves every experiment: it performs the handshake,
sends the HTTP request on stream 0, then acknowledges the server's response
until the transfer completes. Pacing is irrelevant in this direction (mostly
ACKs), matching the paper's setup where only the server's behaviour is
measured.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.kernel.socket import SendSpec, UdpSocket
from repro.quic import h3
from repro.quic.connection import Connection
from repro.quic.stream import DataSource
from repro.sim.clock import TimerModel, HIGHRES_TIMER
from repro.sim.engine import Simulator
from repro.sim.process import SimProcess


class ClientDriver(SimProcess):
    def __init__(
        self,
        sim: Simulator,
        conn: Connection,
        socket: UdpSocket,
        timer_model: TimerModel = HIGHRES_TIMER,
        rng: Optional[random.Random] = None,
        request_count: int = 1,
    ):
        super().__init__(sim, "client", timer_model, rng)
        self.conn = conn
        self.socket = socket
        socket.on_readable = self.wake_now
        #: Parallel GET requests; stream IDs 0, 4, 8, ... (client bidi).
        self.request_count = request_count
        self.request_stream_ids = [4 * i for i in range(request_count)]
        self.request_sent = False
        self.request_sent_at: Optional[int] = None
        self.first_response_at: Optional[int] = None
        self.completed_at: Optional[int] = None
        #: Per-stream completion times (multi-object page loads).
        self.object_completed_at: dict[int, int] = {}

    def start(self) -> None:
        self.conn.start_handshake()
        self.wake_now()

    def on_wakeup(self) -> None:
        now = self.sim.now
        conn = self.conn
        socket = self.socket
        received = False
        if socket.rx_pending:
            received = True
            for dgram in socket.recv_all():
                conn.on_datagram(dgram.payload, now, ecn=dgram.ecn)
        conn.on_timeout(now)
        if not self.request_sent:
            self._maybe_send_request(now)
        # Response progress only changes when datagrams arrived; timer-only
        # wake-ups (the majority) skip the stream scan.
        if received and self.completed_at is None:
            self._track_response(now)
        self._send_pending(now)
        deadline = conn.next_timeout(now)
        if deadline is not None:
            self.arm_timer(deadline if deadline > now else now)

    def _maybe_send_request(self, now: int) -> None:
        if self.request_sent or not self.conn.established:
            return
        for sid in self.request_stream_ids:
            request = h3.encode_request(f"/file{sid}")
            self.conn.open_send_stream(sid, DataSource(len(request)))
        self.request_sent = True
        self.request_sent_at = now

    def _track_response(self, now: int) -> None:
        done = 0
        for sid in self.request_stream_ids:
            stream = self.conn.recv_streams.get(sid)
            if stream is None:
                continue
            if self.first_response_at is None and stream.bytes_received_total > 0:
                self.first_response_at = now
            if stream.complete:
                self.object_completed_at.setdefault(sid, now)
                done += 1
        if self.completed_at is None and done == self.request_count:
            self.completed_at = now
            # Graceful shutdown: tell the server to stop (its tail might
            # otherwise keep probing until its own timers give up).
            self.conn.close(0, b"download complete")

    def _send_pending(self, now: int) -> None:
        sent = 0
        while sent < 64 and self.conn.wants_to_send(now):
            built = self.conn.build_packet(now)
            if built is None:
                break
            self.conn.on_packet_sent(built, now)
            self.socket.sendmsg(
                SendSpec(
                    payload=built.packet,
                    payload_size=built.size,
                    packet_number=built.packet.packet_number,
                )
            )
            sent += 1

    @property
    def done(self) -> bool:
        return self.completed_at is not None
