"""Canonical configurations for every experiment in the paper's evaluation.

Names match the experiment index in DESIGN.md. Default workload scale is
8 MiB x 5 repetitions (the paper uses 100 MiB x 20 on hardware); pass a
different ``file_size``/``repetitions`` for full-scale runs.
"""

from __future__ import annotations

from dataclasses import replace
from itertools import combinations
from typing import Dict, Optional, Sequence

from repro.framework.config import ExperimentConfig, NetworkConfig
from repro.framework.population import PopulationConfig
from repro.net.impairments import (
    burst_loss,
    duplication,
    iid_loss,
    rate_flap,
    reordering,
)
from repro.units import kib, mbit, mib, ms, seconds

DEFAULT_FILE_SIZE = mib(8)
DEFAULT_REPETITIONS = 5


def _base(**kwargs) -> ExperimentConfig:
    kwargs.setdefault("file_size", DEFAULT_FILE_SIZE)
    kwargs.setdefault("repetitions", DEFAULT_REPETITIONS)
    return ExperimentConfig(**kwargs)


def baseline(stack: str, cca: str = "cubic", **kwargs) -> ExperimentConfig:
    """Section 4.1: default settings, CCA pinned to CUBIC for comparability."""
    return _base(stack=stack, cca=cca, **kwargs)


def quiche_fq(spurious_rollback: Optional[bool] = True, **kwargs) -> ExperimentConfig:
    """Section 4.2: quiche + FQ qdisc; rollback False = the "SF" patch."""
    return _base(stack="quiche", qdisc="fq", spurious_rollback=spurious_rollback, **kwargs)


def quiche_gso(mode: str, **kwargs) -> ExperimentConfig:
    """Section 4.3: quiche + FQ with GSO off / on / kernel-paced.

    The SF patch is applied (the paper disables rollback for all post-4.2
    measurements).
    """
    return _base(
        stack="quiche", qdisc="fq", gso=mode, spurious_rollback=False, **kwargs
    )


def precision_config(qdisc: str, **kwargs) -> ExperimentConfig:
    """Section 4.4: quiche without GSO under none / fq / etf / etf-offload."""
    return _base(
        stack="quiche", qdisc=qdisc, gso="off", spurious_rollback=False, **kwargs
    )


def cca_sweep(stack: str, **kwargs) -> Dict[str, ExperimentConfig]:
    """Figure 4: one config per CCA for the given library."""
    return {cca: _base(stack=stack, cca=cca, **kwargs) for cca in ("cubic", "newreno", "bbr")}


def all_baselines(**kwargs) -> Dict[str, ExperimentConfig]:
    """Figure 2/3 and Table 1: the four stacks with CUBIC."""
    return {stack: baseline(stack, **kwargs) for stack in ("quiche", "picoquic", "ngtcp2", "tcp")}


#: (bottleneck rate [Mbit/s], min RTT [ms]) grid for the network sweep; the
#: (40, 40) point is the paper's fixed setting.
NETWORK_SWEEP_GRID = ((10, 10), (10, 80), (40, 40), (100, 20))


def network_sweep(**kwargs) -> Dict[str, ExperimentConfig]:
    """Extension (Section 3.4 future work): quiche fq-vs-none across a grid
    of bottleneck rates and RTTs, checking the pacing benefit is not an
    artifact of the paper's single 40 Mbit/s / 40 ms operating point."""
    grid: Dict[str, ExperimentConfig] = {}
    for rate_mbit, rtt_ms in NETWORK_SWEEP_GRID:
        net = NetworkConfig(
            bottleneck_rate_bps=mbit(rate_mbit), one_way_delay_ns=ms(rtt_ms) // 2
        )
        for qdisc in ("none", "fq"):
            grid[f"{rate_mbit}mbit-{rtt_ms}ms-{qdisc}"] = _base(
                stack="quiche",
                qdisc=qdisc,
                spurious_rollback=False,
                network=net,
                **kwargs,
            )
    return grid


#: Named impairment settings for the fault-injection sweep. ``burst`` uses
#: the dribbled Gilbert–Elliott defaults that arm quiche's small-loss
#: rollback heuristic (Section 4.2's pathology, now reachable on demand).
IMPAIRMENT_SWEEP_SPECS: Dict[str, tuple] = {
    "clean": (),
    "loss0.1%": (iid_loss(0.001),),
    "loss1%": (iid_loss(0.01),),
    "burst": (burst_loss(),),
    "reorder": (reordering(rate=0.02, extra_delay_ns=ms(4)),),
    "dup": (duplication(0.01),),
    "flap": (rate_flap(low_rate_bps=mbit(10), period_ns=ms(1000)),),
}


def impairment_config(
    specs: tuple,
    stack: str = "quiche",
    qdisc: str = "fq",
    spurious_rollback: Optional[bool] = True,
    **kwargs,
) -> ExperimentConfig:
    """One fault-injected configuration: ``specs`` on the forward path.

    Stock quiche (rollback enabled) over FQ by default — the setting where
    injected loss patterns reach the recovery pathologies the paper
    dissects. Network parameters beyond the impairments stay at the paper's
    operating point.
    """
    network = kwargs.pop("network", NetworkConfig())
    network = replace(network, forward_impairments=tuple(specs))
    return _base(
        stack=stack,
        qdisc=qdisc,
        spurious_rollback=spurious_rollback if stack == "quiche" else None,
        network=network,
        **kwargs,
    )


#: Stack profiles competing in the default population / duel grids.
POPULATION_PROFILES = ("quiche:cubic:fq", "picoquic:bbr", "ngtcp2:cubic", "tcp")


def population_sweep(
    flows: int = 200,
    profiles: Sequence[str] = POPULATION_PROFILES,
    **kwargs,
) -> Dict[str, PopulationConfig]:
    """Flow-population grid (ROADMAP item 1's many-flow scale): one mixed
    population with every profile sharing the bottleneck, plus one
    homogeneous population per profile as its baseline under self-contention.

    Defaults: ``flows`` Poisson arrivals at 100 flows/s, 256 KiB objects,
    heterogeneous RTTs up to +40 ms on top of the paper's 40 ms base.
    """
    kwargs.setdefault("arrival_rate_per_s", 100.0)
    kwargs.setdefault("file_size", kib(256))
    kwargs.setdefault("extra_rtt_max_ns", ms(40))
    kwargs.setdefault("max_sim_time_ns", seconds(600))
    grid: Dict[str, PopulationConfig] = {
        "mixed": PopulationConfig(flows=flows, profiles=tuple(profiles), **kwargs)
    }
    for profile in profiles:
        name = profile.replace(":", "-")
        grid[name] = PopulationConfig(flows=flows, profiles=(profile,), **kwargs)
    return grid


def fairness_duels(
    profiles: Sequence[str] = POPULATION_PROFILES,
    file_size: int = mib(2),
    **kwargs,
) -> Dict[str, PopulationConfig]:
    """QUICbench-style head-to-head grid: every unordered profile pair as a
    two-flow population (simultaneous arrival, identical RTTs), feeding the
    pairwise throughput-ratio matrix and the transitivity check over the
    "beats" relation (see :func:`repro.framework.population.duel_analysis`).
    """
    kwargs.setdefault("max_sim_time_ns", seconds(600))
    grid: Dict[str, PopulationConfig] = {}
    for a, b in combinations(profiles, 2):
        name = f"{a.replace(':', '-')}__vs__{b.replace(':', '-')}"
        grid[name] = PopulationConfig(
            flows=2,
            arrival="trace",
            arrival_times_ns=(0, 0),
            file_size=file_size,
            profiles=(a, b),
            **kwargs,
        )
    return grid


def impairment_sweep(**kwargs) -> Dict[str, ExperimentConfig]:
    """Fault-injection grid: stock quiche + FQ under each impairment in
    :data:`IMPAIRMENT_SWEEP_SPECS` (clean baseline, i.i.d. loss at two
    rates, Gilbert–Elliott burst loss, reordering, duplication, a flapping
    bottleneck). The burst-loss point reproduces the spurious-loss cwnd
    rollback signature; see EXPERIMENTS.md."""
    return {
        name: impairment_config(specs, **kwargs)
        for name, specs in IMPAIRMENT_SWEEP_SPECS.items()
    }
