"""One measurement: assemble the Figure-1 topology, run a single download.

Topology (measurement direction, left to right)::

    server app/stack -> UDP socket -> qdisc -> GSO segmenter -> NIC (+LaunchTime)
        -> 1 Gbit/s link -> optical tap (sniffer) -> TBF 40 Mbit/s (2xBDP buffer)
        -> netem +20 ms -> client socket -> client stack

    client ACKs -> 1 Gbit/s link -> netem +20 ms -> server socket

The sniffer sits *before* the bottleneck, so captured timestamps show the
server's pacing, not the shaper's.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass, field
from typing import List, Optional, Tuple

from repro.cc.factory import make_cc
from repro.errors import SimulationError
from repro.framework.config import ExperimentConfig
from repro.kernel.gso import GsoSegmenter
from repro.kernel.qdisc import make_qdisc
from repro.kernel.socket import UdpSocket
from repro.metrics.goodput import goodput_mbps
from repro.net.bottleneck import Bottleneck
from repro.net.impairments import build_impairments
from repro.net.link import Link
from repro.net.nic import Nic
from repro.kernel.socket import reset_gso_ids
from repro.net.packet import reset_dgram_ids
from repro.net.tap import CaptureRecord, FiberTap, Sniffer
from repro.pacing.gso_policy import GsoPolicy
from repro.quic import h3
from repro.quic.connection import Connection, ConnectionConfig
from repro.sim.engine import Simulator
from repro.sim.random import RngRegistry
from repro.stacks.base import ServerDriver, make_pacer
from repro.stacks.client import ClientDriver
from repro.stacks.profiles import profile_for
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender
from repro.units import mib, ms, us

SERVER_ADDR, SERVER_PORT = "10.0.0.1", 443
CLIENT_ADDR, CLIENT_PORT = "10.0.0.2", 40000

#: QUIC max UDP payload used throughout (paper-like 1252-byte packets).
MTU_PAYLOAD = 1252


@dataclass
class ExperimentResult:
    config: ExperimentConfig
    seed: int
    completed: bool
    duration_ns: int
    goodput_mbps: float
    dropped: int
    server_records: List[CaptureRecord]
    expected_send_log: List[Tuple[int, int]]
    cwnd_trace: List[Tuple[int, int]] = field(default_factory=list)
    queue_trace: List[Tuple[int, int]] = field(default_factory=list)
    qdisc_stats: dict = field(default_factory=dict)
    server_stats: dict = field(default_factory=dict)
    #: Per-object completion times relative to the request (multi-object runs).
    object_completion_ns: dict = field(default_factory=dict)
    #: Fault-injection drops (impairment stages), as opposed to ``dropped``,
    #: which counts congestion (bottleneck queue-overflow) drops.
    injected_drops: int = 0
    #: Per-stage impairment counters, keyed ``"{dir}/{index}/{kind}"``.
    impairment_stats: dict = field(default_factory=dict)
    #: Execution observability (progress/throughput reporting, not metrics):
    #: simulator events fired and host wall-clock seconds for this repetition.
    events_processed: int = 0
    wall_time_s: float = 0.0

    @property
    def packets_on_wire(self) -> int:
        return len(self.server_records)

    def fingerprint(self) -> str:
        """Stable digest of every *deterministic* field of this result.

        Covers config, seed, timings, traces, captures, and all counters;
        excludes execution observability (``wall_time_s``,
        ``events_processed``), which legitimately varies between hosts,
        worker counts, and cache hits. Two runs of the same (config, seed)
        must produce equal fingerprints regardless of serial/parallel/cached
        execution — the determinism test suite pins exactly that.
        """
        payload = {
            "config": asdict(self.config),
            "seed": self.seed,
            "completed": self.completed,
            "duration_ns": self.duration_ns,
            "goodput_mbps": self.goodput_mbps,
            "dropped": self.dropped,
            "injected_drops": self.injected_drops,
            "server_records": [asdict(r) for r in self.server_records],
            "expected_send_log": self.expected_send_log,
            "cwnd_trace": self.cwnd_trace,
            "queue_trace": self.queue_trace,
            "qdisc_stats": self.qdisc_stats,
            "server_stats": self.server_stats,
            "object_completion_ns": self.object_completion_ns,
            "impairment_stats": self.impairment_stats,
        }
        encoded = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(encoded).hexdigest()

    def validate(self) -> None:
        """Check this result against the framework's conservation invariants.

        Raises :class:`~repro.errors.ValidationError` naming the violated
        invariant. The sweep layer calls this on every repetition before it
        is cached or summarized; it is exposed here so artifact consumers can
        re-check deserialized results.
        """
        from repro.framework.validate import validate_result

        validate_result(self)


class Experiment:
    """Builds and runs one repetition of a configured measurement."""

    def __init__(self, config: ExperimentConfig, seed: Optional[int] = None):
        config.validate()
        self.config = config
        self.seed = config.seed if seed is None else seed
        self.rngs = RngRegistry(self.seed)
        self.sim = Simulator()
        self.sniffer = Sniffer()
        # Datagram and GSO-buffer ids must be a pure function of this run,
        # not of earlier experiments in the same process (bit-identical
        # serial/parallel/cached results depend on it).
        reset_dgram_ids()
        reset_gso_ids()
        self._build()

    # -- assembly ------------------------------------------------------------

    def _build(self) -> None:
        cfg = self.config
        net = cfg.network

        # Client-side receive path (bottleneck emulation + ingress socket).
        self.client_sock = UdpSocket(
            self.sim, CLIENT_ADDR, CLIENT_PORT, rcvbuf_bytes=mib(50)
        )
        if net.bottleneck == "wifi":
            from repro.net.wifi import WifiBottleneck

            self.bottleneck = WifiBottleneck(
                self.sim,
                "wifi-bottleneck",
                phy_rate_bps=net.wifi_phy_rate_bps,
                access_overhead_ns=net.wifi_access_overhead_ns,
                max_aggregate=net.wifi_max_aggregate,
                queue_limit_bytes=net.buffer_bytes,
                delay_ns=net.one_way_delay_ns,
                sink=self.client_sock,
            )
        else:
            self.bottleneck = Bottleneck(
                self.sim,
                "bottleneck",
                rate_bps=net.bottleneck_rate_bps,
                queue_limit_bytes=net.buffer_bytes,
                burst_bytes=net.tbf_burst_bytes,
                delay_ns=net.one_way_delay_ns,
                ecn_mark_threshold_bytes=(net.buffer_bytes // 4 if cfg.ecn else None),
                sink=self.client_sock,
            )
        self.bottleneck.trace_queue = cfg.trace_queue
        # Forward-path fault injection sits between the capture tap and the
        # bottleneck: the sniffer still sees the sender's pacing untouched
        # (tap-before-bottleneck, as in the paper), while the client observes
        # the impaired path. Each stage draws from its own named per-rep
        # stream, so impairment randomness is independent per repetition and
        # identical across serial/parallel/cached execution.
        flap_target = self.bottleneck if net.bottleneck == "tbf" else None
        fwd_head, self.fwd_impairments, self.flappers = build_impairments(
            net.forward_impairments,
            self.sim,
            sink=self.bottleneck,
            rng_for=self.rngs.stream,
            direction="fwd",
            bottleneck=flap_target,
        )
        tap = FiberTap(self.sim, self.sniffer, sink=fwd_head)
        server_link = Link(
            self.sim, "server-link", net.link_rate_bps, propagation_ns=us(1), sink=tap
        )
        self.server_nic = Nic(
            self.sim,
            "server-nic",
            server_link,
            launchtime=(cfg.qdisc == "etf-offload"),
            rng=self.rngs.stream("nic"),
        )
        segmenter = GsoSegmenter(self.sim, sink=self.server_nic)
        self.segmenter = segmenter
        qdisc_params = {}
        if cfg.qdisc in ("etf", "etf-offload"):
            qdisc_params["delta_ns"] = cfg.etf_delta_ns
        self.qdisc = make_qdisc(
            cfg.qdisc if cfg.qdisc != "none" else "pfifo_fast",
            self.sim,
            sink=segmenter,
            rng=self.rngs.stream("qdisc"),
            **qdisc_params,
        )

        # Server egress socket.
        so_txtime = cfg.stack == "quiche"
        self.server_sock = UdpSocket(
            self.sim, SERVER_ADDR, SERVER_PORT, egress=self.qdisc, so_txtime=so_txtime
        )
        self.server_sock.connect(CLIENT_ADDR, CLIENT_PORT)

        # Client egress (ACK) path: 1 Gbit/s + 20 ms, no rate limit needed.
        from repro.kernel.qdisc.netem import NetemQdisc

        reverse_delay = NetemQdisc(
            self.sim,
            "reverse-netem",
            sink=self.server_sock,
            delay_ns=net.one_way_delay_ns,
            rng=self.rngs.stream("reverse-netem"),
        )
        # Reverse-path (ACK) fault injection sits between the client link and
        # the delay stage.
        rev_head, self.rev_impairments, _ = build_impairments(
            net.reverse_impairments,
            self.sim,
            sink=reverse_delay,
            rng_for=self.rngs.stream,
            direction="rev",
        )
        client_link = Link(
            self.sim, "client-link", net.link_rate_bps, propagation_ns=us(1), sink=rev_head
        )
        self.client_sock.egress = client_link
        self.client_sock.connect(SERVER_ADDR, SERVER_PORT)

        if cfg.stack == "tcp":
            self._build_tcp()
        else:
            self._build_quic()

        if self.qlog_trace is not None:
            trace = self.qlog_trace
            hook = lambda name, time_ns, data: trace.log(time_ns, name, **data)
            for stage in (*self.fwd_impairments, *self.rev_impairments):
                stage.on_event = hook

    def _gso_policy(self) -> GsoPolicy:
        if self.config.gso == "off":
            return GsoPolicy(enabled=False)
        return GsoPolicy(
            enabled=True,
            max_segments=self.config.gso_segments,
            paced=(self.config.gso == "paced"),
        )

    def _build_quic(self) -> None:
        cfg = self.config
        overrides = {}
        if cfg.stack == "quiche":
            overrides["gso"] = self._gso_policy()
            if cfg.spurious_rollback is not None:
                overrides["spurious_rollback"] = cfg.spurious_rollback
            if cfg.qdisc in ("etf", "etf-offload"):
                # ETF drops packets whose timestamp is in the past; senders
                # must stamp at least delta (plus slack) into the future.
                overrides["txtime_min_offset_ns"] = cfg.etf_delta_ns + us(100)
        if cfg.pacing_override is not None:
            overrides["pacing"] = cfg.pacing_override
        if cfg.client_ack_threshold is not None:
            overrides["client_ack_threshold"] = cfg.client_ack_threshold
        if cfg.client_max_ack_delay_ns is not None:
            overrides["client_max_ack_delay_ns"] = cfg.client_max_ack_delay_ns
        if cfg.bucket_packets is not None:
            overrides["bucket_packets"] = cfg.bucket_packets
        profile = profile_for(cfg.stack, cfg.cca, **overrides)
        self.profile = profile

        server_cc = make_cc(
            profile.cca,
            mtu=MTU_PAYLOAD,
            hystart=profile.hystart,
            spurious_rollback=profile.spurious_rollback,
            rollback_loss_threshold=profile.rollback_loss_threshold,
            bbr_params=profile.bbr_params,
        )
        server_cc.pacing_gain_factor = profile.pacing_gain
        if cfg.trace_cwnd:
            server_cc.enable_trace()
        self.server_cc = server_cc

        server_conn = Connection(
            "server",
            cc=server_cc,
            config=ConnectionConfig(
                mtu_payload=MTU_PAYLOAD,
                peer_max_data=profile.recv_conn_window,
                peer_max_stream_data=profile.recv_stream_window,
                recv_conn_window=mib(1),
                recv_stream_window=mib(1),
                fc_autotune=True,
                ecn=cfg.ecn,
            ),
        )
        client_conn = Connection(
            "client",
            cc=make_cc("newreno", mtu=MTU_PAYLOAD),
            config=ConnectionConfig(
                mtu_payload=MTU_PAYLOAD,
                recv_conn_window=profile.recv_conn_window,
                recv_stream_window=profile.recv_stream_window,
                fc_autotune=profile.fc_autotune,
                peer_max_data=mib(1),
                peer_max_stream_data=mib(1),
                ack_threshold=profile.client_ack_threshold,
                max_ack_delay_ns=profile.client_max_ack_delay_ns,
                ecn=cfg.ecn,
            ),
        )
        if cfg.qlog:
            from repro.quic.qlog import QlogTrace, attach_qlog

            self.qlog_trace = QlogTrace(f"{cfg.label} seed={self.seed}")
            attach_qlog(server_conn, self.qlog_trace)
        else:
            self.qlog_trace = None

        pacer = make_pacer(profile, MTU_PAYLOAD)
        object_size = cfg.file_size // cfg.objects
        self.server = ServerDriver(
            self.sim,
            server_conn,
            self.server_sock,
            profile,
            pacer,
            response_size=h3.response_stream_size(object_size),
            rng=self.rngs.stream("server-proc"),
        )
        self.client = ClientDriver(
            self.sim,
            client_conn,
            self.client_sock,
            rng=self.rngs.stream("client-proc"),
            request_count=cfg.objects,
        )
        self.tcp_sender = None
        self.tcp_receiver = None

    def _build_tcp(self) -> None:
        cfg = self.config
        from repro.cc.cubic import Cubic, CubicParams
        from repro.tcp.segment import TCP_MSS

        cc = make_cc(cfg.cca, mtu=TCP_MSS) if cfg.cca != "cubic" else Cubic(
            params=CubicParams(hystart=True, hystart_ack_train=True), mtu=TCP_MSS
        )
        if cfg.trace_cwnd:
            cc.enable_trace()
        self.server_cc = cc
        self.tcp_sender = TcpSender(self.sim, self.server_sock, cfg.file_size, cc=cc)
        self.tcp_receiver = TcpReceiver(self.sim, self.client_sock, cfg.file_size)
        self.server = None
        self.client = None
        self.profile = None
        self.qlog_trace = None

    # -- run -----------------------------------------------------------------

    def run(self) -> ExperimentResult:
        wall_start = time.perf_counter()
        cfg = self.config
        if cfg.stack == "tcp":
            self.tcp_sender.start()
            is_done = lambda: self.tcp_receiver.done
        else:
            self.client.start()
            is_done = lambda: self.client.done

        chunk = ms(200)
        while not is_done() and self.sim.now < cfg.max_sim_time_ns:
            before = self.sim.events_processed
            self.sim.run(until=self.sim.now + chunk)
            if self.sim.events_processed == before and self.sim.peek_time() is None:
                break  # stalled: no pending events and not complete

        completed = is_done()
        if cfg.stack == "tcp":
            start = self.tcp_sender.started_at or 0
            end = self.tcp_receiver.completed_at or self.sim.now
        else:
            start = self.client.request_sent_at or 0
            end = self.client.completed_at or self.sim.now
        duration = max(end - start, 1)

        records = self.sniffer.from_host(SERVER_ADDR)
        object_times = (
            {sid: t - start for sid, t in self.client.object_completed_at.items()}
            if self.client
            else {}
        )
        expected_log = list(self.server.expected_send_log) if self.server else []
        server_stats = self._server_stats()
        impairment_stats = {
            stage.name: stage.stats.as_dict()
            for stage in (*self.fwd_impairments, *self.rev_impairments)
        }
        injected = sum(s["injected_drops"] for s in impairment_stats.values())
        return ExperimentResult(
            config=cfg,
            seed=self.seed,
            completed=completed,
            duration_ns=duration,
            goodput_mbps=goodput_mbps(cfg.file_size, duration),
            dropped=self.bottleneck.dropped,
            server_records=records,
            expected_send_log=expected_log,
            cwnd_trace=self.server_cc.cwnd_trace,
            queue_trace=list(self.bottleneck.queue_trace),
            qdisc_stats=self.qdisc.stats.as_dict(),
            server_stats=server_stats,
            object_completion_ns=object_times,
            injected_drops=injected,
            impairment_stats=impairment_stats,
            events_processed=self.sim.events_processed,
            wall_time_s=time.perf_counter() - wall_start,
        )

    def _server_stats(self) -> dict:
        if self.config.stack == "tcp":
            return {
                "retransmissions": self.tcp_sender.retransmissions,
                "acks_received": 0,
            }
        conn = self.server.conn
        return {
            "packets_sent": conn.packets_sent,
            "stream_bytes_retx": conn.stream_bytes_retx,
            "spurious_loss_events": conn.spurious_loss_events,
            "lost_packets_total": conn.recovery.lost_packets_total,
            "congestion_events": conn.cc.congestion_events,
            "rollbacks": getattr(conn.cc, "rollbacks", 0),
            "gso_buffers": self.segmenter.buffers_split,
        }


def run_experiment(config: ExperimentConfig, seed: Optional[int] = None) -> ExperimentResult:
    """Convenience: build and run one repetition."""
    return Experiment(config, seed=seed).run()
