"""Measurement framework: reproducible single-connection experiments over the
emulated testbed, with repetition and aggregation (paper Section 3), parallel
grid fan-out, and persistent result caching."""

from repro.framework.cache import CACHE_VERSION, CacheStats, ResultCache, default_cache_dir
from repro.framework.config import ExperimentConfig, NetworkConfig
from repro.framework.experiment import Experiment, ExperimentResult
from repro.framework.runner import RunSummary, derive_seed, run_repetitions
from repro.framework.sweep import SweepRunner, run_sweep

__all__ = [
    "CACHE_VERSION",
    "CacheStats",
    "ExperimentConfig",
    "NetworkConfig",
    "Experiment",
    "ExperimentResult",
    "ResultCache",
    "RunSummary",
    "SweepRunner",
    "default_cache_dir",
    "derive_seed",
    "run_repetitions",
    "run_sweep",
]
