"""Measurement framework: reproducible single-connection experiments over the
emulated testbed, with repetition and aggregation (paper Section 3), parallel
grid fan-out under supervision (timeouts, retries, crash recovery),
checkpoint/resume journaling, result validation, and persistent result
caching."""

from repro.framework.cache import CACHE_VERSION, CacheStats, ResultCache, default_cache_dir
from repro.framework.config import ExperimentConfig, NetworkConfig
from repro.framework.experiment import Experiment, ExperimentResult
from repro.framework.journal import SweepJournal, grid_key
from repro.framework.runner import RunSummary, derive_seed, run_repetitions
from repro.framework.supervision import RepFailure, SupervisionPolicy, Supervisor
from repro.framework.sweep import SweepRunner, run_sweep
from repro.framework.validate import validate_result

__all__ = [
    "CACHE_VERSION",
    "CacheStats",
    "ExperimentConfig",
    "NetworkConfig",
    "Experiment",
    "ExperimentResult",
    "RepFailure",
    "ResultCache",
    "RunSummary",
    "SupervisionPolicy",
    "Supervisor",
    "SweepJournal",
    "SweepRunner",
    "default_cache_dir",
    "derive_seed",
    "grid_key",
    "run_repetitions",
    "run_sweep",
    "validate_result",
]
