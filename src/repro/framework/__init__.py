"""Measurement framework: reproducible single-connection experiments over the
emulated testbed, with repetition and aggregation (paper Section 3)."""

from repro.framework.config import ExperimentConfig, NetworkConfig
from repro.framework.experiment import Experiment, ExperimentResult
from repro.framework.runner import run_repetitions, RunSummary

__all__ = [
    "ExperimentConfig",
    "NetworkConfig",
    "Experiment",
    "ExperimentResult",
    "run_repetitions",
    "RunSummary",
]
