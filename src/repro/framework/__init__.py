"""Measurement framework: reproducible single-connection experiments over the
emulated testbed, with repetition and aggregation (paper Section 3), parallel
grid fan-out under supervision (timeouts, retries, crash recovery),
checkpoint/resume journaling, result validation, and persistent result
caching."""

from repro.framework.cache import CACHE_VERSION, CacheStats, ResultCache, default_cache_dir
from repro.framework.config import ExperimentConfig, NetworkConfig
from repro.framework.executors import (
    BACKENDS,
    DistributedExecutor,
    Executor,
    ForkServerExecutor,
    InProcessExecutor,
    PoolExecutor,
    SpawnExecutor,
    make_executor,
)
from repro.framework.experiment import Experiment, ExperimentResult
from repro.framework.journal import SweepJournal, grid_key
from repro.framework.runner import RunSummary, derive_seed, run_repetitions
from repro.framework.store import STORE_VERSION, ResultStore
from repro.framework.supervision import RepFailure, SupervisionPolicy, Supervisor
from repro.framework.sweep import SweepRunner, run_sweep
from repro.framework.validate import validate_result

__all__ = [
    "BACKENDS",
    "CACHE_VERSION",
    "CacheStats",
    "DistributedExecutor",
    "Executor",
    "ExperimentConfig",
    "ForkServerExecutor",
    "InProcessExecutor",
    "NetworkConfig",
    "Experiment",
    "ExperimentResult",
    "PoolExecutor",
    "RepFailure",
    "ResultCache",
    "ResultStore",
    "RunSummary",
    "STORE_VERSION",
    "SpawnExecutor",
    "SupervisionPolicy",
    "Supervisor",
    "SweepJournal",
    "SweepRunner",
    "default_cache_dir",
    "derive_seed",
    "grid_key",
    "make_executor",
    "run_repetitions",
    "run_sweep",
    "validate_result",
]
