"""Flow populations: hundreds of concurrent flows over one shared bottleneck.

ROADMAP item 1 names many-flow scale as the closest simulation stand-in for
the "millions of users" production north star. This layer generates a
*population* of flows — N arrivals (Poisson, uniformly spaced, or
trace-driven), heterogeneous per-flow RTTs, mixed stack/CCA/qdisc profiles,
optionally heavy-tailed file sizes, all derived from one seed — and drives
them through :class:`~repro.framework.multiflow.MultiFlowExperiment` on a
single shared queue.

The result reports the QUICbench-style competition view: per-flow
goodput/loss/FCT distributions, Jain fairness over completed flows, a
pairwise throughput-ratio matrix across the stack profiles sharing the
bottleneck, and a transitivity check over the induced "beats" relation
("A beats B, B beats C ⇒ does A beat C?").

Integration. :class:`PopulationConfig` follows the same contract as
:class:`~repro.framework.config.ExperimentConfig` — ``validate()``,
``label``, ``repetitions``, ``seed``, ``cache_key()`` over every field — so
population grids drop straight into :class:`~repro.framework.sweep.SweepRunner`
(cacheable, journaled/resumable, supervised). :class:`PopulationResult`
exposes the duck-typed result surface the sweep stack consumes
(``fingerprint()``, ``goodput_mbps``, ``dropped``, ``completed``, …).
Capture records default to *off* here: a 500-flow run keeps the tap capture
columnar instead of materializing O(flows × packets) record objects.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.framework.config import GSO_MODES, QDISCS, STACKS, NetworkConfig
from repro.framework.multiflow import (
    MAX_FLOWS,
    FlowSpec,
    MultiFlowExperiment,
    MultiFlowResult,
)
from repro.metrics.fairness import (
    beats_relation,
    throughput_ratio_matrix,
    transitivity_violations,
)
from repro.sim.random import RngRegistry
from repro.units import SEC, kib, seconds

ARRIVALS = ("poisson", "uniform", "trace")
SIZE_DISTS = ("fixed", "exp")

#: Reported percentile points for the per-flow distributions.
PERCENTILES = (50, 90, 99)


@dataclass(frozen=True)
class StackProfile:
    """One parsed ``"stack:cca:qdisc:gso"`` population profile."""

    stack: str
    cca: str = "cubic"
    qdisc: str = "none"
    gso: str = "off"

    @property
    def label(self) -> str:
        parts = [self.stack, self.cca]
        if self.qdisc != "none":
            parts.append(self.qdisc)
        if self.gso != "off":
            parts.append(f"gso-{self.gso}")
        return "/".join(parts)

    def validate(self) -> None:
        if self.stack not in STACKS:
            raise ConfigError(f"unknown stack {self.stack!r}; expected one of {STACKS}")
        if self.qdisc not in QDISCS:
            raise ConfigError(f"unknown qdisc {self.qdisc!r}; expected one of {QDISCS}")
        if self.gso not in GSO_MODES:
            raise ConfigError(f"unknown gso mode {self.gso!r}; expected one of {GSO_MODES}")
        if self.stack == "tcp" and self.gso != "off":
            raise ConfigError("GSO modes only apply to QUIC stacks here")


def parse_profile(text: str) -> StackProfile:
    """Parse ``"stack[:cca[:qdisc[:gso]]]"`` (the compete-CLI syntax)."""
    parts = text.split(":")
    if not 1 <= len(parts) <= 4 or not parts[0]:
        raise ConfigError(f"malformed profile {text!r}; expected stack[:cca[:qdisc[:gso]]]")
    profile = StackProfile(
        stack=parts[0],
        cca=parts[1] if len(parts) > 1 else "cubic",
        qdisc=parts[2] if len(parts) > 2 else "none",
        gso=parts[3] if len(parts) > 3 else "off",
    )
    profile.validate()
    return profile


@dataclass(frozen=True)
class PopulationConfig:
    """A generated flow population (sweepable/cacheable like a single
    experiment: every field participates in :meth:`cache_key`)."""

    flows: int = 200
    #: Arrival process: "poisson" (exponential interarrivals at
    #: ``arrival_rate_per_s``), "uniform" (evenly spaced at the same mean
    #: rate), or "trace" (explicit ``arrival_times_ns``).
    arrival: str = "poisson"
    arrival_rate_per_s: float = 50.0
    #: Explicit arrival times for ``arrival="trace"`` (one per flow).
    arrival_times_ns: Tuple[int, ...] = ()
    #: Mean (and fixed) file size; "exp" draws exponential sizes with this
    #: mean, floored at ``min_file_size``.
    file_size: int = kib(256)
    size_dist: str = "fixed"
    min_file_size: int = kib(16)
    #: Per-flow extra RTT drawn uniformly from [0, this] — heterogeneous
    #: RTTs via per-flow reverse-path delay; 0 keeps all RTTs at the base.
    extra_rtt_max_ns: int = 0
    #: Stack profiles (``"stack[:cca[:qdisc[:gso]]]"``), assigned round-robin
    #: so every profile gets an equal share of the population.
    profiles: Tuple[str, ...] = ("quiche:cubic",)
    repetitions: int = 1
    seed: int = 1
    network: NetworkConfig = field(default_factory=NetworkConfig)
    max_sim_time_ns: int = seconds(600)
    #: Materialize per-flow CaptureRecord lists (O(flows × packets) memory);
    #: populations default to columnar-only capture.
    capture_records: bool = False
    #: Flow churn: tear each flow down when it completes (timers silenced,
    #: ports rerouted to a counting drain, references dropped) so a
    #: steady-state population holds O(active) state instead of
    #: O(ever-created). Off by default: teardown cuts post-completion
    #: traffic (e.g. a TCP sender's FIN retransmissions), which perturbs the
    #: shared queue other flows see, so churn runs fingerprint differently.
    churn: bool = False

    def validate(self) -> None:
        if not 1 <= self.flows <= MAX_FLOWS:
            raise ConfigError(f"flows must be in [1, {MAX_FLOWS}], got {self.flows}")
        if self.arrival not in ARRIVALS:
            raise ConfigError(f"unknown arrival {self.arrival!r}; expected one of {ARRIVALS}")
        if self.arrival == "trace":
            if len(self.arrival_times_ns) != self.flows:
                raise ConfigError(
                    f"trace arrivals need {self.flows} times, got {len(self.arrival_times_ns)}"
                )
            if any(t < 0 for t in self.arrival_times_ns):
                raise ConfigError("trace arrival times must be non-negative")
        elif self.arrival_rate_per_s <= 0:
            raise ConfigError(
                f"arrival_rate_per_s must be positive, got {self.arrival_rate_per_s}"
            )
        if self.size_dist not in SIZE_DISTS:
            raise ConfigError(
                f"unknown size_dist {self.size_dist!r}; expected one of {SIZE_DISTS}"
            )
        if self.file_size <= 0:
            raise ConfigError(f"file_size must be positive, got {self.file_size}")
        if not 0 < self.min_file_size <= self.file_size:
            raise ConfigError(
                f"min_file_size must be in (0, file_size], got {self.min_file_size}"
            )
        if self.extra_rtt_max_ns < 0:
            raise ConfigError(f"extra_rtt_max_ns must be >= 0, got {self.extra_rtt_max_ns}")
        if not self.profiles:
            raise ConfigError("at least one stack profile is required")
        for text in self.profiles:
            parse_profile(text)
        if self.repetitions <= 0:
            raise ConfigError(f"repetitions must be positive, got {self.repetitions}")
        if self.max_sim_time_ns <= 0:
            raise ConfigError(f"max_sim_time_ns must be positive, got {self.max_sim_time_ns}")
        self.network.validate()

    @property
    def label(self) -> str:
        parts = [f"pop{self.flows}", self.arrival]
        parts.extend(p.replace(":", "-") for p in self.profiles)
        return "/".join(parts)

    def cache_key(self) -> str:
        """Stable content hash over all fields (same scheme as
        :meth:`ExperimentConfig.cache_key`: sorted-JSON of ``asdict``).

        Fields added after a cache generation shipped are stripped at their
        default value, so every pre-existing key (and the sweep caches built
        on them) stays valid.
        """
        fields = asdict(self)
        if not fields["churn"]:
            del fields["churn"]
        payload = json.dumps(fields, sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()


class FlowPopulation:
    """Deterministic :class:`FlowSpec` generator for a population config.

    All randomness (arrival jitter, size draws, RTT draws) comes from one
    named stream of the run's :class:`RngRegistry`, with a fixed draw order
    per flow, so a population is a pure function of (config, seed).
    """

    def __init__(self, config: PopulationConfig):
        config.validate()
        self.config = config
        self.parsed_profiles = [parse_profile(p) for p in config.profiles]

    def specs(self, seed: int) -> List[FlowSpec]:
        cfg = self.config
        rng = RngRegistry(seed).stream("population")
        specs: List[FlowSpec] = []
        clock_ns = 0.0
        for index in range(cfg.flows):
            # Fixed draw order (arrival, size, rtt) keeps the population
            # stable under changes to any single distribution's parameters.
            if cfg.arrival == "poisson":
                clock_ns += rng.expovariate(cfg.arrival_rate_per_s) * SEC
                start_ns = int(clock_ns)
            elif cfg.arrival == "uniform":
                start_ns = int(index * SEC / cfg.arrival_rate_per_s)
            else:  # trace
                start_ns = cfg.arrival_times_ns[index]
            if cfg.size_dist == "exp":
                size = max(cfg.min_file_size, int(rng.expovariate(1.0 / cfg.file_size)))
            else:
                size = cfg.file_size
            extra_rtt = int(rng.uniform(0, cfg.extra_rtt_max_ns)) if cfg.extra_rtt_max_ns else 0
            profile = self.parsed_profiles[index % len(self.parsed_profiles)]
            specs.append(
                FlowSpec(
                    stack=profile.stack,
                    cca=profile.cca,
                    qdisc=profile.qdisc,
                    gso=profile.gso,
                    file_size=size,
                    start_ns=start_ns,
                    extra_rtt_ns=extra_rtt,
                )
            )
        return specs


def _percentile(sorted_values: List[float], p: float) -> float:
    """Linear-interpolated percentile of a pre-sorted non-empty list."""
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (p / 100) * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    frac = rank - low
    return sorted_values[low] * (1 - frac) + sorted_values[high] * frac


def _distribution(values: List[float]) -> Dict[str, float]:
    if not values:
        return {"mean": 0.0, **{f"p{p}": 0.0 for p in PERCENTILES}}
    ordered = sorted(values)
    out = {"mean": sum(values) / len(values)}
    for p in PERCENTILES:
        out[f"p{p}"] = _percentile(ordered, p)
    return out


@dataclass
class PopulationResult:
    """A population run: the underlying multi-flow result plus the
    distribution / fairness / competition aggregates.

    Duck-typed for the sweep stack: exposes ``seed``, ``completed``,
    ``goodput_mbps`` (aggregate), ``dropped``, ``injected_drops``,
    ``duration_ns``, ``events_processed``, ``wall_time_s``, and
    ``fingerprint()`` like :class:`ExperimentResult`.
    """

    config: PopulationConfig
    seed: int
    multi: MultiFlowResult
    #: Per-profile aggregates: flows, completed, mean goodput/FCT, drops.
    per_profile: Dict[str, Dict[str, float]]
    #: mean/p50/p90/p99 of per-flow goodput (all flows, delivered bytes).
    goodput_dist: Dict[str, float]
    #: mean/p50/p90/p99 of completion time in ms (completed flows only).
    fct_ms_dist: Dict[str, float]
    #: mean/p50/p90/p99 of per-flow congestion drops.
    loss_dist: Dict[str, float]
    #: Jain fairness over completed flows (1.0 if none completed).
    fairness: float
    #: ``matrix[a][b]`` = profile a's mean goodput / profile b's.
    ratio_matrix: Dict[str, Dict[str, float]]
    #: Profile pairs (winner, loser) whose mean-goodput gap exceeds the margin.
    beats: List[Tuple[str, str]]
    #: Triples (a, b, c): a beats b, b beats c, but not a beats c.
    transitivity: List[Tuple[str, str, str]]
    #: Per-component event census (``profile_events`` runs only); pure
    #: observability, never part of the fingerprint.
    census: Optional[Dict[str, object]] = None

    # -- duck-typed result surface (sweep/_emit/summarize/journal) ---------

    @property
    def completed(self) -> bool:
        return self.multi.all_completed

    @property
    def completed_count(self) -> int:
        return self.multi.completed_count

    @property
    def goodput_mbps(self) -> float:
        return self.multi.aggregate_goodput_mbps

    @property
    def dropped(self) -> int:
        return self.multi.total_dropped

    @property
    def injected_drops(self) -> int:
        return self.multi.injected_drops

    @property
    def duration_ns(self) -> int:
        return self.multi.sim_time_ns

    @property
    def events_processed(self) -> int:
        return self.multi.events_processed

    @property
    def wall_time_s(self) -> float:
        return self.multi.wall_time_s

    @property
    def impairment_stats(self) -> dict:
        return self.multi.impairment_stats

    def fingerprint(self) -> str:
        """Stable digest: the config identity plus the multi-flow result's
        own fingerprint. The aggregates are pure functions of those two, so
        hashing them again would only add float-formatting fragility."""
        payload = {"config": self.config.cache_key(), "multi": self.multi.fingerprint()}
        return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()


#: Relative goodput margin for the "beats" relation (wins inside this band
#: count as ties, so simulator noise cannot fabricate a pecking order).
BEATS_MARGIN = 0.05


def aggregate_population(
    config: PopulationConfig, seed: int, multi: MultiFlowResult
) -> PopulationResult:
    """Fold a finished multi-flow run into the population-level view."""
    by_profile: Dict[str, List] = {}
    for flow in multi.flows:
        by_profile.setdefault(flow.spec.label, []).append(flow)

    per_profile: Dict[str, Dict[str, float]] = {}
    profile_goodput: Dict[str, float] = {}
    for label, flows in sorted(by_profile.items()):
        goodputs = [f.goodput_mbps for f in flows]
        fcts = [f.duration_ns / 1e6 for f in flows if f.completed]
        mean_goodput = sum(goodputs) / len(goodputs)
        per_profile[label] = {
            "flows": len(flows),
            "completed": sum(1 for f in flows if f.completed),
            "goodput_mbps_mean": mean_goodput,
            "fct_ms_mean": sum(fcts) / len(fcts) if fcts else 0.0,
            "dropped": sum(f.dropped for f in flows),
            "injected_drops": sum(f.injected_drops for f in flows),
            "ack_drops": sum(f.ack_drops for f in flows),
            "bytes_received": sum(f.bytes_received for f in flows),
        }
        profile_goodput[label] = mean_goodput

    head_to_head = {}
    labels = sorted(profile_goodput)
    for i, a in enumerate(labels):
        for b in labels[i + 1 :]:
            head_to_head[(a, b)] = (profile_goodput[a], profile_goodput[b])
    beats = beats_relation(head_to_head, margin=BEATS_MARGIN)

    return PopulationResult(
        config=config,
        seed=seed,
        multi=multi,
        per_profile=per_profile,
        goodput_dist=_distribution([f.goodput_mbps for f in multi.flows]),
        fct_ms_dist=_distribution([f.duration_ns / 1e6 for f in multi.flows if f.completed]),
        loss_dist=_distribution([float(f.dropped) for f in multi.flows]),
        fairness=multi.fairness_completed,
        ratio_matrix=throughput_ratio_matrix(profile_goodput),
        beats=sorted(beats),
        transitivity=transitivity_violations(beats),
    )


def duel_analysis(
    results: Dict[str, PopulationResult], margin: float = BEATS_MARGIN
) -> Dict[str, object]:
    """Cross-duel competition analysis over a ``fairness_duels`` grid.

    Within one population the "beats" relation comes from a single goodput
    per profile, so it is transitive by construction; across *head-to-head
    duels* it need not be — A can beat B and B beat C while C beats A,
    because each pair competes on its own terms. This folds every two-profile
    duel result into one head-to-head table and reports the relation, the
    per-duel goodput ratios, and any transitivity violations.
    """
    head_to_head: Dict[Tuple[str, str], Tuple[float, float]] = {}
    ratios: Dict[str, float] = {}
    for name, result in sorted(results.items()):
        labels = sorted(result.per_profile)
        if len(labels) != 2:
            continue  # not a duel (homogeneous pair or a population run)
        a, b = labels
        ga = result.per_profile[a]["goodput_mbps_mean"]
        gb = result.per_profile[b]["goodput_mbps_mean"]
        head_to_head[(a, b)] = (ga, gb)
        ratios[name] = ga / gb if gb > 0 else float("inf")
    beats = beats_relation(head_to_head, margin=margin)
    return {
        "head_to_head": {f"{a} vs {b}": v for (a, b), v in head_to_head.items()},
        "ratios": ratios,
        "beats": sorted(beats),
        "transitivity_violations": transitivity_violations(beats),
    }


def run_population(
    config: PopulationConfig,
    seed: Optional[int] = None,
    profile_events: bool = False,
) -> PopulationResult:
    """Generate the population for (config, seed) and run it to completion.

    ``profile_events=True`` (or ``REPRO_EVENT_CENSUS=1``) runs under the
    :class:`~repro.sim.census.CensusSimulator` and attaches the
    per-component event census to the result.
    """
    seed = config.seed if seed is None else seed
    specs = FlowPopulation(config).specs(seed)
    experiment = MultiFlowExperiment(
        specs,
        network=config.network,
        seed=seed,
        max_sim_time_ns=config.max_sim_time_ns,
        capture_records=config.capture_records,
        churn=config.churn,
        profile_events=profile_events,
    )
    multi = experiment.run()
    result = aggregate_population(config, seed, multi)
    result.census = experiment.census_report()
    return result
