"""Experiment configuration.

Defaults mirror the paper's setup: 1 Gbit/s access links, an emulated
40 Mbit/s bottleneck with 40 ms minimum RTT, a bottleneck buffer of two
bandwidth-delay products, a 100 MiB download (scaled down by default for
simulation speed — see EXPERIMENTS.md) repeated N times.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Optional, Tuple

from repro.errors import ConfigError
from repro.net.impairments import ImpairmentSpec
from repro.units import SEC, gbit, mbit, mib, ms, seconds, us

STACKS = ("quiche", "picoquic", "ngtcp2", "tcp")
QDISCS = ("none", "fq", "fq_codel", "etf", "etf-offload")
GSO_MODES = ("off", "on", "paced")


@dataclass(frozen=True)
class NetworkConfig:
    link_rate_bps: int = gbit(1)
    bottleneck_rate_bps: int = mbit(40)
    one_way_delay_ns: int = ms(20)
    buffer_bdp_multiplier: float = 2.0
    tbf_burst_bytes: int = 5_000
    #: Bottleneck model: "tbf" (the paper's wired shaper) or "wifi" (channel
    #: access with frame aggregation, for the Manzoor et al. scenario).
    bottleneck: str = "tbf"
    wifi_phy_rate_bps: int = mbit(60)
    wifi_access_overhead_ns: int = us(400)
    wifi_max_aggregate: int = 32
    #: Fault-injection stages on the data (server→client) path, applied
    #: between the capture tap and the bottleneck, in order. Build specs with
    #: the :mod:`repro.net.impairments` factories (``iid_loss``,
    #: ``burst_loss``, ``reordering``, ``duplication``, ``rate_flap``).
    forward_impairments: Tuple[ImpairmentSpec, ...] = ()
    #: Fault-injection stages on the ACK (client→server) path.
    reverse_impairments: Tuple[ImpairmentSpec, ...] = ()

    def validate(self) -> None:
        if self.bottleneck not in ("tbf", "wifi"):
            raise ConfigError(
                f"unknown bottleneck {self.bottleneck!r}; expected 'tbf' or 'wifi'"
            )
        for rate_field in ("link_rate_bps", "bottleneck_rate_bps", "wifi_phy_rate_bps"):
            if getattr(self, rate_field) <= 0:
                raise ConfigError(
                    f"{rate_field} must be positive, got {getattr(self, rate_field)}"
                )
        for delay_field in ("one_way_delay_ns", "wifi_access_overhead_ns"):
            if getattr(self, delay_field) < 0:
                raise ConfigError(
                    f"{delay_field} must be non-negative, got {getattr(self, delay_field)}"
                )
        if self.buffer_bdp_multiplier <= 0:
            raise ConfigError(
                f"buffer_bdp_multiplier must be positive, got {self.buffer_bdp_multiplier}"
            )
        if self.tbf_burst_bytes <= 0:
            raise ConfigError(f"tbf_burst_bytes must be positive, got {self.tbf_burst_bytes}")
        if self.wifi_max_aggregate < 1:
            raise ConfigError(f"wifi_max_aggregate must be >= 1, got {self.wifi_max_aggregate}")
        for spec in (*self.forward_impairments, *self.reverse_impairments):
            spec.validate()
        for spec in self.reverse_impairments:
            if spec.kind == "rate_flap":
                raise ConfigError("rate_flap modulates the bottleneck; forward path only")
        if self.bottleneck == "wifi" and any(
            spec.kind == "rate_flap" for spec in self.forward_impairments
        ):
            raise ConfigError("rate_flap requires the tbf bottleneck model")

    @property
    def min_rtt_ns(self) -> int:
        return 2 * self.one_way_delay_ns

    @property
    def bdp_bytes(self) -> int:
        return self.bottleneck_rate_bps * self.min_rtt_ns // (8 * SEC)

    @property
    def buffer_bytes(self) -> int:
        return int(self.bdp_bytes * self.buffer_bdp_multiplier)


@dataclass(frozen=True)
class ExperimentConfig:
    stack: str = "quiche"
    cca: str = "cubic"
    qdisc: str = "none"
    gso: str = "off"
    #: Segments per GSO buffer (the paper discusses the buffer-size trade-off
    #: between syscall savings and burstiness).
    gso_segments: int = 10
    #: Force a pacing mode instead of the stack's own ("none" reproduces the
    #: pacing-disabled ablation of Manzoor et al. discussed in related work).
    pacing_override: Optional[str] = None
    #: Override the client's ACK policy (the ACK-frequency discussion of
    #: Section 2: fewer ACKs weaken ACK-clocking and cause bursts without
    #: pacing). None keeps the stack's own client behaviour.
    client_ack_threshold: Optional[int] = None
    client_max_ack_delay_ns: Optional[int] = None
    #: Override the leaky-bucket depth in packets (picoquic's burst size).
    bucket_packets: Optional[int] = None
    #: None = the stack's stock behaviour (quiche: rollback enabled).
    #: False models the paper's "SF" patch.
    spurious_rollback: Optional[bool] = None
    file_size: int = mib(8)
    #: Parallel objects (HTTP/3 streams) the download is split across; the
    #: paper uses a single object, web workloads use many.
    objects: int = 1
    repetitions: int = 5
    seed: int = 1
    etf_delta_ns: int = us(200)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    max_sim_time_ns: int = seconds(180)
    trace_cwnd: bool = False
    trace_queue: bool = False
    #: Attach a qlog-style event trace to the server connection.
    qlog: bool = False
    #: Negotiate ECN end-to-end and enable CE marking at the bottleneck
    #: (extension: congestion signals without loss).
    ecn: bool = False

    def validate(self) -> None:
        if self.stack not in STACKS:
            raise ConfigError(f"unknown stack {self.stack!r}; expected one of {STACKS}")
        if self.qdisc not in QDISCS:
            raise ConfigError(f"unknown qdisc {self.qdisc!r}; expected one of {QDISCS}")
        if self.gso not in GSO_MODES:
            raise ConfigError(f"unknown gso mode {self.gso!r}; expected one of {GSO_MODES}")
        if self.file_size <= 0:
            raise ConfigError(f"file_size must be positive, got {self.file_size}")
        if self.repetitions <= 0:
            raise ConfigError(f"repetitions must be positive, got {self.repetitions}")
        if self.objects <= 0:
            raise ConfigError(f"objects must be positive, got {self.objects}")
        if self.gso_segments < 1:
            raise ConfigError(f"gso_segments must be >= 1, got {self.gso_segments}")
        if self.etf_delta_ns < 0:
            raise ConfigError(f"etf_delta_ns must be non-negative, got {self.etf_delta_ns}")
        if self.max_sim_time_ns <= 0:
            raise ConfigError(f"max_sim_time_ns must be positive, got {self.max_sim_time_ns}")
        if self.client_ack_threshold is not None and self.client_ack_threshold < 1:
            raise ConfigError(
                f"client_ack_threshold must be >= 1, got {self.client_ack_threshold}"
            )
        if self.bucket_packets is not None and self.bucket_packets < 1:
            raise ConfigError(f"bucket_packets must be >= 1, got {self.bucket_packets}")
        if self.objects > 1 and self.stack == "tcp":
            raise ConfigError("multi-object downloads are QUIC-only here")
        if self.stack == "tcp" and self.gso != "off":
            raise ConfigError("GSO modes only apply to QUIC stacks here")
        self.network.validate()

    @property
    def label(self) -> str:
        parts = [self.stack, self.cca]
        if self.qdisc != "none":
            parts.append(self.qdisc)
        if self.gso != "off":
            parts.append(f"gso-{self.gso}")
        if self.spurious_rollback is False:
            parts.append("sf")
        parts.extend(spec.slug for spec in self.network.forward_impairments)
        parts.extend(f"r-{spec.slug}" for spec in self.network.reverse_impairments)
        return "/".join(parts)

    def cache_key(self) -> str:
        """Stable content hash over *all* fields (nested configs included).

        Every field participates automatically via ``dataclasses.asdict``, so
        adding a field can never silently alias two different configurations
        (the failure mode of hand-built label/field-list keys). The hash is a
        plain sha256 over the sorted-JSON form — stable across processes and
        sessions, independent of ``PYTHONHASHSEED``.
        """
        payload = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    def scaled(self, file_size: int, repetitions: Optional[int] = None) -> "ExperimentConfig":
        return replace(
            self,
            file_size=file_size,
            repetitions=repetitions if repetitions is not None else self.repetitions,
        )
