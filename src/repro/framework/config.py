"""Experiment configuration.

Defaults mirror the paper's setup: 1 Gbit/s access links, an emulated
40 Mbit/s bottleneck with 40 ms minimum RTT, a bottleneck buffer of two
bandwidth-delay products, a 100 MiB download (scaled down by default for
simulation speed — see EXPERIMENTS.md) repeated N times.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Optional, Tuple

from repro.errors import ConfigError
from repro.net.impairments import ImpairmentSpec
from repro.units import SEC, gbit, mbit, mib, ms, seconds, us

STACKS = ("quiche", "picoquic", "ngtcp2", "tcp")
QDISCS = ("none", "fq", "fq_codel", "etf", "etf-offload")
GSO_MODES = ("off", "on", "paced")


@dataclass(frozen=True)
class NetworkConfig:
    link_rate_bps: int = gbit(1)
    bottleneck_rate_bps: int = mbit(40)
    one_way_delay_ns: int = ms(20)
    buffer_bdp_multiplier: float = 2.0
    tbf_burst_bytes: int = 5_000
    #: Bottleneck model: "tbf" (the paper's wired shaper) or "wifi" (channel
    #: access with frame aggregation, for the Manzoor et al. scenario).
    bottleneck: str = "tbf"
    wifi_phy_rate_bps: int = mbit(60)
    wifi_access_overhead_ns: int = us(400)
    wifi_max_aggregate: int = 32
    #: Fault-injection stages on the data (server→client) path, applied
    #: between the capture tap and the bottleneck, in order. Build specs with
    #: the :mod:`repro.net.impairments` factories (``iid_loss``,
    #: ``burst_loss``, ``reordering``, ``duplication``, ``rate_flap``).
    forward_impairments: Tuple[ImpairmentSpec, ...] = ()
    #: Fault-injection stages on the ACK (client→server) path.
    reverse_impairments: Tuple[ImpairmentSpec, ...] = ()

    def validate(self) -> None:
        if self.bottleneck not in ("tbf", "wifi"):
            raise ConfigError(
                f"unknown bottleneck {self.bottleneck!r}; expected 'tbf' or 'wifi'"
            )
        for spec in (*self.forward_impairments, *self.reverse_impairments):
            spec.validate()
        for spec in self.reverse_impairments:
            if spec.kind == "rate_flap":
                raise ConfigError("rate_flap modulates the bottleneck; forward path only")
        if self.bottleneck == "wifi" and any(
            spec.kind == "rate_flap" for spec in self.forward_impairments
        ):
            raise ConfigError("rate_flap requires the tbf bottleneck model")

    @property
    def min_rtt_ns(self) -> int:
        return 2 * self.one_way_delay_ns

    @property
    def bdp_bytes(self) -> int:
        return self.bottleneck_rate_bps * self.min_rtt_ns // (8 * SEC)

    @property
    def buffer_bytes(self) -> int:
        return int(self.bdp_bytes * self.buffer_bdp_multiplier)


@dataclass(frozen=True)
class ExperimentConfig:
    stack: str = "quiche"
    cca: str = "cubic"
    qdisc: str = "none"
    gso: str = "off"
    #: Segments per GSO buffer (the paper discusses the buffer-size trade-off
    #: between syscall savings and burstiness).
    gso_segments: int = 10
    #: Force a pacing mode instead of the stack's own ("none" reproduces the
    #: pacing-disabled ablation of Manzoor et al. discussed in related work).
    pacing_override: Optional[str] = None
    #: Override the client's ACK policy (the ACK-frequency discussion of
    #: Section 2: fewer ACKs weaken ACK-clocking and cause bursts without
    #: pacing). None keeps the stack's own client behaviour.
    client_ack_threshold: Optional[int] = None
    client_max_ack_delay_ns: Optional[int] = None
    #: Override the leaky-bucket depth in packets (picoquic's burst size).
    bucket_packets: Optional[int] = None
    #: None = the stack's stock behaviour (quiche: rollback enabled).
    #: False models the paper's "SF" patch.
    spurious_rollback: Optional[bool] = None
    file_size: int = mib(8)
    #: Parallel objects (HTTP/3 streams) the download is split across; the
    #: paper uses a single object, web workloads use many.
    objects: int = 1
    repetitions: int = 5
    seed: int = 1
    etf_delta_ns: int = us(200)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    max_sim_time_ns: int = seconds(180)
    trace_cwnd: bool = False
    trace_queue: bool = False
    #: Attach a qlog-style event trace to the server connection.
    qlog: bool = False
    #: Negotiate ECN end-to-end and enable CE marking at the bottleneck
    #: (extension: congestion signals without loss).
    ecn: bool = False

    def validate(self) -> None:
        if self.stack not in STACKS:
            raise ConfigError(f"unknown stack {self.stack!r}; expected one of {STACKS}")
        if self.qdisc not in QDISCS:
            raise ConfigError(f"unknown qdisc {self.qdisc!r}; expected one of {QDISCS}")
        if self.gso not in GSO_MODES:
            raise ConfigError(f"unknown gso mode {self.gso!r}; expected one of {GSO_MODES}")
        if self.file_size <= 0:
            raise ConfigError("file_size must be positive")
        if self.repetitions <= 0:
            raise ConfigError("repetitions must be positive")
        if self.objects <= 0:
            raise ConfigError("objects must be positive")
        if self.objects > 1 and self.stack == "tcp":
            raise ConfigError("multi-object downloads are QUIC-only here")
        if self.stack == "tcp" and self.gso != "off":
            raise ConfigError("GSO modes only apply to QUIC stacks here")
        self.network.validate()

    @property
    def label(self) -> str:
        parts = [self.stack, self.cca]
        if self.qdisc != "none":
            parts.append(self.qdisc)
        if self.gso != "off":
            parts.append(f"gso-{self.gso}")
        if self.spurious_rollback is False:
            parts.append("sf")
        parts.extend(spec.slug for spec in self.network.forward_impairments)
        parts.extend(f"r-{spec.slug}" for spec in self.network.reverse_impairments)
        return "/".join(parts)

    def cache_key(self) -> str:
        """Stable content hash over *all* fields (nested configs included).

        Every field participates automatically via ``dataclasses.asdict``, so
        adding a field can never silently alias two different configurations
        (the failure mode of hand-built label/field-list keys). The hash is a
        plain sha256 over the sorted-JSON form — stable across processes and
        sessions, independent of ``PYTHONHASHSEED``.
        """
        payload = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    def scaled(self, file_size: int, repetitions: Optional[int] = None) -> "ExperimentConfig":
        return replace(
            self,
            file_size=file_size,
            repetitions=repetitions if repetitions is not None else self.repetitions,
        )
