"""Pluggable execution backends for the sweep layer.

The supervised sweep (ROADMAP item 3) has to serve very different campaign
shapes from one code path: a debugger stepping through a single repetition, a
laptop fanning a paper grid across its cores, and a 10^4-10^6-repetition
campaign where per-repetition process overhead is the dominant cost. An
:class:`Executor` names *where repetitions run*; the
:class:`~repro.framework.supervision.Supervisor` owns *how they are watched*
(timeouts, retries, crash attribution), so every backend inherits the full
supervision/journal/cache semantics unchanged.

Backends
--------

``inprocess``
    Serial, in the calling process. No subprocesses, no pickling — the
    debugging and testing backend (and what ``workers=1`` always collapsed
    to). Cannot enforce wall-clock timeouts: a hung repetition cannot be
    interrupted from inside its own process.

``pool``
    Today's supervised ``ProcessPoolExecutor`` on the platform's default
    multiprocessing start method (``fork`` on Linux), wrapped *unchanged*
    behind the interface. The default.

``spawn``
    A pool on the ``spawn`` start method: every worker boots a fresh
    interpreter and re-imports the simulator (~hundreds of ms each). The
    portable/paranoid choice — and the baseline the ``forkserver`` backend
    is benchmarked against (``benchmarks/perf/backend.py``).

``forkserver``
    A pool whose workers are forked from a long-lived server process that
    *pre-imports* the simulator once (:data:`FORKSERVER_PRELOAD`). Worker
    start-up is a cheap ``fork()`` of an already-warm interpreter, which
    kills the per-worker spawn/import overhead the supervision layer
    otherwise re-pays on every pool restart (watchdog kills, crash
    recovery) and every short-lived campaign shard.

``distributed``
    A lease-dispatching :class:`~repro.framework.remote.Coordinator` over
    long-lived worker agents on one or more hosts (SSH-launched, or local
    subprocesses for ``localhost``). Pool-compatible, so the Supervisor's
    retry/timeout/quarantine loop runs unchanged; host failures (crashes,
    hangs, partitions) are absorbed *below* the pool surface by lease
    reclaim + agent relaunch and charged to the host, never the config.

Selection is an *execution* concern, deliberately independent of
``ExperimentConfig``: the backend participates in no ``cache_key()``, no
journal ``grid_key()``, and no result ``fingerprint()``, so the same grid is
served by the same cache entries under every backend — the differential test
suite (``tests/framework/test_store_differential.py``) pins exactly that.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Optional, Tuple

from repro.errors import ConfigError

__all__ = [
    "BACKENDS",
    "DistributedExecutor",
    "Executor",
    "ForkServerExecutor",
    "InProcessExecutor",
    "PoolExecutor",
    "SpawnExecutor",
    "make_executor",
]

#: Modules the forkserver pre-imports before the first fork. Importing the
#: runner pulls the whole simulator (engine, stacks, qdiscs, metrics)
#: transitively, so forked workers start with everything warm.
FORKSERVER_PRELOAD: Tuple[str, ...] = (
    "repro.framework.runner",
    "repro.framework.population",
)


class Executor:
    """Where repetitions run: serial in-process, or a process pool.

    ``serial`` backends never spawn subprocesses; pooled backends create
    fresh ``ProcessPoolExecutor`` instances via :meth:`make_pool` — called
    once up front and again on every supervision restart (watchdog kill,
    ``BrokenProcessPool`` recovery), so pool construction cost is a real
    per-campaign cost, not a one-off.
    """

    #: Registry name, also the CLI ``--backend`` value.
    name: str = "abstract"
    #: True for backends that run repetitions in the calling process.
    serial: bool = False
    #: True for backends whose "pool" spans machines; the Supervisor never
    #: collapses these to the serial in-process path, even for one task.
    distributed: bool = False

    def make_pool(self, workers: int) -> ProcessPoolExecutor:
        raise NotImplementedError(f"{self.name!r} backend does not pool")

    def observe_policy(self, policy) -> None:
        """Hook: the Supervisor announces its policy before pools are made.

        Local backends ignore it; the distributed backend derives its lease
        deadline from the per-repetition timeout so a legitimately slow
        repetition is charged a :class:`~repro.errors.RepTimeoutError` by
        the watchdog instead of masquerading as a host failure.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class InProcessExecutor(Executor):
    """Serial, in the calling process (tests, debugging, profiling)."""

    name = "inprocess"
    serial = True


class PoolExecutor(Executor):
    """The platform-default ``ProcessPoolExecutor`` (today's behaviour)."""

    name = "pool"

    def make_pool(self, workers: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=workers)


class SpawnExecutor(Executor):
    """Pool on the ``spawn`` start method: fresh interpreter per worker."""

    name = "spawn"

    def make_pool(self, workers: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers, mp_context=multiprocessing.get_context("spawn")
        )


class ForkServerExecutor(Executor):
    """Pool forked from a simulator-preloaded server process.

    The forkserver context is a process-wide singleton: the preload list
    must be registered before its server first starts, so it is set at
    construction time. Once the server is running (first pool of the
    process), later pools fork from the same warm server — which is exactly
    the point: a supervision pool restart costs a ``fork()``, not a
    re-import of the simulator.
    """

    name = "forkserver"

    def __init__(self, preload: Tuple[str, ...] = FORKSERVER_PRELOAD):
        self.preload = tuple(preload)
        self._context = multiprocessing.get_context("forkserver")
        if self.preload:
            try:
                self._context.set_forkserver_preload(list(self.preload))
            except ValueError:  # pragma: no cover - server already running
                pass

    def make_pool(self, workers: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=workers, mp_context=self._context)


class DistributedExecutor(Executor):
    """Multi-host coordinator backend (``repro.framework.remote``).

    ``make_pool`` starts a fresh :class:`~repro.framework.remote.Coordinator`
    (listening socket + agent launches) — called up front and again on every
    supervision restart, exactly like local pool construction. The most
    recent coordinator is kept on :attr:`last_coordinator` so callers and
    tests can read per-host accounting after a campaign.

    Default tuning is campaign-scale (5-minute leases, half-second
    heartbeats); the chaos suite passes much tighter knobs.
    """

    name = "distributed"
    distributed = True

    def __init__(
        self,
        hosts=("localhost",),
        *,
        stream=None,
        **coordinator_kwargs,
    ):
        from repro.framework.remote import merge_hosts

        if isinstance(hosts, str):
            from repro.framework.remote import parse_hosts

            hosts = parse_hosts(hosts)
        self.hosts = merge_hosts(hosts)
        if not self.hosts:
            raise ConfigError("distributed backend needs at least one host")
        self.stream = stream
        self.coordinator_kwargs = dict(coordinator_kwargs)
        self.last_coordinator = None

    #: A lease deadline must outlive the Supervisor's own per-rep watchdog
    #: by this factor, so the watchdog (which charges the config a
    #: RepTimeoutError and retries) always fires before lease expiry
    #: (which kills the agent and charges the host).
    LEASE_TIMEOUT_FACTOR = 1.25

    def observe_policy(self, policy) -> None:
        timeout_s = getattr(policy, "timeout_s", None)
        if timeout_s is None:
            return
        floor = timeout_s * self.LEASE_TIMEOUT_FACTOR
        current = self.coordinator_kwargs.get("lease_timeout_s", 300.0)
        if current < floor:
            self.coordinator_kwargs["lease_timeout_s"] = floor

    def make_pool(self, workers: int):
        from repro.framework.remote import Coordinator

        coordinator = Coordinator(
            self.hosts, stream=self.stream, **self.coordinator_kwargs
        )
        coordinator.start()
        self.last_coordinator = coordinator
        return coordinator

    def __repr__(self) -> str:
        specs = ",".join(
            f"{spec.host}:{spec.slots}" if spec.slots != 1 else spec.host
            for spec in self.hosts
        )
        return f"DistributedExecutor({specs})"


#: Backend registry, in documentation order.
BACKENDS: Tuple[str, ...] = ("inprocess", "pool", "spawn", "forkserver", "distributed")

_FACTORIES = {
    InProcessExecutor.name: InProcessExecutor,
    PoolExecutor.name: PoolExecutor,
    SpawnExecutor.name: SpawnExecutor,
    ForkServerExecutor.name: ForkServerExecutor,
    DistributedExecutor.name: DistributedExecutor,
}


def make_executor(backend: Optional[str]) -> Executor:
    """Resolve a backend name (or pass an :class:`Executor` through).

    ``None`` means the default (``pool``). Unknown names raise
    :class:`~repro.errors.ConfigError` — an operator error, mapped to exit
    code 2 by the CLI like every other configuration mistake.
    """
    if backend is None:
        return PoolExecutor()
    if isinstance(backend, Executor):
        return backend
    factory = _FACTORIES.get(backend)
    if factory is None:
        raise ConfigError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    return factory()
