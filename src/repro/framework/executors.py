"""Pluggable execution backends for the sweep layer.

The supervised sweep (ROADMAP item 3) has to serve very different campaign
shapes from one code path: a debugger stepping through a single repetition, a
laptop fanning a paper grid across its cores, and a 10^4-10^6-repetition
campaign where per-repetition process overhead is the dominant cost. An
:class:`Executor` names *where repetitions run*; the
:class:`~repro.framework.supervision.Supervisor` owns *how they are watched*
(timeouts, retries, crash attribution), so every backend inherits the full
supervision/journal/cache semantics unchanged.

Backends
--------

``inprocess``
    Serial, in the calling process. No subprocesses, no pickling — the
    debugging and testing backend (and what ``workers=1`` always collapsed
    to). Cannot enforce wall-clock timeouts: a hung repetition cannot be
    interrupted from inside its own process.

``pool``
    Today's supervised ``ProcessPoolExecutor`` on the platform's default
    multiprocessing start method (``fork`` on Linux), wrapped *unchanged*
    behind the interface. The default.

``spawn``
    A pool on the ``spawn`` start method: every worker boots a fresh
    interpreter and re-imports the simulator (~hundreds of ms each). The
    portable/paranoid choice — and the baseline the ``forkserver`` backend
    is benchmarked against (``benchmarks/perf/backend.py``).

``forkserver``
    A pool whose workers are forked from a long-lived server process that
    *pre-imports* the simulator once (:data:`FORKSERVER_PRELOAD`). Worker
    start-up is a cheap ``fork()`` of an already-warm interpreter, which
    kills the per-worker spawn/import overhead the supervision layer
    otherwise re-pays on every pool restart (watchdog kills, crash
    recovery) and every short-lived campaign shard.

``distributed``
    A lease-dispatching :class:`~repro.framework.remote.Coordinator` over
    long-lived worker agents on one or more hosts (SSH-launched, or local
    subprocesses for ``localhost``). Pool-compatible, so the Supervisor's
    retry/timeout/quarantine loop runs unchanged; host failures (crashes,
    hangs, partitions) are absorbed *below* the pool surface by lease
    reclaim + agent relaunch and charged to the host, never the config.

Selection is an *execution* concern, deliberately independent of
``ExperimentConfig``: the backend participates in no ``cache_key()``, no
journal ``grid_key()``, and no result ``fingerprint()``, so the same grid is
served by the same cache entries under every backend — the differential test
suite (``tests/framework/test_store_differential.py``) pins exactly that.
"""

from __future__ import annotations

import functools
import itertools
import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

from repro.errors import ConfigError, ExecutionError

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic builds only
    _shared_memory = None

__all__ = [
    "BACKENDS",
    "DistributedExecutor",
    "Executor",
    "ForkServerExecutor",
    "InProcessExecutor",
    "PoolExecutor",
    "SharedMemoryTransport",
    "ShmSegmentRef",
    "SpawnExecutor",
    "make_executor",
]

#: Modules the forkserver pre-imports before the first fork. Importing the
#: runner pulls the whole simulator (engine, stacks, qdiscs, metrics)
#: transitively, so forked workers start with everything warm.
FORKSERVER_PRELOAD: Tuple[str, ...] = (
    "repro.framework.runner",
    "repro.framework.population",
)


# -- shared-memory result transport -----------------------------------------
#
# A pooled repetition's result travels back to the parent through the
# executor's result queue: the worker pickles it, the queue's feeder thread
# chunks it through a pipe, and the parent's collector thread reassembles
# and unpickles. For payload-heavy repetitions (capture columns, per-flow
# distributions) that pipe copy is the dominant per-rep overhead left after
# the forkserver work (ROADMAP items 2b/3). Co-located workers can skip it:
# the worker serializes once into a POSIX shared-memory segment and sends
# only a tiny (name, size) ref through the queue; the parent maps the
# segment, unpickles in place, and unlinks it.
#
# Failure containment:
#   * creation failure (no /dev/shm, size limits, name clash) falls back to
#     the queue path for that repetition — never an error;
#   * every segment name carries a per-transport prefix, so segments leaked
#     by a worker that died between creating a segment and settling its
#     result are found and unlinked by a post-campaign sweep (and again by
#     an atexit hook if the campaign itself died);
#   * a ref whose segment vanished before the parent read it raises
#     ExecutionError, which the Supervisor treats like any worker failure —
#     charged, retried with the same derived seed, bit-identical.
#
# The transport is invisible to results: fingerprints, cache keys, journal
# and store identity never see it (pinned by tests/framework/
# test_shm_transport.py).

#: Results whose pickled payload reaches this many bytes ride shared
#: memory; smaller ones stay on the queue (override: REPRO_SHM_THRESHOLD).
DEFAULT_SHM_THRESHOLD = 256 * 1024

#: Set ``REPRO_SHM=0`` to force every result onto the queue path.
SHM_ENV = "REPRO_SHM"
SHM_THRESHOLD_ENV = "REPRO_SHM_THRESHOLD"


@dataclass(frozen=True)
class ShmSegmentRef:
    """A result parked in a shared-memory segment: what rides the queue."""

    name: str
    size: int


@dataclass(frozen=True)
class _InlineBlob:
    """A result too small for shared memory, pre-pickled by the worker.

    Sending the worker's existing pickle avoids serializing the object a
    second time for the queue; ``bytes`` payloads re-pickle as a header and
    one memcpy.
    """

    blob: bytes


#: Per-worker segment counter; combined with the worker PID for uniqueness
#: (fork copies the counter, but not the PID).
_SHM_SEQ = itertools.count()


def _untrack_segment(segment: Any) -> None:
    """Detach a segment from this process's resource tracker.

    The creating worker hands ownership to the parent (which unlinks after
    reading), so the tracker must not also unlink it at worker exit.
    """
    try:  # pragma: no cover - tracker layout is a CPython internal
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass


def _shm_worker_run(
    run_fn: Callable, prefix: str, threshold: int, config: Any, seed: int
) -> Any:
    """Worker-side wrapper: run the repetition, choose the transport."""
    result = run_fn(config, seed)
    blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    if len(blob) < threshold or _shared_memory is None:
        return _InlineBlob(blob)
    name = f"{prefix}{os.getpid()}-{next(_SHM_SEQ)}"
    try:
        segment = _shared_memory.SharedMemory(
            name=name, create=True, size=len(blob)
        )
    except (OSError, ValueError):
        # No /dev/shm, size limit, or name collision: queue fallback.
        return _InlineBlob(blob)
    try:
        segment.buf[: len(blob)] = blob
    finally:
        _untrack_segment(segment)
        segment.close()
    return ShmSegmentRef(name=name, size=len(blob))


class SharedMemoryTransport:
    """Shared-memory result transport for one executor's campaigns."""

    def __init__(self, threshold: Optional[int] = None, enabled: Optional[bool] = None):
        if enabled is None:
            enabled = os.environ.get(SHM_ENV, "").strip() not in ("0", "off")
        if threshold is None:
            try:
                threshold = int(os.environ.get(SHM_THRESHOLD_ENV, ""))
            except ValueError:
                threshold = DEFAULT_SHM_THRESHOLD
        self.threshold = threshold
        self.enabled = bool(enabled) and _shared_memory is not None
        #: Prefix namespacing every segment this transport's workers create;
        #: the leak sweep removes exactly this namespace and nothing else.
        self.prefix = f"repro-shm-{os.getpid()}-{os.urandom(4).hex()}-"
        self.stats = {"shm_results": 0, "inline_results": 0, "swept_segments": 0}
        self._atexit_registered = False

    def wrap(self, run_fn: Callable) -> Callable:
        """The callable actually submitted to worker processes."""
        if not self.enabled:
            return run_fn
        if not self._atexit_registered:
            import atexit

            atexit.register(self.sweep)
            self._atexit_registered = True
        return functools.partial(
            _shm_worker_run, run_fn, self.prefix, self.threshold
        )

    def resolve(self, obj: Any) -> Any:
        """Parent-side: materialize whatever the worker sent back."""
        if isinstance(obj, _InlineBlob):
            self.stats["inline_results"] += 1
            return pickle.loads(obj.blob)
        if not isinstance(obj, ShmSegmentRef):
            return obj
        try:
            segment = _shared_memory.SharedMemory(name=obj.name)
        except FileNotFoundError:
            raise ExecutionError(
                f"shared-memory segment {obj.name} vanished before its "
                "result was read"
            ) from None
        # Unlink *before* unpickling (POSIX keeps the mapping alive until
        # close): even a poisoned payload cannot leak the segment. Unpickle
        # straight from the mapped buffer — no intermediate bytes copy.
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - lost a race to sweep
            pass
        view = segment.buf[: obj.size]
        try:
            result = pickle.loads(view)
        finally:
            view.release()
            segment.close()
        self.stats["shm_results"] += 1
        return result

    def sweep(self) -> int:
        """Unlink leftover segments in this transport's namespace.

        Covers workers that died between creating a segment and settling
        the repetition (SIGKILL, watchdog pool teardown). Linux backs POSIX
        shared memory with /dev/shm; on platforms without it there is
        nothing to enumerate and the sweep is a no-op.
        """
        if not self.enabled:
            return 0
        shm_dir = "/dev/shm"
        removed = 0
        if os.path.isdir(shm_dir):
            for fname in os.listdir(shm_dir):
                if not fname.startswith(self.prefix):
                    continue
                try:
                    segment = _shared_memory.SharedMemory(name=fname)
                except (FileNotFoundError, OSError):
                    continue
                segment.close()
                try:
                    segment.unlink()
                except FileNotFoundError:
                    continue
                removed += 1
        self.stats["swept_segments"] += removed
        return removed


class Executor:
    """Where repetitions run: serial in-process, or a process pool.

    ``serial`` backends never spawn subprocesses; pooled backends create
    fresh ``ProcessPoolExecutor`` instances via :meth:`make_pool` — called
    once up front and again on every supervision restart (watchdog kill,
    ``BrokenProcessPool`` recovery), so pool construction cost is a real
    per-campaign cost, not a one-off.
    """

    #: Registry name, also the CLI ``--backend`` value.
    name: str = "abstract"
    #: True for backends that run repetitions in the calling process.
    serial: bool = False
    #: True for backends whose "pool" spans machines; the Supervisor never
    #: collapses these to the serial in-process path, even for one task.
    distributed: bool = False

    def make_pool(self, workers: int) -> ProcessPoolExecutor:
        raise NotImplementedError(f"{self.name!r} backend does not pool")

    def observe_policy(self, policy) -> None:
        """Hook: the Supervisor announces its policy before pools are made.

        Local backends ignore it; the distributed backend derives its lease
        deadline from the per-repetition timeout so a legitimately slow
        repetition is charged a :class:`~repro.errors.RepTimeoutError` by
        the watchdog instead of masquerading as a host failure.
        """

    # -- result transport hooks (overridden by co-located pool backends) ---

    def wrap_run_fn(self, run_fn: Callable) -> Callable:
        """The callable the Supervisor submits to this backend's pool."""
        return run_fn

    def resolve_result(self, obj: Any) -> Any:
        """Materialize a value collected from one of this backend's futures."""
        return obj

    def cleanup_transport(self) -> int:
        """Reclaim transport resources after a pooled campaign.

        Returns the number of leaked shared-memory segments removed (always
        0 for queue-only backends).
        """
        return 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class InProcessExecutor(Executor):
    """Serial, in the calling process (tests, debugging, profiling)."""

    name = "inprocess"
    serial = True


class LocalPoolExecutor(Executor):
    """Shared behaviour of co-located pool backends (pool/spawn/forkserver):
    workers share the host's memory, so results ride the shared-memory
    transport when they are big enough to be worth it."""

    def __init__(self, transport: Optional[SharedMemoryTransport] = None):
        self.transport = transport if transport is not None else SharedMemoryTransport()

    def wrap_run_fn(self, run_fn: Callable) -> Callable:
        return self.transport.wrap(run_fn)

    def resolve_result(self, obj: Any) -> Any:
        return self.transport.resolve(obj)

    def cleanup_transport(self) -> int:
        return self.transport.sweep()


class PoolExecutor(LocalPoolExecutor):
    """The platform-default ``ProcessPoolExecutor`` (today's behaviour)."""

    name = "pool"

    def make_pool(self, workers: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=workers)


class SpawnExecutor(LocalPoolExecutor):
    """Pool on the ``spawn`` start method: fresh interpreter per worker."""

    name = "spawn"

    def make_pool(self, workers: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers, mp_context=multiprocessing.get_context("spawn")
        )


class ForkServerExecutor(LocalPoolExecutor):
    """Pool forked from a simulator-preloaded server process.

    The forkserver context is a process-wide singleton: the preload list
    must be registered before its server first starts, so it is set at
    construction time. Once the server is running (first pool of the
    process), later pools fork from the same warm server — which is exactly
    the point: a supervision pool restart costs a ``fork()``, not a
    re-import of the simulator.
    """

    name = "forkserver"

    def __init__(
        self,
        preload: Tuple[str, ...] = FORKSERVER_PRELOAD,
        transport: Optional[SharedMemoryTransport] = None,
    ):
        super().__init__(transport)
        self.preload = tuple(preload)
        self._context = multiprocessing.get_context("forkserver")
        if self.preload:
            try:
                self._context.set_forkserver_preload(list(self.preload))
            except ValueError:  # pragma: no cover - server already running
                pass

    def make_pool(self, workers: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=workers, mp_context=self._context)


class DistributedExecutor(Executor):
    """Multi-host coordinator backend (``repro.framework.remote``).

    ``make_pool`` starts a fresh :class:`~repro.framework.remote.Coordinator`
    (listening socket + agent launches) — called up front and again on every
    supervision restart, exactly like local pool construction. The most
    recent coordinator is kept on :attr:`last_coordinator` so callers and
    tests can read per-host accounting after a campaign.

    Default tuning is campaign-scale (5-minute leases, half-second
    heartbeats); the chaos suite passes much tighter knobs.
    """

    name = "distributed"
    distributed = True

    def __init__(
        self,
        hosts=("localhost",),
        *,
        stream=None,
        **coordinator_kwargs,
    ):
        from repro.framework.remote import merge_hosts

        if isinstance(hosts, str):
            from repro.framework.remote import parse_hosts

            hosts = parse_hosts(hosts)
        self.hosts = merge_hosts(hosts)
        if not self.hosts:
            raise ConfigError("distributed backend needs at least one host")
        self.stream = stream
        self.coordinator_kwargs = dict(coordinator_kwargs)
        self.last_coordinator = None

    #: A lease deadline must outlive the Supervisor's own per-rep watchdog
    #: by this factor, so the watchdog (which charges the config a
    #: RepTimeoutError and retries) always fires before lease expiry
    #: (which kills the agent and charges the host).
    LEASE_TIMEOUT_FACTOR = 1.25

    def observe_policy(self, policy) -> None:
        timeout_s = getattr(policy, "timeout_s", None)
        if timeout_s is None:
            return
        floor = timeout_s * self.LEASE_TIMEOUT_FACTOR
        current = self.coordinator_kwargs.get("lease_timeout_s", 300.0)
        if current < floor:
            self.coordinator_kwargs["lease_timeout_s"] = floor

    def make_pool(self, workers: int):
        from repro.framework.remote import Coordinator

        coordinator = Coordinator(
            self.hosts, stream=self.stream, **self.coordinator_kwargs
        )
        coordinator.start()
        self.last_coordinator = coordinator
        return coordinator

    def __repr__(self) -> str:
        specs = ",".join(
            f"{spec.host}:{spec.slots}" if spec.slots != 1 else spec.host
            for spec in self.hosts
        )
        return f"DistributedExecutor({specs})"


#: Backend registry, in documentation order.
BACKENDS: Tuple[str, ...] = ("inprocess", "pool", "spawn", "forkserver", "distributed")

_FACTORIES = {
    InProcessExecutor.name: InProcessExecutor,
    PoolExecutor.name: PoolExecutor,
    SpawnExecutor.name: SpawnExecutor,
    ForkServerExecutor.name: ForkServerExecutor,
    DistributedExecutor.name: DistributedExecutor,
}


def make_executor(backend: Optional[str]) -> Executor:
    """Resolve a backend name (or pass an :class:`Executor` through).

    ``None`` means the default (``pool``). Unknown names raise
    :class:`~repro.errors.ConfigError` — an operator error, mapped to exit
    code 2 by the CLI like every other configuration mistake.
    """
    if backend is None:
        return PoolExecutor()
    if isinstance(backend, Executor):
        return backend
    factory = _FACTORIES.get(backend)
    if factory is None:
        raise ConfigError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    return factory()
