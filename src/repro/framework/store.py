"""Queryable columnar result store: one SQLite row per settled repetition.

Campaign-scale sweeps (stacks × CCAs × qdiscs × pacing × impairments × seeds
is 10^4-10^6 repetitions) outgrow per-repetition JSON blobs: answering "p99
goodput of quiche/fq under burst loss" must be one SQL query, not a walk over
a hundred thousand files. The store is the canonical artifact a sweep streams
settled repetitions into; JSON artifacts remain available as an *export* of
the same payload, byte-for-byte equal to what
:func:`repro.framework.artifacts.save_summary` writes.

Layout. One ``reps`` row per repetition: the per-repetition config key (the
same normalization the :class:`~repro.framework.cache.ResultCache` uses),
seed, result ``fingerprint()``, and the queryable scalars (goodput, drops,
gap/train/precision metrics) as real columns — plus the full canonical
repetition payload (:func:`~repro.framework.artifacts.rep_to_dict`) as a
zlib-compressed JSON blob, so nothing is lost relative to the JSON artifact
and distribution-shaped metrics (the train-length histogram, per-profile
population breakdowns) stay available without schema churn. Failed
repetitions land in a ``failures`` table mirroring
:class:`~repro.framework.supervision.RepFailure`.

Identity and idempotence. Rows are keyed ``(config_key, seed)`` with
``INSERT OR REPLACE``, and the payload blob is a canonical (sorted-keys)
encoding, so re-recording a repetition — a resumed campaign replaying its
journal, a cache hit re-confirming a row — is a no-op rather than a
duplicate, and an interrupted-then-resumed campaign converges to a store
*bit-identical* in content to an uninterrupted one
(:meth:`ResultStore.content_fingerprint`; the chaos suite pins this). A
success recorded for a key deletes any stale failure row for that key.

Versioning and migration. The schema version lives in SQLite's
``user_version`` pragma; opening a newer-versioned store raises instead of
misreading it. Existing artifacts migrate in: :meth:`migrate_cache` walks a
:class:`~repro.framework.cache.ResultCache` directory and ingests every
pickled repetition, and :meth:`ingest_summary_json` ingests the legacy
per-run JSON layout. Deliberately *not* stored: wall-clock times, host
names, or any other nondeterministic execution detail — equal campaigns must
produce equal stores regardless of backend, worker count, or interruption
history.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import time
import zlib
from dataclasses import asdict, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, TextIO, Tuple, Union

import sqlite3

from repro.errors import ConfigError
from repro.framework.artifacts import rep_to_dict
from repro.framework.supervision import RepFailure
from repro.metrics.gaps import Distribution
from repro.metrics.precision import pacing_precision_ns
from repro.metrics.stats import summarize
from repro.net.impairments import ImpairmentSpec
from repro.sim.random import derive_seed

__all__ = ["STORE_VERSION", "ResultStore", "per_rep_key", "per_rep_key_from_dict"]

#: Bump on any incompatible change to the schema or the canonical payload
#: encoding; an older store is migrated (or rejected) on open, never misread.
STORE_VERSION = 1

#: Bounded retry for writes that race a concurrent reader/writer: SQLite's
#: own ``busy_timeout`` handles in-transaction lock waits, this handles the
#: "database is locked" that still escapes (e.g. a reader holding the lock
#: longer than the timeout). Total worst-case wait ≈ 3 s on top of the
#: per-attempt busy timeout.
_LOCK_RETRIES = 6
_LOCK_RETRY_BASE_S = 0.05
_BUSY_TIMEOUT_MS = 5_000

#: Columns exposed to ``query``/``aggregate`` as filterable/aggregatable.
FILTER_COLUMNS = ("name", "label", "kind", "stack", "cca", "qdisc", "gso")
METRIC_COLUMNS = (
    "goodput_mbps",
    "dropped",
    "injected_drops",
    "duration_ns",
    "packets_on_wire",
    "b2b_share",
    "trains_leq5_share",
    "precision_ns",
    "flows",
    "completed_flows",
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS reps (
    config_key          TEXT    NOT NULL,
    seed                INTEGER NOT NULL,
    name                TEXT    NOT NULL,
    label               TEXT    NOT NULL,
    kind                TEXT    NOT NULL,
    rep                 INTEGER NOT NULL,
    fingerprint         TEXT    NOT NULL,
    completed           INTEGER NOT NULL,
    duration_ns         INTEGER NOT NULL,
    stack               TEXT,
    cca                 TEXT,
    qdisc               TEXT,
    gso                 TEXT,
    impairments         TEXT    NOT NULL DEFAULT '',
    goodput_mbps        REAL    NOT NULL,
    dropped             INTEGER NOT NULL,
    injected_drops      INTEGER NOT NULL,
    packets_on_wire     INTEGER,
    gap_count           INTEGER,
    b2b_count           INTEGER,
    b2b_share           REAL,
    train_packets       INTEGER,
    trains_leq5_packets INTEGER,
    trains_leq5_share   REAL,
    precision_ns        REAL,
    flows               INTEGER,
    completed_flows     INTEGER,
    payload             BLOB    NOT NULL,
    PRIMARY KEY (config_key, seed)
);
CREATE INDEX IF NOT EXISTS reps_by_name  ON reps (name, rep);
CREATE INDEX IF NOT EXISTS reps_by_shape ON reps (stack, cca, qdisc, gso);
CREATE TABLE IF NOT EXISTS failures (
    config_key  TEXT    NOT NULL,
    seed        INTEGER NOT NULL,
    name        TEXT    NOT NULL,
    label       TEXT    NOT NULL,
    rep         INTEGER NOT NULL,
    error_type  TEXT    NOT NULL,
    message     TEXT    NOT NULL,
    traceback   TEXT    NOT NULL,
    attempts    INTEGER NOT NULL,
    wall_time_s REAL    NOT NULL,
    quarantined INTEGER NOT NULL,
    PRIMARY KEY (config_key, seed)
);
"""


def per_rep_key(config) -> str:
    """Per-repetition config key: full config with ``repetitions`` normalized.

    Matches the normalization of
    :meth:`repro.framework.cache.ResultCache.entry_key` (sans seed): growing
    a sweep from 5 to 20 repetitions keeps the first 5 rows' keys.
    """
    return per_rep_key_from_dict(asdict(replace(config, repetitions=1)))


def per_rep_key_from_dict(config_dict: Dict[str, Any]) -> str:
    """Same key, computed from a config's JSON form (artifact migration).

    ``dataclasses.asdict`` tuples and their JSON round-trip lists serialize
    identically, so this equals :func:`per_rep_key` of the live config.
    """
    normalized = dict(config_dict, repetitions=1)
    return hashlib.sha256(json.dumps(normalized, sort_keys=True).encode()).hexdigest()


def _impairments_slug(network: Dict[str, Any]) -> str:
    """Comma-joined impairment slugs (reverse-path prefixed ``r-``)."""
    slugs = []
    for spec in network.get("forward_impairments", ()) or ():
        slugs.append(ImpairmentSpec(**dict(spec)).slug)
    for spec in network.get("reverse_impairments", ()) or ():
        slugs.append("r-" + ImpairmentSpec(**dict(spec)).slug)
    return ",".join(slugs)


def _db_seed(seed: int) -> int:
    """Two's-complement view of a 64-bit seed (SQLite INTEGER is signed).

    :func:`~repro.sim.random.derive_seed` mixes into the full unsigned
    64-bit range; the top half would overflow SQLite's signed INTEGER, so
    seeds are stored as their signed reinterpretation and mapped back on
    read. The mapping is a bijection, so key identity is preserved.
    """
    return seed - (1 << 64) if seed >= (1 << 63) else seed


def _from_db_seed(value: int) -> int:
    return value + (1 << 64) if value < 0 else value


def _encode_payload(payload: Dict[str, Any]) -> bytes:
    """Canonical compressed encoding: equal payload dicts → equal bytes."""
    return zlib.compress(json.dumps(payload, sort_keys=True).encode(), 6)


def _decode_payload(blob: bytes) -> Dict[str, Any]:
    return json.loads(zlib.decompress(blob).decode())


class ResultStore:
    """SQLite-backed store of settled repetitions (results and failures)."""

    def __init__(self, path: Union[str, Path], stream: Optional[TextIO] = None):
        self.path = Path(path)
        self.stream = stream
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.row_factory = sqlite3.Row
        self._conn.execute(f"PRAGMA busy_timeout = {_BUSY_TIMEOUT_MS}")
        try:
            # WAL lets `query`/`report` read a store while a campaign is
            # still streaming into it (readers never block the writer).
            self._conn.execute("PRAGMA journal_mode=WAL")
        except sqlite3.OperationalError:  # pragma: no cover - e.g. NFS
            pass
        version = self._conn.execute("PRAGMA user_version").fetchone()[0]
        if version == 0:
            def _create() -> None:
                with self._conn:
                    self._conn.executescript(_SCHEMA)
                    self._conn.execute(f"PRAGMA user_version = {STORE_VERSION}")

            self._retry_locked_write(_create)
        elif version > STORE_VERSION:
            self._conn.close()
            raise ConfigError(
                f"store {self.path} has schema version {version}, newer than "
                f"this build's {STORE_VERSION}; refusing to misread it"
            )
        # version == STORE_VERSION: nothing to do. Older-but-nonzero versions
        # would migrate here once STORE_VERSION moves past 1.

    # -- lifecycle ---------------------------------------------------------

    @staticmethod
    def _retry_locked_write(write: Callable[[], None]) -> None:
        """Run one transactional write, retrying bounded on lock contention.

        A campaign streaming into the store must survive a concurrent
        ``query``/``report`` reader holding the database briefly; anything
        other than lock/busy contention propagates immediately.
        """
        for attempt in range(_LOCK_RETRIES + 1):
            try:
                return write()
            except sqlite3.OperationalError as exc:
                text = str(exc).lower()
                if "locked" not in text and "busy" not in text:
                    raise
                if attempt >= _LOCK_RETRIES:
                    raise
                time.sleep(_LOCK_RETRY_BASE_S * 2**attempt)
        return None

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ResultStore(path={str(self.path)!r}, reps={self.rep_count()})"

    # -- recording ---------------------------------------------------------

    def record_result(self, name: str, rep: int, result) -> None:
        """Insert (or idempotently re-insert) one successful repetition."""
        payload = rep_to_dict(result)
        precision: Optional[float] = None
        expected = getattr(result, "expected_send_log", None)
        if expected and getattr(result, "server_records", None):
            precision = pacing_precision_ns(expected, result.server_records)
        self._ingest_payload(
            name=name,
            label=result.config.label,
            rep=rep,
            payload=payload,
            precision_ns=precision,
        )

    def record_failure(self, failure: RepFailure, config) -> None:
        """Insert (or idempotently re-insert) one finally-failed repetition."""
        key = per_rep_key(config)

        def _write() -> None:
            with self._conn:
                self._conn.execute(
                    "INSERT OR REPLACE INTO failures (config_key, seed, name, label,"
                    " rep, error_type, message, traceback, attempts, wall_time_s,"
                    " quarantined) VALUES (?,?,?,?,?,?,?,?,?,?,?)",
                    (
                        key,
                        _db_seed(failure.seed),
                        failure.name,
                        failure.label,
                        failure.rep,
                        failure.error_type,
                        failure.message,
                        failure.traceback,
                        failure.attempts,
                        failure.wall_time_s,
                        int(failure.quarantined),
                    ),
                )

        self._retry_locked_write(_write)

    def _ingest_payload(
        self,
        name: str,
        label: str,
        rep: int,
        payload: Dict[str, Any],
        precision_ns: Optional[float] = None,
    ) -> None:
        """Shared row builder for live results and migrated artifacts.

        Every scalar column is derived from the canonical payload, so a
        migrated JSON artifact and a live recording of the same repetition
        produce identical rows (``precision_ns`` excepted: it needs the
        expected-send log, which the JSON artifact does not carry).
        """
        config = payload["config"]
        key = per_rep_key_from_dict(config)
        seed = int(payload["seed"])
        population = "aggregate_goodput_mbps" in payload
        impairments = _impairments_slug(config.get("network", {}) or {})
        row: Dict[str, Any] = {
            "config_key": key,
            "seed": _db_seed(seed),
            "name": name,
            "label": label,
            "kind": "population" if population else "experiment",
            "rep": rep,
            "fingerprint": payload["fingerprint"],
            "completed": int(bool(payload["completed"])),
            "duration_ns": int(payload["duration_ns"]),
            "stack": None if population else config.get("stack"),
            "cca": None if population else config.get("cca"),
            "qdisc": None if population else config.get("qdisc"),
            "gso": None if population else config.get("gso"),
            "impairments": impairments,
            "dropped": int(payload["dropped"]),
            "injected_drops": int(payload["injected_drops"]),
            "precision_ns": precision_ns,
            "payload": _encode_payload(payload),
        }
        if population:
            row.update(
                goodput_mbps=float(payload["aggregate_goodput_mbps"]),
                packets_on_wire=None,
                gap_count=None,
                b2b_count=None,
                b2b_share=None,
                train_packets=None,
                trains_leq5_packets=None,
                trains_leq5_share=None,
                flows=int(payload["flows"]),
                completed_flows=int(payload["completed_flows"]),
            )
        else:
            metrics = payload["metrics"]
            trains = metrics["packets_by_train_length"]
            train_packets = sum(trains.values())
            leq5 = sum(count for length, count in trains.items() if int(length) <= 5)
            gap_count = max(int(payload["packets_on_wire"]) - 1, 0)
            b2b_share = float(metrics["back_to_back_share"])
            row.update(
                goodput_mbps=float(payload["goodput_mbps"]),
                packets_on_wire=int(payload["packets_on_wire"]),
                gap_count=gap_count,
                # The share is a ratio of integer counts; recover the count
                # exactly so pooled (cross-repetition) shares can be computed
                # from integer sums, as the sweep CLI does.
                b2b_count=round(b2b_share * gap_count),
                b2b_share=b2b_share,
                train_packets=train_packets,
                trains_leq5_packets=leq5,
                trains_leq5_share=float(metrics["trains_leq5_share"]),
                flows=None,
                completed_flows=None,
            )
        columns = ", ".join(row)
        placeholders = ", ".join("?" * len(row))

        def _write() -> None:
            with self._conn:
                self._conn.execute(
                    f"INSERT OR REPLACE INTO reps ({columns}) VALUES ({placeholders})",
                    tuple(row.values()),
                )
                # A success supersedes any stale failure for the same repetition
                # (e.g. re-run after --no-resume healed a crash-looping config).
                self._conn.execute(
                    "DELETE FROM failures WHERE config_key = ? AND seed = ?",
                    (key, _db_seed(seed)),
                )

        self._retry_locked_write(_write)

    # -- migration ---------------------------------------------------------

    def ingest_summary_json(self, path: Union[str, Path]) -> int:
        """Migrate one legacy JSON artifact (``save_summary`` layout).

        Returns the number of repetitions ingested. The artifact's label
        doubles as the grid name (per-run artifacts predate grids).
        """
        data = json.loads(Path(path).read_text())
        label = data["label"]
        count = 0
        for rep, payload in enumerate(data.get("repetitions", [])):
            self._ingest_payload(name=label, label=label, rep=rep, payload=payload)
            count += 1
        for failure in data.get("failures", []):
            rec = RepFailure.from_dict(failure)
            # Legacy artifacts carry no config per failure; key on the
            # summary's config via the failed rep's own fields.
            reps = data.get("repetitions", [])
            if reps:
                config_dict = reps[0]["config"]
                key = per_rep_key_from_dict(config_dict)
                with self._conn:
                    self._conn.execute(
                        "INSERT OR REPLACE INTO failures (config_key, seed, name,"
                        " label, rep, error_type, message, traceback, attempts,"
                        " wall_time_s, quarantined) VALUES (?,?,?,?,?,?,?,?,?,?,?)",
                        (
                            key,
                            _db_seed(rec.seed),
                            rec.name,
                            rec.label,
                            rec.rep,
                            rec.error_type,
                            rec.message,
                            rec.traceback,
                            rec.attempts,
                            rec.wall_time_s,
                            int(rec.quarantined),
                        ),
                    )
        return count

    def migrate_cache(self, cache_root: Union[str, Path]) -> int:
        """Migrate every readable repetition out of a result-cache directory.

        Walks the cache's two-level ``<key[:2]>/<key>.pkl`` layout (skipping
        its quarantine), unpickles each entry, and ingests entries whose
        version matches the current cache format. Returns the number of
        repetitions ingested; unreadable or stale entries are skipped with a
        warning on ``stream``, never propagated.
        """
        from repro.framework.cache import CACHE_VERSION

        root = Path(cache_root)
        count = 0
        for path in sorted(root.glob("??/*.pkl")):
            try:
                version, result = pickle.loads(path.read_bytes())
                if version != CACHE_VERSION:
                    raise ValueError(f"stale cache version {version!r}")
                config = result.config
                rep = self._recover_rep(config, result.seed)
                self.record_result(name=config.label, rep=rep, result=result)
                count += 1
            except Exception as exc:  # noqa: BLE001 - per-entry isolation
                if self.stream is not None:
                    print(
                        f"[store] warning: skipped {path.name} during migration "
                        f"({type(exc).__name__}: {exc})",
                        file=self.stream,
                        flush=True,
                    )
        return count

    @staticmethod
    def _recover_rep(config, seed: int) -> int:
        """Invert ``derive_seed``: which repetition index produced ``seed``?

        Cache entries do not store the repetition index; scan the config's
        repetition range (0 when no index matches — e.g. an entry cached
        from a later-grown sweep).
        """
        for rep in range(max(int(getattr(config, "repetitions", 1)), 1)):
            if derive_seed(config.seed, rep) == seed:
                return rep
        return 0

    # -- querying ----------------------------------------------------------

    def _where(self, filters: Dict[str, Any]) -> Tuple[str, List[Any]]:
        clauses: List[str] = []
        params: List[Any] = []
        for column, value in filters.items():
            if value is None:
                continue
            if column == "impairment":
                clauses.append("impairments LIKE ?")
                params.append(f"%{value}%")
            elif column == "completed":
                clauses.append("completed = ?")
                params.append(int(bool(value)))
            elif column in FILTER_COLUMNS:
                clauses.append(f"{column} = ?")
                params.append(value)
            else:
                raise ConfigError(
                    f"unknown filter {column!r}; expected one of "
                    f"{FILTER_COLUMNS + ('impairment', 'completed')}"
                )
        return (" WHERE " + " AND ".join(clauses)) if clauses else "", params

    def query(self, **filters: Any) -> List[Dict[str, Any]]:
        """Repetition rows (scalar columns only) matching the filters."""
        where, params = self._where(filters)
        cursor = self._conn.execute(
            "SELECT name, label, kind, rep, seed, fingerprint, completed,"
            " duration_ns, stack, cca, qdisc, gso, impairments, goodput_mbps,"
            " dropped, injected_drops, packets_on_wire, b2b_share,"
            " trains_leq5_share, precision_ns, flows, completed_flows"
            f" FROM reps{where} ORDER BY name, rep, seed",
            params,
        )
        return [
            {**dict(row), "seed": _from_db_seed(row["seed"])}
            for row in cursor.fetchall()
        ]

    def aggregate(
        self,
        metric: str,
        percentiles: Sequence[float] = (0.5, 0.9, 0.99),
        **filters: Any,
    ) -> Dict[str, Any]:
        """Mean/std/percentiles of one metric column over matching rows."""
        if metric not in METRIC_COLUMNS:
            raise ConfigError(
                f"unknown metric {metric!r}; expected one of {METRIC_COLUMNS}"
            )
        where, params = self._where(filters)
        values = [
            row[0]
            for row in self._conn.execute(
                f"SELECT {metric} FROM reps{where} ORDER BY name, rep, seed", params
            )
            if row[0] is not None
        ]
        out: Dict[str, Any] = {"metric": metric, "n": len(values)}
        if values:
            summary = summarize([float(v) for v in values])
            out["mean"] = summary.mean
            out["std"] = summary.std
            dist = Distribution(values)
            for p in percentiles:
                out[f"p{int(round(p * 100)):02d}"] = dist.percentile(p)
        return out

    def names(self) -> List[str]:
        """Grid names in first-insertion (grid) order."""
        cursor = self._conn.execute(
            "SELECT name FROM reps GROUP BY name ORDER BY MIN(rowid)"
        )
        names = [row[0] for row in cursor.fetchall()]
        for row in self._conn.execute(
            "SELECT name FROM failures GROUP BY name ORDER BY MIN(rowid)"
        ):
            if row[0] not in names:
                names.append(row[0])
        return names

    def failures(self, name: Optional[str] = None) -> List[RepFailure]:
        """Failure records (ordered by name then repetition)."""
        where = " WHERE name = ?" if name is not None else ""
        params = (name,) if name is not None else ()
        cursor = self._conn.execute(
            "SELECT name, label, rep, seed, error_type, message, traceback,"
            f" attempts, wall_time_s, quarantined FROM failures{where}"
            " ORDER BY name, rep, seed",
            params,
        )
        return [
            RepFailure(
                **{
                    **dict(row),
                    "seed": _from_db_seed(row["seed"]),
                    "quarantined": bool(row["quarantined"]),
                }
            )
            for row in cursor.fetchall()
        ]

    def group_summaries(self, **filters: Any) -> Dict[str, Dict[str, Any]]:
        """Per-grid-name aggregates, shaped like the sweep CLI's table rows.

        Pooled gap/train shares are computed from integer counts summed
        across repetitions — numerically identical to pooling the raw gaps
        (the sweep CLI's method), not a mean of per-repetition ratios.
        """
        out: Dict[str, Dict[str, Any]] = {}
        where, params = self._where(filters)
        cursor = self._conn.execute(
            "SELECT name, label, kind, COUNT(*) AS reps,"
            " SUM(dropped) AS dropped_sum, SUM(injected_drops) AS injected,"
            " SUM(gap_count) AS gaps, SUM(b2b_count) AS b2b,"
            " SUM(train_packets) AS train_pkts,"
            " SUM(trains_leq5_packets) AS train_leq5"
            f" FROM reps{where} GROUP BY name, label ORDER BY MIN(rowid)",
            params,
        )
        for row in cursor.fetchall():
            goodput = [
                r[0]
                for r in self._conn.execute(
                    "SELECT goodput_mbps FROM reps WHERE name = ? ORDER BY rep",
                    (row["name"],),
                )
            ]
            dropped = [
                float(r[0])
                for r in self._conn.execute(
                    "SELECT dropped FROM reps WHERE name = ? ORDER BY rep",
                    (row["name"],),
                )
            ]
            out[row["name"]] = {
                "label": row["label"],
                "kind": row["kind"],
                "reps": row["reps"],
                "goodput": summarize(goodput),
                "dropped": summarize(dropped),
                "injected": int(row["injected"] or 0),
                "b2b_share": (row["b2b"] / row["gaps"]) if row["gaps"] else None,
                "trains_leq5_share": (
                    row["train_leq5"] / row["train_pkts"] if row["train_pkts"] else None
                ),
                "failed": 0,
            }
        # Grid entries where *every* repetition failed have no reps rows.
        for failure in self.failures():
            if failure.name not in out:
                out[failure.name] = {
                    "label": failure.label,
                    "kind": "experiment",
                    "reps": 0,
                    "goodput": None,
                    "dropped": None,
                    "injected": 0,
                    "b2b_share": None,
                    "trains_leq5_share": None,
                    "failed": 0,
                }
            out[failure.name]["failed"] += 1
        return out

    # -- export ------------------------------------------------------------

    def payloads(self, name: str) -> List[Dict[str, Any]]:
        """Full canonical payload dicts for one grid name, in rep order."""
        cursor = self._conn.execute(
            "SELECT payload FROM reps WHERE name = ? ORDER BY rep, seed", (name,)
        )
        return [_decode_payload(row[0]) for row in cursor.fetchall()]

    def export_summary_dict(self, name: str) -> Dict[str, Any]:
        """The JSON-artifact form of one grid entry, from store rows alone.

        Matches :func:`repro.framework.artifacts.summary_to_dict` of the
        live :class:`RunSummary` field for field (failures ordered by
        repetition here; the live summary keeps completion order).
        """
        payloads = self.payloads(name)
        failures = self.failures(name)
        if not payloads and not failures:
            raise ConfigError(f"store has no repetitions named {name!r}")
        label = None
        row = self._conn.execute(
            "SELECT label FROM reps WHERE name = ? LIMIT 1", (name,)
        ).fetchone()
        if row is not None:
            label = row[0]
        elif failures:
            label = failures[0].label
        goodput = [
            p["aggregate_goodput_mbps"] if "aggregate_goodput_mbps" in p else p["goodput_mbps"]
            for p in payloads
        ]
        dropped = [float(p["dropped"]) for p in payloads]
        nan = float("nan")
        return {
            "label": label,
            "goodput_mbps": (
                {"mean": summarize(goodput).mean, "std": summarize(goodput).std}
                if goodput
                else {"mean": nan, "std": nan}
            ),
            "dropped": (
                {"mean": summarize(dropped).mean, "std": summarize(dropped).std}
                if dropped
                else {"mean": nan, "std": nan}
            ),
            "repetitions": payloads,
            "failures": [f.as_dict() for f in failures],
        }

    def export_summary_json(self, name: str, path: Union[str, Path]) -> Path:
        """Write one grid entry back out in the legacy JSON-artifact layout."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.export_summary_dict(name), indent=2))
        return path

    # -- identity ----------------------------------------------------------

    def rep_count(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM reps").fetchone()[0]

    def failure_count(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM failures").fetchone()[0]

    def info(self) -> Dict[str, Any]:
        return {
            "path": str(self.path),
            "version": STORE_VERSION,
            "reps": self.rep_count(),
            "failures": self.failure_count(),
            "names": self.names(),
        }

    def content_fingerprint(self) -> str:
        """Digest of every row's content, insertion-order independent.

        Two stores of the same campaign — uninterrupted, or killed and
        resumed through the journal, on any backend — must digest equal.
        Row iteration is ordered by key columns, never rowid, so replay
        order cannot leak in.
        """
        digest = hashlib.sha256()
        for row in self._conn.execute(
            "SELECT config_key, seed, name, label, kind, rep, fingerprint,"
            " completed, duration_ns, goodput_mbps, dropped, injected_drops,"
            " payload FROM reps ORDER BY config_key, seed"
        ):
            digest.update(repr(tuple(row)[:-1]).encode())
            digest.update(row["payload"])
        for row in self._conn.execute(
            "SELECT config_key, seed, name, label, rep, error_type, attempts,"
            " quarantined FROM failures ORDER BY config_key, seed"
        ):
            digest.update(repr(tuple(row)).encode())
        return digest.hexdigest()
