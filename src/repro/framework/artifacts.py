"""Result persistence: experiment outputs as JSON artifacts.

Mirrors the paper's artifact practice (all measurement data published for
re-analysis): every run can be serialized with enough detail to recompute
the evaluation metrics without re-running the simulation.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict

from repro.framework.experiment import ExperimentResult
from repro.framework.population import PopulationResult
from repro.framework.runner import RunSummary
from repro.metrics.gaps import fraction_leq, inter_packet_gaps
from repro.metrics.trains import packets_by_train_length
from repro.units import us


def result_to_dict(result: ExperimentResult, include_capture: bool = False) -> Dict[str, Any]:
    """Serialize one repetition (capture records optional — they are big)."""
    gaps = inter_packet_gaps(result.server_records)
    # One train-detection pass feeds both the histogram and the <=5 share.
    trains = packets_by_train_length(result.server_records)
    train_total = sum(trains.values())
    trains_leq5 = (
        sum(count for length, count in trains.items() if length <= 5) / train_total
        if train_total
        else 0.0
    )
    # asdict keeps tuples (e.g. the impairment specs); normalize to the JSON
    # data model so an in-memory dict equals its save/load round trip.
    config_dict = json.loads(json.dumps(dataclasses.asdict(result.config)))
    out = {
        "config": config_dict,
        "seed": result.seed,
        "fingerprint": result.fingerprint(),
        "completed": result.completed,
        "duration_ns": result.duration_ns,
        "goodput_mbps": result.goodput_mbps,
        "dropped": result.dropped,
        "injected_drops": result.injected_drops,
        "impairment_stats": result.impairment_stats,
        "packets_on_wire": result.packets_on_wire,
        "qdisc_stats": result.qdisc_stats,
        "server_stats": result.server_stats,
        "metrics": {
            "back_to_back_share": fraction_leq(gaps, us(15)),
            "trains_leq5_share": trains_leq5,
            "packets_by_train_length": {
                str(k): v for k, v in sorted(trains.items())
            },
        },
    }
    if include_capture:
        out["capture"] = [
            {"t_ns": r.time_ns, "pn": r.packet_number, "size": r.wire_size}
            for r in result.server_records
        ]
    return out


def population_result_to_dict(result: PopulationResult) -> Dict[str, Any]:
    """Serialize one population repetition: the aggregate evaluation view
    (distributions, fairness, competition matrix), never the per-flow
    capture — populations keep the capture columnar and in-memory only."""
    config_dict = json.loads(json.dumps(dataclasses.asdict(result.config)))
    return {
        "config": config_dict,
        "seed": result.seed,
        "fingerprint": result.fingerprint(),
        "completed": result.completed,
        "flows": len(result.multi.flows),
        "completed_flows": result.completed_count,
        "duration_ns": result.duration_ns,
        "aggregate_goodput_mbps": result.goodput_mbps,
        "dropped": result.dropped,
        "injected_drops": result.injected_drops,
        "ack_drops": result.multi.ack_drops,
        "unrouted": result.multi.unrouted,
        "fairness": result.fairness,
        "metrics": {
            "goodput_mbps": result.goodput_dist,
            "fct_ms": result.fct_ms_dist,
            "loss": result.loss_dist,
        },
        "per_profile": result.per_profile,
        "ratio_matrix": result.ratio_matrix,
        "beats": [list(pair) for pair in result.beats],
        "transitivity_violations": [list(t) for t in result.transitivity],
    }


def rep_to_dict(result, include_capture: bool = False) -> Dict[str, Any]:
    """Serialize one repetition of either kind (experiment or population).

    This is the *single* canonical JSON form of a repetition: the result
    store persists exactly this payload per row, so a store export and a
    JSON artifact of the same run are equal by construction.
    """
    if isinstance(result, PopulationResult):
        return population_result_to_dict(result)
    return result_to_dict(result, include_capture)


_rep_to_dict = rep_to_dict  # backwards-compatible alias


def summary_to_dict(summary: RunSummary, include_capture: bool = False) -> Dict[str, Any]:
    return {
        "label": summary.config.label,
        "goodput_mbps": {"mean": summary.goodput.mean, "std": summary.goodput.std},
        "dropped": {"mean": summary.dropped.mean, "std": summary.dropped.std},
        "repetitions": [_rep_to_dict(r, include_capture) for r in summary.results],
        # Failed repetitions ride along as structured records (never silently
        # dropped from the artifact): exception type, attempts, wall time.
        "failures": [f.as_dict() for f in summary.failures],
    }


def save_summary(summary: RunSummary, path: str | Path, include_capture: bool = False) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(summary_to_dict(summary, include_capture), indent=2))
    return path


def load_summary_dict(path: str | Path) -> Dict[str, Any]:
    return json.loads(Path(path).read_text())
