"""Parallel sweep execution: fan a ``{name: config}`` grid across a shared
process pool at per-repetition granularity, under supervision.

Grids are duck-typed: any config with ``validate()``, ``label``,
``repetitions``, ``seed``, and ``cache_key()`` runs here, so
:class:`~repro.framework.population.PopulationConfig` grids (hundreds of
concurrent flows per repetition) share the same caching, supervision, and
checkpoint/resume machinery as single-connection experiment grids — the
per-repetition worker dispatches on config type.

This is the execution substrate for grid-style reproduction (the paper's
4 stacks × 3 CCAs × 4 qdiscs × 3 GSO modes evaluation): every (config,
repetition) pair is an independent simulation, so one shared
``ProcessPoolExecutor`` schedules all of them at once and keeps every core
busy even when configurations have very different run times. Results are
bit-identical to a serial run — per-rep seeds come from
:func:`~repro.framework.runner.derive_seed` either way, and repetitions are
reassembled in order regardless of completion order.

Robustness. Execution runs under a
:class:`~repro.framework.supervision.Supervisor`: per-repetition wall-clock
timeouts, bounded retries that reuse the repetition's derived seed (so a
retried success is bit-identical to a first-attempt one), ``BrokenProcessPool``
recovery that restarts the pool instead of discarding in-flight work, and
quarantine of configurations that fail repeatedly. A sweep therefore *always
returns*: failed repetitions surface as structured
:class:`~repro.framework.supervision.RepFailure` entries on each
:class:`~repro.framework.runner.RunSummary` rather than as an exception that
loses the surviving grid. Every fresh or cached result is checked against the
invariants in :mod:`repro.framework.validate` before it is cached or
summarized.

Checkpoint/resume. With ``journal_dir`` set, a
:class:`~repro.framework.journal.SweepJournal` records one atomic JSON line
per settled repetition. An interrupted invocation re-run with the same grid
resumes where it stopped: journaled successes are restored through the
:class:`~repro.framework.cache.ResultCache` (or recomputed bit-identically on
a cache miss), and journaled failures are carried forward instead of being
retried. ``resume=False`` discards the journal and starts over.

Progress is streamed as one structured line per finished repetition (config
label, rep, sim-time, wall-time, events/sec from
``Simulator.events_processed``), conventionally to stderr so stdout stays a
clean report.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Mapping, Optional, TextIO, Union

from repro.framework.cache import ResultCache
from repro.framework.config import ExperimentConfig
from repro.framework.executors import Executor, make_executor
from repro.framework.experiment import ExperimentResult
from repro.framework.journal import SweepJournal
from repro.framework.store import ResultStore
from repro.framework.runner import RunSummary, _run_one, derive_seed, summarize_results
from repro.framework.supervision import (
    RepFailure,
    RepTask,
    SupervisionPolicy,
    Supervisor,
)
from repro.framework.validate import validate_result


def resolve_workers(workers: Optional[int]) -> int:
    """``None`` means "use every core"; anything below one clamps to serial."""
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, int(workers))


class SweepRunner:
    """Runs experiment grids with caching, supervision, and checkpointing.

    ``workers=None`` uses ``os.cpu_count()``. With one worker — or a single
    pending repetition — execution falls back to the serial in-process path
    (no subprocesses), which is byte-for-byte equivalent and simpler to
    debug (but cannot enforce ``policy.timeout_s``; hung repetitions need
    ``workers >= 2``). ``stream`` (e.g. ``sys.stderr``) receives one progress
    line per finished repetition.

    ``policy=None`` uses the default :class:`SupervisionPolicy` (no timeout,
    two retries, quarantine after three consecutive failures).
    ``journal_dir`` names a directory for the sweep's checkpoint journal
    (keyed by grid content); ``resume=False`` discards any prior journal.
    ``run_fn`` is the per-repetition worker function — a seam for chaos
    tests, which substitute crashing/hanging stand-ins.

    ``backend`` selects the execution backend
    (:mod:`repro.framework.executors`): ``"inprocess"`` (serial),
    ``"pool"`` (the default supervised process pool), ``"spawn"``,
    ``"forkserver"`` (simulator-preloaded workers), or ``"distributed"``
    (multi-host worker agents) — or a ready
    :class:`~repro.framework.executors.Executor`. Backends are invisible to
    cache keys, journals, and fingerprints: the same grid produces
    bit-identical results under every backend.

    ``store`` names a :class:`~repro.framework.store.ResultStore` that every
    settled repetition is streamed into as it lands (successes, cache hits,
    and final failures alike) — the queryable canonical artifact for
    campaign-scale sweeps.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        stream: Optional[TextIO] = None,
        policy: Optional[SupervisionPolicy] = None,
        journal_dir: Optional[Union[str, Path]] = None,
        resume: bool = True,
        validate: bool = True,
        run_fn=_run_one,
        backend: Union[str, Executor, None] = None,
        store: Optional[ResultStore] = None,
    ):
        self.workers = resolve_workers(workers)
        self.cache = cache
        self.stream = stream
        self.policy = policy if policy is not None else SupervisionPolicy()
        self.journal_dir = Path(journal_dir) if journal_dir is not None else None
        self.resume = resume
        self.validate = validate
        self.run_fn = run_fn
        self.executor = make_executor(backend)
        self.store = store
        if self.cache is not None and self.cache.stream is None:
            self.cache.stream = stream
        # Distributed executors narrate per-host progress (launches, lease
        # reclaims, quarantines) onto the sweep's progress stream.
        if getattr(self.executor, "distributed", False) and self.executor.stream is None:
            self.executor.stream = stream

    def run(self, grid: Mapping[str, ExperimentConfig]) -> Dict[str, RunSummary]:
        """Run every repetition of every named config; summaries keep grid order."""
        for config in grid.values():
            config.validate()
        journal = (
            SweepJournal.for_grid(
                self.journal_dir, grid, fresh=not self.resume, stream=self.stream
            )
            if self.journal_dir is not None
            else None
        )
        slots: Dict[str, List[Optional[ExperimentResult]]] = {
            name: [None] * config.repetitions for name, config in grid.items()
        }
        failures: Dict[str, List[RepFailure]] = {name: [] for name in grid}
        pending: List[RepTask] = []
        for name, config in grid.items():
            for rep in range(config.repetitions):
                seed = derive_seed(config.seed, rep)
                entry = journal.get(name, rep) if journal is not None else None
                if entry is not None and entry.status == "failed" and entry.failure:
                    # Carried forward from the interrupted run; re-run it by
                    # resuming with --no-resume (or deleting the journal).
                    failures[name].append(entry.failure)
                    if self.store is not None:
                        self.store.record_failure(entry.failure, config)
                    self._emit_line(
                        f"[sweep] {name} rep {rep + 1}/{config.repetitions}: "
                        f"FAILED previously ({entry.failure.error_type}) [journal]"
                    )
                    continue
                cached = self.cache.get(config, seed) if self.cache else None
                if cached is not None and self.validate:
                    try:
                        validate_result(cached)
                    except Exception as exc:
                        # A torn or stale entry that still unpickled:
                        # quarantine it and recompute.
                        self.cache.invalidate(config, seed, reason=str(exc))
                        cached = None
                if cached is not None:
                    slots[name][rep] = cached
                    if journal is not None:
                        journal.record_success(name, rep, seed, cached.fingerprint())
                    if self.store is not None:
                        self.store.record_result(name, rep, cached)
                    self._emit(name, config, rep, cached, cached_hit=True)
                else:
                    pending.append(RepTask(name=name, config=config, rep=rep, seed=seed))

        if pending:
            supervisor = Supervisor(
                self.policy,
                run_fn=self.run_fn,
                validate_fn=validate_result if self.validate else None,
                executor=self.executor,
            )

            def on_success(task: RepTask, result: ExperimentResult) -> None:
                slots[task.name][task.rep] = result
                if self.cache is not None:
                    self.cache.put(task.config, result.seed, result)
                if journal is not None:
                    fingerprint = result.fingerprint()
                    prior = journal.get(task.name, task.rep)
                    if (
                        prior is not None
                        and prior.fingerprint
                        and prior.fingerprint != fingerprint
                    ):
                        self._emit_line(
                            f"[sweep] warning: {task.name} rep {task.rep} recomputed "
                            f"with a different fingerprint than the journaled run "
                            f"(determinism regression?)"
                        )
                    journal.record_success(task.name, task.rep, task.seed, fingerprint)
                if self.store is not None:
                    self.store.record_result(task.name, task.rep, result)
                self._emit(task.name, task.config, task.rep, result, cached_hit=False)

            def on_failure(task: RepTask, failure: RepFailure) -> None:
                failures[task.name].append(failure)
                if journal is not None:
                    journal.record_failure(failure)
                if self.store is not None:
                    self.store.record_failure(failure, task.config)
                self._emit_line(f"[sweep] {failure.describe()}")

            supervisor.run(pending, self.workers, on_success, on_failure)

        return {
            name: summarize_results(config, slots[name], failures[name])
            for name, config in grid.items()
        }

    def _emit_line(self, line: str) -> None:
        if self.stream is not None:
            print(line, file=self.stream, flush=True)

    def _emit(
        self,
        name: str,
        config: ExperimentConfig,
        rep: int,
        result: ExperimentResult,
        cached_hit: bool,
    ) -> None:
        if self.stream is None:
            return
        rate = result.events_processed / result.wall_time_s if result.wall_time_s > 0 else 0.0
        line = (
            f"[sweep] {name} rep {rep + 1}/{config.repetitions}: "
            f"sim {result.duration_ns / 1e9:.2f}s wall {result.wall_time_s:.2f}s "
            f"{result.events_processed} events ({rate:,.0f}/s)"
        )
        if cached_hit:
            line += " [cached]"
        print(line, file=self.stream, flush=True)


def run_sweep(
    grid: Mapping[str, ExperimentConfig],
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    stream: Optional[TextIO] = None,
    policy: Optional[SupervisionPolicy] = None,
    journal_dir: Optional[Union[str, Path]] = None,
    resume: bool = True,
    backend: Union[str, Executor, None] = None,
    store: Optional[ResultStore] = None,
) -> Dict[str, RunSummary]:
    """Convenience wrapper: build a :class:`SweepRunner` and run ``grid``."""
    return SweepRunner(
        workers=workers,
        cache=cache,
        stream=stream,
        policy=policy,
        journal_dir=journal_dir,
        resume=resume,
        backend=backend,
        store=store,
    ).run(grid)
