"""Parallel sweep execution: fan a ``{name: ExperimentConfig}`` grid across a
shared process pool at per-repetition granularity.

This is the execution substrate for grid-style reproduction (the paper's
4 stacks × 3 CCAs × 4 qdiscs × 3 GSO modes evaluation): every (config,
repetition) pair is an independent simulation, so one shared
``ProcessPoolExecutor`` schedules all of them at once and keeps every core
busy even when configurations have very different run times. Results are
bit-identical to a serial run — per-rep seeds come from
:func:`~repro.framework.runner.derive_seed` either way, and repetitions are
reassembled in order regardless of completion order.

A :class:`~repro.framework.cache.ResultCache` short-circuits repetitions that
a previous session already computed; fresh results are stored back so the
next session starts warm. Progress is streamed as one structured line per
finished repetition (config label, rep, sim-time, wall-time, events/sec from
``Simulator.events_processed``), conventionally to stderr so stdout stays a
clean report.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Dict, List, Mapping, Optional, TextIO

from repro.framework.cache import ResultCache
from repro.framework.config import ExperimentConfig
from repro.framework.experiment import ExperimentResult
from repro.framework.runner import RunSummary, _run_one, derive_seed, summarize_results


def resolve_workers(workers: Optional[int]) -> int:
    """``None`` means "use every core"; anything below one clamps to serial."""
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, int(workers))


class SweepRunner:
    """Runs experiment grids with caching, parallel fan-out, and progress.

    ``workers=None`` uses ``os.cpu_count()``. With one worker — or a single
    pending repetition — execution falls back to the serial in-process path
    (no subprocesses), which is byte-for-byte equivalent and simpler to
    debug. ``stream`` (e.g. ``sys.stderr``) receives one progress line per
    finished repetition.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        stream: Optional[TextIO] = None,
    ):
        self.workers = resolve_workers(workers)
        self.cache = cache
        self.stream = stream

    def run(self, grid: Mapping[str, ExperimentConfig]) -> Dict[str, RunSummary]:
        """Run every repetition of every named config; summaries keep grid order."""
        for config in grid.values():
            config.validate()
        slots: Dict[str, List[Optional[ExperimentResult]]] = {
            name: [None] * config.repetitions for name, config in grid.items()
        }
        pending = []  # (name, config, rep, seed) still to simulate
        for name, config in grid.items():
            for rep in range(config.repetitions):
                seed = derive_seed(config.seed, rep)
                cached = self.cache.get(config, seed) if self.cache else None
                if cached is not None:
                    slots[name][rep] = cached
                    self._emit(name, config, rep, cached, cached_hit=True)
                else:
                    pending.append((name, config, rep, seed))

        if len(pending) > 1 and self.workers > 1:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                futures = {
                    pool.submit(_run_one, config, seed): (name, config, rep)
                    for name, config, rep, seed in pending
                }
                for future in as_completed(futures):
                    name, config, rep = futures[future]
                    self._finish(slots, name, config, rep, future.result())
        else:
            for name, config, rep, seed in pending:
                self._finish(slots, name, config, rep, _run_one(config, seed))

        return {
            name: summarize_results(config, slots[name]) for name, config in grid.items()
        }

    def _finish(
        self,
        slots: Dict[str, List[Optional[ExperimentResult]]],
        name: str,
        config: ExperimentConfig,
        rep: int,
        result: ExperimentResult,
    ) -> None:
        slots[name][rep] = result
        if self.cache is not None:
            self.cache.put(config, result.seed, result)
        self._emit(name, config, rep, result, cached_hit=False)

    def _emit(
        self,
        name: str,
        config: ExperimentConfig,
        rep: int,
        result: ExperimentResult,
        cached_hit: bool,
    ) -> None:
        if self.stream is None:
            return
        rate = result.events_processed / result.wall_time_s if result.wall_time_s > 0 else 0.0
        line = (
            f"[sweep] {name} rep {rep + 1}/{config.repetitions}: "
            f"sim {result.duration_ns / 1e9:.2f}s wall {result.wall_time_s:.2f}s "
            f"{result.events_processed} events ({rate:,.0f}/s)"
        )
        if cached_hit:
            line += " [cached]"
        print(line, file=self.stream, flush=True)


def run_sweep(
    grid: Mapping[str, ExperimentConfig],
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    stream: Optional[TextIO] = None,
) -> Dict[str, RunSummary]:
    """Convenience wrapper: build a :class:`SweepRunner` and run ``grid``."""
    return SweepRunner(workers=workers, cache=cache, stream=stream).run(grid)
