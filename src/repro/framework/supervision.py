"""Supervised execution of repetitions over a process pool.

``ProcessPoolExecutor`` alone is brittle for multi-hour grids: one worker
segfault breaks the pool and ``as_completed`` raises away every in-flight
repetition; one hung simulation stalls the whole sweep forever. This module
wraps the pool with the supervision loop a long-running measurement fleet
needs:

* **bounded in-flight work** — at most ``workers`` repetitions are submitted
  at a time, so a pool crash can only lose work that is actually running and
  a per-repetition wall-clock deadline starts when the work starts;
* **watchdog timeouts** — a repetition that exceeds ``timeout_s`` is killed
  (the pool's worker processes are terminated and the pool restarted, since a
  hung worker cannot be cancelled individually); innocent repetitions that
  were in flight are requeued *without* being charged an attempt;
* **bounded retries with exponential backoff** — failed attempts are retried
  up to ``retries`` times; a retry reuses the repetition's original derived
  seed, so a retried success is bit-identical (same ``fingerprint()``) to a
  first-attempt success;
* **pool-crash recovery with attribution** — ``BrokenProcessPool`` restarts
  the pool; when the executor cannot say which worker crashed, nobody is
  charged an attempt — every in-flight repetition becomes a *suspect* and is
  re-run one at a time, so the next crash unambiguously identifies its
  culprit and innocent collateral recovers at zero retry cost;
* **quarantine** — after ``quarantine_after`` *consecutive* final failures of
  the same configuration, its remaining repetitions fail fast as
  :class:`~repro.errors.QuarantinedError` instead of crash-looping the pool;
* **graceful degradation** — the supervisor always returns; failures are
  delivered to the caller as structured :class:`RepFailure` records, never
  raised (``KeyboardInterrupt``/``SystemExit`` still propagate so an operator
  can abort, and the pool's processes are killed on the way out).

Results are *validated* before they count as successes (``validate_fn``), so
a conservation violation surfaces as a named failure rather than a silently
wrong table; validation failures are deterministic and are not retried.
"""

from __future__ import annotations

import time
import traceback as traceback_module
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import (
    HostLostError,
    QuarantinedError,
    RepTimeoutError,
    ValidationError,
    WorkerCrashError,
)
from repro.framework.config import ExperimentConfig
from repro.framework.executors import Executor, PoolExecutor

__all__ = [
    "RepFailure",
    "RepTask",
    "SupervisionPolicy",
    "Supervisor",
]

#: Cap stored tracebacks so a pathological repr cannot bloat journals.
_TRACEBACK_LIMIT_CHARS = 8_000


@dataclass(frozen=True)
class SupervisionPolicy:
    """Knobs for the supervision loop.

    ``timeout_s=None`` disables the watchdog (a repetition may run forever,
    as before). ``retries`` is the number of *re*-attempts, so every
    repetition runs at most ``retries + 1`` times. Backoff before attempt
    ``n+1`` is ``backoff_base_s * 2**(n-1)`` capped at ``backoff_max_s``.
    """

    timeout_s: Optional[float] = None
    retries: int = 2
    backoff_base_s: float = 0.05
    backoff_max_s: float = 5.0
    quarantine_after: int = 3
    poll_interval_s: float = 0.05

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None to disable)")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")

    @property
    def max_attempts(self) -> int:
        return self.retries + 1

    def backoff_s(self, failed_attempts: int) -> float:
        """Delay before the next attempt after ``failed_attempts`` failures."""
        if failed_attempts <= 0 or self.backoff_base_s <= 0:
            return 0.0
        return min(self.backoff_max_s, self.backoff_base_s * 2 ** (failed_attempts - 1))


@dataclass
class RepFailure:
    """One repetition that could not produce a valid result.

    Serializable (``as_dict``/``from_dict``) so failures survive in JSON
    artifacts and the sweep journal, and a resumed run can carry them
    forward verbatim.
    """

    name: str
    label: str
    rep: int
    seed: int
    error_type: str
    message: str
    traceback: str
    attempts: int
    wall_time_s: float
    quarantined: bool = False
    #: Worker host the failure is attributed to (distributed backend only);
    #: ``None`` for local backends and for failures charged to the config.
    host: Optional[str] = None

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "label": self.label,
            "rep": self.rep,
            "seed": self.seed,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
            "attempts": self.attempts,
            "wall_time_s": self.wall_time_s,
            "quarantined": self.quarantined,
            "host": self.host,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RepFailure":
        return cls(**{k: data[k] for k in cls.__dataclass_fields__ if k in data})

    def describe(self) -> str:
        note = " [quarantined]" if self.quarantined else ""
        return (
            f"{self.name} rep {self.rep}: {self.error_type}: {self.message} "
            f"(after {self.attempts} attempt(s), {self.wall_time_s:.2f}s){note}"
        )


@dataclass
class RepTask:
    """One (config, repetition) unit of supervised work."""

    name: str
    config: ExperimentConfig
    rep: int
    seed: int
    attempts: int = 0
    #: Accumulated wall time across attempts (including timed-out ones).
    elapsed_s: float = 0.0
    #: Monotonic time before which a backed-off retry must not be submitted.
    not_before: float = 0.0
    #: True while this task is a crash suspect: it was in flight when the
    #: pool died ambiguously and must be re-run alone to attribute the crash.
    suspect: bool = False


@dataclass
class _Flight:
    task: RepTask
    started: float
    deadline: Optional[float]


class Supervisor:
    """Runs :class:`RepTask` units under a :class:`SupervisionPolicy`.

    ``run_fn(config, seed)`` computes one repetition (defaults to the sweep's
    worker function at the call site; tests substitute crashing/hanging
    stand-ins). ``validate_fn(result)`` may raise
    :class:`~repro.errors.ValidationError` to reject a structurally broken
    result. Outcomes are delivered via ``on_success(task, result)`` and
    ``on_failure(task, failure)`` callbacks, in completion order.

    ``executor`` selects the execution backend
    (:mod:`repro.framework.executors`): a serial backend routes everything
    through the in-process path regardless of ``workers``; pooled backends
    only differ in how worker processes are created — the supervision loop
    (timeouts, retries, crash attribution, quarantine) is backend-agnostic.
    """

    def __init__(
        self,
        policy: SupervisionPolicy,
        run_fn: Callable[[ExperimentConfig, int], Any],
        validate_fn: Optional[Callable[[Any], None]] = None,
        executor: Optional[Executor] = None,
    ):
        self.policy = policy
        self.run_fn = run_fn
        self.validate_fn = validate_fn
        self.executor = executor if executor is not None else PoolExecutor()
        self._consecutive_failures: Dict[str, int] = {}
        self._quarantined: set = set()
        self._queue: deque = deque()
        self._suspects: deque = deque()
        #: ``run_fn`` wrapped by the executor's result transport (set per
        #: pooled run; the serial path never wraps).
        self._pooled_run_fn: Callable[[ExperimentConfig, int], Any] = run_fn

    # -- public entry ------------------------------------------------------

    def run(
        self,
        tasks: List[RepTask],
        workers: int,
        on_success: Callable[[RepTask, Any], None],
        on_failure: Callable[[RepTask, RepFailure], None],
    ) -> None:
        self._consecutive_failures = {}
        self._quarantined = set()
        self._queue = deque()
        self._suspects = deque()
        # Backends may tune themselves from the policy (the distributed
        # backend keeps lease deadlines strictly above the rep timeout).
        self.executor.observe_policy(self.policy)
        # A distributed "pool" spans machines: even one task must go through
        # the coordinator (the point may be to run it elsewhere), so only
        # local backends collapse small workloads to the serial path.
        if self.executor.serial or (
            not self.executor.distributed and (workers <= 1 or len(tasks) <= 1)
        ):
            self._run_serial(tasks, on_success, on_failure)
        else:
            self._run_pool(tasks, workers, on_success, on_failure)

    # -- serial path -------------------------------------------------------

    def _run_serial(self, tasks, on_success, on_failure) -> None:
        """In-process execution: retries and failure capture, no watchdog.

        A hung repetition cannot be interrupted from inside its own process,
        so ``timeout_s`` is only enforced on the pooled path (use
        ``workers >= 2`` when a watchdog is required).
        """
        for task in tasks:
            if task.name in self._quarantined:
                on_failure(task, self._quarantine_failure(task))
                continue
            while True:
                task.attempts += 1
                start = time.monotonic()
                try:
                    result = self.run_fn(task.config, task.seed)
                    if self.validate_fn is not None:
                        self.validate_fn(result)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as exc:
                    task.elapsed_s += time.monotonic() - start
                    if self._should_retry(task, exc):
                        time.sleep(self.policy.backoff_s(task.attempts))
                        continue
                    on_failure(task, self._final_failure(task, exc))
                    break
                else:
                    task.elapsed_s += time.monotonic() - start
                    self._consecutive_failures[task.name] = 0
                    on_success(task, result)
                    break

    # -- pooled path -------------------------------------------------------

    def _run_pool(self, tasks, workers, on_success, on_failure) -> None:
        queue = self._queue = deque(tasks)
        suspects = self._suspects = deque()
        # Local pooled backends route large result payloads through shared
        # memory instead of the result queue (see executors.py); the wrap is
        # a no-op for backends without a transport.
        self._pooled_run_fn = self.executor.wrap_run_fn(self.run_fn)
        pool = self.executor.make_pool(workers)
        flights: Dict[Any, _Flight] = {}
        try:
            while queue or suspects or flights:
                pool = self._fill(pool, workers, flights, on_failure)
                if not flights:
                    # Everything runnable is backing off; sleep to the
                    # earliest retry moment.
                    pending = suspects if suspects else queue
                    if not pending:
                        continue
                    wake = min(t.not_before for t in pending)
                    time.sleep(max(wake - time.monotonic(), 0.001))
                    continue
                done, _ = futures_wait(
                    set(flights),
                    timeout=self.policy.poll_interval_s,
                    return_when=FIRST_COMPLETED,
                )
                crashed: List[_Flight] = []
                for future in done:
                    flight = flights.pop(future)
                    flight.task.elapsed_s += time.monotonic() - flight.started
                    try:
                        result = self.executor.resolve_result(future.result())
                        if self.validate_fn is not None:
                            self.validate_fn(result)
                    except BrokenProcessPool:
                        crashed.append(flight)
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except Exception as exc:
                        self._attempt_failed(flight.task, exc, on_failure)
                    else:
                        flight.task.suspect = False
                        self._consecutive_failures[flight.task.name] = 0
                        on_success(flight.task, result)
                if crashed:
                    # Every other in-flight future died with the pool too.
                    now = time.monotonic()
                    for flight in flights.values():
                        flight.task.elapsed_s += now - flight.started
                        crashed.append(flight)
                    flights.clear()
                    self._absorb_crash(crashed, on_failure)
                    pool = self._restart_pool(pool, workers)
                    continue
                pool = self._reap_timeouts(pool, workers, flights, on_failure)
        finally:
            self._kill_pool(pool)
            # Sweep shared-memory segments orphaned by killed/crashed
            # workers; a no-op (0) for transport-less backends.
            self.executor.cleanup_transport()

    def _absorb_crash(self, crashed: List[_Flight], on_failure) -> None:
        """Attribute a dead pool to its culprit.

        A worker that dies (segfault, OOM kill, ``os._exit``) takes the whole
        pool down, and the executor cannot report which task the dead worker
        was running. If exactly one repetition was in flight the attribution
        is unambiguous: it is charged a failed attempt. Otherwise nobody is
        charged — every in-flight repetition becomes a *suspect* and is
        re-run one at a time (see :meth:`_fill`), so the next crash
        identifies its culprit and innocent collateral loses no retry budget.
        """
        if len(crashed) == 1:
            self._attempt_failed(
                crashed[0].task,
                WorkerCrashError(
                    "process pool died while this repetition ran alone in it"
                ),
                on_failure,
            )
            return
        for flight in crashed:
            task = flight.task
            task.attempts -= 1
            task.suspect = True
            task.not_before = 0.0
            self._suspects.appendleft(task)

    def _fill(self, pool, workers, flights, on_failure):
        """Submit ready tasks up to the worker count; fail fast quarantined ones.

        While any crash suspect is unresolved, exactly one repetition flies
        at a time so a repeat crash is unambiguous (:meth:`_absorb_crash`);
        full parallelism resumes once the suspects are cleared.
        """
        now = time.monotonic()
        if self._suspects or any(f.task.suspect for f in flights.values()):
            if flights or not self._suspects:
                return pool
            for _ in range(len(self._suspects)):
                task = self._suspects.popleft()
                if task.name in self._quarantined:
                    on_failure(task, self._quarantine_failure(task))
                    continue
                if task.not_before > now:
                    self._suspects.append(task)
                    continue
                pool, _ = self._launch(pool, workers, task, flights)
                break
            return pool
        deferred = []
        while self._queue and len(flights) < workers:
            task = self._queue.popleft()
            if task.name in self._quarantined:
                on_failure(task, self._quarantine_failure(task))
                continue
            if task.not_before > now:
                deferred.append(task)
                continue
            pool, launched = self._launch(pool, workers, task, flights)
            if not launched and flights:
                # In-flight futures are dead too; the main loop's collection
                # pass sees their BrokenProcessPool results and runs the
                # full recovery path.
                break
        self._queue.extend(deferred)
        return pool

    def _launch(self, pool, workers, task, flights):
        """Charge an attempt and submit; handle a pool that died while idle."""
        task.attempts += 1
        now = time.monotonic()
        try:
            future = pool.submit(self._pooled_run_fn, task.config, task.seed)
        except BrokenProcessPool:
            # The pool died between collections; don't charge the task.
            task.attempts -= 1
            (self._suspects if task.suspect else self._queue).appendleft(task)
            if flights:
                return pool, False
            return self._restart_pool(pool, workers), False
        deadline = (
            now + self.policy.timeout_s if self.policy.timeout_s is not None else None
        )
        flights[future] = _Flight(task=task, started=now, deadline=deadline)
        return pool, True

    def _reap_timeouts(self, pool, workers, flights, on_failure):
        """Kill the pool if any flight blew its deadline; requeue innocents."""
        if self.policy.timeout_s is None or not flights:
            return pool
        now = time.monotonic()
        expired = [f for f, flight in flights.items() if flight.deadline and now >= flight.deadline]
        if not expired:
            return pool
        # A hung worker cannot be cancelled individually, so the whole pool
        # is torn down. Expired flights are charged a timed-out attempt;
        # the rest were innocent and are requeued uncharged.
        for future in expired:
            flight = flights.pop(future)
            flight.task.elapsed_s += now - flight.started
            self._attempt_failed(
                flight.task,
                RepTimeoutError(
                    f"repetition exceeded the {self.policy.timeout_s:.1f}s wall-clock budget"
                ),
                on_failure,
            )
        for flight in flights.values():
            flight.task.attempts -= 1
            flight.task.elapsed_s += now - flight.started
            flight.task.not_before = 0.0
            (self._suspects if flight.task.suspect else self._queue).appendleft(flight.task)
        flights.clear()
        return self._restart_pool(pool, workers)

    def _restart_pool(self, pool, workers) -> ProcessPoolExecutor:
        self._kill_pool(pool)
        return self.executor.make_pool(workers)

    @staticmethod
    def _kill_pool(pool: Optional[ProcessPoolExecutor]) -> None:
        """Terminate worker processes (hung ones never exit on their own)."""
        if pool is None:
            return
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.terminate()
            except Exception:  # pragma: no cover - already-dead workers
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    # -- outcome bookkeeping ----------------------------------------------

    def _should_retry(self, task: RepTask, exc: Exception) -> bool:
        if isinstance(exc, ValidationError):
            # The simulation is deterministic: a result that violates an
            # invariant will violate it again. Fail immediately.
            return False
        if isinstance(exc, HostLostError):
            # Every configured host is quarantined; retrying cannot help and
            # the failure is charged to the fleet, not the configuration.
            return False
        return task.attempts < self.policy.max_attempts and task.name not in self._quarantined

    def _attempt_failed(self, task, exc, on_failure) -> None:
        if self._should_retry(task, exc):
            task.not_before = time.monotonic() + self.policy.backoff_s(task.attempts)
            (self._suspects if task.suspect else self._queue).append(task)
        else:
            on_failure(task, self._final_failure(task, exc))

    def _final_failure(self, task: RepTask, exc: Exception) -> RepFailure:
        if not isinstance(exc, HostLostError):
            # Host-loss failures are charged to the fleet; they must not
            # push an innocent configuration toward quarantine.
            count = self._consecutive_failures.get(task.name, 0) + 1
            self._consecutive_failures[task.name] = count
            if count >= self.policy.quarantine_after:
                self._quarantined.add(task.name)
        tb = getattr(exc, "remote_traceback", "") or "".join(
            traceback_module.format_exception(type(exc), exc, exc.__traceback__)
        )
        return RepFailure(
            name=task.name,
            label=task.config.label if hasattr(task.config, "label") else task.name,
            rep=task.rep,
            seed=task.seed,
            error_type=type(exc).__name__,
            message=str(exc).splitlines()[0] if str(exc) else type(exc).__name__,
            traceback=tb[-_TRACEBACK_LIMIT_CHARS:],
            attempts=task.attempts,
            wall_time_s=task.elapsed_s,
            quarantined=task.name in self._quarantined,
            host=getattr(exc, "host", None),
        )

    def _quarantine_failure(self, task: RepTask) -> RepFailure:
        exc = QuarantinedError(
            f"configuration {task.name!r} was quarantined after "
            f"{self.policy.quarantine_after} consecutive failures"
        )
        return RepFailure(
            name=task.name,
            label=task.config.label if hasattr(task.config, "label") else task.name,
            rep=task.rep,
            seed=task.seed,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback="",
            attempts=task.attempts,
            wall_time_s=task.elapsed_s,
            quarantined=True,
        )
