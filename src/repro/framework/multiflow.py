"""Competing flows over a shared bottleneck (extension).

The paper's Section 3.4 explicitly leaves "competing connections" and
"shared queues" to future work. This module implements that scenario: N
senders (any mix of stack profiles and CCAs) share the 40 Mbit/s bottleneck,
each downloading its own file, and we measure per-flow goodput, loss, and
Jain fairness. It also exercises FQ's multi-flow scheduling, which the
single-connection experiments never touch.

Topology: every sender has its own host (socket, qdisc, GSO stage, NIC,
1 Gbit/s link) feeding the shared optical tap and TBF bottleneck; the
bottleneck egress demultiplexes to per-flow client sockets by destination
port; ACKs return over a shared reverse link with 20 ms delay, plus an
optional per-flow extra delay stage (``FlowSpec.extra_rtt_ns``) so flow
populations can have heterogeneous RTTs over one shared queue.

Accounting. Per-flow goodput is computed from the bytes actually delivered
to the receiving application (``FlowResult.bytes_received``), never from the
configured file size — a stalled flow that delivered 1 % of its file reports
1 % of the rate, not a full-file fantasy number. Drops are attributed
end-to-end: congestion (bottleneck queue overflow) per flow, injected
forward-path impairment drops per flow, injected reverse-path (ACK) drops
per flow, and unrouted demux datagrams (always a wiring bug; the
conservation validator gates on zero).

Scale. ``capture_records=False`` skips materializing per-flow
:class:`CaptureRecord` lists, so a several-hundred-flow population run keeps
the capture columnar (O(packets) machine integers, PR 5's layout) instead of
holding O(flows × packets) record objects; per-flow wire-packet counts are
still derived in one pass over the columns.
"""

from __future__ import annotations

import gc
import hashlib
import json
import os
import time
from collections import Counter
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cc.factory import make_cc
from repro.framework.config import NetworkConfig
from repro.kernel.gso import GsoSegmenter
from repro.kernel.qdisc import make_qdisc
from repro.kernel.qdisc.netem import NetemQdisc
from repro.kernel.socket import UdpSocket, reset_gso_ids
from repro.metrics.fairness import jain_index
from repro.metrics.goodput import goodput_mbps
from repro.net.bottleneck import Bottleneck
from repro.net.demux import PortDemux
from repro.net.impairments import build_impairments
from repro.net.link import Link
from repro.net.nic import Nic
from repro.net.packet import reset_dgram_ids
from repro.net.tap import CaptureRecord, FiberTap, Sniffer
from repro.pacing.gso_policy import GsoPolicy
from repro.quic import h3
from repro.quic.connection import Connection, ConnectionConfig
from repro.sim.engine import Simulator
from repro.sim.random import RngRegistry
from repro.stacks.base import ServerDriver, make_pacer
from repro.stacks.client import ClientDriver
from repro.stacks.profiles import profile_for
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender
from repro.units import mib, ms, seconds, us

SERVER_ADDR = "10.0.0.1"
CLIENT_ADDR = "10.0.0.2"
BASE_SERVER_PORT = 4433
BASE_CLIENT_PORT = 50000

#: Ports are allocated as BASE + index on both sides; beyond this many flows
#: the server range would collide with the client range.
MAX_FLOWS = BASE_CLIENT_PORT - BASE_SERVER_PORT

MTU_PAYLOAD = 1252


class DrainSink:
    """Terminal sink installed on a departed flow's demux routes.

    A retired flow's ports stay routed — to this counter instead of the
    torn-down socket — so straggler datagrams (a retransmission in flight at
    teardown, a late ACK) are absorbed and *counted* rather than inflating
    the demux ``unrouted`` total, which the conservation validator reserves
    for genuine wiring bugs.
    """

    def __init__(self) -> None:
        self.drained = 0

    def receive(self, dgram) -> None:
        self.drained += 1


@dataclass(frozen=True)
class FlowSpec:
    """One competing sender."""

    stack: str = "quiche"
    cca: str = "cubic"
    qdisc: str = "none"
    gso: str = "off"
    spurious_rollback: Optional[bool] = None
    file_size: int = mib(4)
    start_ns: int = 0
    #: Extra round-trip time for this flow, applied as additional one-way
    #: delay on its reverse (ACK) path — heterogeneous RTTs over one shared
    #: forward bottleneck, the flow-population setup.
    extra_rtt_ns: int = 0

    @property
    def label(self) -> str:
        parts = [self.stack, self.cca]
        if self.qdisc != "none":
            parts.append(self.qdisc)
        return "/".join(parts)


@dataclass
class FlowResult:
    spec: FlowSpec
    completed: bool
    duration_ns: int
    #: Computed from ``bytes_received`` (bytes actually delivered to the
    #: application), not from ``spec.file_size`` — an incomplete flow reports
    #: the rate it actually achieved.
    goodput_mbps: float
    #: Congestion (bottleneck queue-overflow) drops attributed to this flow.
    dropped: int
    #: Application bytes delivered to the receiver (== file_size iff completed).
    bytes_received: int = 0
    #: Forward-path fault-injection drops attributed to this flow.
    injected_drops: int = 0
    #: Reverse-path (ACK) fault-injection drops attributed to this flow.
    ack_drops: int = 0
    #: Frames this flow put on the wire (tap capture), counted columnar.
    wire_packets: int = 0
    start_ns: int = 0
    records: List[CaptureRecord] = field(default_factory=list)

    @property
    def fct_ns(self) -> int:
        """Flow completion time (valid when ``completed``)."""
        return self.duration_ns


@dataclass
class MultiFlowResult:
    flows: List[FlowResult]
    total_dropped: int
    sim_time_ns: int
    seed: int = 0
    #: Forward-path injected (impairment) drops, all flows.
    injected_drops: int = 0
    #: Reverse-path (ACK) injected drops, all flows.
    ack_drops: int = 0
    #: Datagrams the port demuxes could not route (always a wiring bug; the
    #: conservation validator gates on zero).
    unrouted: int = 0
    #: Straggler datagrams absorbed by departed flows' drain sinks (churn
    #: runs only; always 0 without churn).
    drained: int = 0
    #: Per-stage impairment counters, keyed ``"{dir}/{index}/{kind}"``.
    impairment_stats: dict = field(default_factory=dict)
    #: Execution observability, excluded from the fingerprint.
    events_processed: int = 0
    wall_time_s: float = 0.0

    @property
    def fairness(self) -> float:
        return jain_index([f.goodput_mbps for f in self.flows])

    @property
    def fairness_completed(self) -> float:
        """Jain index over completed flows only (population reporting); 1.0
        when nothing completed (no allocation to be unfair about)."""
        done = [f.goodput_mbps for f in self.flows if f.completed]
        return jain_index(done) if done else 1.0

    @property
    def aggregate_goodput_mbps(self) -> float:
        return sum(f.goodput_mbps for f in self.flows)

    @property
    def all_completed(self) -> bool:
        return all(f.completed for f in self.flows)

    @property
    def completed_count(self) -> int:
        return sum(1 for f in self.flows if f.completed)

    @property
    def bytes_received(self) -> int:
        return sum(f.bytes_received for f in self.flows)

    def fingerprint(self) -> str:
        """Stable digest of every deterministic field.

        Excludes execution observability (``wall_time_s``,
        ``events_processed``) and the optional capture-record lists (which
        are an observability toggle, not a result: a run with
        ``capture_records=False`` must fingerprint identically to the same
        run with capture on).
        """
        payload = {
            "seed": self.seed,
            "sim_time_ns": self.sim_time_ns,
            "total_dropped": self.total_dropped,
            "injected_drops": self.injected_drops,
            "ack_drops": self.ack_drops,
            "unrouted": self.unrouted,
            "impairment_stats": self.impairment_stats,
            "flows": [
                {
                    "spec": asdict(f.spec),
                    "completed": f.completed,
                    "duration_ns": f.duration_ns,
                    "goodput_mbps": f.goodput_mbps,
                    "bytes_received": f.bytes_received,
                    "dropped": f.dropped,
                    "injected_drops": f.injected_drops,
                    "ack_drops": f.ack_drops,
                    "wire_packets": f.wire_packets,
                    "start_ns": f.start_ns,
                }
                for f in self.flows
            ],
        }
        # Churn teardown accounting; omitted when zero so every pre-churn
        # golden fingerprint stays valid byte-for-byte.
        if self.drained:
            payload["drained"] = self.drained
        encoded = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(encoded).hexdigest()

    def validate(self) -> None:
        """Check the multi-flow conservation invariants (see
        :func:`repro.framework.validate.validate_multiflow`)."""
        from repro.framework.validate import validate_multiflow

        validate_multiflow(self)


class _Flow:
    """Internal per-flow assembly."""

    def __init__(self, spec: FlowSpec, index: int):
        self.spec = spec
        self.index = index
        self.server_port = BASE_SERVER_PORT + index
        self.client_port = BASE_CLIENT_PORT + index
        self.server_driver: Optional[ServerDriver] = None
        self.client_driver: Optional[ClientDriver] = None
        self.tcp_sender: Optional[TcpSender] = None
        self.tcp_receiver: Optional[TcpReceiver] = None
        #: Endpoint refs kept only for churn teardown.
        self.client_sock = None
        self.server_sock = None
        self.per_flow_delay = None
        #: Frozen (start, end, bytes) snapshot taken at retirement; after
        #: teardown the live objects are gone and these answer for them.
        self._frozen: Optional[tuple[int, int, int]] = None

    @property
    def done(self) -> bool:
        if self._frozen is not None:
            return True
        if self.tcp_receiver is not None:
            return self.tcp_receiver.done
        return self.client_driver is not None and self.client_driver.done

    def freeze(self, now: int) -> None:
        """Snapshot the result-facing state ahead of teardown."""
        start, end = self.timing(now)
        self._frozen = (start, end, self.bytes_delivered())

    def timing(self, fallback_now: int) -> tuple[int, int]:
        if self._frozen is not None:
            return self._frozen[0], self._frozen[1]
        if self.tcp_receiver is not None:
            start = self.tcp_sender.started_at or self.spec.start_ns
            end = self.tcp_receiver.completed_at or fallback_now
        else:
            start = self.client_driver.request_sent_at or self.spec.start_ns
            end = self.client_driver.completed_at or fallback_now
        return start, max(end, start + 1)

    def bytes_delivered(self) -> int:
        """Application bytes the receiver actually got (contiguous)."""
        if self._frozen is not None:
            return self._frozen[2]
        if self.tcp_receiver is not None:
            # rcv_nxt is the contiguous in-order frontier; the FIN carries no
            # payload, so it never exceeds the file size.
            return min(self.tcp_receiver.rcv_nxt, self.spec.file_size)
        stream = self.client_driver.conn.recv_streams.get(0)
        if stream is None:
            return 0
        # Strip the HTTP/3 response framing (HEADERS + DATA frame header) so
        # the count is body bytes, directly comparable to spec.file_size.
        prefix = len(h3.encode_response_prefix(self.spec.file_size))
        body = stream.delivered - prefix
        return max(0, min(body, self.spec.file_size))


class MultiFlowExperiment:
    """N flows over one shared bottleneck.

    ``capture_records=False`` keeps the capture columnar only: per-flow
    ``FlowResult.records`` lists stay empty (wire-packet counts are still
    reported), which is what flow-population runs use to avoid holding
    O(flows × packets) record objects.
    """

    def __init__(
        self,
        flows: Sequence[FlowSpec],
        network: Optional[NetworkConfig] = None,
        seed: int = 1,
        max_sim_time_ns: int = seconds(300),
        capture_records: bool = True,
        churn: bool = False,
        profile_events: bool = False,
    ):
        if not flows:
            raise ValueError("at least one flow is required")
        if len(flows) > MAX_FLOWS:
            raise ValueError(
                f"{len(flows)} flows exceed the port budget ({MAX_FLOWS}): "
                f"server ports would collide with client ports"
            )
        self.specs = list(flows)
        self.network = network or NetworkConfig()
        self.seed = seed
        self.max_sim_time_ns = max_sim_time_ns
        self.capture_records = capture_records
        self.churn = churn
        self.profile_events = (
            profile_events or os.environ.get("REPRO_EVENT_CENSUS") == "1"
        )
        if self.profile_events:
            from repro.sim.census import CensusSimulator

            self.sim = CensusSimulator()
        else:
            self.sim = Simulator()
        self.rngs = RngRegistry(seed)
        self.sniffer = Sniffer()
        self._flows: List[_Flow] = []
        #: Shared terminal sink for every departed flow's ports.
        self._drain = DrainSink()
        reset_dgram_ids()
        reset_gso_ids()
        self._build()

    # -- assembly ------------------------------------------------------------

    def _build(self) -> None:
        net = self.network
        self.client_demux = PortDemux()
        self.bottleneck = Bottleneck(
            self.sim,
            "bottleneck",
            rate_bps=net.bottleneck_rate_bps,
            queue_limit_bytes=net.buffer_bytes,
            burst_bytes=net.tbf_burst_bytes,
            delay_ns=net.one_way_delay_ns,
            sink=self.client_demux,
        )
        # Forward-path fault injection between the tap and the bottleneck,
        # exactly as in the single-flow Experiment: the sniffer sees the
        # senders' pacing untouched, the clients observe the impaired path.
        fwd_head, self.fwd_impairments, self.flappers = build_impairments(
            net.forward_impairments,
            self.sim,
            sink=self.bottleneck,
            rng_for=self.rngs.stream,
            direction="fwd",
            bottleneck=self.bottleneck,
        )
        tap = FiberTap(self.sim, self.sniffer, sink=fwd_head)

        self.server_demux = PortDemux()
        reverse_netem = NetemQdisc(
            self.sim,
            "reverse-netem",
            sink=self.server_demux,
            delay_ns=net.one_way_delay_ns,
            rng=self.rngs.stream("reverse-netem"),
        )
        # Reverse-path (ACK) fault injection between the shared reverse link
        # and the delay stage.
        rev_head, self.rev_impairments, _ = build_impairments(
            net.reverse_impairments,
            self.sim,
            sink=reverse_netem,
            rng_for=self.rngs.stream,
            direction="rev",
        )
        reverse_link = Link(
            self.sim, "reverse-link", net.link_rate_bps, propagation_ns=us(1), sink=rev_head
        )

        for index, spec in enumerate(self.specs):
            flow = _Flow(spec, index)
            self._flows.append(flow)
            rng_tag = f"flow{index}"

            client_sock = UdpSocket(
                self.sim, CLIENT_ADDR, flow.client_port, egress=reverse_link, rcvbuf_bytes=mib(50)
            )
            client_sock.connect(SERVER_ADDR, flow.server_port)
            self.client_demux.add_route(flow.client_port, client_sock)

            link = Link(
                self.sim, f"link-{index}", net.link_rate_bps, propagation_ns=us(1), sink=tap
            )
            nic = Nic(self.sim, f"nic-{index}", link, rng=self.rngs.stream(f"{rng_tag}-nic"))
            segmenter = GsoSegmenter(self.sim, sink=nic)
            qdisc = make_qdisc(
                spec.qdisc if spec.qdisc != "none" else "pfifo_fast",
                self.sim,
                sink=segmenter,
                rng=self.rngs.stream(f"{rng_tag}-qdisc"),
            )
            server_sock = UdpSocket(
                self.sim,
                SERVER_ADDR,
                flow.server_port,
                egress=qdisc,
                so_txtime=(spec.stack == "quiche"),
            )
            server_sock.connect(CLIENT_ADDR, flow.client_port)
            # Heterogeneous per-flow RTT: extra one-way delay on this flow's
            # reverse path only, inserted between the shared demux and the
            # server socket so the shared forward queue stays untouched.
            per_flow_delay = None
            if spec.extra_rtt_ns > 0:
                per_flow_delay = NetemQdisc(
                    self.sim,
                    f"rtt-{index}",
                    sink=server_sock,
                    delay_ns=spec.extra_rtt_ns,
                    rng=self.rngs.stream(f"{rng_tag}-rtt"),
                )
                self.server_demux.add_route(flow.server_port, per_flow_delay)
            else:
                self.server_demux.add_route(flow.server_port, server_sock)

            if spec.stack == "tcp":
                flow.tcp_sender = TcpSender(self.sim, server_sock, spec.file_size)
                flow.tcp_receiver = TcpReceiver(self.sim, client_sock, spec.file_size)
            else:
                self._build_quic_flow(flow, spec, server_sock, client_sock, rng_tag)

            flow.client_sock = client_sock
            flow.server_sock = server_sock
            flow.per_flow_delay = per_flow_delay
            if self.profile_events:
                from repro.sim.census import tag

                for component in (
                    client_sock, server_sock, link, nic, segmenter, qdisc,
                    per_flow_delay, flow.server_driver, flow.client_driver,
                    flow.tcp_sender, flow.tcp_receiver,
                ):
                    if component is not None:
                        tag(component, index)

    def _build_quic_flow(self, flow, spec, server_sock, client_sock, rng_tag) -> None:
        overrides = {}
        if spec.stack == "quiche":
            if spec.gso != "off":
                overrides["gso"] = GsoPolicy(enabled=True, paced=(spec.gso == "paced"))
            if spec.spurious_rollback is not None:
                overrides["spurious_rollback"] = spec.spurious_rollback
        profile = profile_for(spec.stack, spec.cca, **overrides)
        cc = make_cc(
            profile.cca,
            mtu=MTU_PAYLOAD,
            hystart=profile.hystart,
            spurious_rollback=profile.spurious_rollback,
            rollback_loss_threshold=profile.rollback_loss_threshold,
            bbr_params=profile.bbr_params,
        )
        cc.pacing_gain_factor = profile.pacing_gain
        server_conn = Connection(
            "server",
            cc=cc,
            config=ConnectionConfig(
                mtu_payload=MTU_PAYLOAD,
                peer_max_data=profile.recv_conn_window,
                peer_max_stream_data=profile.recv_stream_window,
            ),
        )
        client_conn = Connection(
            "client",
            config=ConnectionConfig(
                mtu_payload=MTU_PAYLOAD,
                recv_conn_window=profile.recv_conn_window,
                recv_stream_window=profile.recv_stream_window,
                fc_autotune=profile.fc_autotune,
                ack_threshold=profile.client_ack_threshold,
                max_ack_delay_ns=profile.client_max_ack_delay_ns,
            ),
        )
        flow.server_driver = ServerDriver(
            self.sim,
            server_conn,
            server_sock,
            profile,
            make_pacer(profile, MTU_PAYLOAD),
            response_size=h3.response_stream_size(spec.file_size),
            rng=self.rngs.stream(f"{rng_tag}-server"),
        )
        flow.client_driver = ClientDriver(
            self.sim, client_conn, client_sock, rng=self.rngs.stream(f"{rng_tag}-client")
        )

    # -- run -------------------------------------------------------------------

    def run(self) -> MultiFlowResult:
        wall_start = time.perf_counter()
        for flow in self._flows:
            if flow.tcp_sender is not None:
                self.sim.schedule_at(flow.spec.start_ns, flow.tcp_sender.start)
            else:
                self.sim.schedule_at(flow.spec.start_ns, flow.client_driver.start)

        # Steady-state traffic allocates and frees at a rate that makes the
        # cyclic GC's periodic full scans pure overhead (the object graph
        # has no growing cycles; retirement breaks the per-flow ones
        # explicitly). Results are identical either way; set
        # REPRO_GC_DURING_RUN=1 to keep the collector running.
        gc_paused = gc.isenabled() and os.environ.get("REPRO_GC_DURING_RUN") != "1"
        if gc_paused:
            gc.disable()
        try:
            chunk = ms(200)
            active = list(self._flows)
            while active and self.sim.now < self.max_sim_time_ns:
                before = self.sim.events_processed
                self.sim.run(until=self.sim.now + chunk)
                if any(f.done for f in active):
                    if self.churn:
                        for f in active:
                            if f.done:
                                self._retire(f)
                    active = [f for f in active if not f.done]
                if (
                    active
                    and self.sim.events_processed == before
                    and self.sim.peek_time() is None
                ):
                    break
        finally:
            if gc_paused:
                gc.enable()

        return self._collect(wall_start)

    def _retire(self, flow: _Flow) -> None:
        """Tear down a finished flow: freeze its result-facing state, silence
        every timer it could re-arm, reroute its ports to the drain sink, and
        drop the references so a long churn run holds O(active) state.

        Straggler datagrams already in flight keep their own pipeline stages
        alive until delivered; they terminate in :class:`DrainSink` (counted
        as ``drained``) instead of a dead socket.
        """
        flow.freeze(self.sim.now)
        if flow.tcp_sender is not None:
            flow.tcp_sender.detach()
            flow.tcp_receiver.detach()
        else:
            flow.server_driver.detach()
            flow.client_driver.detach()
        self.client_demux.add_route(flow.client_port, self._drain)
        self.server_demux.add_route(flow.server_port, self._drain)
        # The per-flow extra-RTT stage sits *between* the shared demux and
        # the server socket, so rerouting the demux alone would still let
        # ACKs already inside the delay line hit the dead socket tens of
        # milliseconds from now (and, for TCP, trigger a whole go-back-N
        # burst). Point its sink at the drain too.
        if flow.per_flow_delay is not None:
            flow.per_flow_delay.sink = self._drain
        if self.profile_events:
            self.sim.mark_departed(flow.index)
        flow.server_driver = None
        flow.client_driver = None
        flow.tcp_sender = None
        flow.tcp_receiver = None
        flow.client_sock = None
        flow.server_sock = None
        flow.per_flow_delay = None

    def census_report(self) -> Optional[dict]:
        """The event census (``profile_events`` runs only)."""
        return self.sim.report() if self.profile_events else None

    def _collect(self, wall_start: float) -> MultiFlowResult:
        # One columnar pass: frames on the wire per server port. The tap sees
        # only the forward direction (server hosts feed it), but filter by
        # source address anyway so a future topology change cannot silently
        # misattribute reverse frames.
        cols = self.sniffer.columns
        frames_by_flow_index = Counter(cols.flow_index)
        wire_by_port: Dict[int, int] = {}
        for flow_idx, count in frames_by_flow_index.items():
            f = cols.flows[flow_idx]
            if f[0] == SERVER_ADDR:
                wire_by_port[f[1]] = wire_by_port.get(f[1], 0) + count

        # Congestion drops per server port (forward path: src port == server).
        congestion_by_port: Dict[int, int] = {}
        for f, count in self.bottleneck.drops_by_flow.items():
            congestion_by_port[f[1]] = congestion_by_port.get(f[1], 0) + count
        # Injected forward drops per server port (src port of a data packet).
        fwd_injected_by_port: Dict[int, int] = {}
        for stage in self.fwd_impairments:
            for f, count in stage.drops_by_flow.items():
                fwd_injected_by_port[f[1]] = fwd_injected_by_port.get(f[1], 0) + count
        # Injected reverse (ACK) drops per server port (dst port of an ACK).
        ack_injected_by_port: Dict[int, int] = {}
        for stage in self.rev_impairments:
            for f, count in stage.drops_by_flow.items():
                ack_injected_by_port[f[3]] = ack_injected_by_port.get(f[3], 0) + count

        results = []
        for flow in self._flows:
            start, end = flow.timing(self.sim.now)
            port = flow.server_port
            if self.capture_records:
                records = [
                    r
                    for r in self.sniffer.from_host(SERVER_ADDR)
                    if r.flow[1] == port
                ]
            else:
                records = []
            bytes_received = flow.bytes_delivered()
            results.append(
                FlowResult(
                    spec=flow.spec,
                    completed=flow.done,
                    duration_ns=end - start,
                    goodput_mbps=goodput_mbps(bytes_received, end - start),
                    dropped=congestion_by_port.get(port, 0),
                    bytes_received=bytes_received,
                    injected_drops=fwd_injected_by_port.get(port, 0),
                    ack_drops=ack_injected_by_port.get(port, 0),
                    wire_packets=wire_by_port.get(port, 0),
                    start_ns=flow.spec.start_ns,
                    records=records,
                )
            )
        impairment_stats = {
            stage.name: stage.stats.as_dict()
            for stage in (*self.fwd_impairments, *self.rev_impairments)
        }
        return MultiFlowResult(
            flows=results,
            total_dropped=self.bottleneck.dropped,
            sim_time_ns=self.sim.now,
            seed=self.seed,
            injected_drops=sum(s.stats.injected_drops for s in self.fwd_impairments),
            ack_drops=sum(s.stats.injected_drops for s in self.rev_impairments),
            unrouted=self.client_demux.unrouted + self.server_demux.unrouted,
            drained=self._drain.drained,
            impairment_stats=impairment_stats,
            events_processed=self.sim.events_processed,
            wall_time_s=time.perf_counter() - wall_start,
        )
