"""Competing flows over a shared bottleneck (extension).

The paper's Section 3.4 explicitly leaves "competing connections" and
"shared queues" to future work. This module implements that scenario: N
senders (any mix of stack profiles and CCAs) share the 40 Mbit/s bottleneck,
each downloading its own file, and we measure per-flow goodput, loss, and
Jain fairness. It also exercises FQ's multi-flow scheduling, which the
single-connection experiments never touch.

Topology: every sender has its own host (socket, qdisc, GSO stage, NIC,
1 Gbit/s link) feeding the shared optical tap and TBF bottleneck; the
bottleneck egress demultiplexes to per-flow client sockets by destination
port; ACKs return over a shared reverse link with 20 ms delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.cc.factory import make_cc
from repro.framework.config import NetworkConfig
from repro.kernel.gso import GsoSegmenter
from repro.kernel.qdisc import make_qdisc
from repro.kernel.qdisc.netem import NetemQdisc
from repro.kernel.socket import UdpSocket
from repro.metrics.fairness import jain_index
from repro.metrics.goodput import goodput_mbps
from repro.net.bottleneck import Bottleneck
from repro.net.demux import PortDemux
from repro.net.link import Link
from repro.net.nic import Nic
from repro.net.packet import reset_dgram_ids
from repro.net.tap import CaptureRecord, FiberTap, Sniffer
from repro.pacing.gso_policy import GsoPolicy
from repro.quic import h3
from repro.quic.connection import Connection, ConnectionConfig
from repro.sim.engine import Simulator
from repro.sim.random import RngRegistry
from repro.stacks.base import ServerDriver, make_pacer
from repro.stacks.client import ClientDriver
from repro.stacks.profiles import profile_for
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender
from repro.units import mib, ms, seconds, us

SERVER_ADDR = "10.0.0.1"
CLIENT_ADDR = "10.0.0.2"
BASE_SERVER_PORT = 4433
BASE_CLIENT_PORT = 50000
MTU_PAYLOAD = 1252


@dataclass(frozen=True)
class FlowSpec:
    """One competing sender."""

    stack: str = "quiche"
    cca: str = "cubic"
    qdisc: str = "none"
    gso: str = "off"
    spurious_rollback: Optional[bool] = None
    file_size: int = mib(4)
    start_ns: int = 0

    @property
    def label(self) -> str:
        parts = [self.stack, self.cca]
        if self.qdisc != "none":
            parts.append(self.qdisc)
        return "/".join(parts)


@dataclass
class FlowResult:
    spec: FlowSpec
    completed: bool
    duration_ns: int
    goodput_mbps: float
    dropped: int
    records: List[CaptureRecord] = field(default_factory=list)


@dataclass
class MultiFlowResult:
    flows: List[FlowResult]
    total_dropped: int
    sim_time_ns: int

    @property
    def fairness(self) -> float:
        return jain_index([f.goodput_mbps for f in self.flows])

    @property
    def aggregate_goodput_mbps(self) -> float:
        return sum(f.goodput_mbps for f in self.flows)

    @property
    def all_completed(self) -> bool:
        return all(f.completed for f in self.flows)


class _Flow:
    """Internal per-flow assembly."""

    def __init__(self, spec: FlowSpec, index: int):
        self.spec = spec
        self.index = index
        self.server_port = BASE_SERVER_PORT + index
        self.client_port = BASE_CLIENT_PORT + index
        self.server_driver: Optional[ServerDriver] = None
        self.client_driver: Optional[ClientDriver] = None
        self.tcp_sender: Optional[TcpSender] = None
        self.tcp_receiver: Optional[TcpReceiver] = None

    @property
    def done(self) -> bool:
        if self.tcp_receiver is not None:
            return self.tcp_receiver.done
        return self.client_driver is not None and self.client_driver.done

    def timing(self, fallback_now: int) -> tuple[int, int]:
        if self.tcp_receiver is not None:
            start = self.tcp_sender.started_at or 0
            end = self.tcp_receiver.completed_at or fallback_now
        else:
            start = self.client_driver.request_sent_at or self.spec.start_ns
            end = self.client_driver.completed_at or fallback_now
        return start, max(end, start + 1)


class MultiFlowExperiment:
    def __init__(
        self,
        flows: Sequence[FlowSpec],
        network: Optional[NetworkConfig] = None,
        seed: int = 1,
        max_sim_time_ns: int = seconds(300),
    ):
        if not flows:
            raise ValueError("at least one flow is required")
        self.specs = list(flows)
        self.network = network or NetworkConfig()
        self.seed = seed
        self.max_sim_time_ns = max_sim_time_ns
        self.sim = Simulator()
        self.rngs = RngRegistry(seed)
        self.sniffer = Sniffer()
        self._flows: List[_Flow] = []
        reset_dgram_ids()
        self._build()

    # -- assembly ------------------------------------------------------------

    def _build(self) -> None:
        net = self.network
        client_demux = PortDemux()
        self.bottleneck = Bottleneck(
            self.sim,
            "bottleneck",
            rate_bps=net.bottleneck_rate_bps,
            queue_limit_bytes=net.buffer_bytes,
            burst_bytes=net.tbf_burst_bytes,
            delay_ns=net.one_way_delay_ns,
            sink=client_demux,
        )
        tap = FiberTap(self.sim, self.sniffer, sink=self.bottleneck)

        server_demux = PortDemux()
        reverse_netem = NetemQdisc(
            self.sim,
            "reverse-netem",
            sink=server_demux,
            delay_ns=net.one_way_delay_ns,
            rng=self.rngs.stream("reverse-netem"),
        )
        reverse_link = Link(
            self.sim, "reverse-link", net.link_rate_bps, propagation_ns=us(1), sink=reverse_netem
        )

        for index, spec in enumerate(self.specs):
            flow = _Flow(spec, index)
            self._flows.append(flow)
            rng_tag = f"flow{index}"

            client_sock = UdpSocket(
                self.sim, CLIENT_ADDR, flow.client_port, egress=reverse_link, rcvbuf_bytes=mib(50)
            )
            client_sock.connect(SERVER_ADDR, flow.server_port)
            client_demux.add_route(flow.client_port, client_sock)

            link = Link(
                self.sim, f"link-{index}", net.link_rate_bps, propagation_ns=us(1), sink=tap
            )
            nic = Nic(self.sim, f"nic-{index}", link, rng=self.rngs.stream(f"{rng_tag}-nic"))
            segmenter = GsoSegmenter(self.sim, sink=nic)
            qdisc = make_qdisc(
                spec.qdisc if spec.qdisc != "none" else "pfifo_fast",
                self.sim,
                sink=segmenter,
                rng=self.rngs.stream(f"{rng_tag}-qdisc"),
            )
            server_sock = UdpSocket(
                self.sim,
                SERVER_ADDR,
                flow.server_port,
                egress=qdisc,
                so_txtime=(spec.stack == "quiche"),
            )
            server_sock.connect(CLIENT_ADDR, flow.client_port)
            server_demux.add_route(flow.server_port, server_sock)

            if spec.stack == "tcp":
                flow.tcp_sender = TcpSender(self.sim, server_sock, spec.file_size)
                flow.tcp_receiver = TcpReceiver(self.sim, client_sock, spec.file_size)
            else:
                self._build_quic_flow(flow, spec, server_sock, client_sock, rng_tag)

    def _build_quic_flow(self, flow, spec, server_sock, client_sock, rng_tag) -> None:
        overrides = {}
        if spec.stack == "quiche":
            if spec.gso != "off":
                overrides["gso"] = GsoPolicy(enabled=True, paced=(spec.gso == "paced"))
            if spec.spurious_rollback is not None:
                overrides["spurious_rollback"] = spec.spurious_rollback
        profile = profile_for(spec.stack, spec.cca, **overrides)
        cc = make_cc(
            profile.cca,
            mtu=MTU_PAYLOAD,
            hystart=profile.hystart,
            spurious_rollback=profile.spurious_rollback,
            rollback_loss_threshold=profile.rollback_loss_threshold,
            bbr_params=profile.bbr_params,
        )
        cc.pacing_gain_factor = profile.pacing_gain
        server_conn = Connection(
            "server",
            cc=cc,
            config=ConnectionConfig(
                mtu_payload=MTU_PAYLOAD,
                peer_max_data=profile.recv_conn_window,
                peer_max_stream_data=profile.recv_stream_window,
            ),
        )
        client_conn = Connection(
            "client",
            config=ConnectionConfig(
                mtu_payload=MTU_PAYLOAD,
                recv_conn_window=profile.recv_conn_window,
                recv_stream_window=profile.recv_stream_window,
                fc_autotune=profile.fc_autotune,
                ack_threshold=profile.client_ack_threshold,
                max_ack_delay_ns=profile.client_max_ack_delay_ns,
            ),
        )
        flow.server_driver = ServerDriver(
            self.sim,
            server_conn,
            server_sock,
            profile,
            make_pacer(profile, MTU_PAYLOAD),
            response_size=h3.response_stream_size(spec.file_size),
            rng=self.rngs.stream(f"{rng_tag}-server"),
        )
        flow.client_driver = ClientDriver(
            self.sim, client_conn, client_sock, rng=self.rngs.stream(f"{rng_tag}-client")
        )

    # -- run -------------------------------------------------------------------

    def run(self) -> MultiFlowResult:
        for flow in self._flows:
            if flow.tcp_sender is not None:
                self.sim.schedule_at(flow.spec.start_ns, flow.tcp_sender.start)
            else:
                self.sim.schedule_at(flow.spec.start_ns, flow.client_driver.start)

        chunk = ms(200)
        while not all(f.done for f in self._flows) and self.sim.now < self.max_sim_time_ns:
            before = self.sim.events_processed
            self.sim.run(until=self.sim.now + chunk)
            if self.sim.events_processed == before and self.sim.peek_time() is None:
                break

        results = []
        for flow in self._flows:
            start, end = flow.timing(self.sim.now)
            records = [
                r
                for r in self.sniffer.from_host(SERVER_ADDR)
                if r.flow[1] == flow.server_port
            ]
            dropped = sum(
                count
                for f, count in self.bottleneck.drops_by_flow.items()
                if f[1] == flow.server_port
            )
            results.append(
                FlowResult(
                    spec=flow.spec,
                    completed=flow.done,
                    duration_ns=end - start,
                    goodput_mbps=goodput_mbps(flow.spec.file_size, end - start),
                    dropped=dropped,
                    records=records,
                )
            )
        return MultiFlowResult(
            flows=results, total_dropped=self.bottleneck.dropped, sim_time_ns=self.sim.now
        )
