"""Result invariants: sanity checks every repetition must pass before it is
cached or summarized.

A long sweep that silently absorbs a torn cache write or a logic regression
produces a *wrong table*, which is strictly worse than a crashed run. Every
invariant here is conservative — it holds for any correct simulation of any
configuration — so a violation always names a real defect (corrupt entry,
broken accounting, non-monotonic clock) rather than an unusual-but-valid
result. Violations raise :class:`~repro.errors.ValidationError` with the
invariant's name, and the supervision layer records them as structured
repetition failures instead of caching garbage.

Checked invariants:

* **counter sanity** — durations, drop counts, and per-stage impairment
  counters are non-negative; ``injected_drops`` equals the sum of the
  per-stage counters; no stage dropped more packets than it saw.
* **capture monotonicity** — tap timestamps, cwnd-trace times, and
  queue-trace times never decrease (simulation time cannot run backwards).
* **byte conservation** — a completed download must have put at least
  ``file_size`` payload bytes on the wire (retransmissions only add), and
  the forward path cannot drop more frames than crossed the tap (plus
  injected duplicates).
* **rate ceiling** — goodput of a completed transfer cannot exceed what the
  bottleneck (TBF rate + token burst, or the Wi-Fi PHY rate) could have
  carried in the measured duration.
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.framework.experiment import ExperimentResult
from repro.framework.multiflow import MultiFlowResult
from repro.framework.population import PopulationResult
from repro.units import SEC

#: Multiplicative slack on the rate-ceiling check: covers integer rounding in
#: token accounting, never a real overshoot (which would be ~2x at link rate).
RATE_SLACK = 1.01

#: One MTU of absolute slack (bytes) for boundary frames in the ceiling check.
MTU_SLACK_BYTES = 1500


def _check(condition: bool, invariant: str, detail: str) -> None:
    if not condition:
        raise ValidationError(f"{invariant}: {detail}")


def _check_monotonic(times, invariant: str) -> None:
    previous = None
    for index, t in enumerate(times):
        if previous is not None and t < previous:
            raise ValidationError(
                f"{invariant}: timestamp at index {index} went backwards "
                f"({t} < {previous})"
            )
        previous = t


def validate_result(result) -> None:
    """Raise :class:`ValidationError` naming the first violated invariant.

    Dispatches on result type so the sweep stack can gate single-flow,
    multi-flow, and population results through one entry point.
    """
    if isinstance(result, PopulationResult):
        validate_population(result)
    elif isinstance(result, MultiFlowResult):
        validate_multiflow(result)
    else:
        validate_experiment(result)


def validate_multiflow(result: MultiFlowResult) -> None:
    """Multi-flow conservation invariants.

    Every per-flow counter must reconcile with the shared-path totals — the
    bugs this guards against are exactly the historical ones: goodput
    computed from the configured size instead of delivered bytes, injected
    drops vanishing from the attribution, and unrouted demux datagrams
    silently disappearing.
    """
    _check(result.sim_time_ns >= 0, "sim-time", f"negative {result.sim_time_ns}")
    _check(
        result.unrouted == 0,
        "demux-routing",
        f"{result.unrouted} datagrams reached a demux with no route "
        f"(a flow's port was never registered)",
    )
    for index, flow in enumerate(result.flows):
        tag = f"flow {index} ({flow.spec.label})"
        _check(flow.duration_ns >= 1, "duration", f"{tag}: non-positive {flow.duration_ns}")
        _check(flow.goodput_mbps >= 0.0, "goodput", f"{tag}: negative {flow.goodput_mbps}")
        _check(
            0 <= flow.bytes_received <= flow.spec.file_size,
            "bytes-received",
            f"{tag}: {flow.bytes_received} outside [0, {flow.spec.file_size}]",
        )
        if flow.completed:
            _check(
                flow.bytes_received == flow.spec.file_size,
                "bytes-received",
                f"{tag}: completed but delivered {flow.bytes_received} of "
                f"{flow.spec.file_size} B",
            )
        for counter in ("dropped", "injected_drops", "ack_drops", "wire_packets"):
            value = getattr(flow, counter)
            _check(value >= 0, counter, f"{tag}: negative {value}")
    _check(
        sum(f.dropped for f in result.flows) == result.total_dropped,
        "drop-attribution",
        f"per-flow congestion drops sum to {sum(f.dropped for f in result.flows)} "
        f"but the bottleneck dropped {result.total_dropped}",
    )
    _check(
        sum(f.injected_drops for f in result.flows) == result.injected_drops,
        "injected-drop-attribution",
        f"per-flow injected drops sum to "
        f"{sum(f.injected_drops for f in result.flows)} but the forward stages "
        f"injected {result.injected_drops}",
    )
    _check(
        sum(f.ack_drops for f in result.flows) == result.ack_drops,
        "ack-drop-attribution",
        f"per-flow ACK drops sum to {sum(f.ack_drops for f in result.flows)} "
        f"but the reverse stages injected {result.ack_drops}",
    )
    for stage, stats in result.impairment_stats.items():
        for counter, value in stats.items():
            _check(
                value >= 0,
                "impairment-counters",
                f"stage {stage!r} counter {counter!r} is negative ({value})",
            )
        _check(
            stats["injected_drops"] <= stats["seen"],
            "impairment-counters",
            f"stage {stage!r} dropped {stats['injected_drops']} of only "
            f"{stats['seen']} seen packets",
        )
    fwd = {k: v for k, v in result.impairment_stats.items() if k.startswith("fwd/")}
    fwd_duplicated = sum(s["duplicated"] for s in fwd.values())
    wire_total = sum(f.wire_packets for f in result.flows)
    _check(
        result.total_dropped + result.injected_drops <= wire_total + fwd_duplicated,
        "drop-conservation",
        f"{result.total_dropped} congestion + {result.injected_drops} injected "
        f"drops exceed {wire_total} captured + {fwd_duplicated} duplicated frames",
    )


def validate_population(result: PopulationResult) -> None:
    """Population invariants: the embedded multi-flow result plus the
    aggregate bookkeeping that ties it back to the generating config."""
    validate_multiflow(result.multi)
    cfg = result.config
    _check(
        len(result.multi.flows) == cfg.flows,
        "population-size",
        f"config asked for {cfg.flows} flows but the run holds "
        f"{len(result.multi.flows)}",
    )
    profile_flows = sum(int(p["flows"]) for p in result.per_profile.values())
    _check(
        profile_flows == cfg.flows,
        "profile-partition",
        f"per-profile flow counts sum to {profile_flows}, expected {cfg.flows}",
    )
    profile_completed = sum(int(p["completed"]) for p in result.per_profile.values())
    _check(
        profile_completed == result.completed_count,
        "profile-partition",
        f"per-profile completed counts sum to {profile_completed}, expected "
        f"{result.completed_count}",
    )
    _check(
        0.0 <= result.fairness <= 1.0 + 1e-9,
        "fairness-range",
        f"Jain index {result.fairness} outside [0, 1]",
    )
    if not cfg.capture_records:
        _check(
            all(not f.records for f in result.multi.flows),
            "capture-opt-in",
            "capture_records=False but per-flow record lists were materialized",
        )


def validate_experiment(result: ExperimentResult) -> None:
    """Single-flow invariants (the original checks)."""
    cfg = result.config

    # -- counter sanity ----------------------------------------------------
    _check(result.duration_ns >= 1, "duration", f"non-positive {result.duration_ns}")
    _check(result.goodput_mbps >= 0.0, "goodput", f"negative {result.goodput_mbps}")
    _check(result.dropped >= 0, "dropped", f"negative {result.dropped}")
    _check(
        result.injected_drops >= 0, "injected-drops", f"negative {result.injected_drops}"
    )
    stage_total = 0
    for stage, stats in result.impairment_stats.items():
        for counter, value in stats.items():
            _check(
                value >= 0,
                "impairment-counters",
                f"stage {stage!r} counter {counter!r} is negative ({value})",
            )
        _check(
            stats["injected_drops"] <= stats["seen"],
            "impairment-counters",
            f"stage {stage!r} dropped {stats['injected_drops']} of only "
            f"{stats['seen']} seen packets",
        )
        stage_total += stats["injected_drops"]
    _check(
        result.injected_drops == stage_total,
        "injected-drops",
        f"result counts {result.injected_drops} but stages sum to {stage_total}",
    )

    # -- capture monotonicity ---------------------------------------------
    _check_monotonic((r.time_ns for r in result.server_records), "capture-monotonic")
    _check_monotonic((t for t, _ in result.cwnd_trace), "cwnd-trace-monotonic")
    _check_monotonic((t for t, _ in result.queue_trace), "queue-trace-monotonic")

    # -- byte conservation -------------------------------------------------
    if result.completed:
        wire_payload = sum(r.payload_size for r in result.server_records)
        _check(
            wire_payload >= cfg.file_size,
            "bytes-conservation",
            f"completed download of {cfg.file_size} B but only {wire_payload} B "
            f"of payload crossed the tap",
        )
    fwd = {k: v for k, v in result.impairment_stats.items() if k.startswith("fwd/")}
    fwd_injected = sum(s["injected_drops"] for s in fwd.values())
    fwd_duplicated = sum(s["duplicated"] for s in fwd.values())
    _check(
        result.dropped + fwd_injected
        <= result.packets_on_wire + fwd_duplicated,
        "drop-conservation",
        f"{result.dropped} congestion + {fwd_injected} injected drops exceed "
        f"{result.packets_on_wire} captured + {fwd_duplicated} duplicated frames",
    )

    # -- rate ceiling ------------------------------------------------------
    if result.completed:
        net = cfg.network
        if net.bottleneck == "wifi":
            ceiling_bps = net.wifi_phy_rate_bps
            burst_bytes = net.wifi_max_aggregate * MTU_SLACK_BYTES
        else:
            ceiling_bps = net.bottleneck_rate_bps
            burst_bytes = net.tbf_burst_bytes
        capacity_bytes = (
            ceiling_bps * result.duration_ns / (8 * SEC) + burst_bytes + MTU_SLACK_BYTES
        )
        _check(
            cfg.file_size <= capacity_bytes * RATE_SLACK,
            "rate-ceiling",
            f"delivered {cfg.file_size} B in {result.duration_ns} ns but the "
            f"bottleneck could carry at most {capacity_bytes:.0f} B "
            f"({result.goodput_mbps:.2f} Mbit/s goodput vs "
            f"{ceiling_bps / 1e6:.2f} Mbit/s ceiling)",
        )
