"""Fault-tolerant distributed sweep execution: coordinator + worker agents.

The paper's campaigns are grids at thousands of repetitions; the slowest
scenarios (fast-Internet regimes, large flow populations) want more than one
machine. This module adds that without changing a single campaign semantic:
a :class:`Coordinator` speaks the same ``submit``/``shutdown`` surface as a
``ProcessPoolExecutor``, so the :class:`~repro.framework.supervision.Supervisor`
keeps owning retries, timeouts, quarantine and crash attribution, and the
sweep/journal/cache/store layers cannot tell a cluster from a local pool.
Cache keys, journal grid keys, and result fingerprints stay backend-free —
the invariant the differential suite pins — so a distributed campaign's
store ``content_fingerprint()`` is bit-identical to an in-process run.

Wire protocol
-------------

Frames are length-prefixed JSON over TCP: a 4-byte big-endian unsigned
length followed by that many bytes of UTF-8 JSON. Python objects (configs,
results) ride inside frames as ``base64(zlib(pickle))`` strings so the JSON
layer stays printable and loggable. Frame types:

===========  =========  ====================================================
type         direction  meaning
===========  =========  ====================================================
challenge    c -> a     auth nonce; first frame on every connection
auth         a -> c     HMAC proof for the challenge + the agent's own nonce
welcome      c -> a     HMAC proof for the agent's nonce (mutual auth)
hello        a -> c     agent announces ``agent`` id, ``host``, ``pid``
heartbeat    a -> c     liveness beacon, every ``heartbeat_interval_s``
lease        c -> a     one repetition: lease id, run_fn name, config, seed
result       a -> c     settled repetition payload for a lease
failure      a -> c     exception type/message/traceback for a lease
shutdown     c -> a     campaign over; agent exits cleanly
===========  =========  ====================================================

Because ``result``/``lease`` payloads are pickled, the socket is a code
execution surface; no frame that carries a payload is accepted before a
mutual HMAC-SHA256 challenge-response handshake over a per-campaign random
shared secret (:data:`SECRET_ENV`, handed to agents through their launch
environment — never the wire). The coordinator binds to the loopback
interface for all-local fleets and to all interfaces only when a non-local
host is configured (override with ``bind_host``/``--bind-host``).

Lease lifecycle
---------------

Every repetition submitted to the coordinator becomes a *task*; a task is
dispatched to an idle agent as a *lease* with a deadline. A lease dies with
its agent (socket EOF, heartbeat-budget exhaustion, deadline expiry) and
its task is *reclaimed*: re-queued and re-dispatched with the same derived
seed, so recovery is bit-identical. Near the end of a campaign an idle
agent may be granted a *straggler duplicate* of a long-running lease — the
first result wins and the loser is discarded idempotently (the store keys
rows by ``(config-hash, seed)``, so even a late double-write is a no-op).

Failure domains are kept apart deliberately: an agent/host death charges
the **host** (exponential-backoff relaunch, quarantine after
``max_host_failures``), never the configuration; an exception raised *by
the repetition* is sent back as a ``failure`` frame and charged to the
config through the Supervisor's ordinary retry/quarantine machinery. When
every configured host is quarantined the campaign fails fast with
:class:`~repro.errors.HostLostError` records carrying per-host attribution.

Agents are long-lived: ``python -m repro.framework.remote agent`` connects
back to the coordinator, executes one lease at a time (the simulator keeps
process-global id counters, so one process must never interleave two
repetitions), heartbeats from a side thread, and reconnects with
exponential backoff when the coordinator vanishes — holding any unsent
result and re-delivering it after the reconnect.
"""

from __future__ import annotations

import argparse
import base64
import builtins
import hmac
import itertools
import json
import os
import pickle
import shlex
import socket
import struct
import subprocess
import sys
import threading
import time
import zlib
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import (
    ConfigError,
    HostLostError,
    ProtocolError,
    RemoteRepError,
    RepTimeoutError,
)

__all__ = [
    "Coordinator",
    "HostSpec",
    "MAX_FRAME_BYTES",
    "SECRET_ENV",
    "agent_main",
    "callable_name",
    "client_handshake",
    "decode_obj",
    "drop_connection",
    "encode_obj",
    "load_hosts_file",
    "parse_host_spec",
    "parse_hosts",
    "recv_frame",
    "resolve_callable",
    "send_frame",
    "server_handshake",
    "stop_heartbeats",
]

# -- frame layer -----------------------------------------------------------

_HEADER = struct.Struct(">I")

#: Hard ceiling on one frame. Generous — a 100 MiB-transfer result's
#: columnar capture is a few MB pickled — but it turns a corrupt or
#: malicious length prefix into a clean ProtocolError instead of an
#: attempted multi-GiB allocation.
MAX_FRAME_BYTES = 256 * 1024 * 1024


def send_frame(sock: socket.socket, obj: dict) -> None:
    """Write one length-prefixed JSON frame."""
    data = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(data)} bytes exceeds MAX_FRAME_BYTES")
    sock.sendall(_HEADER.pack(len(data)) + data)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            return None
        buf += chunk
    return bytes(buf)


def recv_frame(sock: socket.socket) -> Optional[dict]:
    """Read one frame; ``None`` on a clean or mid-frame EOF."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"peer announced a {length}-byte frame; refusing")
    body = _recv_exact(sock, length)
    if body is None:
        return None
    frame = json.loads(body.decode("utf-8"))
    if not isinstance(frame, dict):
        raise ProtocolError("frame body must be a JSON object")
    return frame


def encode_obj(obj: Any) -> str:
    """Pickle an object into a printable frame field."""
    return base64.b64encode(
        zlib.compress(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL), 1)
    ).decode("ascii")


def decode_obj(blob: str) -> Any:
    return pickle.loads(zlib.decompress(base64.b64decode(blob.encode("ascii"))))


# -- authentication --------------------------------------------------------

#: Environment variable carrying the per-campaign shared secret to agents.
#: It travels through the agent's launch environment (local ``Popen`` env,
#: ``env VAR=...`` on the SSH command line), never over the wire.
SECRET_ENV = "REPRO_REMOTE_SECRET"

#: Wall-clock budget for the whole handshake; a connecting peer that stalls
#: mid-handshake must not pin a coordinator service thread forever.
_HANDSHAKE_TIMEOUT_S = 10.0


def _hmac_digest(secret: str, nonce: str) -> str:
    return hmac.new(secret.encode("utf-8"), nonce.encode("utf-8"), "sha256").hexdigest()


def server_handshake(sock: socket.socket, secret: str) -> bool:
    """Coordinator side of the mutual HMAC challenge-response.

    Runs before *any* payload-carrying frame is accepted: results are
    pickled, so an unauthenticated peer that can send one ``result`` frame
    can execute code in the coordinator. Returns ``False`` (caller closes
    the socket) on a wrong or missing proof; never raises on a rude peer.
    """
    nonce = os.urandom(16).hex()
    try:
        sock.settimeout(_HANDSHAKE_TIMEOUT_S)
        send_frame(sock, {"type": "challenge", "nonce": nonce})
        reply = recv_frame(sock)
        if (
            not reply
            or reply.get("type") != "auth"
            or not isinstance(reply.get("digest"), str)
            or not isinstance(reply.get("nonce"), str)
            or not hmac.compare_digest(reply["digest"], _hmac_digest(secret, nonce))
        ):
            return False
        # Prove knowledge of the secret back: the agent is about to accept
        # pickled configs from us, so authentication is mutual.
        send_frame(sock, {"type": "welcome", "digest": _hmac_digest(secret, reply["nonce"])})
        sock.settimeout(None)
        return True
    except (OSError, ProtocolError, ValueError):
        return False


def client_handshake(sock: socket.socket, secret: str) -> bool:
    """Agent side of the handshake; ``False`` means the peer failed to
    prove it holds the campaign secret (or is not a coordinator at all)."""
    nonce = os.urandom(16).hex()
    try:
        prior = sock.gettimeout()
        sock.settimeout(_HANDSHAKE_TIMEOUT_S)
        challenge = recv_frame(sock)
        if not challenge or challenge.get("type") != "challenge":
            return False
        send_frame(
            sock,
            {
                "type": "auth",
                "digest": _hmac_digest(secret, str(challenge.get("nonce"))),
                "nonce": nonce,
            },
        )
        welcome = recv_frame(sock)
        if (
            not welcome
            or welcome.get("type") != "welcome"
            or not isinstance(welcome.get("digest"), str)
            or not hmac.compare_digest(welcome["digest"], _hmac_digest(secret, nonce))
        ):
            return False
        sock.settimeout(prior)
        return True
    except (OSError, ProtocolError, ValueError):
        return False


def callable_name(fn: Callable) -> str:
    """``module:qualname`` of an importable function.

    The run function crosses process *and host* boundaries by name, not by
    pickle, so agents import their own copy of the code. Lambdas and
    closures have no importable name and are rejected up front.
    """
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<" in qualname:
        raise ConfigError(
            f"distributed run_fn must be an importable module-level function, "
            f"got {fn!r}"
        )
    return f"{module}:{qualname}"


def resolve_callable(name: str) -> Callable:
    module_name, _, qualname = name.partition(":")
    if not module_name or not qualname:
        raise ProtocolError(f"malformed callable name {name!r}")
    import importlib

    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise ProtocolError(f"{name!r} resolved to a non-callable {obj!r}")
    return obj


# -- host specifications ---------------------------------------------------

_LOCAL_HOSTNAMES = {"localhost", "127.0.0.1", "::1"}


@dataclass(frozen=True)
class HostSpec:
    """One worker host: ``host[:slots]`` — ``slots`` agent processes."""

    host: str
    slots: int = 1
    #: Python executable used to start agents on this host.
    python: str = "python3"

    def __post_init__(self) -> None:
        if not self.host:
            raise ConfigError("host name must be non-empty")
        if self.slots < 1:
            raise ConfigError(f"host {self.host!r} needs at least one slot")

    @property
    def local(self) -> bool:
        return self.host in _LOCAL_HOSTNAMES


def parse_host_spec(text: str) -> HostSpec:
    text = text.strip()
    host, sep, slots = text.partition(":")
    if not sep:
        return HostSpec(host=host)
    try:
        count = int(slots)
    except ValueError:
        raise ConfigError(f"bad host spec {text!r}: slots must be an integer")
    return HostSpec(host=host, slots=count)


def parse_hosts(text: str) -> Tuple[HostSpec, ...]:
    """Parse a comma-separated ``host[:slots]`` list, merging duplicates."""
    specs = [parse_host_spec(part) for part in text.split(",") if part.strip()]
    if not specs:
        raise ConfigError(f"no hosts in {text!r}")
    return merge_hosts(specs)


def load_hosts_file(path: Union[str, Path]) -> Tuple[HostSpec, ...]:
    """One ``host[:slots]`` per line; blank lines and ``#`` comments skipped."""
    specs: List[HostSpec] = []
    for line in Path(path).read_text().splitlines():
        line = line.split("#", 1)[0].strip()
        if line:
            specs.append(parse_host_spec(line))
    if not specs:
        raise ConfigError(f"hosts file {path} names no hosts")
    return merge_hosts(specs)


def merge_hosts(specs: Iterable[Union[str, HostSpec]]) -> Tuple[HostSpec, ...]:
    """Normalize to HostSpecs, summing slots of duplicate host names."""
    merged: Dict[str, HostSpec] = {}
    for spec in specs:
        if isinstance(spec, str):
            spec = parse_host_spec(spec)
        prior = merged.get(spec.host)
        if prior is not None:
            spec = HostSpec(host=spec.host, slots=prior.slots + spec.slots, python=prior.python)
        merged[spec.host] = spec
    return tuple(merged.values())


# -- coordinator internals -------------------------------------------------


@dataclass
class _Task:
    """One submitted repetition, settled by exactly one future resolution."""

    task_id: int
    fn_name: str
    config_blob: str
    seed: int
    future: Future
    queued: bool = False
    done: bool = False
    lease_ids: set = field(default_factory=set)
    #: Last host a lease for this task ran on (failure attribution).
    last_host: Optional[str] = None
    #: How many leases for this task blew their deadline. The first expiry
    #: is ambiguous (wedged agent?) and charges the host; repeats mean the
    #: configuration itself is slow and are charged to the config instead.
    deadline_expiries: int = 0


@dataclass
class _Lease:
    lease_id: int
    task_id: int
    agent_id: str
    host: str
    started: float
    deadline: float
    #: True once the owning agent was lost; the task has been re-queued but
    #: the lease stays known so a late result from a reconnecting agent can
    #: still settle (or be discarded) idempotently.
    reclaimed: bool = False


@dataclass
class _Agent:
    agent_id: str
    host: str
    sock: socket.socket
    last_seen: float
    pid: Optional[int] = None
    lease_ids: set = field(default_factory=set)


@dataclass
class _Host:
    spec: HostSpec
    #: Monotonically increasing launch counter (names agents host/<n>).
    launch_seq: int = 0
    failures: int = 0
    quarantined: bool = False
    last_error: str = ""
    next_launch_at: float = 0.0
    reps_done: int = 0


@dataclass
class _Launch:
    """An agent process started but not yet connected back."""

    agent_id: str
    host: str
    deadline: float


@dataclass
class _Ghost:
    """A disconnected agent within its reconnect grace window."""

    agent_id: str
    host: str
    until: float


@dataclass
class CoordinatorStats:
    submitted: int = 0
    settled: int = 0
    rep_failures: int = 0
    dispatched: int = 0
    reclaimed: int = 0
    stragglers: int = 0
    duplicates_discarded: int = 0


class Coordinator:
    """Lease-dispatching campaign coordinator, pool-compatible.

    Implements the slice of the ``ProcessPoolExecutor`` surface the
    Supervisor uses — ``submit(fn, config, seed) -> Future`` and
    ``shutdown(wait, cancel_futures)`` — so the supervision loop (bounded
    in-flight work, retries, watchdog, quarantine) runs unchanged on top.

    ``hosts`` may be empty, in which case the coordinator launches nothing
    and waits for externally started agents to connect (tests do this); an
    empty-host coordinator never declares the campaign host-dead.
    """

    def __init__(
        self,
        hosts: Sequence[Union[str, HostSpec]] = (),
        *,
        stream=None,
        bind_host: Optional[str] = None,
        advertise_host: Optional[str] = None,
        secret: Optional[str] = None,
        lease_timeout_s: float = 300.0,
        heartbeat_interval_s: float = 0.5,
        heartbeat_misses: int = 5,
        relaunch_backoff_s: float = 0.5,
        relaunch_backoff_max_s: float = 15.0,
        max_host_failures: int = 5,
        connect_timeout_s: float = 30.0,
        reconnect_grace_s: float = 2.0,
        straggler_after_s: Optional[float] = None,
        poll_interval_s: float = 0.05,
        max_leases_per_task: int = 2,
        python: Optional[str] = None,
    ):
        self._specs = merge_hosts(hosts)
        self.stream = stream
        if bind_host is None:
            # SSH-launched agents on other machines must be able to reach
            # us: loopback only works for an all-local fleet.
            bind_host = (
                "127.0.0.1"
                if all(spec.local for spec in self._specs)
                else "0.0.0.0"
            )
        self.bind_host = bind_host
        self.advertise_host = advertise_host
        self.secret = secret if secret is not None else os.urandom(32).hex()
        self.lease_timeout_s = lease_timeout_s
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_misses = heartbeat_misses
        self.relaunch_backoff_s = relaunch_backoff_s
        self.relaunch_backoff_max_s = relaunch_backoff_max_s
        self.max_host_failures = max_host_failures
        self.connect_timeout_s = connect_timeout_s
        self.reconnect_grace_s = reconnect_grace_s
        self.straggler_after_s = (
            straggler_after_s if straggler_after_s is not None else lease_timeout_s / 4
        )
        self.poll_interval_s = poll_interval_s
        self.max_leases_per_task = max_leases_per_task
        self.python = python

        self._lock = threading.RLock()
        self._tasks: Dict[int, _Task] = {}
        self._queue: deque = deque()
        self._leases: Dict[int, _Lease] = {}
        self._agents: Dict[str, _Agent] = {}
        self._hosts: Dict[str, _Host] = {spec.host: _Host(spec=spec) for spec in self._specs}
        self._launches: Dict[str, _Launch] = {}
        self._ghosts: Dict[str, _Ghost] = {}
        self._procs: Dict[str, subprocess.Popen] = {}
        self._task_seq = itertools.count()
        self._lease_seq = itertools.count()
        self._closing = False
        self._dead = False
        self._dead_reason = ""
        self._listener: Optional[socket.socket] = None
        self.port: Optional[int] = None
        self.stats = CoordinatorStats()
        self._threads: List[threading.Thread] = []

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "Coordinator":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.bind_host, 0))
        listener.listen(128)
        self._listener = listener
        self.port = listener.getsockname()[1]
        if self.advertise_host is None:
            if all(spec.local for spec in self._specs):
                self.advertise_host = "127.0.0.1"
            elif self.bind_host not in ("0.0.0.0", "::", "127.0.0.1", "localhost"):
                # An explicit bind interface is also the reachable address.
                self.advertise_host = self.bind_host
            else:
                self.advertise_host = socket.gethostname()
        for target, label in (
            (self._accept_loop, "remote-accept"),
            (self._monitor_loop, "remote-monitor"),
        ):
            thread = threading.Thread(target=target, name=label, daemon=True)
            thread.start()
            self._threads.append(thread)
        with self._lock:
            self._launch_deficit_locked(time.monotonic())
        return self

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        with self._lock:
            if self._closing:
                return
            self._closing = True
            agents = list(self._agents.values())
            procs = dict(self._procs)
            unsettled = [t for t in self._tasks.values() if not t.done]
            self._queue.clear()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
        for agent in agents:
            try:
                send_frame(agent.sock, {"type": "shutdown"})
            except OSError:
                pass
            try:
                agent.sock.close()
            except OSError:  # pragma: no cover
                pass
        if cancel_futures:
            for task in unsettled:
                task.future.cancel()
        for proc in procs.values():
            if proc.poll() is None:
                proc.terminate()
        if wait:
            deadline = time.monotonic() + 2.0
            for proc in procs.values():
                remaining = deadline - time.monotonic()
                try:
                    proc.wait(timeout=max(remaining, 0.05))
                except subprocess.TimeoutExpired:
                    pass
        for proc in procs.values():
            if proc.poll() is None:
                proc.kill()

    # -- pool-compatible surface ------------------------------------------

    def submit(self, fn: Callable, config: Any, seed: int) -> Future:
        future: Future = Future()
        fn_name = callable_name(fn)
        blob = encode_obj(config)
        with self._lock:
            if self._closing or self._dead:
                reason = self._dead_reason or "coordinator is shut down"
                exc = HostLostError(reason)
                exc.host = ",".join(self._hosts) or None
                future.set_exception(exc)
                return future
            task = _Task(
                task_id=next(self._task_seq),
                fn_name=fn_name,
                config_blob=blob,
                seed=seed,
                future=future,
            )
            self._tasks[task.task_id] = task
            self.stats.submitted += 1
            self._enqueue_locked(task)
            self._dispatch_locked()
        return future

    # -- accept / per-connection serving ----------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve_connection, args=(sock,), daemon=True
            ).start()

    def _serve_connection(self, sock: socket.socket) -> None:
        _enable_keepalive(sock)
        if not server_handshake(sock, self.secret):
            self._emit("[remote] rejected unauthenticated connection")
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
            return
        try:
            hello = recv_frame(sock)
        except (OSError, ProtocolError, ValueError):
            hello = None
        if not hello or hello.get("type") != "hello" or not hello.get("agent"):
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
            return
        agent_id = str(hello["agent"])
        host = str(hello.get("host") or agent_id.split("/", 1)[0])
        agent = _Agent(
            agent_id=agent_id,
            host=host,
            sock=sock,
            last_seen=time.monotonic(),
            pid=hello.get("pid"),
        )
        with self._lock:
            if self._closing:
                try:
                    sock.close()
                except OSError:  # pragma: no cover
                    pass
                return
            self._launches.pop(agent_id, None)
            reconnect = self._ghosts.pop(agent_id, None) is not None
            stale = self._agents.get(agent_id)
            if stale is not None:
                try:
                    stale.sock.close()
                except OSError:  # pragma: no cover
                    pass
            self._agents[agent_id] = agent
            self._emit(
                f"[remote] agent {agent_id} "
                f"{'reconnected' if reconnect else 'connected'} (pid {agent.pid})"
            )
            self._dispatch_locked()
        while True:
            try:
                frame = recv_frame(sock)
            except (OSError, ProtocolError, ValueError):
                frame = None
            if frame is None:
                break
            kind = frame.get("type")
            with self._lock:
                if self._agents.get(agent_id) is agent:
                    agent.last_seen = time.monotonic()
            if kind == "heartbeat":
                continue
            if kind == "result":
                try:
                    value = decode_obj(frame["payload"])
                except Exception as exc:  # corrupt payload: charge the rep
                    err = RemoteRepError(f"undecodable result payload: {exc}")
                    self._settle(frame.get("lease"), error=err)
                else:
                    self._settle(frame.get("lease"), value=value)
            elif kind == "failure":
                self._settle(frame.get("lease"), error=self._rebuild_exception(frame))
        with self._lock:
            if self._agents.get(agent_id) is agent and not self._closing:
                self._lose_agent_locked(agent, "connection lost")

    # -- settling ----------------------------------------------------------

    def _settle(self, lease_id, *, value: Any = None, error: Optional[Exception] = None) -> None:
        future = None
        with self._lock:
            lease = self._leases.pop(lease_id, None) if lease_id is not None else None
            if lease is not None:
                agent = self._agents.get(lease.agent_id)
                if agent is not None:
                    agent.lease_ids.discard(lease_id)
            task = self._tasks.get(lease.task_id) if lease is not None else None
            if lease is None or task is None or task.done:
                # Straggler loser, post-reclaim duplicate, or a frame for a
                # task settled on another lease — drop idempotently.
                self.stats.duplicates_discarded += 1
                self._dispatch_locked()
                return
            task.done = True
            for other in task.lease_ids:
                self._drop_lease_locked(other)
            task.lease_ids.clear()
            del self._tasks[task.task_id]
            future = task.future
            host = self._hosts.get(lease.host)
            if error is None:
                self.stats.settled += 1
                if host is not None:
                    host.reps_done += 1
                self._emit(
                    f"[remote] {lease.host}: rep settled "
                    f"({self.stats.settled}/{self.stats.submitted} done)"
                )
            else:
                self.stats.rep_failures += 1
                if getattr(error, "host", None) is None:
                    error.host = lease.host
            self._dispatch_locked()
        if error is None:
            future.set_result(value)
        else:
            future.set_exception(error)

    def _drop_lease_locked(self, lease_id: int) -> None:
        """Forget a lease *and* free its agent for new work.

        A straggler race leaves the losing lease in its agent's
        ``lease_ids``; popping only ``self._leases`` would make
        :meth:`_free_agent_locked` treat that agent as busy forever.
        """
        lease = self._leases.pop(lease_id, None)
        if lease is None:
            return
        agent = self._agents.get(lease.agent_id)
        if agent is not None:
            agent.lease_ids.discard(lease_id)

    def _rebuild_exception(self, frame: dict) -> Exception:
        """Reconstruct a remote exception; fall back to RemoteRepError.

        Builtin exception types and the repro hierarchy round-trip by name;
        anything else (third-party types, unconstructible signatures) is
        wrapped so the Supervisor's retry logic still sees a typed error.
        """
        name = str(frame.get("error_type") or "RemoteRepError")
        message = str(frame.get("message") or "")
        import repro.errors as errors_module

        cls = getattr(builtins, name, None)
        if not (isinstance(cls, type) and issubclass(cls, Exception)):
            cls = getattr(errors_module, name, None)
        if not (isinstance(cls, type) and issubclass(cls, Exception)):
            cls = None
        exc: Exception
        if cls is None:
            exc = RemoteRepError(f"{name}: {message}")
        else:
            try:
                exc = cls(message)
            except Exception:  # pragma: no cover - exotic __init__
                exc = RemoteRepError(f"{name}: {message}")
        exc.remote_traceback = frame.get("traceback") or ""
        return exc

    # -- dispatch ----------------------------------------------------------

    def _enqueue_locked(self, task: _Task) -> None:
        if not task.queued and not task.done:
            task.queued = True
            self._queue.append(task.task_id)

    def _free_agent_locked(self) -> Optional[_Agent]:
        # One lease per agent process: the simulator's id counters are
        # process-global, so an agent never interleaves repetitions.
        for agent in self._agents.values():
            if not agent.lease_ids:
                return agent
        return None

    def _dispatch_locked(self) -> None:
        if self._closing:
            return
        while True:
            agent = self._free_agent_locked()
            if agent is None:
                return
            task = None
            while self._queue:
                candidate = self._tasks.get(self._queue.popleft())
                if candidate is None or candidate.done:
                    continue
                candidate.queued = False
                if self._live_leases_locked(candidate):
                    continue  # already back in flight elsewhere
                task = candidate
                break
            if task is None:
                return
            self._grant_locked(agent, task)

    def _live_leases_locked(self, task: _Task) -> List[_Lease]:
        return [
            self._leases[lid]
            for lid in task.lease_ids
            if lid in self._leases and not self._leases[lid].reclaimed
        ]

    def _grant_locked(self, agent: _Agent, task: _Task, straggler: bool = False) -> bool:
        now = time.monotonic()
        lease = _Lease(
            lease_id=next(self._lease_seq),
            task_id=task.task_id,
            agent_id=agent.agent_id,
            host=agent.host,
            started=now,
            deadline=now + self.lease_timeout_s,
        )
        frame = {
            "type": "lease",
            "lease": lease.lease_id,
            "run_fn": task.fn_name,
            "config": task.config_blob,
            "seed": task.seed,
        }
        try:
            send_frame(agent.sock, frame)
        except OSError:
            self._lose_agent_locked(agent, "send failed")
            self._enqueue_locked(task)
            return False
        self._leases[lease.lease_id] = lease
        agent.lease_ids.add(lease.lease_id)
        task.lease_ids.add(lease.lease_id)
        task.last_host = agent.host
        self.stats.dispatched += 1
        if straggler:
            self.stats.stragglers += 1
            self._emit(
                f"[remote] straggler: duplicated lease for seed {task.seed} "
                f"onto {agent.agent_id} (first result wins)"
            )
        return True

    # -- failure handling --------------------------------------------------

    def _lose_agent_locked(self, agent: _Agent, reason: str, charge: bool = True) -> None:
        """Reclaim an agent's leases and charge its *host*, not any config."""
        if self._agents.get(agent.agent_id) is agent:
            del self._agents[agent.agent_id]
        try:
            agent.sock.close()
        except OSError:  # pragma: no cover
            pass
        now = time.monotonic()
        self._ghosts[agent.agent_id] = _Ghost(
            agent_id=agent.agent_id, host=agent.host, until=now + self.reconnect_grace_s
        )
        for lease_id in list(agent.lease_ids):
            lease = self._leases.get(lease_id)
            if lease is None or lease.reclaimed:
                continue
            lease.reclaimed = True
            task = self._tasks.get(lease.task_id)
            if task is not None and not task.done and not self._live_leases_locked(task):
                self.stats.reclaimed += 1
                self._enqueue_locked(task)
        self._emit(f"[remote] agent {agent.agent_id} lost ({reason}); leases reclaimed")
        self._host_failure_locked(agent.host, reason, charge=charge)
        self._dispatch_locked()

    def _host_failure_locked(self, hostname: str, reason: str, charge: bool = True) -> None:
        host = self._hosts.get(hostname)
        if host is None or self._closing:
            return  # externally managed agent: nothing to relaunch
        if not charge:
            # The agent must be replaced, but the fault belongs to a
            # configuration (e.g. a repetition slower than any lease
            # deadline), so the host accrues no quarantine pressure.
            host.next_launch_at = max(
                host.next_launch_at, time.monotonic() + self.relaunch_backoff_s
            )
            self._emit(f"[remote] host {hostname}: replacing agent (uncharged: {reason})")
            return
        host.failures += 1
        host.last_error = reason
        if host.failures >= self.max_host_failures:
            if not host.quarantined:
                host.quarantined = True
                self._emit(
                    f"[remote] host {hostname} quarantined after "
                    f"{host.failures} failure(s): {reason}"
                )
            return
        delay = min(
            self.relaunch_backoff_max_s,
            self.relaunch_backoff_s * 2 ** (host.failures - 1),
        )
        host.next_launch_at = max(host.next_launch_at, time.monotonic() + delay)
        self._emit(f"[remote] host {hostname}: relaunching agent in {delay:.1f}s")

    # -- monitor loop ------------------------------------------------------

    def _monitor_loop(self) -> None:
        while True:
            time.sleep(self.poll_interval_s)
            with self._lock:
                if self._closing:
                    return
                now = time.monotonic()
                self._check_heartbeats_locked(now)
                self._check_leases_locked(now)
                self._check_launches_locked(now)
                self._purge_ghosts_locked(now)
                self._launch_deficit_locked(now)
                self._duplicate_stragglers_locked(now)
                self._check_all_hosts_dead_locked()
                self._dispatch_locked()

    def _check_heartbeats_locked(self, now: float) -> None:
        budget = self.heartbeat_interval_s * self.heartbeat_misses
        for agent in list(self._agents.values()):
            if now - agent.last_seen > budget:
                self._lose_agent_locked(
                    agent, f"missed {self.heartbeat_misses} heartbeats"
                )

    def _check_leases_locked(self, now: float) -> None:
        for lease in list(self._leases.values()):
            if lease.reclaimed or now < lease.deadline:
                continue
            task = self._tasks.get(lease.task_id)
            if task is not None and not task.done:
                task.deadline_expiries += 1
            agent = self._agents.get(lease.agent_id)
            if task is not None and not task.done and task.deadline_expiries >= 2:
                # A second lease of the *same* repetition blew the deadline:
                # the configuration is slow, not the fleet. Surface a
                # RepTimeoutError (the Supervisor owns retries/quarantine
                # for config-charged failures) and replace the agent
                # without pushing its host toward quarantine.
                self._settle(
                    lease.lease_id,
                    error=RepTimeoutError(
                        f"repetition exceeded the {self.lease_timeout_s:.0f}s "
                        f"lease deadline twice; charging the configuration"
                    ),
                )
                if agent is not None:
                    self._lose_agent_locked(
                        agent, "lease expired on a slow repetition", charge=False
                    )
                continue
            if agent is not None:
                self._lose_agent_locked(
                    agent,
                    f"lease deadline expired after {self.lease_timeout_s:.0f}s",
                )
            else:
                lease.reclaimed = True
                if task is not None and not task.done and not self._live_leases_locked(task):
                    self.stats.reclaimed += 1
                    self._enqueue_locked(task)

    def _check_launches_locked(self, now: float) -> None:
        for launch in list(self._launches.values()):
            proc = self._procs.get(launch.agent_id)
            died = proc is not None and proc.poll() is not None
            if not died and now < launch.deadline:
                continue
            del self._launches[launch.agent_id]
            if proc is not None and proc.poll() is None:
                proc.kill()
            self._procs.pop(launch.agent_id, None)
            reason = (
                f"agent exited with code {proc.poll()}" if died
                else f"agent did not connect within {self.connect_timeout_s:.0f}s"
            )
            self._host_failure_locked(launch.host, reason)

    def _purge_ghosts_locked(self, now: float) -> None:
        for ghost in list(self._ghosts.values()):
            if now < ghost.until:
                continue
            del self._ghosts[ghost.agent_id]
            proc = self._procs.pop(ghost.agent_id, None)
            if proc is not None and proc.poll() is None:
                proc.kill()

    def _launch_deficit_locked(self, now: float) -> None:
        for host in self._hosts.values():
            if host.quarantined or now < host.next_launch_at:
                continue
            active = sum(1 for a in self._agents.values() if a.host == host.spec.host)
            active += sum(1 for l in self._launches.values() if l.host == host.spec.host)
            active += sum(1 for g in self._ghosts.values() if g.host == host.spec.host)
            while active < host.spec.slots:
                self._launch_agent_locked(host)
                active += 1

    def _launch_agent_locked(self, host: _Host) -> None:
        agent_id = f"{host.spec.host}/{host.launch_seq}"
        host.launch_seq += 1
        now = time.monotonic()
        try:
            proc = self._spawn_agent(host.spec, agent_id)
        except OSError as exc:  # pragma: no cover - launcher missing
            self._host_failure_locked(host.spec.host, f"launch failed: {exc}")
            return
        self._procs[agent_id] = proc
        self._launches[agent_id] = _Launch(
            agent_id=agent_id,
            host=host.spec.host,
            deadline=now + self.connect_timeout_s,
        )
        self._emit(f"[remote] launching agent {agent_id}")

    def _spawn_agent(self, spec: HostSpec, agent_id: str) -> subprocess.Popen:
        connect = f"{self.advertise_host}:{self.port}"
        argv = [
            "-m",
            "repro.framework.remote",
            "agent",
            "--connect",
            connect,
            "--agent-id",
            agent_id,
            "--host",
            spec.host,
            "--heartbeat",
            str(self.heartbeat_interval_s),
        ]
        if spec.local:
            python = self.python or sys.executable
            env = dict(os.environ)
            src = str(Path(__file__).resolve().parent.parent.parent)
            prior = env.get("PYTHONPATH")
            env["PYTHONPATH"] = src + (os.pathsep + prior if prior else "")
            env[SECRET_ENV] = self.secret
            return subprocess.Popen(
                [python] + argv, env=env, stdin=subprocess.DEVNULL
            )
        python = self.python or spec.python
        remote_cmd = " ".join(
            shlex.quote(part)
            for part in ["env", f"{SECRET_ENV}={self.secret}", python] + argv
        )
        return subprocess.Popen(
            ["ssh", "-o", "BatchMode=yes", spec.host, remote_cmd],
            stdin=subprocess.DEVNULL,
        )

    def _duplicate_stragglers_locked(self, now: float) -> None:
        """Near campaign end, race a long-running lease on an idle agent."""
        if self._queue:
            return
        for task in self._tasks.values():
            if task.done:
                continue
            live = self._live_leases_locked(task)
            if not live or len(live) >= self.max_leases_per_task:
                continue
            oldest = min(lease.started for lease in live)
            if now - oldest < self.straggler_after_s:
                continue
            agent = self._free_agent_locked()
            if agent is None:
                return
            self._grant_locked(agent, task, straggler=True)

    def _check_all_hosts_dead_locked(self) -> None:
        if self._dead or not self._hosts:
            return
        if any(not host.quarantined for host in self._hosts.values()):
            return
        if self._agents or self._launches or self._ghosts:
            return
        self._dead = True
        detail = "; ".join(
            f"{name}: {host.failures} failure(s), last: {host.last_error}"
            for name, host in self._hosts.items()
        )
        self._dead_reason = (
            f"all {len(self._hosts)} configured host(s) are quarantined ({detail})"
        )
        self._emit(f"[remote] campaign cannot proceed: {self._dead_reason}")
        self._queue.clear()
        for task in list(self._tasks.values()):
            if task.done:
                continue
            task.done = True
            exc = HostLostError(
                f"no hosts remain to run this repetition: {self._dead_reason}"
            )
            exc.host = task.last_host or ",".join(self._hosts)
            for lease_id in task.lease_ids:
                self._drop_lease_locked(lease_id)
            task.lease_ids.clear()
            del self._tasks[task.task_id]
            task.future.set_exception(exc)

    # -- reporting ---------------------------------------------------------

    def host_report(self) -> Dict[str, dict]:
        """Per-host campaign accounting (reps done, failures, quarantine)."""
        with self._lock:
            report = {}
            for name, host in self._hosts.items():
                report[name] = {
                    "slots": host.spec.slots,
                    "reps_done": host.reps_done,
                    "failures": host.failures,
                    "quarantined": host.quarantined,
                    "last_error": host.last_error,
                    "agents_launched": host.launch_seq,
                }
            return report

    def _emit(self, message: str) -> None:
        if self.stream is None:
            return
        try:
            print(message, file=self.stream, flush=True)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:  # pragma: no cover - broken stream must not kill dispatch
            pass


# -- worker agent ----------------------------------------------------------


def _enable_keepalive(sock: socket.socket) -> None:
    """Arm TCP keepalive so a silently-dead peer (coordinator power loss,
    partition with no RST) surfaces as a recv error within minutes instead
    of leaving an idle agent blocked in ``recv`` on a remote machine
    forever, never reaped."""
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
        for name, value in (
            ("TCP_KEEPIDLE", 30),
            ("TCP_KEEPINTVL", 10),
            ("TCP_KEEPCNT", 6),
        ):
            if hasattr(socket, name):
                sock.setsockopt(socket.IPPROTO_TCP, getattr(socket, name), value)
    except OSError:  # pragma: no cover - platform without keepalive knobs
        pass


@dataclass
class _AgentRuntime:
    sock: socket.socket
    send_lock: threading.Lock
    heartbeats_enabled: bool = True


#: The current connection of this agent process; chaos hooks poke it.
_RUNTIME: Optional[_AgentRuntime] = None


def stop_heartbeats() -> None:
    """Chaos hook: silence the heartbeat thread (simulates a wedged agent)."""
    runtime = _RUNTIME
    if runtime is not None:
        runtime.heartbeats_enabled = False


def drop_connection() -> None:
    """Chaos hook: sever the coordinator socket (simulates a partition)."""
    runtime = _RUNTIME
    if runtime is not None:
        try:
            runtime.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            runtime.sock.close()
        except OSError:
            pass


def _agent_send(runtime: _AgentRuntime, frame: dict) -> None:
    with runtime.send_lock:
        send_frame(runtime.sock, frame)


def _heartbeat_loop(runtime: _AgentRuntime, interval_s: float, stop: threading.Event) -> None:
    while not stop.wait(interval_s):
        if not runtime.heartbeats_enabled:
            continue
        try:
            _agent_send(runtime, {"type": "heartbeat"})
        except OSError:
            return


def _execute_lease(frame: dict) -> dict:
    lease_id = frame.get("lease")
    try:
        fn = resolve_callable(frame["run_fn"])
        config = decode_obj(frame["config"])
        result = fn(config, frame["seed"])
        return {"type": "result", "lease": lease_id, "payload": encode_obj(result)}
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception as exc:
        import traceback as traceback_module

        return {
            "type": "failure",
            "lease": lease_id,
            "error_type": type(exc).__name__,
            "message": str(exc).splitlines()[0] if str(exc) else type(exc).__name__,
            "traceback": "".join(
                traceback_module.format_exception(type(exc), exc, exc.__traceback__)
            )[-8000:],
        }


def agent_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.framework.remote agent",
        description="Long-lived sweep worker agent; connects back to a coordinator.",
    )
    parser.add_argument("--connect", required=True, help="coordinator HOST:PORT")
    parser.add_argument("--agent-id", required=True)
    parser.add_argument("--host", default=None, help="host label for attribution")
    parser.add_argument("--heartbeat", type=float, default=0.5)
    parser.add_argument(
        "--reconnect-attempts", type=int, default=8,
        help="consecutive failed connects before giving up",
    )
    parser.add_argument("--reconnect-base", type=float, default=0.2)
    args = parser.parse_args(argv)
    host_part, _, port_part = args.connect.rpartition(":")
    address = (host_part, int(port_part))
    secret = os.environ.get(SECRET_ENV)
    if not secret:
        print(
            f"[agent {args.agent_id}] no campaign secret in ${SECRET_ENV}; "
            f"refusing to connect (the coordinator exports it to launched agents)",
            file=sys.stderr,
        )
        return 2

    global _RUNTIME
    held: deque = deque()  # frames computed but unsent across a partition
    connect_failures = 0
    while True:
        try:
            sock = socket.create_connection(address, timeout=10.0)
        except OSError:
            connect_failures += 1
            if connect_failures > args.reconnect_attempts:
                print(
                    f"[agent {args.agent_id}] coordinator unreachable; giving up",
                    file=sys.stderr,
                )
                return 1
            time.sleep(min(10.0, args.reconnect_base * 2 ** (connect_failures - 1)))
            continue
        sock.settimeout(None)
        _enable_keepalive(sock)
        if not client_handshake(sock, secret):
            # A rejected handshake counts like a failed connect: a stale or
            # wrong secret never fixes itself, so backoff bounds the retries.
            try:
                sock.close()
            except OSError:
                pass
            connect_failures += 1
            if connect_failures > args.reconnect_attempts:
                print(
                    f"[agent {args.agent_id}] coordinator refused authentication; giving up",
                    file=sys.stderr,
                )
                return 1
            time.sleep(min(10.0, args.reconnect_base * 2 ** (connect_failures - 1)))
            continue
        connect_failures = 0
        runtime = _RUNTIME = _AgentRuntime(sock=sock, send_lock=threading.Lock())
        stop = threading.Event()
        heartbeat = threading.Thread(
            target=_heartbeat_loop,
            args=(runtime, args.heartbeat, stop),
            daemon=True,
        )
        try:
            _agent_send(
                runtime,
                {
                    "type": "hello",
                    "agent": args.agent_id,
                    "host": args.host or args.agent_id.split("/", 1)[0],
                    "pid": os.getpid(),
                },
            )
            heartbeat.start()
            while held:  # re-deliver results computed during a partition
                _agent_send(runtime, held[0])
                held.popleft()
            while True:
                frame = recv_frame(sock)
                if frame is None:
                    break
                kind = frame.get("type")
                if kind == "shutdown":
                    return 0
                if kind == "lease":
                    reply = _execute_lease(frame)
                    try:
                        _agent_send(runtime, reply)
                    except OSError:
                        held.append(reply)
                        break
        except OSError:
            pass
        finally:
            stop.set()
            try:
                sock.close()
            except OSError:
                pass
        # EOF or partition without a shutdown frame: reconnect with backoff.
        time.sleep(args.reconnect_base)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "agent":
        return agent_main(argv[1:])
    print(
        "usage: python -m repro.framework.remote agent --connect HOST:PORT "
        "--agent-id ID [--heartbeat S]",
        file=sys.stderr,
    )
    return 2


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    # ``python -m repro.framework.remote`` executes this file as a module
    # named ``__main__`` — a *duplicate* module object. Re-import the
    # canonical module and run there, so process-global agent state
    # (``_RUNTIME``) lives where run functions and chaos hooks that do
    # ``from repro.framework import remote`` can actually see it.
    from repro.framework.remote import main as _canonical_main

    raise SystemExit(_canonical_main())
