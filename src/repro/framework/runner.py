"""Repetition runner: run a configuration N times, aggregate mean ± std, and
pool capture records for distribution metrics (as the paper combines all
repetitions before computing gap/train distributions).

Repetitions are independent simulations, so ``workers > 1`` fans them out to
a process pool; results are identical to a serial run (seeds are derived the
same way) but wall time divides by the worker count — useful for full-scale
(100 MiB x 20) reproduction runs.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional

from repro.framework.config import ExperimentConfig
from repro.framework.experiment import Experiment, ExperimentResult
from repro.metrics.stats import Summary, summarize
from repro.net.tap import CaptureRecord


@dataclass
class RunSummary:
    config: ExperimentConfig
    results: List[ExperimentResult]
    goodput: Summary
    dropped: Summary

    @property
    def pooled_records(self) -> List[List[CaptureRecord]]:
        """Per-repetition capture records (gaps must not straddle reps)."""
        return [r.server_records for r in self.results]

    @property
    def all_completed(self) -> bool:
        return all(r.completed for r in self.results)

    def describe(self) -> str:
        return (
            f"{self.config.label}: goodput {self.goodput} Mbit/s, "
            f"dropped {self.dropped} packets, reps={len(self.results)}"
        )


def _run_one(config: ExperimentConfig, seed: int) -> ExperimentResult:
    return Experiment(config, seed=seed).run()


def run_repetitions(config: ExperimentConfig, workers: Optional[int] = None) -> RunSummary:
    """Run ``config.repetitions`` measurements with derived per-rep seeds.

    ``workers > 1`` parallelizes across processes with identical results.
    """
    seeds = [config.seed * 1000 + rep for rep in range(config.repetitions)]
    if workers is not None and workers > 1 and config.repetitions > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(_run_one, [config] * len(seeds), seeds))
    else:
        results = [_run_one(config, seed) for seed in seeds]
    return RunSummary(
        config=config,
        results=results,
        goodput=summarize([r.goodput_mbps for r in results]),
        dropped=summarize([float(r.dropped) for r in results]),
    )
