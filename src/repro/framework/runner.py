"""Repetition runner: run a configuration N times, aggregate mean ± std, and
pool capture records for distribution metrics (as the paper combines all
repetitions before computing gap/train distributions).

Repetitions are independent simulations, so they fan out to a process pool by
default (``workers=None`` uses ``os.cpu_count()``); results are bit-identical
to a serial run (seeds are derived the same way) but wall time divides by the
worker count — useful for full-scale (100 MiB x 20) reproduction runs. Pass
``workers=1`` to force the in-process serial path (no subprocesses, easier to
debug/profile), and a :class:`~repro.framework.cache.ResultCache` to reuse
completed repetitions across sessions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, TextIO, TYPE_CHECKING

from repro.framework.config import ExperimentConfig
from repro.framework.experiment import Experiment, ExperimentResult
from repro.framework.supervision import RepFailure, SupervisionPolicy
from repro.metrics.stats import Summary, summarize
from repro.net.tap import CaptureRecord
from repro.sim.random import derive_seed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.framework.cache import ResultCache

__all__ = [
    "RunSummary",
    "derive_seed",  # canonical home: repro.sim.random (re-exported for compat)
    "run_repetitions",
    "summarize_results",
]


@dataclass
class RunSummary:
    config: ExperimentConfig
    results: List[ExperimentResult]
    goodput: Summary
    dropped: Summary
    #: Repetitions that produced no valid result (crash, hang, validation
    #: failure, quarantine), as structured records — a sweep degrades to a
    #: partial summary instead of raising.
    failures: List[RepFailure] = field(default_factory=list)

    @property
    def pooled_records(self) -> List[List[CaptureRecord]]:
        """Per-repetition capture records (gaps must not straddle reps).

        Population results carry no single-flow capture, so they contribute
        no groups here — gap/train metrics simply report "-" for them.
        """
        return [r.server_records for r in self.results if hasattr(r, "server_records")]

    @property
    def all_completed(self) -> bool:
        return not self.failures and all(r.completed for r in self.results)

    def describe(self) -> str:
        line = (
            f"{self.config.label}: goodput {self.goodput} Mbit/s, "
            f"dropped {self.dropped} packets, reps={len(self.results)}"
        )
        if self.failures:
            line += f", FAILED reps={len(self.failures)}"
        return line


def summarize_results(
    config: ExperimentConfig,
    results: Sequence[Optional[ExperimentResult]],
    failures: Sequence[RepFailure] = (),
) -> RunSummary:
    """Aggregate per-repetition results into the paper's mean ± std summary.

    ``results`` may contain ``None`` slots for failed repetitions (described
    by ``failures``); statistics cover the surviving results only, and an
    all-failed run summarizes to NaN rather than raising.
    """
    survivors = [r for r in results if r is not None]
    nan = Summary(mean=float("nan"), std=float("nan"), n=0)
    return RunSummary(
        config=config,
        results=survivors,
        goodput=summarize([r.goodput_mbps for r in survivors]) if survivors else nan,
        dropped=summarize([float(r.dropped) for r in survivors]) if survivors else nan,
        failures=list(failures),
    )


def _run_one(config, seed: int):
    """Per-repetition worker: dispatches on config type so experiment grids
    and population grids share the sweep/supervision/cache machinery."""
    from repro.framework.population import PopulationConfig, run_population

    if isinstance(config, PopulationConfig):
        return run_population(config, seed=seed)
    return Experiment(config, seed=seed).run()


def run_repetitions(
    config: ExperimentConfig,
    workers: Optional[int] = None,
    cache: Optional["ResultCache"] = None,
    stream: Optional[TextIO] = None,
    policy: Optional[SupervisionPolicy] = None,
    journal_dir: Optional[str] = None,
    resume: bool = True,
    backend: Optional[str] = None,
    store=None,
) -> RunSummary:
    """Run ``config.repetitions`` measurements with derived per-rep seeds.

    ``workers=None`` defaults to ``os.cpu_count()``; one worker (or a single
    pending repetition) falls back to running serially in-process instead of
    spawning a pool. Serial and parallel runs are bit-identical. ``cache``
    serves previously-computed repetitions from disk; ``stream`` receives one
    structured progress line per finished repetition. ``policy`` supervises
    execution (timeouts, retries, crash recovery); ``journal_dir`` enables
    checkpoint/resume (see :class:`~repro.framework.sweep.SweepRunner`).
    """
    from repro.framework.sweep import SweepRunner

    summaries = SweepRunner(
        workers=workers,
        cache=cache,
        stream=stream,
        policy=policy,
        journal_dir=journal_dir,
        resume=resume,
        backend=backend,
        store=store,
    ).run({config.label: config})
    return summaries[config.label]
