"""Sweep journal: a checkpoint manifest so interrupted sweeps resume.

One JSON line per finished (or finally-failed) repetition, written alongside
the result cache. The journal answers "which repetitions of *this grid* are
already settled?" — the heavy results themselves live in the
:class:`~repro.framework.cache.ResultCache`; a journal line only records the
outcome, the repetition's derived seed, and (for successes) the result's
``fingerprint()`` so a resumed run can prove bit-identity with the
uninterrupted one.

Durability. Like the cache, every update rewrites the file through a
temporary sibling and ``os.replace``, so the journal on disk is always a
complete, parseable snapshot — a kill at any instant loses at most the
repetition that was being recorded, never the file. Loading is tolerant:
undecodable lines (torn by an unclean filesystem) are skipped, and a journal
whose header names a different grid or format version is discarded wholesale
rather than misapplied.

Resume semantics. On resume, successful repetitions are restored through the
cache (a cache miss simply recomputes — determinism makes that equivalent),
and recorded failures are carried forward verbatim instead of being retried;
pass ``fresh=True`` (CLI ``--no-resume``) to discard the journal and re-run
everything.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.framework.config import ExperimentConfig
from repro.framework.supervision import RepFailure

__all__ = ["JournalEntry", "SweepJournal", "grid_key"]

JOURNAL_VERSION = 1


def grid_key(grid: Mapping[str, ExperimentConfig]) -> str:
    """Content hash identifying a sweep: every name and full config key.

    Unlike the cache's per-repetition keys, ``repetitions`` participates —
    growing a grid is a different sweep (the cache still serves the shared
    prefix; only the journal starts over).
    """
    payload = json.dumps(
        sorted((name, config.cache_key(), config.repetitions) for name, config in grid.items())
    )
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class JournalEntry:
    name: str
    rep: int
    seed: int
    status: str  # "ok" | "failed"
    fingerprint: Optional[str] = None
    failure: Optional[RepFailure] = None

    def as_dict(self) -> dict:
        out = {"name": self.name, "rep": self.rep, "seed": self.seed, "status": self.status}
        if self.fingerprint is not None:
            out["fingerprint"] = self.fingerprint
        if self.failure is not None:
            out["failure"] = self.failure.as_dict()
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "JournalEntry":
        failure = data.get("failure")
        return cls(
            name=data["name"],
            rep=int(data["rep"]),
            seed=int(data["seed"]),
            status=data["status"],
            fingerprint=data.get("fingerprint"),
            failure=RepFailure.from_dict(failure) if failure else None,
        )


class SweepJournal:
    """Atomic JSONL manifest of settled repetitions for one grid."""

    def __init__(self, path: Union[str, Path], key: str, stream=None):
        self.path = Path(path)
        self.key = key
        self.stream = stream
        self._entries: Dict[Tuple[str, int], JournalEntry] = {}
        #: Entries present when the journal was opened (resume candidates),
        #: as opposed to ones recorded by the current run.
        self.resumed_entries = 0
        #: Torn/undecodable lines skipped while loading (those reps re-run).
        self.skipped_lines = 0

    @classmethod
    def for_grid(
        cls,
        directory: Union[str, Path],
        grid: Mapping[str, ExperimentConfig],
        fresh: bool = False,
        stream=None,
    ) -> "SweepJournal":
        """Open (or start) the journal for ``grid`` under ``directory``."""
        key = grid_key(grid)
        journal = cls(Path(directory) / f"{key[:16]}.jsonl", key, stream=stream)
        if fresh:
            journal._discard()
        else:
            journal._load()
        return journal

    # -- persistence -------------------------------------------------------

    def _discard(self) -> None:
        try:
            self.path.unlink()
        except OSError:
            pass

    def _load(self) -> None:
        try:
            text = self.path.read_text()
        except OSError:
            return
        lines = text.splitlines()
        if not lines:
            return
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            return
        if header.get("journal") != JOURNAL_VERSION or header.get("grid_key") != self.key:
            # A different grid or format hashed to this path (or the file
            # predates a format change): start over rather than misapply it.
            return
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                entry = JournalEntry.from_dict(json.loads(line))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                self.skipped_lines += 1
                continue  # torn tail line: the rep simply re-runs
            self._entries[(entry.name, entry.rep)] = entry
        self.resumed_entries = len(self._entries)
        if self.skipped_lines:
            # A SIGKILL mid-append can tear the final line; resume must
            # survive that, losing only the torn repetition(s).
            print(
                f"[journal] warning: skipped {self.skipped_lines} torn/undecodable "
                f"line(s) in {self.path}; the affected repetition(s) will re-run",
                file=self.stream if self.stream is not None else sys.stderr,
                flush=True,
            )

    def _flush(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        lines = [json.dumps({"journal": JOURNAL_VERSION, "grid_key": self.key})]
        lines.extend(json.dumps(e.as_dict()) for e in self._entries.values())
        fd, tmp = tempfile.mkstemp(dir=self.path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write("\n".join(lines) + "\n")
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- recording ---------------------------------------------------------

    def get(self, name: str, rep: int) -> Optional[JournalEntry]:
        return self._entries.get((name, rep))

    def __len__(self) -> int:
        return len(self._entries)

    def record_success(self, name: str, rep: int, seed: int, fingerprint: str) -> None:
        entry = JournalEntry(name=name, rep=rep, seed=seed, status="ok", fingerprint=fingerprint)
        existing = self._entries.get((name, rep))
        if existing == entry:
            return  # e.g. a cache hit re-confirming a journaled rep
        self._entries[(name, rep)] = entry
        self._flush()

    def record_failure(self, failure: RepFailure) -> None:
        self._entries[(failure.name, failure.rep)] = JournalEntry(
            name=failure.name,
            rep=failure.rep,
            seed=failure.seed,
            status="failed",
            failure=failure,
        )
        self._flush()
