"""Persistent on-disk cache for experiment results.

Full-grid reproduction (4 stacks × 3 CCAs × 4 qdiscs × 3 GSO modes × 20
repetitions) is only practical when completed simulations are reused across
sessions, so every repetition can be stored under a content-addressed key and
served back instead of recomputed.

Keying. Entries are stored per *repetition*: the key hashes the complete
configuration via :meth:`ExperimentConfig.cache_key` (every field, nested
network config included) with ``repetitions`` normalized out, plus the
repetition's derived seed. Normalizing ``repetitions`` means growing a sweep
from 5 to 20 repetitions reuses the first 5 instead of recomputing them — the
per-rep seed already encodes everything rep-specific.

Layout and robustness. Entries live under ``<root>/<key[:2]>/<key>.pkl``
(``~/.cache/repro`` by default, overridable with ``$REPRO_CACHE_DIR`` or an
explicit root). Each file is a pickle of ``(CACHE_VERSION, result)``; an
entry with a stale version or one that fails to unpickle is *evicted* and
treated as a miss, so format changes and torn writes degrade to
recomputation, never to wrong results. Eviction is never silent: the bad
file is moved to ``<root>/quarantine/`` (not deleted) so a torn write can be
inspected post-hoc, the eviction is counted on :attr:`stats`, and one
warning line goes to the progress ``stream``. Writes go through a temporary
file and ``os.replace`` so concurrent workers can share one cache directory.
Hit/miss/store/eviction counters are kept on :attr:`stats`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional, TextIO, Union

from repro.framework.config import ExperimentConfig
from repro.framework.experiment import ExperimentResult
from repro.framework.population import PopulationResult

#: Bump whenever the on-disk entry format or ``ExperimentResult`` shape
#: changes incompatibly; older entries are evicted on first touch.
#: v2: ExperimentResult gained injected_drops / impairment_stats.
CACHE_VERSION = 2

#: Result types the cache will serve back; anything else in an entry is
#: treated as stale and quarantined.
_RESULT_TYPES = (ExperimentResult, PopulationResult)


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    #: Corrupt/stale entries moved aside to ``<root>/quarantine/`` for
    #: inspection (every eviction is also a quarantine unless the move fails).
    quarantined: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
        }

    def __str__(self) -> str:
        return (
            f"{self.hits} hits, {self.misses} misses, "
            f"{self.stores} stores, {self.evictions} evictions"
        )


class ResultCache:
    """Content-addressed store of :class:`ExperimentResult` pickles.

    ``stream`` (e.g. ``sys.stderr``) receives one warning line whenever a
    corrupt or stale entry is quarantined; ``None`` keeps eviction counted
    but quiet.
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        version: int = CACHE_VERSION,
        stream: Optional[TextIO] = None,
    ):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.version = version
        self.stream = stream
        self.stats = CacheStats()

    @staticmethod
    def entry_key(config: ExperimentConfig, seed: int) -> str:
        """Per-repetition key: full config (repetitions normalized) + seed."""
        per_rep = replace(config, repetitions=1)
        return hashlib.sha256(f"{per_rep.cache_key()}/{seed}".encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, config: ExperimentConfig, seed: int) -> Optional[ExperimentResult]:
        """The stored result for (config, seed), or None on miss/stale/corrupt."""
        path = self._path(self.entry_key(config, seed))
        try:
            payload = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            version, result = pickle.loads(payload)
            if version != self.version or not isinstance(result, _RESULT_TYPES):
                raise ValueError(f"stale cache entry (version {version!r})")
        except Exception as exc:
            self._evict(path, reason=f"{type(exc).__name__}: {exc}")
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, config: ExperimentConfig, seed: int, result: ExperimentResult) -> Path:
        """Store one repetition's result atomically; returns the entry path."""
        path = self._path(self.entry_key(config, seed))
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump((self.version, result), handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path

    def invalidate(self, config: ExperimentConfig, seed: int, reason: str = "invalidated") -> None:
        """Quarantine the entry for (config, seed), e.g. after it failed
        result validation — the next :meth:`get` will miss and recompute."""
        self._evict(self._path(self.entry_key(config, seed)), reason=reason)

    def _evict(self, path: Path, reason: str = "corrupt entry") -> None:
        """Move a bad entry to ``<root>/quarantine/`` (same filesystem, so the
        move is an atomic rename) instead of destroying the evidence."""
        quarantine = self.root / "quarantine" / path.name
        try:
            quarantine.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, quarantine)
            self.stats.quarantined += 1
            if self.stream is not None:
                print(
                    f"[cache] warning: quarantined {path.name} -> {quarantine} ({reason})",
                    file=self.stream,
                    flush=True,
                )
        except OSError:
            # Quarantine dir not writable (or the file vanished under us):
            # fall back to plain deletion so the bad entry cannot be re-read.
            try:
                path.unlink()
            except OSError:
                pass
        self.stats.evictions += 1

    def __repr__(self) -> str:
        return f"ResultCache(root={str(self.root)!r}, version={self.version}, {self.stats})"
