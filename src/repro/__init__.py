"""QUIC Steps reproduction library.

A discrete-event simulation study of pacing strategies in QUIC
implementations, reproducing Kempf et al., "QUIC Steps: Evaluating Pacing
Strategies in QUIC Implementations" (CoNEXT 2025).

Quick start::

    from repro import ExperimentConfig, run_repetitions

    summary = run_repetitions(ExperimentConfig(stack="picoquic", cca="bbr"))
    print(summary.describe())
"""

from repro._build import build_info
from repro.framework.cache import ResultCache
from repro.framework.config import ExperimentConfig, NetworkConfig
from repro.framework.experiment import Experiment, ExperimentResult, run_experiment
from repro.framework.runner import RunSummary, derive_seed, run_repetitions
from repro.framework.sweep import SweepRunner, run_sweep
from repro.framework import scenarios
from repro.metrics import (
    cdf,
    fraction_leq,
    fraction_of_packets_in_trains_leq,
    goodput_mbps,
    inter_packet_gaps,
    pacing_precision_ns,
    packet_trains,
    packets_by_train_length,
)

__version__ = "1.0.0"

__all__ = [
    "build_info",
    "ExperimentConfig",
    "NetworkConfig",
    "Experiment",
    "ExperimentResult",
    "run_experiment",
    "ResultCache",
    "RunSummary",
    "SweepRunner",
    "derive_seed",
    "run_repetitions",
    "run_sweep",
    "scenarios",
    "cdf",
    "fraction_leq",
    "fraction_of_packets_in_trains_leq",
    "goodput_mbps",
    "inter_packet_gaps",
    "pacing_precision_ns",
    "packet_trains",
    "packets_by_train_length",
    "__version__",
]
