"""Exception hierarchy for the reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class SimulationError(ReproError):
    """The event engine was used incorrectly (e.g. scheduling in the past)."""


class ProtocolError(ReproError):
    """A QUIC/TCP protocol invariant was violated."""


class EncodingError(ProtocolError):
    """Wire encoding or decoding failed."""


class FlowControlError(ProtocolError):
    """A peer exceeded an advertised flow-control limit."""


class ConfigError(ReproError):
    """An experiment or stack configuration is invalid."""


class ExecutionError(ReproError):
    """A repetition could not be executed (harness failure, not a sim bug)."""


class RepTimeoutError(ExecutionError):
    """A repetition exceeded its supervised wall-clock budget."""


class WorkerCrashError(ExecutionError):
    """The process pool died (segfault/OOM/exit) while a repetition ran."""


class QuarantinedError(ExecutionError):
    """A repetition was skipped because its configuration was quarantined
    after repeated consecutive failures."""


class RemoteRepError(ExecutionError):
    """A repetition failed on a remote worker agent and the original
    exception type could not be reconstructed coordinator-side; the remote
    type name and traceback ride along in the message/attributes."""


class HostLostError(ExecutionError):
    """A distributed repetition could not run because its worker host (or
    every configured host) was lost; attributed to the host, never the
    configuration — carries a ``host`` attribute naming the culprit."""


class ValidationError(ReproError):
    """A finished repetition violated a result invariant (conservation,
    monotonicity, rate ceiling); the result must not be cached or summarized."""
