"""Exception hierarchy for the reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class SimulationError(ReproError):
    """The event engine was used incorrectly (e.g. scheduling in the past)."""


class ProtocolError(ReproError):
    """A QUIC/TCP protocol invariant was violated."""


class EncodingError(ProtocolError):
    """Wire encoding or decoding failed."""


class FlowControlError(ProtocolError):
    """A peer exceeded an advertised flow-control limit."""


class ConfigError(ReproError):
    """An experiment or stack configuration is invalid."""
