"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run``      — run one configuration and print the paper metrics;
* ``sweep``    — run a whole scenario grid in parallel with result caching
  (including ``population`` and head-to-head ``duels`` grids);
* ``population`` — run a generated flow population (hundreds of concurrent
  flows over one bottleneck) and report per-flow distributions + fairness;
* ``compete``  — run several flows against each other over one bottleneck;
* ``analyze``  — run the paper's evaluation pipeline on a capture CSV
  (including captures exported with ``run --capture`` or converted from the
  paper's published pcaps);
* ``query``    — filter/aggregate repetitions in a result store (``--store``);
* ``report``   — render EXPERIMENTS.md-style summary tables from a store;
* ``store``    — inspect, migrate into, and export from a result store;
* ``scenarios``— list the canonical paper scenarios.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.errors import ConfigError
from repro.framework.cache import ResultCache
from repro.framework.config import ExperimentConfig, GSO_MODES, QDISCS, STACKS
from repro.framework.executors import BACKENDS
from repro.framework.store import FILTER_COLUMNS, METRIC_COLUMNS, ResultStore
from repro.framework.multiflow import FlowSpec, MultiFlowExperiment
from repro.framework.runner import RunSummary, run_repetitions
from repro.framework.supervision import SupervisionPolicy
from repro.framework.sweep import SweepRunner
from repro.metrics.gaps import Distribution, fraction_leq, inter_packet_gaps, pooled_gaps
from repro.metrics.report import render_histogram, render_table
from repro.metrics.trains import (
    fraction_of_packets_in_trains_leq,
    packets_by_train_length,
    pooled_fraction_of_packets_in_trains_leq,
    pooled_packets_by_train_length,
)
from repro.units import fmt_time, mib, us


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cca", default="cubic", choices=("cubic", "newreno", "bbr", "bbr2"))
    parser.add_argument("--qdisc", default="none", choices=QDISCS)
    parser.add_argument("--gso", default="off", choices=GSO_MODES)
    parser.add_argument("--size-mib", type=float, default=4.0, help="file size in MiB")
    parser.add_argument("--seed", type=int, default=1)


def _add_impairments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "impairments", "seeded fault injection on the data path (composable, in order)"
    )
    group.add_argument(
        "--loss", type=float, metavar="RATE",
        help="i.i.d. packet loss probability, e.g. 0.01",
    )
    group.add_argument(
        "--burst-loss", metavar="[P_ENTER[,P_EXIT[,LOSS_BAD]]]",
        nargs="?", const="", default=None,
        help="Gilbert-Elliott burst loss; bare flag uses the dribble defaults "
        "(0.003,0.3,1.0) that trigger quiche's rollback pathology",
    )
    group.add_argument(
        "--reorder", metavar="RATE[,EXTRA_MS]", nargs="?", const="", default=None,
        help="reordering: hold back RATE of packets by EXTRA_MS (default 0.01,4)",
    )
    group.add_argument(
        "--duplicate", type=float, metavar="RATE",
        help="packet duplication probability",
    )
    group.add_argument(
        "--rate-flap", metavar="PERIOD_MS[,LOW_MBIT[,DUTY]]", nargs="?", const="",
        default=None,
        help="oscillate the bottleneck rate: nominal for DUTY of each PERIOD_MS, "
        "LOW_MBIT for the rest (default 1000,10,0.5)",
    )


def _floats(raw: str, defaults: tuple) -> tuple:
    """Parse ``a[,b[,c]]`` against positional defaults (empty string = all)."""
    values = list(defaults)
    if raw:
        for i, part in enumerate(raw.split(",")):
            if i >= len(values):
                raise SystemExit(f"too many values in {raw!r} (max {len(values)})")
            values[i] = float(part)
    return tuple(values)


def _impairments_from(args: argparse.Namespace) -> tuple:
    from repro.net.impairments import (
        burst_loss, duplication, iid_loss, rate_flap, reordering,
    )
    from repro.units import mbit, ms

    specs = []
    if args.loss is not None:
        specs.append(iid_loss(args.loss))
    if args.burst_loss is not None:
        p_enter, p_exit, loss_bad = _floats(args.burst_loss, (0.003, 0.3, 1.0))
        specs.append(burst_loss(p_enter=p_enter, p_exit=p_exit, loss_bad=loss_bad))
    if args.reorder is not None:
        rate, extra_ms = _floats(args.reorder, (0.01, 4.0))
        specs.append(reordering(rate=rate, extra_delay_ns=int(ms(1) * extra_ms)))
    if args.duplicate is not None:
        specs.append(duplication(args.duplicate))
    if args.rate_flap is not None:
        period_ms, low_mbit, duty = _floats(args.rate_flap, (1000.0, 10.0, 0.5))
        specs.append(
            rate_flap(
                low_rate_bps=int(mbit(1) * low_mbit),
                period_ns=int(ms(1) * period_ms),
                duty=duty,
            )
        )
    return tuple(specs)


def _add_exec(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size (default: all cores; 1 forces serial in-process)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="result cache location (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="recompute everything, touch no cache"
    )
    parser.add_argument(
        "--timeout", type=float, metavar="SECONDS", default=None,
        help="per-repetition wall-clock budget; a hung repetition is killed and "
        "retried (needs --workers >= 2 to be enforceable)",
    )
    parser.add_argument(
        "--retries", type=int, metavar="N", default=2,
        help="re-attempts per repetition after a crash/timeout, with exponential "
        "backoff and the same derived seed (default: 2)",
    )
    parser.add_argument(
        "--resume", action=argparse.BooleanOptionalAction, default=True,
        help="resume an interrupted invocation from its journal (--no-resume "
        "discards the journal and re-runs everything; default: resume)",
    )
    parser.add_argument(
        "--backend", default="pool", choices=BACKENDS,
        help="execution backend: inprocess (serial), pool (supervised process "
        "pool, platform default start method), spawn, forkserver "
        "(simulator-preloaded workers), or distributed (multi-host worker "
        "agents; see --hosts). Results are bit-identical across backends "
        "(default: pool)",
    )
    parser.add_argument(
        "--hosts", metavar="HOST[:SLOTS],...", default=None,
        help="worker hosts for the distributed backend (localhost spawns "
        "local agents; other names are reached over ssh). Giving --hosts "
        "selects --backend distributed automatically",
    )
    parser.add_argument(
        "--hosts-file", metavar="PATH", default=None,
        help="file with one HOST[:SLOTS] per line (# comments allowed); "
        "merged with --hosts",
    )
    parser.add_argument(
        "--bind-host", metavar="ADDR", default=None,
        help="interface the distributed coordinator listens on (default: "
        "127.0.0.1 for all-local fleets, 0.0.0.0 when any host is remote)",
    )
    parser.add_argument(
        "--advertise-host", metavar="ADDR", default=None,
        help="address agents connect back to (default: 127.0.0.1 for "
        "all-local fleets, otherwise this machine's hostname)",
    )
    parser.add_argument(
        "--store", metavar="PATH", default=None,
        help="stream every settled repetition into this SQLite result store "
        "(queryable afterwards with `repro query` / `repro report`)",
    )


def _make_cache(args: argparse.Namespace) -> Optional[ResultCache]:
    if args.no_cache:
        return None
    return ResultCache(args.cache_dir, stream=sys.stderr)


def _make_store(args: argparse.Namespace) -> Optional[ResultStore]:
    if args.store is None:
        return None
    return ResultStore(args.store, stream=sys.stderr)


def _make_policy(args: argparse.Namespace) -> SupervisionPolicy:
    return SupervisionPolicy(timeout_s=args.timeout, retries=args.retries)


def _resolve_backend(args: argparse.Namespace):
    """Combine --backend/--hosts/--hosts-file into a backend selection.

    Host lists only make sense distributed, so giving one upgrades the
    default backend automatically; naming a *different* local backend at
    the same time is a contradiction and fails as an operator error.
    """
    hosts = ()
    if getattr(args, "hosts", None):
        from repro.framework.remote import parse_hosts

        hosts += parse_hosts(args.hosts)
    if getattr(args, "hosts_file", None):
        from repro.framework.remote import load_hosts_file

        hosts += load_hosts_file(args.hosts_file)
    backend = args.backend
    if hosts and backend not in ("pool", "distributed"):
        raise ConfigError(
            f"--hosts/--hosts-file need --backend distributed, not {backend!r}"
        )
    coordinator_kwargs = {}
    if getattr(args, "bind_host", None):
        coordinator_kwargs["bind_host"] = args.bind_host
    if getattr(args, "advertise_host", None):
        coordinator_kwargs["advertise_host"] = args.advertise_host
    if coordinator_kwargs and not (backend == "distributed" or hosts):
        raise ConfigError(
            f"--bind-host/--advertise-host need --backend distributed, not {backend!r}"
        )
    if backend == "distributed" or hosts:
        from repro.framework.executors import DistributedExecutor

        return DistributedExecutor(
            hosts=hosts or ("localhost",), stream=sys.stderr, **coordinator_kwargs
        )
    return backend


def _journal_dir(cache: Optional[ResultCache]) -> Optional[str]:
    """Journals live alongside the cache; no cache means no checkpointing
    (there would be nowhere to restore results from)."""
    return str(cache.root / "journals") if cache is not None else None


def _report_failures(summaries: dict) -> int:
    """Print failed repetitions; the exit code says the table is partial."""
    failed = [f for summary in summaries.values() for f in summary.failures]
    if not failed:
        return 0
    print(f"{len(failed)} repetition(s) FAILED — statistics above are partial:")
    for failure in failed:
        print(f"  {failure.describe()}")
    return 1


def _cmd_run(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.framework.config import NetworkConfig

    network = replace(NetworkConfig(), forward_impairments=_impairments_from(args))
    config = ExperimentConfig(
        stack=args.stack,
        cca=args.cca,
        qdisc=args.qdisc,
        gso=args.gso,
        spurious_rollback=args.sf if args.stack == "quiche" else None,
        file_size=int(args.size_mib * 1024 * 1024),
        repetitions=args.reps,
        seed=args.seed,
        network=network,
    )
    config.validate()
    cache = _make_cache(args)
    print(f"running {config.label} x{config.repetitions} ...")
    summary = run_repetitions(
        config,
        workers=args.workers,
        cache=cache,
        stream=sys.stderr,
        policy=_make_policy(args),
        journal_dir=_journal_dir(cache),
        resume=args.resume,
        backend=_resolve_backend(args),
        store=_make_store(args),
    )
    print(summary.describe())
    injected = sum(r.injected_drops for r in summary.results)
    if injected:
        print(
            f"injected drops (fault injection): {injected} across "
            f"{len(summary.results)} reps — congestion drops reported above"
        )

    # Pool distribution metrics over all repetitions (gaps/trains are computed
    # per repetition so they never straddle repetition boundaries), as the
    # paper combines all repetitions per setting. Reporting repetition 0 alone
    # misrepresents the run whenever repetitions differ.
    groups = summary.pooled_records
    if groups:
        gaps = pooled_gaps(groups)
        reps = len(groups)
        print(
            f"back-to-back share (pooled, {reps} reps): "
            f"{fraction_leq(gaps, us(15)) * 100:.1f}%"
        )
        print(
            f"packets in trains <= 5 (pooled, {reps} reps): "
            f"{pooled_fraction_of_packets_in_trains_leq(groups, 5) * 100:.1f}%"
        )
        print(
            render_histogram(
                pooled_packets_by_train_length(groups),
                title=f"train lengths (pooled, {reps} reps)",
            )
        )
    if cache is not None:
        print(f"cache: {cache.stats}", file=sys.stderr)

    if args.json:
        from repro.framework.artifacts import save_summary

        path = save_summary(summary, args.json)
        print(f"saved {path}")
    if args.capture and summary.results:
        from repro.metrics.capture_io import save_capture

        path = save_capture(summary.results[0].server_records, args.capture)
        print(f"saved capture (rep 0) {path}")
    return _report_failures({config.label: summary})


def _sweep_grid(args: argparse.Namespace) -> dict:
    from repro.framework import scenarios

    scale = dict(
        file_size=int(args.size_mib * 1024 * 1024),
        repetitions=args.reps,
        seed=args.seed,
    )
    if args.grid == "baselines":
        return scenarios.all_baselines(**scale)
    if args.grid == "cca":
        return scenarios.cca_sweep(args.stack, **scale)
    if args.grid == "gso":
        return {f"gso-{mode}": scenarios.quiche_gso(mode, **scale) for mode in GSO_MODES}
    if args.grid == "precision":
        return {
            qdisc: scenarios.precision_config(qdisc, **scale)
            for qdisc in ("none", "fq", "etf", "etf-offload")
        }
    if args.grid == "impairments":
        return scenarios.impairment_sweep(**scale)
    if args.grid == "population":
        return scenarios.population_sweep(flows=args.flows, **scale)
    if args.grid == "duels":
        return scenarios.fairness_duels(**scale)
    return scenarios.network_sweep(**scale)


def _cmd_sweep(args: argparse.Namespace) -> int:
    cache = _make_cache(args)
    grid = _sweep_grid(args)
    print(f"sweeping {len(grid)} configurations x{args.reps} reps ...")
    runner = SweepRunner(
        workers=args.workers,
        cache=cache,
        stream=sys.stderr,
        policy=_make_policy(args),
        journal_dir=_journal_dir(cache),
        resume=args.resume,
        backend=_resolve_backend(args),
        store=_make_store(args),
    )
    summaries = runner.run(grid)

    rows = []
    for name, summary in summaries.items():
        groups = summary.pooled_records
        rows.append(
            [
                name,
                summary.config.label,
                str(summary.goodput),
                str(summary.dropped),
                str(sum(r.injected_drops for r in summary.results)),
                f"{fraction_leq(pooled_gaps(groups), us(15)) * 100:.1f}%" if groups else "-",
                f"{pooled_fraction_of_packets_in_trains_leq(groups, 5) * 100:.1f}%"
                if groups
                else "-",
                f"{len(summary.failures)}/{summary.config.repetitions}"
                if summary.failures
                else "0",
            ]
        )
    print(
        render_table(
            ["name", "config", "goodput [Mbit/s]", "dropped", "injected", "b2b share", "trains<=5", "failed"],
            rows,
            title=f"sweep: {args.grid} (metrics pooled over {args.reps} reps)",
        )
    )
    if args.grid == "duels":
        from repro.framework.population import duel_analysis

        analysis = duel_analysis(
            {
                name: summary.results[0]
                for name, summary in summaries.items()
                if summary.results
            }
        )
        if analysis["beats"]:
            print("beats relation (>5% goodput margin, head-to-head):")
            for winner, loser in analysis["beats"]:
                print(f"  {winner} beats {loser}")
        violations = analysis["transitivity_violations"]
        if violations:
            print("transitivity VIOLATED — no consistent pecking order:")
            for a, b, c in violations:
                print(f"  {a} beats {b}, {b} beats {c}, but {a} does not beat {c}")
        else:
            print("transitivity holds: competition outcomes form a consistent order")
    if cache is not None:
        print(f"cache: {cache.stats}", file=sys.stderr)
    return _report_failures(summaries)


def _population_census(config) -> int:
    """``population --profile-events``: one direct (uncached) census run."""
    from repro.framework.population import run_population

    print(
        f"census run: {config.flows} flows, {config.arrival} arrivals, "
        f"churn {'on' if config.churn else 'off'} ..."
    )
    result = run_population(config, profile_events=True)
    census = result.census
    rows = [
        [component, str(c["scheduled"]), str(c["fired"]), str(c["stale"])]
        for component, c in census["components"].items()
    ]
    print(
        render_table(
            ["component", "scheduled", "fired", "stale"],
            rows,
            title=f"event census (seed {result.seed})",
        )
    )
    totals = census["totals"]
    print(
        f"totals: {totals['scheduled']} scheduled, {totals['fired']} fired, "
        f"{totals['stale']} stale (cancelled/re-armed), "
        f"{totals['departed']} departures"
    )
    print(
        f"completed {result.completed_count}/{config.flows} flows, "
        f"{result.events_processed} events in {result.wall_time_s:.1f}s wall, "
        f"fingerprint {result.fingerprint()[:16]}"
    )
    if totals["post_departure"]:
        print("post-departure scheduling VIOLATIONS (departed flows must go quiet):")
        for key, count in census["post_departure"].items():
            print(f"  {key}: {count}")
        return 1
    if totals["departed"]:
        print("post-departure check: clean (no departed flow scheduled anything)")
    return 0


def _cmd_population(args: argparse.Namespace) -> int:
    from repro.framework.population import PopulationConfig
    from repro.units import ms, seconds

    config = PopulationConfig(
        flows=args.flows,
        arrival=args.arrival,
        arrival_rate_per_s=args.rate,
        file_size=int(args.size_kib * 1024),
        size_dist=args.size_dist,
        extra_rtt_max_ns=int(ms(1) * args.rtt_spread_ms),
        profiles=tuple(args.profiles),
        repetitions=args.reps,
        seed=args.seed,
        max_sim_time_ns=seconds(args.max_sim_s),
        churn=args.churn,
    )
    config.validate()
    if args.profile_events:
        return _population_census(config)
    cache = _make_cache(args)
    print(
        f"running population: {config.flows} flows, {config.arrival} arrivals, "
        f"{len(config.profiles)} profile(s), x{config.repetitions} rep(s) ..."
    )
    runner = SweepRunner(
        workers=args.workers,
        cache=cache,
        stream=sys.stderr,
        policy=_make_policy(args),
        journal_dir=_journal_dir(cache),
        resume=args.resume,
        backend=_resolve_backend(args),
        store=_make_store(args),
    )
    summaries = runner.run({config.label: config})
    summary = summaries[config.label]
    if summary.results:
        rep0 = summary.results[0]
        rows = [
            [
                label,
                str(int(stats["flows"])),
                str(int(stats["completed"])),
                f"{stats['goodput_mbps_mean']:.2f}",
                f"{stats['fct_ms_mean']:.0f}",
                str(int(stats["dropped"])),
            ]
            for label, stats in rep0.per_profile.items()
        ]
        print(
            render_table(
                ["profile", "flows", "done", "goodput [Mbit/s]", "FCT [ms]", "dropped"],
                rows,
                title=f"population (rep 0, seed {rep0.seed})",
            )
        )
        for metric, dist in (
            ("goodput [Mbit/s]", rep0.goodput_dist),
            ("FCT [ms]", rep0.fct_ms_dist),
        ):
            print(
                f"{metric}: mean {dist['mean']:.2f}  p50 {dist['p50']:.2f}  "
                f"p90 {dist['p90']:.2f}  p99 {dist['p99']:.2f}"
            )
        fairness = [r.fairness for r in summary.results]
        completed = [r.completed_count for r in summary.results]
        print(
            f"completed {sum(completed) / len(completed):.0f}/{config.flows} flows, "
            f"Jain fairness (completed flows) {sum(fairness) / len(fairness):.3f} "
            f"over {len(summary.results)} rep(s)"
        )
        if rep0.beats:
            for winner, loser in rep0.beats:
                print(f"  {winner} beats {loser} (mean goodput, >5% margin)")
    if cache is not None:
        print(f"cache: {cache.stats}", file=sys.stderr)
    if args.json:
        from repro.framework.artifacts import save_summary

        path = save_summary(summary, args.json)
        print(f"saved {path}")
    return _report_failures(summaries)


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.metrics.capture_io import load_capture
    from repro.metrics.report import render_cdf
    from repro.metrics.timeline import analyze_cycle

    records = load_capture(args.capture)
    if args.src:
        records = [r for r in records if r.flow[0] == args.src]
    if not records:
        print("no records after filtering")
        return 1
    duration = records[-1].time_ns - records[0].time_ns
    print(f"{len(records)} frames over {fmt_time(duration)}")

    # One sort answers both the CDF and the back-to-back share.
    gaps = Distribution(inter_packet_gaps(records))
    print(render_cdf({"gaps": gaps.cdf()}, title="inter-packet gap CDF"))
    print(f"back-to-back share (<= 15 us): {gaps.fraction_leq(us(15)) * 100:.1f}%")
    print(
        "packets in trains <= 5:        "
        f"{fraction_of_packets_in_trains_leq(records, 5) * 100:.1f}%"
    )
    print(render_histogram(packets_by_train_length(records), title="train lengths"))
    report = analyze_cycle(records)
    if report.burst_count:
        print(
            f"bursts: {report.burst_count} (median {report.median_burst_packets:.0f} pkts), "
            f"median idle {report.median_idle_ns / 1e6:.1f} ms, "
            f"dominant cycle {report.cycle_ns / 1e6 if report.cycle_ns else float('nan'):.1f} ms"
        )
    return 0


def _add_store_filters(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "filters", "restrict to repetitions matching every given filter"
    )
    group.add_argument("--name", help="grid name (e.g. quiche, gso-on)")
    group.add_argument("--label", help="full configuration label")
    group.add_argument("--kind", choices=("experiment", "population"))
    group.add_argument("--stack", choices=STACKS)
    group.add_argument("--cca", choices=("cubic", "newreno", "bbr", "bbr2"))
    group.add_argument("--qdisc", choices=QDISCS)
    group.add_argument("--gso", choices=GSO_MODES)
    group.add_argument(
        "--impairment", metavar="SLUG",
        help="impairment slug substring (e.g. loss-0.01, ge, reorder)",
    )
    group.add_argument(
        "--completed", action=argparse.BooleanOptionalAction, default=None,
        help="only repetitions that (--no-completed: did not) finish the transfer",
    )


def _store_filters(args: argparse.Namespace) -> dict:
    keys = FILTER_COLUMNS + ("impairment", "completed")
    return {key: getattr(args, key, None) for key in keys}


def _open_store(path: str) -> ResultStore:
    """Open an existing store for reading; never create one as a side effect."""
    from pathlib import Path

    if not Path(path).exists():
        raise ConfigError(f"no result store at {path!r} (create one with --store)")
    return ResultStore(path, stream=sys.stderr)


def _md_table(headers: List[str], rows: List[List[str]]) -> str:
    """GitHub-flavoured markdown table (the EXPERIMENTS.md format)."""
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join(" --- " for _ in headers) + "|",
    ]
    lines.extend("| " + " | ".join(row) + " |" for row in rows)
    return "\n".join(lines)


def _percentiles(raw: Optional[str]) -> tuple:
    if not raw:
        return (0.5, 0.9, 0.99)
    return tuple(float(part) / 100.0 for part in raw.split(","))


def _cmd_query(args: argparse.Namespace) -> int:
    with _open_store(args.store_path) as store:
        if args.failures:
            failures = store.failures(args.name)
            if not failures:
                print("no failure records match")
                return 0
            for failure in failures:
                print(failure.describe())
            return 0
        filters = _store_filters(args)
        if args.metric:
            agg = store.aggregate(
                args.metric, percentiles=_percentiles(args.percentiles), **filters
            )
            for key, value in agg.items():
                print(f"{key}: {value:.4f}" if isinstance(value, float) else f"{key}: {value}")
            return 0
        rows_data = store.query(**filters)
        if not rows_data:
            print("no repetitions match")
            return 1
        rows = []
        for r in rows_data:
            rows.append(
                [
                    r["name"],
                    r["label"],
                    str(r["rep"]),
                    str(r["seed"]),
                    "yes" if r["completed"] else "no",
                    f"{r['goodput_mbps']:.2f}",
                    str(r["dropped"]),
                    str(r["injected_drops"]),
                    f"{r['b2b_share'] * 100:.1f}%" if r["b2b_share"] is not None else "-",
                    f"{r['trains_leq5_share'] * 100:.1f}%"
                    if r["trains_leq5_share"] is not None
                    else "-",
                    r["fingerprint"][:12],
                ]
            )
        print(
            render_table(
                [
                    "name", "config", "rep", "seed", "done", "goodput [Mbit/s]",
                    "dropped", "injected", "b2b share", "trains<=5", "fingerprint",
                ],
                rows,
                title=f"{len(rows)} repetition(s)",
            )
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    with _open_store(args.store_path) as store:
        groups = store.group_summaries(**_store_filters(args))
        if not groups:
            print("no repetitions match")
            return 1
        rows = []
        for name, g in groups.items():
            rows.append(
                [
                    name,
                    g["label"],
                    str(g["reps"]),
                    str(g["goodput"]) if g["goodput"] is not None else "-",
                    str(g["dropped"]) if g["dropped"] is not None else "-",
                    str(g["injected"]),
                    f"{g['b2b_share'] * 100:.1f}%" if g["b2b_share"] is not None else "-",
                    f"{g['trains_leq5_share'] * 100:.1f}%"
                    if g["trains_leq5_share"] is not None
                    else "-",
                    str(g["failed"]),
                ]
            )
        headers = [
            "name", "config", "reps", "goodput [Mbit/s]", "dropped", "injected",
            "b2b share", "trains<=5", "failed",
        ]
        if args.format == "md":
            print(_md_table(headers, rows))
        else:
            print(render_table(headers, rows, title="store report (metrics pooled across reps)"))
    return 0


def _cmd_store_info(args: argparse.Namespace) -> int:
    import json

    with _open_store(args.store_path) as store:
        info = store.info()
        info["fingerprint"] = store.content_fingerprint()
        print(json.dumps(info, indent=2))
    return 0


def _cmd_store_migrate(args: argparse.Namespace) -> int:
    if not args.from_cache and not args.from_json:
        raise ConfigError("nothing to migrate: give --from-cache and/or --from-json")
    with ResultStore(args.store_path, stream=sys.stderr) as store:
        total = 0
        if args.from_cache:
            count = store.migrate_cache(args.from_cache)
            print(f"migrated {count} repetition(s) from cache {args.from_cache}")
            total += count
        for path in args.from_json or ():
            count = store.ingest_summary_json(path)
            print(f"migrated {count} repetition(s) from artifact {path}")
            total += count
        print(f"store now holds {store.rep_count()} repetition(s), {store.failure_count()} failure(s)")
    return 0


def _cmd_store_export(args: argparse.Namespace) -> int:
    with _open_store(args.store_path) as store:
        path = store.export_summary_json(args.name, args.out)
        print(f"saved {path}")
    return 0


def _cmd_compete(args: argparse.Namespace) -> int:
    specs: List[FlowSpec] = []
    for raw in args.flows:
        parts = raw.split(":")
        stack = parts[0]
        cca = parts[1] if len(parts) > 1 else "cubic"
        qdisc = parts[2] if len(parts) > 2 else "none"
        specs.append(
            FlowSpec(
                stack=stack, cca=cca, qdisc=qdisc, file_size=int(args.size_mib * 1024 * 1024)
            )
        )
    print(f"running {len(specs)} competing flows ...")
    result = MultiFlowExperiment(specs, seed=args.seed).run()
    rows = [
        [f.spec.label, str(f.completed), fmt_time(f.duration_ns), f"{f.goodput_mbps:.2f}", str(f.dropped)]
        for f in result.flows
    ]
    print(render_table(["flow", "done", "duration", "goodput [Mbit/s]", "dropped"], rows))
    print(f"Jain fairness: {result.fairness:.3f}   aggregate: {result.aggregate_goodput_mbps:.2f} Mbit/s")
    return 0


def _cmd_scenarios(_args: argparse.Namespace) -> int:
    from repro.framework import scenarios

    rows = []
    for stack, cfg in scenarios.all_baselines().items():
        rows.append(["baseline", cfg.label])
    rows.append(["section 4.2", scenarios.quiche_fq(True).label])
    rows.append(["section 4.2 (SF)", scenarios.quiche_fq(False).label])
    for mode in ("off", "on", "paced"):
        rows.append(["section 4.3", scenarios.quiche_gso(mode).label])
    for qdisc in ("none", "fq", "etf", "etf-offload"):
        rows.append(["section 4.4", scenarios.precision_config(qdisc).label])
    print(render_table(["experiment", "configuration"], rows, title="paper scenarios"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="QUIC Steps reproduction — pacing experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one configuration")
    run_p.add_argument("stack", choices=STACKS)
    _add_common(run_p)
    run_p.add_argument("--reps", type=int, default=1)
    run_p.add_argument(
        "--sf", action="store_true", default=None,
        help="apply the paper's SF patch (disable quiche's rollback)",
    )
    run_p.add_argument("--json", metavar="PATH", help="save results as JSON")
    run_p.add_argument("--capture", metavar="PATH", help="save the capture as CSV")
    _add_impairments(run_p)
    _add_exec(run_p)
    run_p.set_defaults(func=_cmd_run)

    sweep_p = sub.add_parser(
        "sweep", help="run a scenario grid in parallel with result caching"
    )
    sweep_p.add_argument(
        "grid",
        choices=(
            "baselines", "cca", "gso", "precision", "network", "impairments",
            "population", "duels",
        ),
    )
    sweep_p.add_argument(
        "--stack", default="quiche", choices=STACKS, help="stack for the cca grid"
    )
    sweep_p.add_argument("--size-mib", type=float, default=4.0, help="file size in MiB")
    sweep_p.add_argument(
        "--flows", type=int, default=50,
        help="flows per population (population grid only; default: 50)",
    )
    sweep_p.add_argument("--reps", type=int, default=3)
    sweep_p.add_argument("--seed", type=int, default=1)
    _add_exec(sweep_p)
    sweep_p.set_defaults(func=_cmd_sweep)

    analyze_p = sub.add_parser("analyze", help="analyze a capture CSV")
    analyze_p.add_argument("capture", help="capture CSV (see repro.metrics.capture_io)")
    analyze_p.add_argument("--src", help="only frames from this source address")
    analyze_p.set_defaults(func=_cmd_analyze)

    pop_p = sub.add_parser(
        "population",
        help="run a generated flow population (hundreds of flows, one bottleneck)",
    )
    pop_p.add_argument("--flows", type=int, default=200, help="population size")
    pop_p.add_argument(
        "--arrival", default="poisson", choices=("poisson", "uniform"),
        help="arrival process (trace arrivals are API-only)",
    )
    pop_p.add_argument(
        "--rate", type=float, default=100.0, help="mean arrival rate [flows/s]"
    )
    pop_p.add_argument("--size-kib", type=float, default=256.0, help="object size in KiB")
    pop_p.add_argument(
        "--size-dist", default="fixed", choices=("fixed", "exp"),
        help="object sizes: fixed, or exponential with --size-kib mean",
    )
    pop_p.add_argument(
        "--rtt-spread-ms", type=float, default=40.0,
        help="per-flow extra RTT drawn uniformly from [0, this] ms",
    )
    pop_p.add_argument(
        "--profiles", nargs="+", metavar="STACK[:CCA[:QDISC[:GSO]]]",
        default=["quiche:cubic:fq", "picoquic:bbr", "ngtcp2:cubic", "tcp"],
        help="stack profiles assigned round-robin across the population",
    )
    pop_p.add_argument("--reps", type=int, default=1)
    pop_p.add_argument("--seed", type=int, default=1)
    pop_p.add_argument(
        "--max-sim-s", type=float, default=600.0, help="simulated-time budget"
    )
    pop_p.add_argument(
        "--churn", action="store_true",
        help="tear each flow down when it completes (O(active) state)",
    )
    pop_p.add_argument(
        "--profile-events", action="store_true",
        help="run rep 0 under the event census and print the per-component "
        "scheduled/fired/stale breakdown (implies a direct, uncached run)",
    )
    pop_p.add_argument("--json", metavar="PATH", help="save results as JSON")
    _add_exec(pop_p)
    pop_p.set_defaults(func=_cmd_population)

    compete_p = sub.add_parser("compete", help="run competing flows")
    compete_p.add_argument(
        "flows", nargs="+", metavar="STACK[:CCA[:QDISC]]",
        help="e.g. quiche:cubic:fq picoquic:bbr tcp",
    )
    compete_p.add_argument("--size-mib", type=float, default=4.0)
    compete_p.add_argument("--seed", type=int, default=1)
    compete_p.set_defaults(func=_cmd_compete)

    query_p = sub.add_parser(
        "query", help="filter/aggregate repetitions in a result store"
    )
    query_p.add_argument("store_path", metavar="STORE", help="result store path (see --store)")
    query_p.add_argument(
        "--metric", choices=METRIC_COLUMNS,
        help="aggregate this column (mean/std/percentiles) instead of listing rows",
    )
    query_p.add_argument(
        "--percentiles", metavar="P[,P...]", default=None,
        help="percentiles for --metric, in percent (default: 50,90,99)",
    )
    query_p.add_argument(
        "--failures", action="store_true",
        help="list failure records (optionally for one --name) instead of results",
    )
    _add_store_filters(query_p)
    query_p.set_defaults(func=_cmd_query)

    report_p = sub.add_parser(
        "report", help="render summary tables from a result store"
    )
    report_p.add_argument("store_path", metavar="STORE", help="result store path (see --store)")
    report_p.add_argument(
        "--format", default="ascii", choices=("ascii", "md"),
        help="table format: ascii, or md (the EXPERIMENTS.md table format)",
    )
    _add_store_filters(report_p)
    report_p.set_defaults(func=_cmd_report)

    store_p = sub.add_parser(
        "store", help="inspect, migrate into, or export from a result store"
    )
    store_sub = store_p.add_subparsers(dest="action", required=True)
    info_p = store_sub.add_parser(
        "info", help="row counts, grid names, schema version, content fingerprint"
    )
    info_p.add_argument("store_path", metavar="STORE")
    info_p.set_defaults(func=_cmd_store_info)
    migrate_p = store_sub.add_parser(
        "migrate", help="ingest existing artifacts (result cache, JSON summaries)"
    )
    migrate_p.add_argument("store_path", metavar="STORE", help="store to create or extend")
    migrate_p.add_argument(
        "--from-cache", metavar="DIR", default=None,
        help="migrate every readable repetition from this result-cache directory",
    )
    migrate_p.add_argument(
        "--from-json", metavar="PATH", action="append", default=None,
        help="migrate a legacy JSON artifact (repeatable)",
    )
    migrate_p.set_defaults(func=_cmd_store_migrate)
    export_p = store_sub.add_parser(
        "export", help="write one grid entry back out as a legacy JSON artifact"
    )
    export_p.add_argument("store_path", metavar="STORE")
    export_p.add_argument("name", help="grid name to export (see `store info`)")
    export_p.add_argument("out", help="output JSON path")
    export_p.set_defaults(func=_cmd_store_export)

    scen_p = sub.add_parser("scenarios", help="list the paper's scenarios")
    scen_p.set_defaults(func=_cmd_scenarios)

    build_p = sub.add_parser(
        "build-info",
        help="show whether this process runs the compiled or pure build",
    )
    build_p.add_argument(
        "--json", action="store_true", help="machine-readable build_info()"
    )
    build_p.set_defaults(func=_cmd_build_info)
    return parser


def _cmd_build_info(args: argparse.Namespace) -> int:
    from repro import _build

    if getattr(args, "json", False):
        print(json.dumps(_build.build_info(), indent=1))
    else:
        print(_build.describe())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # ``python -m repro --build-info`` is the documented quick check; map the
    # flag spelling onto the subcommand.
    argv = ["build-info" if a == "--build-info" else a for a in argv]
    parser = build_parser()
    args = parser.parse_args(argv)
    # `--sf` flips rollback off; stock behaviour is rollback on (None keeps
    # the stack default, which for quiche is rollback enabled).
    if getattr(args, "sf", None):
        args.sf = False
    elif hasattr(args, "sf"):
        args.sf = None
    try:
        return args.func(args)
    except ConfigError as exc:
        # Invalid configuration is an operator error, not a crash: one line
        # naming the offending field, conventional exit code 2.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
