"""Connection- and stream-level flow control (RFC 9000 §4).

Two halves:

* :class:`SendLimit` — the sender's view of a peer-imposed limit (advanced by
  MAX_DATA / MAX_STREAM_DATA frames);
* :class:`RecvLimit` — the receiver's advertised window; decides when to send
  window updates (at half-window consumption, like most stacks).

The ngtcp2 profile disables window growth beyond its fixed default, which is
what caps its baseline goodput in the paper (Table 1); see
``repro.stacks.ngtcp2``.
"""

from __future__ import annotations

from repro.errors import FlowControlError


class SendLimit:
    """Sender-side credit against a peer limit."""

    def __init__(self, initial_limit: int):
        self.limit = initial_limit
        self.used = 0
        self.blocked_events = 0

    @property
    def available(self) -> int:
        credit = self.limit - self.used
        return credit if credit > 0 else 0

    def consume(self, nbytes: int) -> None:
        if nbytes > self.available:
            raise FlowControlError(
                f"attempt to consume {nbytes}B with only {self.available}B of credit"
            )
        self.used += nbytes

    def update_limit(self, new_limit: int) -> bool:
        """Apply a MAX_* frame; returns True if the limit advanced."""
        if new_limit > self.limit:
            self.limit = new_limit
            return True
        return False

    def note_blocked(self) -> None:
        self.blocked_events += 1


class RecvLimit:
    """Receiver-side advertised window.

    :param window: bytes of credit kept open ahead of the consumed offset.
    :param autotune: if True, the window doubles whenever updates are being
        consumed faster than once per RTT (as quiche/picoquic do); if False
        the window is fixed (ngtcp2's example server).
    """

    def __init__(self, window: int, autotune: bool = False, max_window: int = 1 << 30):
        self.window = window
        self.autotune = autotune
        self.max_window = max_window
        self.advertised = window
        self.consumed = 0  # highest contiguous offset delivered to the app
        self._last_update_ns: int | None = None

    def check(self, end_offset: int) -> None:
        """Raise if the peer wrote past our advertised limit."""
        if end_offset > self.advertised:
            raise FlowControlError(
                f"peer wrote to offset {end_offset} beyond advertised {self.advertised}"
            )

    def on_consumed(self, new_consumed: int) -> None:
        if new_consumed > self.consumed:
            self.consumed = new_consumed

    def wants_update(self) -> bool:
        return self.advertised - self.consumed < self.window // 2

    def next_limit(self, now_ns: int, rtt_ns: int) -> int:
        """Produce the new limit for a MAX_DATA/MAX_STREAM_DATA frame."""
        if (
            self.autotune
            and self._last_update_ns is not None
            and rtt_ns > 0
            and now_ns - self._last_update_ns < 2 * rtt_ns
        ):
            self.window = min(self.window * 2, self.max_window)
        self._last_update_ns = now_ns
        self.advertised = self.consumed + self.window
        return self.advertised
