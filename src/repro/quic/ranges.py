"""Byte/packet range set with merge semantics.

Used by receive streams (reassembly tracking), send streams (acked bytes) and
tests. Ranges are half-open ``[start, end)`` over non-negative integers.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator, List, Tuple


class RangeSet:
    """Sorted set of disjoint half-open ranges."""

    def __init__(self) -> None:
        self._ranges: List[List[int]] = []

    def add(self, start: int, end: int) -> int:
        """Insert ``[start, end)``; returns the number of newly covered ints."""
        if end <= start:
            return 0
        ranges = self._ranges
        # In-order delivery makes appends at (or past) the frontier the
        # overwhelmingly common case; handle them without the general scan.
        if not ranges:
            ranges.append([start, end])
            return end - start
        last = ranges[-1]
        if start == last[1]:
            last[1] = end
            return end - start
        if start > last[1]:
            ranges.append([start, end])
            return end - start
        starts: List[int] = [r[0] for r in ranges]
        i: int = bisect_left(starts, start)
        # The predecessor may overlap or touch.
        if i > 0 and ranges[i - 1][1] >= start:
            i -= 1
        new_start, new_end = start, end
        added: int = end - start
        j: int = i
        while j < len(ranges) and ranges[j][0] <= new_end:
            lo, hi = ranges[j]
            added -= _overlap(start, end, lo, hi)
            new_start = min(new_start, lo)
            new_end = max(new_end, hi)
            j += 1
        ranges[i:j] = [[new_start, new_end]]
        return max(added, 0)

    def contains(self, value: int) -> bool:
        starts = [r[0] for r in self._ranges]
        i = bisect_left(starts, value + 1) - 1
        return i >= 0 and self._ranges[i][0] <= value < self._ranges[i][1]

    def covers(self, start: int, end: int) -> bool:
        """True if the whole of ``[start, end)`` is present."""
        if end <= start:
            return True
        starts = [r[0] for r in self._ranges]
        i = bisect_left(starts, start + 1) - 1
        return i >= 0 and self._ranges[i][0] <= start and self._ranges[i][1] >= end

    def first_gap_from(self, start: int) -> int:
        """Smallest value >= start not in the set (the contiguous frontier)."""
        pos = start
        for lo, hi in self._ranges:
            if lo > pos:
                return pos
            if pos < hi:
                pos = hi
        return pos

    def missing_within(self, start: int, end: int) -> List[Tuple[int, int]]:
        """Sub-ranges of ``[start, end)`` not present in the set."""
        gaps: List[Tuple[int, int]] = []
        pos = start
        for lo, hi in self._ranges:
            if hi <= pos:
                continue
            if lo >= end:
                break
            if lo > pos:
                gaps.append((pos, min(lo, end)))
            pos = max(pos, hi)
            if pos >= end:
                return gaps
        if pos < end:
            gaps.append((pos, end))
        return gaps

    @property
    def upper(self) -> int:
        """One past the highest covered value (0 when empty)."""
        return self._ranges[-1][1] if self._ranges else 0

    @property
    def total(self) -> int:
        return sum(hi - lo for lo, hi in self._ranges)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return (tuple(r) for r in self._ranges)

    def __len__(self) -> int:
        return len(self._ranges)

    def __repr__(self) -> str:
        return f"RangeSet({[tuple(r) for r in self._ranges]})"


def _overlap(a0: int, a1: int, b0: int, b1: int) -> int:
    return max(0, min(a1, b1) - max(a0, b0))
