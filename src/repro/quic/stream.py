"""Send- and receive-side stream state.

The workload is a single large download, so send streams source data from a
:class:`DataSource` that synthesizes bytes on demand (we never materialize the
whole 100 MiB file). Loss pushes byte ranges onto a retransmission queue that
takes priority over new data, exactly like quiche/picoquic/ngtcp2 do.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ProtocolError
from repro.quic.ranges import RangeSet


class DataSource:
    """Synthesizes deterministic stream bytes on demand."""

    def __init__(self, size: int, fill: int = 0x00):
        self.size = size
        self.fill = fill

    def read(self, offset: int, length: int) -> bytes:
        end = min(offset + length, self.size)
        if end <= offset:
            return b""
        return bytes([self.fill]) * (end - offset)


class SendStream:
    """Sender half of a stream."""

    def __init__(self, stream_id: int, source: DataSource):
        self.stream_id = stream_id
        self.source = source
        self.next_offset = 0  # next never-sent byte
        self.acked = RangeSet()
        self.fin_sent = False
        self.fin_acked = False
        self._retx: List[List[int]] = []  # [start, end) queue, FIFO-ish sorted
        self.retx_bytes_total = 0

    # -- what can we send -------------------------------------------------

    @property
    def size(self) -> int:
        return self.source.size

    @property
    def has_retx(self) -> bool:
        return bool(self._retx)

    @property
    def new_bytes_available(self) -> int:
        remaining = self.source.size - self.next_offset
        return remaining if remaining > 0 else 0

    @property
    def has_data(self) -> bool:
        # retx pending, unsent bytes remaining, or a bare FIN still to send.
        if self._retx:
            return True
        return self.next_offset < self.source.size or not self.fin_sent

    @property
    def all_acked(self) -> bool:
        return self.fin_acked and self.acked.covers(0, self.size)

    # -- producing chunks ---------------------------------------------------

    def next_chunk(self, max_len: int) -> Optional[Tuple[int, int, bool, bool]]:
        """Return ``(offset, length, fin, is_retx)`` for the next frame, or None.

        Retransmissions go first. ``fin`` is set on the chunk that reaches the
        end of the stream.
        """
        if max_len <= 0:
            # Only a bare FIN can be produced without byte budget.
            if (
                not self._retx
                and self.next_offset >= self.size
                and not self.fin_sent
            ):
                self.fin_sent = True
                return (self.size, 0, True, False)
            return None
        if self._retx:
            start, end = self._retx[0]
            take = min(max_len, end - start)
            if take == end - start:
                self._retx.pop(0)
            else:
                self._retx[0][0] = start + take
            fin = (start + take) >= self.size
            return (start, take, fin, True)
        if self.next_offset < self.size:
            take = min(max_len, self.size - self.next_offset)
            offset = self.next_offset
            self.next_offset += take
            fin = self.next_offset >= self.size
            if fin:
                self.fin_sent = True
            return (offset, take, fin, False)
        if not self.fin_sent:
            self.fin_sent = True
            return (self.size, 0, True, False)
        return None

    def read(self, offset: int, length: int) -> bytes:
        return self.source.read(offset, length)

    # -- feedback ------------------------------------------------------------

    def on_ack(self, offset: int, length: int, fin: bool) -> None:
        if length:
            self.acked.add(offset, offset + length)
        if fin:
            self.fin_acked = True

    def on_loss(self, offset: int, length: int, fin: bool) -> None:
        """Queue a lost range for retransmission (skipping already-acked bytes)."""
        if fin and length == 0:
            # Pure FIN retransmission.
            if not self.fin_acked:
                self.fin_sent = False
            return
        for lo, hi in self.acked.missing_within(offset, offset + length):
            self._queue_retx(lo, hi)
        if fin and not self.fin_acked:
            self.fin_sent = False

    def _queue_retx(self, start: int, end: int) -> None:
        self.retx_bytes_total += end - start
        # Merge with an adjacent tail entry when possible; otherwise append.
        for entry in self._retx:
            if entry[0] <= start and end <= entry[1]:
                self.retx_bytes_total -= end - start
                return
            if entry[1] == start:
                entry[1] = end
                return
            if entry[0] == end:
                entry[0] = start
                return
        self._retx.append([start, end])
        self._retx.sort()

    @property
    def retx_pending_bytes(self) -> int:
        return sum(end - start for start, end in self._retx)


class RecvStream:
    """Receiver half of a stream."""

    def __init__(self, stream_id: int):
        self.stream_id = stream_id
        self.received = RangeSet()
        self.final_size: Optional[int] = None
        self.delivered = 0  # contiguous bytes handed to the application
        self.bytes_received_total = 0  # includes retransmitted duplicates

    def on_frame(self, offset: int, length: int, fin: bool) -> int:
        """Record a STREAM frame; returns the number of newly received bytes."""
        if fin:
            end = offset + length
            if self.final_size is not None and self.final_size != end:
                raise ProtocolError(
                    f"conflicting final size: {self.final_size} vs {end}"
                )
            self.final_size = end
        elif self.final_size is not None and offset + length > self.final_size:
            raise ProtocolError("data past final size")
        self.bytes_received_total += length
        new = self.received.add(offset, offset + length) if length else 0
        self.delivered = self.received.first_gap_from(0)
        return new

    @property
    def complete(self) -> bool:
        return self.final_size is not None and self.delivered >= self.final_size

    @property
    def highest_received(self) -> int:
        # Ranges are sorted and disjoint, so the frontier is the last end.
        return self.received.upper
