"""qlog-style event tracing for connections.

A lightweight observability layer inspired by the qlog format (draft-ietf-
quic-qlog): the paper's artifact repository ships detailed per-connection
logs, and a reproduction should offer the same introspection. Events carry a
time, a category:event name, and a data dict; traces serialize to
JSON-seq-like dictionaries compatible with simple qlog tooling.

Usage::

    trace = QlogTrace("server")
    conn = Connection("server", ...)
    attach_qlog(conn, trace)
    ...
    trace.to_dict()  # or trace.save(path)
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

QLOG_VERSION = "0.4"


@dataclass
class QlogEvent:
    time_ns: int
    name: str
    data: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {"time": self.time_ns / 1e6, "name": self.name, "data": self.data}


class QlogTrace:
    """Accumulates events for one connection endpoint."""

    def __init__(self, title: str, vantage_point: str = "server"):
        self.title = title
        self.vantage_point = vantage_point
        self.events: List[QlogEvent] = []

    def log(self, time_ns: int, name: str, **data: Any) -> None:
        self.events.append(QlogEvent(time_ns, name, data))

    def of_type(self, name: str) -> List[QlogEvent]:
        return [e for e in self.events if e.name == name]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qlog_version": QLOG_VERSION,
            "title": self.title,
            "trace": {
                "vantage_point": {"type": self.vantage_point},
                "events": [e.to_dict() for e in self.events],
            },
        }

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=1))
        return path

    def __len__(self) -> int:
        return len(self.events)


def attach_qlog(conn, trace: QlogTrace) -> None:
    """Instrument a Connection with qlog events by wrapping its hooks.

    Events emitted:

    * ``transport:packet_sent`` — pn, size, ack-eliciting, frame types;
    * ``transport:packet_received`` — pn, size;
    * ``recovery:metrics_updated`` — cwnd, bytes_in_flight, srtt (on ACK);
    * ``recovery:packet_lost`` — pn per lost packet;
    * ``recovery:spurious_loss`` — pns of late-acked packets;
    * ``recovery:congestion_event`` — new cwnd after a reduction.
    """

    orig_on_packet_sent = conn.on_packet_sent
    orig_process_ack = conn._process_ack
    orig_handle_lost = conn._handle_lost

    def on_packet_sent(built, now):
        orig_on_packet_sent(built, now)
        trace.log(
            now,
            "transport:packet_sent",
            packet_number=built.packet.packet_number,
            size=built.size,
            ack_eliciting=built.ack_eliciting,
            frames=[type(f).__name__ for f in built.packet.frames],
        )

    def process_ack(ack, now):
        events_before = conn.cc.congestion_events
        spurious_before = conn.spurious_loss_events
        orig_process_ack(ack, now)
        trace.log(
            now,
            "recovery:metrics_updated",
            cwnd=conn.cc.cwnd,
            bytes_in_flight=conn.recovery.bytes_in_flight,
            smoothed_rtt_ms=conn.rtt.smoothed_rtt / 1e6,
            pacing_rate_bps=conn.pacing_rate_bps(),
        )
        if conn.cc.congestion_events > events_before:
            trace.log(now, "recovery:congestion_event", cwnd=conn.cc.cwnd)
        if conn.spurious_loss_events > spurious_before:
            trace.log(now, "recovery:spurious_loss", count=conn.spurious_loss_events)

    def handle_lost(lost, now):
        for sp in lost:
            trace.log(now, "recovery:packet_lost", packet_number=sp.pn, size=sp.size)
        orig_handle_lost(lost, now)

    orig_on_datagram = conn.on_datagram

    def on_datagram(data, now, ecn=0):
        before = conn.packets_received
        orig_on_datagram(data, now, ecn=ecn)
        if conn.packets_received > before:
            trace.log(now, "transport:packet_received", size=len(data), ecn=ecn)

    conn.on_packet_sent = on_packet_sent
    conn._process_ack = process_ack
    conn._handle_lost = handle_lost
    conn.on_datagram = on_datagram
    conn.qlog = trace
