"""qlog-style event tracing for connections — pay only for what you use.

A lightweight observability layer inspired by the qlog format (draft-ietf-
quic-qlog): the paper's artifact repository ships detailed per-connection
logs, and a reproduction should offer the same introspection. Events carry a
time, a category:event name, and a data dict; traces serialize to
JSON-seq-like dictionaries compatible with simple qlog tooling.

Observability must never tax runs that do not want it, so the layer is lazy
at three levels:

* :data:`NULL_TRACE` is a module-level no-op sink — its ``log()`` does
  nothing and allocates nothing, so code can log unconditionally against it;
* every trace carries a set of *enabled categories* (the part of the event
  name before the colon); ``attach_qlog`` wraps only the connection hooks
  whose category is enabled, so disabled categories cost zero — not even a
  wrapper call;
* per-packet frame names are formatted lazily: the ``transport:packet_sent``
  event defers ``frames=[...]`` until the event is first read, so traces that
  are recorded but never serialized skip the formatting entirely.

Usage::

    trace = QlogTrace("server")
    conn = Connection("server", ...)
    attach_qlog(conn, trace)
    ...
    trace.to_dict()  # or trace.save(path)
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, FrozenSet, List, Optional

QLOG_VERSION = "0.4"

#: Every category ``attach_qlog`` knows how to instrument.
ALL_CATEGORIES = frozenset({"transport", "recovery"})


@dataclass
class QlogEvent:
    time_ns: int
    name: str
    data: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {"time": self.time_ns / 1e6, "name": self.name, "data": self.data}


class _LazyEvent(QlogEvent):
    """An event whose data dict is built on first access.

    Hot-path emitters hand over a zero-argument thunk instead of a dict;
    nothing is formatted until somebody actually reads ``.data`` (equality,
    ``to_dict``, serialization). Events that are recorded but never inspected
    never pay the formatting cost.
    """

    def __init__(self, time_ns: int, name: str, build: Callable[[], Dict[str, Any]]):
        self.time_ns = time_ns
        self.name = name
        self._build: Optional[Callable[[], Dict[str, Any]]] = build

    @property
    def data(self) -> Dict[str, Any]:  # type: ignore[override]
        build = self._build
        if build is not None:
            self.__dict__["data"] = built = build()
            self._build = None
            return built
        return self.__dict__["data"]


class QlogTrace:
    """Accumulates events for one connection endpoint.

    :param categories: event categories to record (``"transport"``,
        ``"recovery"``); ``None`` enables everything. ``attach_qlog`` skips
        instrumenting hooks for categories the trace does not record.
    """

    def __init__(
        self,
        title: str,
        vantage_point: str = "server",
        categories: Optional[FrozenSet[str] | set[str]] = None,
    ):
        self.title = title
        self.vantage_point = vantage_point
        self.categories: FrozenSet[str] = (
            ALL_CATEGORIES if categories is None else frozenset(categories)
        )
        self.events: List[QlogEvent] = []

    def enabled(self, category: str) -> bool:
        return category in self.categories

    def log(self, time_ns: int, name: str, **data: Any) -> None:
        self.events.append(QlogEvent(time_ns, name, data))

    def log_lazy(self, time_ns: int, name: str, build: Callable[[], Dict[str, Any]]) -> None:
        """Record an event whose data dict is produced on first access."""
        self.events.append(_LazyEvent(time_ns, name, build))

    def of_type(self, name: str) -> List[QlogEvent]:
        return [e for e in self.events if e.name == name]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qlog_version": QLOG_VERSION,
            "title": self.title,
            "trace": {
                "vantage_point": {"type": self.vantage_point},
                "events": [e.to_dict() for e in self.events],
            },
        }

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=1))
        return path

    def __len__(self) -> int:
        return len(self.events)


class NullTrace(QlogTrace):
    """A trace that records nothing, at constant (near-zero) cost.

    ``attach_qlog`` treats it as "all categories disabled" and leaves the
    connection completely unwrapped; direct ``log()`` calls are no-ops that
    allocate nothing.
    """

    def __init__(self) -> None:
        super().__init__("null", categories=frozenset())

    def enabled(self, category: str) -> bool:
        return False

    def log(self, time_ns: int, name: str, **data: Any) -> None:
        pass

    def log_lazy(self, time_ns: int, name: str, build: Callable[[], Dict[str, Any]]) -> None:
        pass


#: Shared no-op sink: log against this when no trace was configured.
NULL_TRACE = NullTrace()


def attach_qlog(conn, trace: QlogTrace) -> None:
    """Instrument a Connection with qlog events by wrapping its hooks.

    Only hooks whose category the trace enables are wrapped; a trace with no
    enabled categories (:data:`NULL_TRACE`) leaves the connection untouched
    apart from the ``conn.qlog`` attribute.

    Events emitted:

    * ``transport:packet_sent`` — pn, size, ack-eliciting, frame types;
    * ``transport:packet_received`` — pn, size;
    * ``recovery:metrics_updated`` — cwnd, bytes_in_flight, srtt (on ACK);
    * ``recovery:packet_lost`` — pn per lost packet;
    * ``recovery:spurious_loss`` — pns of late-acked packets;
    * ``recovery:congestion_event`` — new cwnd after a reduction.
    """
    from repro.quic.packet import QuicPacket

    if trace.enabled("transport"):
        orig_on_packet_sent = conn.on_packet_sent

        def on_packet_sent(built, now):
            orig_on_packet_sent(built, now)
            packet = built.packet
            size = built.size
            eliciting = built.ack_eliciting

            def build() -> Dict[str, Any]:
                return {
                    "packet_number": packet.packet_number,
                    "size": size,
                    "ack_eliciting": eliciting,
                    "frames": [type(f).__name__ for f in packet.frames],
                }

            trace.log_lazy(now, "transport:packet_sent", build)

        orig_on_datagram = conn.on_datagram

        def on_datagram(data, now, ecn=0):
            before = conn.packets_received
            orig_on_datagram(data, now, ecn=ecn)
            if conn.packets_received > before:
                size = data.encoded_len if isinstance(data, QuicPacket) else len(data)
                trace.log(now, "transport:packet_received", size=size, ecn=ecn)

        conn.on_packet_sent = on_packet_sent
        conn.on_datagram = on_datagram

    if trace.enabled("recovery"):
        orig_process_ack = conn._process_ack
        orig_handle_lost = conn._handle_lost

        def process_ack(ack, now):
            events_before = conn.cc.congestion_events
            spurious_before = conn.spurious_loss_events
            orig_process_ack(ack, now)
            trace.log(
                now,
                "recovery:metrics_updated",
                cwnd=conn.cc.cwnd,
                bytes_in_flight=conn.recovery.bytes_in_flight,
                smoothed_rtt_ms=conn.rtt.smoothed_rtt / 1e6,
                pacing_rate_bps=conn.pacing_rate_bps(),
            )
            if conn.cc.congestion_events > events_before:
                trace.log(now, "recovery:congestion_event", cwnd=conn.cc.cwnd)
            if conn.spurious_loss_events > spurious_before:
                trace.log(now, "recovery:spurious_loss", count=conn.spurious_loss_events)

        def handle_lost(lost, now):
            for sp in lost:
                trace.log(now, "recovery:packet_lost", packet_number=sp.pn, size=sp.size)
            orig_handle_lost(lost, now)

        conn._process_ack = process_ack
        conn._handle_lost = handle_lost

    conn.qlog = trace
