"""RTT estimation per RFC 9002 §5."""

from __future__ import annotations

from typing import Final

from repro.units import ms


class RttEstimator:
    """Tracks latest/min/smoothed RTT and RTT variance (all nanoseconds)."""

    INITIAL_RTT: Final[int] = ms(333)

    def __init__(self, max_ack_delay_ns: int = ms(25)):
        self.max_ack_delay_ns: int = max_ack_delay_ns
        self.latest_rtt: int = 0
        self.min_rtt: int = 0
        self.smoothed_rtt: int = self.INITIAL_RTT
        self.rttvar: int = self.INITIAL_RTT // 2
        self._has_sample: bool = False

    @property
    def has_sample(self) -> bool:
        return self._has_sample

    def update(self, latest_rtt_ns: int, ack_delay_ns: int = 0) -> None:
        """Feed one RTT sample (time from send to ACK receipt)."""
        if latest_rtt_ns <= 0:
            return
        self.latest_rtt = latest_rtt_ns
        if not self._has_sample:
            self._has_sample = True
            self.min_rtt = latest_rtt_ns
            self.smoothed_rtt = latest_rtt_ns
            self.rttvar = latest_rtt_ns // 2
            return
        self.min_rtt = min(self.min_rtt, latest_rtt_ns)
        # Only credit ack delay if doing so doesn't go below min_rtt.
        ack_delay = min(ack_delay_ns, self.max_ack_delay_ns)
        adjusted = latest_rtt_ns
        if adjusted - self.min_rtt >= ack_delay:
            adjusted -= ack_delay
        self.rttvar = (3 * self.rttvar + abs(self.smoothed_rtt - adjusted)) // 4
        self.smoothed_rtt = (7 * self.smoothed_rtt + adjusted) // 8

    def pto_interval(self, granularity_ns: int = ms(1)) -> int:
        """Probe timeout interval: srtt + max(4*rttvar, granularity) + max_ack_delay."""
        return self.smoothed_rtt + max(4 * self.rttvar, granularity_ns) + self.max_ack_delay_ns

    def __repr__(self) -> str:
        return (
            f"<RttEstimator srtt={self.smoothed_rtt} min={self.min_rtt} "
            f"var={self.rttvar} latest={self.latest_rtt}>"
        )
