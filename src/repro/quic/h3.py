"""Minimal HTTP/3-style request/response framing.

The workload is a single GET of a fixed-size file, so this layer only needs
size-accurate framing: varint-typed frames (HEADERS = 0x01, DATA = 0x00) with
varint lengths, like HTTP/3 on the wire. Header blocks are fixed
representative byte strings instead of real QPACK.
"""

from __future__ import annotations

from repro.errors import EncodingError
from repro.quic.varint import decode_varint, encode_varint

FRAME_DATA = 0x00
FRAME_HEADERS = 0x01

#: Representative QPACK-encoded blocks (sizes matter, contents don't).
_REQUEST_HEADER_BLOCK = b"\x00" * 37  # :method GET, :path /file, ...
_RESPONSE_HEADER_BLOCK = b"\x00" * 55  # :status 200, content-length, ...


def encode_request(path: str = "/file") -> bytes:
    block = _REQUEST_HEADER_BLOCK + path.encode()
    return bytes([FRAME_HEADERS]) + encode_varint(len(block)) + block


def encode_response_prefix(body_size: int) -> bytes:
    """HEADERS frame plus the DATA frame header announcing ``body_size``."""
    headers = bytes([FRAME_HEADERS]) + encode_varint(len(_RESPONSE_HEADER_BLOCK))
    headers += _RESPONSE_HEADER_BLOCK
    data_header = bytes([FRAME_DATA]) + encode_varint(body_size)
    return headers + data_header


def response_stream_size(body_size: int) -> int:
    """Total stream bytes for a response with ``body_size`` payload bytes."""
    return len(encode_response_prefix(body_size)) + body_size


def parse_frame_header(data: bytes, offset: int = 0) -> tuple[int, int, int]:
    """Returns ``(frame_type, payload_len, payload_offset)``."""
    ftype, offset = decode_varint(data, offset)
    length, offset = decode_varint(data, offset)
    if ftype not in (FRAME_DATA, FRAME_HEADERS):
        raise EncodingError(f"unexpected HTTP/3 frame type {ftype}")
    return ftype, length, offset
