"""QUIC frames (RFC 9000 §19) — the subset the workload needs.

Each frame knows its wire encoding; ``parse_frames`` walks a packet payload.
ACK delay is encoded in units of ``2**ACK_DELAY_EXPONENT`` microseconds, as
on the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Final, List, Optional, Sequence, Tuple

from repro.errors import EncodingError
from repro.quic.varint import decode_varint, encode_varint, varint_len

ACK_DELAY_EXPONENT: Final[int] = 3  # default per RFC 9000

TYPE_PADDING: Final[int] = 0x00
TYPE_PING: Final[int] = 0x01
TYPE_ACK: Final[int] = 0x02
TYPE_ACK_ECN: Final[int] = 0x03
TYPE_CRYPTO: Final[int] = 0x06
TYPE_STREAM_BASE: Final[int] = 0x08  # 0x08..0x0f with OFF/LEN/FIN bits
TYPE_MAX_DATA: Final[int] = 0x10
TYPE_MAX_STREAM_DATA: Final[int] = 0x11
TYPE_DATA_BLOCKED: Final[int] = 0x14
TYPE_STREAM_DATA_BLOCKED: Final[int] = 0x15
TYPE_CONNECTION_CLOSE: Final[int] = 0x1C
TYPE_HANDSHAKE_DONE: Final[int] = 0x1E


class Frame:
    """Base frame."""

    #: Frames that count as ack-eliciting (everything except ACK/PADDING/CLOSE).
    ack_eliciting: bool = True

    def encode(self) -> bytes:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def encoded_len(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class PaddingFrame(Frame):
    length: int = 1
    ack_eliciting = False

    def encode(self) -> bytes:
        return bytes(self.length)

    @property
    def encoded_len(self) -> int:
        return self.length


@dataclass(frozen=True)
class PingFrame(Frame):
    def encode(self) -> bytes:
        return bytes([TYPE_PING])

    @property
    def encoded_len(self) -> int:
        return 1


@dataclass(frozen=True)
class AckFrame(Frame):
    """ACK with ranges, descending: ``ranges[0]`` contains ``largest``.

    When ``ecn_counts`` is set (cumulative ECT(0), ECT(1), ECN-CE packet
    counts), the frame encodes as ACK_ECN (type 0x03, RFC 9000 §19.3.2).
    """

    largest: int
    ack_delay_us: int
    ranges: Tuple[Tuple[int, int], ...]  # (lo, hi) inclusive, descending by hi
    ecn_counts: Optional[Tuple[int, int, int]] = None
    ack_eliciting = False

    def __post_init__(self) -> None:
        if not self.ranges:
            raise EncodingError("ACK frame needs at least one range")
        if self.ranges[0][1] != self.largest:
            raise EncodingError("largest acknowledged must top the first range")

    def encode(self) -> bytes:
        out = bytearray([TYPE_ACK_ECN if self.ecn_counts is not None else TYPE_ACK])
        out += encode_varint(self.largest)
        out += encode_varint(self.ack_delay_us >> ACK_DELAY_EXPONENT)
        out += encode_varint(len(self.ranges) - 1)
        first_lo, first_hi = self.ranges[0]
        out += encode_varint(first_hi - first_lo)
        prev_lo = first_lo
        for lo, hi in self.ranges[1:]:
            gap = prev_lo - hi - 2
            if gap < 0:
                raise EncodingError("ACK ranges must be descending and disjoint")
            out += encode_varint(gap)
            out += encode_varint(hi - lo)
            prev_lo = lo
        if self.ecn_counts is not None:
            for count in self.ecn_counts:
                out += encode_varint(count)
        return bytes(out)

    @property
    def encoded_len(self) -> int:
        # Queried repeatedly while budgeting a packet; the frame is frozen,
        # so the length is computed once and cached.
        cached = self.__dict__.get("_encoded_len")
        if cached is not None:
            return cached
        first_lo, first_hi = self.ranges[0]
        n = (
            1
            + varint_len(self.largest)
            + varint_len(self.ack_delay_us >> ACK_DELAY_EXPONENT)
            + varint_len(len(self.ranges) - 1)
            + varint_len(first_hi - first_lo)
        )
        prev_lo = first_lo
        for lo, hi in self.ranges[1:]:
            n += varint_len(prev_lo - hi - 2) + varint_len(hi - lo)
            prev_lo = lo
        if self.ecn_counts is not None:
            for count in self.ecn_counts:
                n += varint_len(count)
        self.__dict__["_encoded_len"] = n
        return n

    def acked_packet_numbers(self) -> List[int]:
        """All packet numbers covered (test/diagnostic helper)."""
        numbers: List[int] = []
        for lo, hi in self.ranges:
            numbers.extend(range(lo, hi + 1))
        return numbers


@dataclass(frozen=True)
class CryptoFrame(Frame):
    offset: int
    data: bytes

    def encode(self) -> bytes:
        return (
            bytes([TYPE_CRYPTO])
            + encode_varint(self.offset)
            + encode_varint(len(self.data))
            + self.data
        )

    @property
    def encoded_len(self) -> int:
        return 1 + varint_len(self.offset) + varint_len(len(self.data)) + len(self.data)


@dataclass(frozen=True)
class StreamFrame(Frame):
    stream_id: int
    offset: int
    data: bytes
    fin: bool = False

    def encode(self) -> bytes:
        flags = TYPE_STREAM_BASE | 0x02  # LEN always set
        if self.offset:
            flags |= 0x04
        if self.fin:
            flags |= 0x01
        out = bytearray([flags])
        out += encode_varint(self.stream_id)
        if self.offset:
            out += encode_varint(self.offset)
        out += encode_varint(len(self.data))
        out += self.data
        return bytes(out)

    @property
    def encoded_len(self) -> int:
        cached = self.__dict__.get("_encoded_len")
        if cached is not None:
            return cached
        n = 1 + varint_len(self.stream_id) + varint_len(len(self.data)) + len(self.data)
        if self.offset:
            n += varint_len(self.offset)
        self.__dict__["_encoded_len"] = n
        return n

    @staticmethod
    def header_overhead(stream_id: int, offset: int, data_len: int) -> int:
        """Bytes of framing for a STREAM frame with the given fields."""
        n = 1 + varint_len(stream_id) + varint_len(data_len)
        if offset:
            n += varint_len(offset)
        return n


@dataclass(frozen=True)
class MaxDataFrame(Frame):
    max_data: int

    def encode(self) -> bytes:
        return bytes([TYPE_MAX_DATA]) + encode_varint(self.max_data)

    @property
    def encoded_len(self) -> int:
        return 1 + varint_len(self.max_data)


@dataclass(frozen=True)
class MaxStreamDataFrame(Frame):
    stream_id: int
    max_data: int

    def encode(self) -> bytes:
        return (
            bytes([TYPE_MAX_STREAM_DATA])
            + encode_varint(self.stream_id)
            + encode_varint(self.max_data)
        )

    @property
    def encoded_len(self) -> int:
        return 1 + varint_len(self.stream_id) + varint_len(self.max_data)


@dataclass(frozen=True)
class DataBlockedFrame(Frame):
    limit: int

    def encode(self) -> bytes:
        return bytes([TYPE_DATA_BLOCKED]) + encode_varint(self.limit)

    @property
    def encoded_len(self) -> int:
        return 1 + varint_len(self.limit)


@dataclass(frozen=True)
class StreamDataBlockedFrame(Frame):
    stream_id: int
    limit: int

    def encode(self) -> bytes:
        return (
            bytes([TYPE_STREAM_DATA_BLOCKED])
            + encode_varint(self.stream_id)
            + encode_varint(self.limit)
        )

    @property
    def encoded_len(self) -> int:
        return 1 + varint_len(self.stream_id) + varint_len(self.limit)


@dataclass(frozen=True)
class ConnectionCloseFrame(Frame):
    error_code: int = 0
    reason: bytes = b""
    ack_eliciting = False

    def encode(self) -> bytes:
        return (
            bytes([TYPE_CONNECTION_CLOSE])
            + encode_varint(self.error_code)
            + encode_varint(0)  # frame type that caused the error
            + encode_varint(len(self.reason))
            + self.reason
        )

    @property
    def encoded_len(self) -> int:
        return (
            1
            + varint_len(self.error_code)
            + 1
            + varint_len(len(self.reason))
            + len(self.reason)
        )


@dataclass(frozen=True)
class HandshakeDoneFrame(Frame):
    def encode(self) -> bytes:
        return bytes([TYPE_HANDSHAKE_DONE])

    @property
    def encoded_len(self) -> int:
        return 1


def parse_frames(data: bytes | memoryview) -> List[Frame]:
    """Parse a packet payload into frames."""
    view = memoryview(data)
    frames: List[Frame] = []
    i = 0
    n = len(view)
    while i < n:
        ftype = view[i]
        if ftype == TYPE_PADDING:
            start = i
            while i < n and view[i] == TYPE_PADDING:
                i += 1
            frames.append(PaddingFrame(i - start))
        elif ftype == TYPE_PING:
            frames.append(PingFrame())
            i += 1
        elif ftype in (TYPE_ACK, TYPE_ACK_ECN):
            frame, i = _decode_ack(view, i + 1, with_ecn=(ftype == TYPE_ACK_ECN))
            frames.append(frame)
        elif ftype == TYPE_CRYPTO:
            offset, i = decode_varint(view, i + 1)
            length, i = decode_varint(view, i)
            if i + length > n:
                raise EncodingError("CRYPTO frame data extends past the packet")
            frames.append(CryptoFrame(offset, bytes(view[i : i + length])))
            i += length
        elif TYPE_STREAM_BASE <= ftype <= TYPE_STREAM_BASE | 0x07:
            has_off = bool(ftype & 0x04)
            has_len = bool(ftype & 0x02)
            fin = bool(ftype & 0x01)
            i += 1
            stream_id, i = decode_varint(view, i)
            offset = 0
            if has_off:
                offset, i = decode_varint(view, i)
            if has_len:
                length, i = decode_varint(view, i)
                if i + length > n:
                    raise EncodingError("STREAM frame data extends past the packet")
            else:
                length = n - i
            frames.append(StreamFrame(stream_id, offset, bytes(view[i : i + length]), fin))
            i += length
        elif ftype == TYPE_MAX_DATA:
            value, i = decode_varint(view, i + 1)
            frames.append(MaxDataFrame(value))
        elif ftype == TYPE_MAX_STREAM_DATA:
            sid, i = decode_varint(view, i + 1)
            value, i = decode_varint(view, i)
            frames.append(MaxStreamDataFrame(sid, value))
        elif ftype == TYPE_DATA_BLOCKED:
            value, i = decode_varint(view, i + 1)
            frames.append(DataBlockedFrame(value))
        elif ftype == TYPE_STREAM_DATA_BLOCKED:
            sid, i = decode_varint(view, i + 1)
            value, i = decode_varint(view, i)
            frames.append(StreamDataBlockedFrame(sid, value))
        elif ftype == TYPE_CONNECTION_CLOSE:
            code, i = decode_varint(view, i + 1)
            _frame_type, i = decode_varint(view, i)
            rlen, i = decode_varint(view, i)
            if i + rlen > n:
                raise EncodingError("CONNECTION_CLOSE reason extends past the packet")
            frames.append(ConnectionCloseFrame(code, bytes(view[i : i + rlen])))
            i += rlen
        elif ftype == TYPE_HANDSHAKE_DONE:
            frames.append(HandshakeDoneFrame())
            i += 1
        else:
            raise EncodingError(f"unknown frame type 0x{ftype:02x} at offset {i}")
    return frames


def _decode_ack(view: memoryview, i: int, with_ecn: bool = False) -> tuple[AckFrame, int]:
    largest, i = decode_varint(view, i)
    delay_raw, i = decode_varint(view, i)
    range_count, i = decode_varint(view, i)
    first_range, i = decode_varint(view, i)
    ranges = [(largest - first_range, largest)]
    prev_lo = largest - first_range
    for _ in range(range_count):
        gap, i = decode_varint(view, i)
        length, i = decode_varint(view, i)
        hi = prev_lo - gap - 2
        lo = hi - length
        if lo < 0:
            raise EncodingError("ACK range extends below packet number 0")
        ranges.append((lo, hi))
        prev_lo = lo
    ecn_counts = None
    if with_ecn:
        ect0, i = decode_varint(view, i)
        ect1, i = decode_varint(view, i)
        ce, i = decode_varint(view, i)
        ecn_counts = (ect0, ect1, ce)
    return AckFrame(largest, delay_raw << ACK_DELAY_EXPONENT, tuple(ranges), ecn_counts), i
