"""QUIC packet model: a short- or long-header packet carrying frames.

Wire layout (simplified but size-accurate):

* long header (Initial / Handshake): flags(1) + version(4) + dcid_len(1) +
  dcid(8) + scid_len(1) + scid(8) + length(varint) + packet number(4) +
  payload + AEAD tag(16);
* short header (1-RTT): flags(1) + dcid(8) + packet number(4) + payload +
  AEAD tag(16).

Encryption is modelled by the size-preserving AEAD tag: payload bytes travel
in the clear inside the simulator, but every packet pays the real 16-byte
expansion, so goodput arithmetic matches a real stack.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Final, List, Sequence

from repro.errors import EncodingError
from repro.quic.frames import Frame, parse_frames
from repro.quic.varint import decode_varint, encode_varint

AEAD_TAG_LEN: Final[int] = 16
PACKET_NUMBER_LEN: Final[int] = 4
CONNECTION_ID_LEN: Final[int] = 8
QUIC_VERSION: Final[int] = 0x00000001

#: Default max UDP payload (paper setups use ~1252-byte QUIC packets on a
#: 1500-byte MTU path with IPv4).
DEFAULT_MAX_UDP_PAYLOAD: Final[int] = 1252


class PacketType(enum.Enum):
    INITIAL = "initial"
    HANDSHAKE = "handshake"
    ONE_RTT = "1rtt"

    @property
    def long_header(self) -> bool:
        return self is not PacketType.ONE_RTT


_LONG_TYPE_BITS: Final[Dict[PacketType, int]] = {
    PacketType.INITIAL: 0x0, PacketType.HANDSHAKE: 0x2
}
_LONG_TYPE_FROM_BITS: Final[Dict[int, PacketType]] = {
    v: k for k, v in _LONG_TYPE_BITS.items()
}


_SHORT_HEADER_OVERHEAD: Final[int] = (
    1 + CONNECTION_ID_LEN + PACKET_NUMBER_LEN + AEAD_TAG_LEN
)


def short_header_overhead() -> int:
    """Framing bytes of a 1-RTT packet beyond its frames."""
    return _SHORT_HEADER_OVERHEAD


def long_header_overhead(payload_len: int) -> int:
    length_field = len(encode_varint(payload_len + PACKET_NUMBER_LEN + AEAD_TAG_LEN))
    return 1 + 4 + 1 + CONNECTION_ID_LEN + 1 + CONNECTION_ID_LEN + length_field + (
        PACKET_NUMBER_LEN + AEAD_TAG_LEN
    )


@dataclass
class QuicPacket:
    """A parsed or to-be-encoded QUIC packet."""

    packet_type: PacketType
    packet_number: int
    frames: List[Frame] = field(default_factory=list)
    dcid: bytes = b"\x00" * CONNECTION_ID_LEN
    scid: bytes = b"\x00" * CONNECTION_ID_LEN

    @property
    def ack_eliciting(self) -> bool:
        # Cached: sender and receiver both query it, and with packets passed
        # by object between stacks the same instance answers both.
        cached = self.__dict__.get("_ack_eliciting")
        if cached is None:
            cached = any(f.ack_eliciting for f in self.frames)
            self.__dict__["_ack_eliciting"] = cached
        return cached

    def payload_bytes(self) -> bytes:
        return b"".join(f.encode() for f in self.frames)

    def encode(self) -> bytes:
        payload = self.payload_bytes()
        if not payload:
            raise EncodingError("QUIC packet must carry at least one frame")
        pn = self.packet_number.to_bytes(PACKET_NUMBER_LEN, "big")
        tag = bytes(AEAD_TAG_LEN)
        if self.packet_type.long_header:
            flags = 0xC0 | (_LONG_TYPE_BITS[self.packet_type] << 4) | (PACKET_NUMBER_LEN - 1)
            out = bytearray([flags])
            out += QUIC_VERSION.to_bytes(4, "big")
            out += bytes([len(self.dcid)]) + self.dcid
            out += bytes([len(self.scid)]) + self.scid
            out += encode_varint(len(payload) + PACKET_NUMBER_LEN + AEAD_TAG_LEN)
            out += pn + payload + tag
            return bytes(out)
        flags = 0x40 | (PACKET_NUMBER_LEN - 1)
        return bytes([flags]) + self.dcid + pn + payload + tag

    @property
    def encoded_len(self) -> int:
        payload_len = 0
        for f in self.frames:
            payload_len += f.encoded_len
        if self.packet_type is not PacketType.ONE_RTT:
            return payload_len + long_header_overhead(payload_len)
        return payload_len + _SHORT_HEADER_OVERHEAD

    @classmethod
    def decode(cls, data: bytes | memoryview) -> "QuicPacket":
        view = memoryview(data)
        if len(view) < 1 + PACKET_NUMBER_LEN + AEAD_TAG_LEN:
            raise EncodingError(f"packet too short: {len(view)} bytes")

        def need(end: int) -> None:
            if end > len(view):
                raise EncodingError(f"packet truncated: need {end} of {len(view)} bytes")

        flags = view[0]
        if flags & 0x80:  # long header
            ptype = _LONG_TYPE_FROM_BITS.get((flags >> 4) & 0x3)
            if ptype is None:
                raise EncodingError(f"unsupported long header type in flags 0x{flags:02x}")
            i = 1 + 4
            need(i + 1)
            dcid_len = view[i]
            need(i + 1 + dcid_len)
            dcid = bytes(view[i + 1 : i + 1 + dcid_len])
            i += 1 + dcid_len
            need(i + 1)
            scid_len = view[i]
            need(i + 1 + scid_len)
            scid = bytes(view[i + 1 : i + 1 + scid_len])
            i += 1 + scid_len
            length, i = decode_varint(view, i)
            if length < PACKET_NUMBER_LEN + AEAD_TAG_LEN:
                raise EncodingError(f"long header length field too small: {length}")
            need(i + length)
            pn = int.from_bytes(view[i : i + PACKET_NUMBER_LEN], "big")
            i += PACKET_NUMBER_LEN
            payload_len = length - PACKET_NUMBER_LEN - AEAD_TAG_LEN
            payload = view[i : i + payload_len]
            return cls(ptype, pn, parse_frames(payload), dcid=dcid, scid=scid)
        dcid = bytes(view[1 : 1 + CONNECTION_ID_LEN])
        i = 1 + CONNECTION_ID_LEN
        need(i + PACKET_NUMBER_LEN + AEAD_TAG_LEN)
        pn = int.from_bytes(view[i : i + PACKET_NUMBER_LEN], "big")
        i += PACKET_NUMBER_LEN
        payload = view[i : len(view) - AEAD_TAG_LEN]
        return cls(PacketType.ONE_RTT, pn, parse_frames(payload), dcid=dcid)
