"""QUIC variable-length integers (RFC 9000 §16).

The two most significant bits of the first byte select the encoding length
(1, 2, 4 or 8 bytes); the remaining bits carry the value big-endian.
"""

from __future__ import annotations

from repro.errors import EncodingError

MAX_VARINT = (1 << 62) - 1


def varint_len(value: int) -> int:
    """Encoded length in bytes of ``value``."""
    if value < 0:
        raise EncodingError(f"varint cannot encode negative value {value}")
    if value <= 0x3F:
        return 1
    if value <= 0x3FFF:
        return 2
    if value <= 0x3FFF_FFFF:
        return 4
    if value <= MAX_VARINT:
        return 8
    raise EncodingError(f"value {value} exceeds varint maximum {MAX_VARINT}")


def encode_varint(value: int) -> bytes:
    """Encode ``value`` as a QUIC varint."""
    if value < 0:
        raise EncodingError(f"varint cannot encode negative value {value}")
    if value <= 0x3F:
        return value.to_bytes(1, "big")
    if value <= 0x3FFF:
        return (value | (0b01 << 14)).to_bytes(2, "big")
    if value <= 0x3FFF_FFFF:
        return (value | (0b10 << 30)).to_bytes(4, "big")
    if value <= MAX_VARINT:
        return (value | (0b11 << 62)).to_bytes(8, "big")
    raise EncodingError(f"value {value} exceeds varint maximum {MAX_VARINT}")


def decode_varint(data: memoryview | bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint at ``offset``; returns ``(value, new_offset)``."""
    if offset >= len(data):
        raise EncodingError("varint truncated: empty input")
    first = data[offset]
    prefix = first >> 6
    if prefix == 0:
        return first, offset + 1
    length = 1 << prefix
    if offset + length > len(data):
        raise EncodingError(f"varint truncated: need {length} bytes at offset {offset}")
    if prefix == 1:
        return ((first & 0x3F) << 8) | data[offset + 1], offset + 2
    if prefix == 2:
        return (
            ((first & 0x3F) << 24)
            | (data[offset + 1] << 16)
            | (data[offset + 2] << 8)
            | data[offset + 3]
        ), offset + 4
    value = first & 0x3F
    for i in range(1, 8):
        value = (value << 8) | data[offset + i]
    return value, offset + 8


# -- build-mode selection ---------------------------------------------------
#
# Pure implementations stay importable under ``pure_*`` names; the compiled
# core shadows the public names when present (see repro/_build.py).

pure_varint_len = varint_len
pure_encode_varint = encode_varint
pure_decode_varint = decode_varint

from repro import _build as _build  # noqa: E402 - deliberate tail import

_core = _build.compiled_core()
if _core is not None:
    varint_len = _core.varint_len
    encode_varint = _core.encode_varint
    decode_varint = _core.decode_varint
    _build.register("repro.quic.varint", "compiled")
else:
    _build.register("repro.quic.varint", "pure")
del _core
