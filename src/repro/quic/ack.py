"""Receiver-side ACK generation.

Implements the RFC 9000 default policy: acknowledge every second
ack-eliciting packet immediately, otherwise within ``max_ack_delay`` (25 ms);
always acknowledge immediately when a gap (potential reordering/loss) is
observed. Tracks received packet numbers as ranges for the ACK frame.
"""

from __future__ import annotations

from typing import Final, List, Optional, Tuple

from repro.quic.frames import ACK_DELAY_EXPONENT, AckFrame
from repro.units import ms

MAX_ACK_RANGES: Final[int] = 10


class AckManager:
    def __init__(self, max_ack_delay_ns: int = ms(25), ack_eliciting_threshold: int = 2):
        self.max_ack_delay_ns: int = max_ack_delay_ns
        self.ack_eliciting_threshold: int = ack_eliciting_threshold
        self._ranges: List[List[int]] = []  # sorted [lo, hi], ascending
        self._largest_time: int = 0
        self._largest: int = -1
        self._unacked_eliciting: int = 0
        self._ack_deadline: Optional[int] = None
        self._immediate: bool = False
        self.duplicates: int = 0

    # -- recording -----------------------------------------------------------

    def record(self, pn: int, ack_eliciting: bool, now_ns: int) -> None:
        prev_largest = self._largest
        if pn > self._largest:
            self._largest = pn
            self._largest_time = now_ns
        if self._insert(pn):
            if ack_eliciting:
                self._unacked_eliciting += 1
                if self._unacked_eliciting >= self.ack_eliciting_threshold:
                    self._immediate = True
                elif self._ack_deadline is None:
                    self._ack_deadline = now_ns + self.max_ack_delay_ns
                # A *newly appearing* gap signals loss/reordering: ack at once
                # (RFC 9000 §13.2.1). Packets received while an old hole is
                # still being repaired follow the normal cadence, as stacks
                # with ACK-frequency logic do.
                if pn > prev_largest + 1 and prev_largest >= 0:
                    self._immediate = True
        else:
            self.duplicates += 1

    def _insert(self, pn: int) -> bool:
        """Insert pn into the range set; returns False on duplicate."""
        ranges = self._ranges
        lo_idx, hi_idx = 0, len(ranges)
        while lo_idx < hi_idx:
            mid = (lo_idx + hi_idx) // 2
            if ranges[mid][1] < pn:
                lo_idx = mid + 1
            else:
                hi_idx = mid
        # ranges[lo_idx] is the first range with hi >= pn (if any)
        if lo_idx < len(ranges) and ranges[lo_idx][0] <= pn <= ranges[lo_idx][1]:
            return False
        touches_next = lo_idx < len(ranges) and ranges[lo_idx][0] == pn + 1
        touches_prev = lo_idx > 0 and ranges[lo_idx - 1][1] == pn - 1
        if touches_prev and touches_next:
            ranges[lo_idx - 1][1] = ranges[lo_idx][1]
            del ranges[lo_idx]
        elif touches_prev:
            ranges[lo_idx - 1][1] = pn
        elif touches_next:
            ranges[lo_idx][0] = pn
        else:
            ranges.insert(lo_idx, [pn, pn])
        return True

    # -- ACK emission ----------------------------------------------------------

    @property
    def ack_pending(self) -> bool:
        return self._unacked_eliciting > 0

    def should_ack_now(self, now_ns: int) -> bool:
        if self._immediate:
            return True
        return self._ack_deadline is not None and now_ns >= self._ack_deadline

    def ack_deadline(self) -> Optional[int]:
        """Absolute time by which an ACK must go out, or None."""
        if not self.ack_pending:
            return None
        if self._immediate:
            return 0
        return self._ack_deadline

    def build_ack(self, now_ns: int) -> Optional[AckFrame]:
        if not self._ranges:
            return None
        descending: Tuple[Tuple[int, int], ...] = tuple(
            (lo, hi) for lo, hi in reversed(self._ranges[-MAX_ACK_RANGES:])
        )
        delay_ns = max(0, now_ns - self._largest_time)
        # The wire encodes the delay in 2**ACK_DELAY_EXPONENT µs units, so
        # quantize here: the frame object then carries exactly what a peer
        # would decode, whether it travels as an object or as bytes.
        delay_us = (delay_ns // 1000) >> ACK_DELAY_EXPONENT << ACK_DELAY_EXPONENT
        frame = AckFrame(self._largest, delay_us, descending)
        self._unacked_eliciting = 0
        self._ack_deadline = None
        self._immediate = False
        return frame

    @property
    def largest_received(self) -> int:
        return self._largest

    def received_count(self) -> int:
        return sum(hi - lo + 1 for lo, hi in self._ranges)
