"""Sender-side loss detection (RFC 9002) with delivery-rate sampling.

Tracks every sent packet, processes ACK frames into newly-acked / lost /
spuriously-lost sets, maintains bytes in flight, computes the loss-detection
timer (time-threshold loss or PTO) and produces BBR-style delivery rate
samples.

Spurious loss (a late ACK for a packet already declared lost) is surfaced to
the congestion controller — quiche's CUBIC uses it (together with its
small-loss-burst heuristic) for the congestion-window rollback the paper
dissects in Section 4.2.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.quic.frames import AckFrame
from repro.quic.rtt import RttEstimator
from repro.units import ms

K_PACKET_THRESHOLD = 3
K_TIME_THRESHOLD_NUM = 9
K_TIME_THRESHOLD_DEN = 8
K_GRANULARITY = ms(1)

#: How many declared-lost packet numbers we remember for spurious detection.
LOST_HISTORY_LIMIT = 4096


@dataclass
class SentPacket:
    pn: int
    time_sent: int
    size: int
    ack_eliciting: bool
    in_flight: bool
    #: Opaque retransmission payload (the connection stores what it needs to
    #: re-send the packet's data on loss).
    retx: Any = None
    # Delivery-rate sampling snapshot (taken at send time).
    delivered: int = 0
    delivered_time: int = 0
    first_sent_time: int = 0
    is_app_limited: bool = False


@dataclass
class RateSample:
    """One delivery-rate sample, fed to BBR."""

    delivery_rate_bps: float
    interval_ns: int
    delivered_bytes: int
    is_app_limited: bool
    rtt_ns: int


@dataclass
class AckResult:
    newly_acked: List[SentPacket] = field(default_factory=list)
    lost: List[SentPacket] = field(default_factory=list)
    spurious_pns: List[int] = field(default_factory=list)
    largest_newly_acked: Optional[int] = None
    rtt_updated: bool = False
    rate_sample: Optional[RateSample] = None
    #: RFC 9002 §7.6: losses span a full persistent-congestion period.
    persistent_congestion: bool = False


class LossRecovery:
    def __init__(self, rtt: RttEstimator):
        self.rtt = rtt
        self.sent: Dict[int, SentPacket] = {}
        self.largest_acked: int = -1
        self.loss_time: Optional[int] = None
        self.pto_count: int = 0
        self.bytes_in_flight: int = 0
        self.ack_eliciting_in_flight: int = 0
        self.time_of_last_ack_eliciting: int = 0

        self.lost_packets_total: int = 0
        self.acked_packets_total: int = 0
        self._lost_history: Dict[int, int] = {}  # pn -> declared-lost time

        # Delivery-rate tracking (RACK/BBR style).
        self.delivered: int = 0
        self.delivered_time: int = 0
        self.first_sent_time: int = 0
        self.app_limited: bool = False

    # -- sending ------------------------------------------------------------

    def on_packet_sent(self, sp: SentPacket, now: int) -> None:
        sp.delivered = self.delivered
        sp.delivered_time = self.delivered_time or now
        sp.first_sent_time = self.first_sent_time or now
        sp.is_app_limited = self.app_limited
        if self.bytes_in_flight == 0:
            self.first_sent_time = now
            self.delivered_time = self.delivered_time or now
        self.sent[sp.pn] = sp
        if sp.in_flight:
            self.bytes_in_flight += sp.size
        if sp.ack_eliciting:
            self.ack_eliciting_in_flight += 1
            self.time_of_last_ack_eliciting = now

    # -- ACK processing --------------------------------------------------------

    def on_ack_frame(self, ack: AckFrame, now: int) -> AckResult:
        result = AckResult()
        newly: List[SentPacket] = []
        self._prune_lost_history(now)
        # ACK frames re-cover everything ever received, but almost all of it
        # was acked before: only packets still tracked (outstanding or
        # recently declared lost) can change state. Walk the *tracked* sets
        # against the ranges instead of every covered packet number — the
        # ``sent`` dict is keyed in ascending-pn insertion order, so a single
        # merge pass over (sorted ranges x sent keys) is O(outstanding) and
        # exits as soon as the keys pass the highest range.
        sent = self.sent
        ascending = ack.ranges[::-1]  # wire order is descending by hi
        ri = 0
        nr = len(ascending)
        acked_pns: List[int] = []
        for pn in sent:
            while ri < nr and ascending[ri][1] < pn:
                ri += 1
            if ri == nr:
                break
            if pn >= ascending[ri][0]:
                acked_pns.append(pn)
        for pn in acked_pns:
            newly.append(sent.pop(pn))
        if self._lost_history:
            # Spurious losses: declared-lost packets the ACK now covers.
            # Reported in the original scan order (descending ranges,
            # ascending pn within each range).
            lost_sorted = sorted(self._lost_history)
            for lo, hi in ack.ranges:
                for pn in lost_sorted[bisect_left(lost_sorted, lo):bisect_right(lost_sorted, hi)]:
                    if pn in self._lost_history:
                        del self._lost_history[pn]
                        result.spurious_pns.append(pn)
        if not newly and not result.spurious_pns:
            return result
        newly.sort(key=lambda sp: sp.pn)
        result.newly_acked = newly
        if newly:
            result.largest_newly_acked = newly[-1].pn
            largest_sp = newly[-1]
            if largest_sp.pn > self.largest_acked:
                self.largest_acked = largest_sp.pn
            if largest_sp.pn == ack.largest and largest_sp.ack_eliciting:
                self.rtt.update(now - largest_sp.time_sent, ack.ack_delay_us * 1000)
                result.rtt_updated = True
            for sp in newly:
                if sp.in_flight:
                    self.bytes_in_flight -= sp.size
                if sp.ack_eliciting:
                    self.ack_eliciting_in_flight -= 1
                self.acked_packets_total += 1
                self.delivered += sp.size
            self.delivered_time = now
            result.rate_sample = self._make_rate_sample(largest_sp, now)
            # Delivery-rate algorithm: the next send interval is measured from
            # the most recently acked packet's transmission time.
            self.first_sent_time = largest_sp.time_sent
            self.pto_count = 0
        result.lost = self._detect_lost(now)
        if result.lost:
            result.persistent_congestion = self._is_persistent_congestion(
                result.lost, result.newly_acked
            )
        return result

    def _is_persistent_congestion(
        self, lost: List[SentPacket], newly_acked: List[SentPacket]
    ) -> bool:
        """RFC 9002 §7.6: the lost packets span a period longer than
        ``3 x PTO`` during which nothing was acknowledged."""
        if len(lost) < 2 or not self.rtt.has_sample:
            return False
        span_start = lost[0].time_sent
        span_end = lost[-1].time_sent
        duration = span_end - span_start
        if duration <= 3 * self.rtt.pto_interval():
            return False
        # Any packet acknowledged from inside the span breaks persistence.
        for sp in newly_acked:
            if span_start < sp.time_sent < span_end:
                return False
        return True

    def _make_rate_sample(self, sp: SentPacket, now: int) -> Optional[RateSample]:
        send_interval = sp.time_sent - sp.first_sent_time
        ack_interval = now - sp.delivered_time
        interval = max(send_interval, ack_interval)
        delivered = self.delivered - sp.delivered
        if interval <= 0 or delivered <= 0:
            return None
        return RateSample(
            delivery_rate_bps=delivered * 8 * 1e9 / interval,
            interval_ns=interval,
            delivered_bytes=delivered,
            is_app_limited=sp.is_app_limited,
            rtt_ns=max(now - sp.time_sent, 1),
        )

    # -- loss detection -------------------------------------------------------

    def _loss_delay(self) -> int:
        base = max(self.rtt.latest_rtt, self.rtt.smoothed_rtt)
        return max(base * K_TIME_THRESHOLD_NUM // K_TIME_THRESHOLD_DEN, K_GRANULARITY)

    def _detect_lost(self, now: int) -> List[SentPacket]:
        self.loss_time = None
        if self.largest_acked < 0:
            return []
        lost: List[SentPacket] = []
        delay = self._loss_delay()
        threshold_time = now - delay
        # Packets are tracked in send (insertion) order, so candidates below
        # largest_acked sit at the front; stop at the first newer one.
        candidates: List[int] = []
        for pn in self.sent:
            if pn >= self.largest_acked:
                break
            candidates.append(pn)
        for pn in candidates:
            sp = self.sent[pn]
            if sp.time_sent <= threshold_time or self.largest_acked - pn >= K_PACKET_THRESHOLD:
                del self.sent[pn]
                lost.append(sp)
                if sp.in_flight:
                    self.bytes_in_flight -= sp.size
                if sp.ack_eliciting:
                    self.ack_eliciting_in_flight -= 1
                self.lost_packets_total += 1
                self._remember_lost(sp.pn, now)
            elif self.loss_time is None or sp.time_sent + delay < self.loss_time:
                self.loss_time = sp.time_sent + delay
        return lost

    def _prune_lost_history(self, now: int) -> None:
        """Forget losses old enough that a late ACK can no longer arrive."""
        horizon = now - max(4 * self.rtt.pto_interval(), ms(500))
        # Entries are inserted in declared-lost order, so pop from the front.
        while self._lost_history:
            pn, declared = next(iter(self._lost_history.items()))
            if declared >= horizon:
                break
            del self._lost_history[pn]

    def _remember_lost(self, pn: int, now: int) -> None:
        self._lost_history[pn] = now
        if len(self._lost_history) > LOST_HISTORY_LIMIT:
            # Drop the oldest half to amortize the cleanup.
            for key in list(self._lost_history)[: LOST_HISTORY_LIMIT // 2]:
                del self._lost_history[key]

    # -- timers -----------------------------------------------------------------

    def pto_deadline(self) -> Optional[int]:
        if self.ack_eliciting_in_flight == 0:
            return None
        interval = self.rtt.pto_interval() * (1 << min(self.pto_count, 10))
        return self.time_of_last_ack_eliciting + interval

    def next_timeout(self) -> Optional[int]:
        """Earliest loss-detection deadline (time-threshold loss or PTO)."""
        loss = self.loss_time
        if self.ack_eliciting_in_flight == 0:
            return loss
        pto = self.time_of_last_ack_eliciting + self.rtt.pto_interval() * (
            1 << min(self.pto_count, 10)
        )
        if loss is None:
            return pto
        return loss if loss < pto else pto

    def on_loss_timeout(self, now: int) -> Tuple[List[SentPacket], bool]:
        """Handle the loss-detection timer.

        Returns ``(lost_packets, pto_fired)``; on PTO the caller must send a
        probe (retransmission or PING).
        """
        if self.loss_time is not None and now >= self.loss_time:
            return self._detect_lost(now), False
        pto = self.pto_deadline()
        if pto is not None and now >= pto:
            self.pto_count += 1
            return [], True
        return [], False

    # -- misc -------------------------------------------------------------------

    def oldest_unacked(self) -> Optional[SentPacket]:
        for pn in self.sent:
            return self.sent[pn]
        return None

    @property
    def packets_outstanding(self) -> int:
        return len(self.sent)
