"""A QUIC transport implementation (RFC 9000/9002 subset) sufficient to carry
the paper's workload: 1-RTT file transfer with ACK-based loss recovery,
pluggable congestion control and pacing, flow control, and an HTTP/3-style
request/response layer."""

from repro.quic.varint import encode_varint, decode_varint, varint_len
from repro.quic.packet import QuicPacket, PacketType
from repro.quic.rtt import RttEstimator
from repro.quic.connection import Connection, ConnectionConfig

__all__ = [
    "encode_varint",
    "decode_varint",
    "varint_len",
    "QuicPacket",
    "PacketType",
    "RttEstimator",
    "Connection",
    "ConnectionConfig",
]
